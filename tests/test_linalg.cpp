#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/irls.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "linalg/rank_tracker.hpp"
#include "linalg/simplex.hpp"
#include "linalg/solvers.hpp"
#include "linalg/updatable_cholesky.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo::linalg {
namespace {

// ------------------------------------------------------------- matrix ----

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, AppendRowGrowsAndValidates) {
  Matrix m;
  m.append_row({1, 2, 3});
  m.append_row({4, 5, 6});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_THROW(m.append_row({1}), Error);
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Vector y = m.multiply({1, 1});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 11.0);
  const Vector z = m.multiply_transposed({1, 1, 1});
  EXPECT_DOUBLE_EQ(z[0], 9.0);
  EXPECT_DOUBLE_EQ(z[1], 12.0);
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 2), 5.0);
}

TEST(Matrix, Norms) {
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm1({-1, 2, -3}), 6.0);
  EXPECT_DOUBLE_EQ(norm_inf({-1, 2, -3}), 3.0);
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
}

TEST(Matrix, ResidualComputation) {
  Matrix a{{1, 0}, {0, 1}};
  const Vector r = residual(a, {1, 2}, {3, 3});
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
}

// ----------------------------------------------------------------- QR ----

TEST(Qr, SolvesSquareSystemExactly) {
  Matrix a{{2, 1}, {1, 3}};
  const Vector x = least_squares(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(Qr, OverdeterminedLeastSquares) {
  // Fit y = 2t + 1 through noisy-free samples: exact recovery.
  Matrix a{{0, 1}, {1, 1}, {2, 1}, {3, 1}};
  const Vector x = least_squares(a, {1, 3, 5, 7});
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(Qr, RankDetection) {
  Matrix full{{1, 0}, {0, 1}};
  EXPECT_EQ(QrDecomposition(full).rank(), 2u);
  Matrix deficient{{1, 2}, {2, 4}, {3, 6}};
  EXPECT_EQ(QrDecomposition(deficient).rank(), 1u);
}

TEST(Qr, RankDeficientSolveIsFinite) {
  Matrix a{{1, 2}, {2, 4}};
  const Vector x = QrDecomposition(a).solve({3, 6});
  // Consistent system: A x must reproduce b.
  const Vector ax = a.multiply(x);
  EXPECT_NEAR(ax[0], 3.0, 1e-9);
  EXPECT_NEAR(ax[1], 6.0, 1e-9);
}

TEST(Qr, RandomRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5 + trial % 6;
    Matrix a(n + 3, n);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a(i, j) = rng.uniform(-1, 1);
      }
    }
    Vector x_true(n);
    for (auto& v : x_true) v = rng.uniform(-2, 2);
    const Vector b = a.multiply(x_true);
    const Vector x = least_squares(a, b);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(x[j], x_true[j], 1e-8);
    }
  }
}

// ------------------------------------------------------- rank tracker ----

TEST(RankTracker, AcceptsIndependentRejectsDependent) {
  RankTracker tracker(3);
  EXPECT_TRUE(tracker.try_add_ones({0}));
  EXPECT_TRUE(tracker.try_add_ones({1}));
  EXPECT_FALSE(tracker.try_add_ones({0, 1}));  // sum of the first two
  EXPECT_TRUE(tracker.try_add_ones({0, 1, 2}));
  EXPECT_TRUE(tracker.full_rank());
  EXPECT_FALSE(tracker.try_add_ones({2}));
}

TEST(RankTracker, DetectsRationalDependence) {
  // Rows (1,1,0),(0,1,1),(1,0,1) are independent over the reals (det=2)
  // even though they are dependent over GF(2) — the tracker must work over
  // the reals.
  RankTracker tracker(3);
  EXPECT_TRUE(tracker.try_add_ones({0, 1}));
  EXPECT_TRUE(tracker.try_add_ones({1, 2}));
  EXPECT_TRUE(tracker.try_add_ones({0, 2}));
  EXPECT_TRUE(tracker.full_rank());
}

TEST(RankTracker, DenseRows) {
  RankTracker tracker(3);
  EXPECT_TRUE(tracker.try_add_dense({1.0, 2.0, 3.0}));
  EXPECT_TRUE(tracker.try_add_dense({0.0, 1.0, 1.0}));
  EXPECT_FALSE(tracker.try_add_dense({1.0, 3.0, 4.0}));  // row0 + row1
  EXPECT_EQ(tracker.rank(), 2u);
}

TEST(RankTracker, RejectsDuplicateIndices) {
  RankTracker tracker(3);
  EXPECT_THROW(tracker.try_add_ones({1, 1}), Error);
}

TEST(RankTracker, StaysUsableAfterRejectedInput) {
  // The sparse accumulator persists across calls; a throwing call
  // (duplicate or out-of-range index) must leave it clean so later
  // decisions are unaffected.
  RankTracker tracker(3);
  EXPECT_THROW(tracker.try_add_ones({0, 5}), Error);
  EXPECT_THROW(tracker.try_add_ones({1, 1}), Error);
  EXPECT_TRUE(tracker.try_add_ones({0}));
  EXPECT_TRUE(tracker.try_add_ones({1}));
  EXPECT_FALSE(tracker.try_add_ones({0, 1}));
  EXPECT_EQ(tracker.rank(), 2u);
}

TEST(RankTracker, MatchesQrRankOnRandomZeroOneRows) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t dim = 12;
    Matrix accepted_rows;
    RankTracker tracker(dim);
    Matrix all;
    for (int r = 0; r < 30; ++r) {
      Vector row(dim, 0.0);
      std::vector<std::size_t> ones;
      for (std::size_t j = 0; j < dim; ++j) {
        if (rng.bernoulli(0.3)) {
          row[j] = 1.0;
          ones.push_back(j);
        }
      }
      if (ones.empty()) continue;
      all.append_row(row);
      if (tracker.try_add_ones(ones)) {
        accepted_rows.append_row(row);
      }
    }
    // Tracker rank equals true matrix rank, and accepted rows really are
    // independent.
    EXPECT_EQ(tracker.rank(), QrDecomposition(all.transposed()).rank());
    if (accepted_rows.rows() > 0) {
      EXPECT_EQ(QrDecomposition(accepted_rows.transposed()).rank(),
                accepted_rows.rows());
    }
  }
}

// --------------------------------------------------------------- NNLS ----

TEST(Nnls, MatchesUnconstrainedWhenSolutionPositive) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const Vector b{1, 2, 3};
  const NnlsResult r = nnls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 2.0, 1e-8);
}

TEST(Nnls, ClampsNegativeComponents) {
  // Unconstrained solution of x = -1: NNLS must return 0.
  Matrix a{{1}};
  const NnlsResult r = nnls(a, {-1});
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
  EXPECT_NEAR(r.residual_norm, 1.0, 1e-12);
}

TEST(Nnls, RandomProblemsSatisfyKkt) {
  Rng rng(55);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m = 10, n = 6;
    Matrix a(m, n);
    Vector b(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
      b[i] = rng.uniform(-1, 1);
    }
    const NnlsResult r = nnls(a, b);
    ASSERT_TRUE(r.converged);
    const Vector grad = a.multiply_transposed(residual(a, r.x, b));
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(r.x[j], 0.0);
      if (r.x[j] > 1e-9) {
        EXPECT_NEAR(grad[j], 0.0, 1e-6);  // active variables: zero gradient
      } else {
        EXPECT_LE(grad[j], 1e-6);  // inactive: non-ascent direction
      }
    }
  }
}

// ------------------------------------------- updatable cholesky / NNLS ----

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a(n + 4, n);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t r = 0; r < a.rows(); ++r) g(i, j) += a(r, i) * a(r, j);
    }
    g(i, i) += 0.5;  // comfortably positive definite
  }
  return g;
}

TEST(UpdatableCholesky, AppendMatchesFullFactorization) {
  Rng rng(11);
  const std::size_t n = 8;
  const Matrix g = random_spd(n, rng);
  UpdatableCholesky chol;
  for (std::size_t k = 0; k < n; ++k) {
    Vector cross(k);
    for (std::size_t i = 0; i < k; ++i) cross[i] = g(i, k);
    ASSERT_TRUE(chol.append(cross, g(k, k)));
  }
  Vector rhs(n);
  for (auto& v : rhs) v = rng.uniform(-2, 2);
  const Vector incremental = chol.solve(rhs);
  const Vector direct = CholeskyDecomposition(g).solve(rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(incremental[i], direct[i], 1e-10);
  }
}

TEST(UpdatableCholesky, RemoveMatchesFactorOfSubmatrix) {
  Rng rng(12);
  const std::size_t n = 9;
  const Matrix g = random_spd(n, rng);
  for (const std::size_t drop : {std::size_t{0}, std::size_t{4},
                                 std::size_t{8}}) {
    UpdatableCholesky chol;
    for (std::size_t k = 0; k < n; ++k) {
      Vector cross(k);
      for (std::size_t i = 0; i < k; ++i) cross[i] = g(i, k);
      ASSERT_TRUE(chol.append(cross, g(k, k)));
    }
    chol.remove(drop);
    ASSERT_EQ(chol.size(), n - 1);

    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != drop) kept.push_back(i);
    }
    Matrix sub(n - 1, n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = 0; j + 1 < n; ++j) {
        sub(i, j) = g(kept[i], kept[j]);
      }
    }
    Vector rhs(n - 1);
    for (auto& v : rhs) v = rng.uniform(-2, 2);
    const Vector incremental = chol.solve(rhs);
    const Vector direct = CholeskyDecomposition(sub).solve(rhs);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      EXPECT_NEAR(incremental[i], direct[i], 1e-9) << "drop " << drop;
    }
  }
}

TEST(UpdatableCholesky, RejectsDependentColumnWithoutMutating) {
  UpdatableCholesky chol;
  ASSERT_TRUE(chol.append({}, 4.0));
  // A "column" proportional to the first: cross = 2 * 2, diag = 4.
  EXPECT_FALSE(chol.append({4.0}, 4.0));
  EXPECT_EQ(chol.size(), 1u);
  // Still usable afterwards: an independent column appends fine.
  EXPECT_TRUE(chol.append({0.0}, 9.0));
  const Vector z = chol.solve({4.0, 9.0});
  EXPECT_NEAR(z[0], 1.0, 1e-12);
  EXPECT_NEAR(z[1], 1.0, 1e-12);
}

TEST(Nnls, ModesAgreeOnDuplicateColumns) {
  // Columns 0 and 1 are identical; both engines must cope (reference via
  // rank-revealing QR, incremental via dependent-insert rejection) and
  // produce the same fit.
  Matrix a{{1, 1, 0}, {1, 1, 0}, {0, 0, 1}};
  const Vector b{3, 3, 4};
  NnlsOptions reference;
  reference.mode = NnlsMode::kReference;
  const NnlsResult ref = nnls(a, b, reference);
  const NnlsResult inc = nnls(a, b, NnlsOptions{});
  ASSERT_TRUE(ref.converged);
  ASSERT_TRUE(inc.converged);
  EXPECT_NEAR(ref.residual_norm, 0.0, 1e-9);
  EXPECT_NEAR(inc.residual_norm, 0.0, 1e-9);
  const Vector fit_ref = a.multiply(ref.x);
  const Vector fit_inc = a.multiply(inc.x);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(fit_inc[i], fit_ref[i], 1e-9);
  }
}

TEST(Nnls, NearCollinearColumnHitsRefactorizeFallback) {
  // Column 1 is column 0 plus a 1e-7 sliver orthogonal to it, and the rhs
  // has mass along the sliver: after fitting column 0 the sliver column
  // still shows a positive gradient, but its Schur complement against the
  // passive factor is ~1e-14 of its diagonal — numerically dependent. The
  // incremental engine must refuse the insert (after the refactorize
  // fallback double-checks), block the column, and still converge.
  Matrix a{{2, 1}, {0, 1e-7}};
  const Vector b{1, 10};
  const NnlsResult inc = nnls(a, b, NnlsOptions{});
  ASSERT_TRUE(inc.converged);
  EXPECT_GE(inc.refactorizations, 1u);
  for (double v : inc.x) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  // The blocked sliver column costs at most its own mass in fit quality.
  NnlsOptions reference;
  reference.mode = NnlsMode::kReference;
  const NnlsResult ref = nnls(a, b, reference);
  EXPECT_NEAR(inc.residual_norm, ref.residual_norm, 1e-3);
}

TEST(Nnls, ZeroRhsConvergesToZeroInBothModes) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const Vector b{0, 0, 0};
  for (const NnlsMode mode : {NnlsMode::kIncremental, NnlsMode::kReference}) {
    NnlsOptions options;
    options.mode = mode;
    const NnlsResult r = nnls(a, b, options);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.x, Vector({0.0, 0.0}));
    EXPECT_DOUBLE_EQ(r.residual_norm, 0.0);
  }
}

TEST(Nnls, IterationCapReportsNotConverged) {
  Rng rng(77);
  Matrix a(12, 8);
  Vector b(12);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.uniform(0, 1);
    b[i] = rng.uniform(0, 1);
  }
  for (const NnlsMode mode : {NnlsMode::kIncremental, NnlsMode::kReference}) {
    NnlsOptions options;
    options.mode = mode;
    options.max_iterations = 1;
    const NnlsResult r = nnls(a, b, options);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.iterations, 1u);
    for (double v : r.x) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
    }
  }
}

TEST(Nnls, IncrementalSatisfiesKktOnRandomProblems) {
  // The incremental engine's own KKT sweep (the historical test covers
  // whatever the default engine is; this pins the Gram path explicitly,
  // plus agreement with the reference engine's active set).
  Rng rng(56);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m = 12, n = 7;
    Matrix a(m, n);
    Vector b(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
      b[i] = rng.uniform(-1, 1);
    }
    const NnlsResult r = nnls_gram(make_gram(a, b), {});
    ASSERT_TRUE(r.converged);
    const Vector grad = a.multiply_transposed(residual(a, r.x, b));
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(r.x[j], 0.0);
      if (r.x[j] > 1e-9) {
        EXPECT_NEAR(grad[j], 0.0, 1e-6);
      } else {
        EXPECT_LE(grad[j], 1e-6);
      }
    }
    NnlsOptions reference;
    reference.mode = NnlsMode::kReference;
    const NnlsResult ref = nnls(a, b, reference);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(r.x[j], ref.x[j], 1e-8) << "trial " << trial;
    }
  }
}

// ------------------------------------------------------------ simplex ----

TEST(Simplex, SolvesBasicLp) {
  // min -x1 - 2x2 s.t. x1 + x2 + s = 4, x1 + 3x2 + t = 6 (as equalities
  // with explicit slacks).
  Matrix a{{1, 1, 1, 0}, {1, 3, 0, 1}};
  const Vector b{4, 6};
  const Vector c{-1, -2, 0, 0};
  const LpResult r = simplex_solve(a, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-8);  // x = (3, 1)
  EXPECT_NEAR(r.x[0], 3.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  // x1 = -1 with x1 >= 0 is infeasible.
  Matrix a{{1}};
  const LpResult r = simplex_solve(a, {-1}, {1});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x1 s.t. x1 - x2 = 0: increase both forever.
  Matrix a{{1, -1}};
  const LpResult r = simplex_solve(a, {0}, {-1, 0});
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, HandlesNegativeRhs) {
  // -x1 = -3 -> x1 = 3.
  Matrix a{{-1}};
  const LpResult r = simplex_solve(a, {-3}, {1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-8);
}

TEST(L1Regression, ExactFitWhenConsistent) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const Vector b{1, 2, 3};
  const L1Result r = l1_regression(a, b);
  ASSERT_TRUE(r.optimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], 2.0, 1e-6);
}

TEST(L1Regression, RobustToSingleOutlier) {
  // Five consistent equations x=2 and one outlier x=100: the L1 solution
  // sticks with the majority (the L2 solution would drift).
  Matrix a{{1}, {1}, {1}, {1}, {1}, {1}};
  const Vector b{2, 2, 2, 2, 2, 100};
  const L1Result r = l1_regression(a, b, 1e-9);
  ASSERT_TRUE(r.optimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(L1Regression, UnderdeterminedPrefersSparse) {
  // One equation, two unknowns: x0 + x1 = 1 — with the lambda tie-break,
  // mass concentrates instead of spreading.
  Matrix a{{1, 1}};
  const L1Result r = l1_regression(a, {1}, 1e-6);
  ASSERT_TRUE(r.optimal);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-6);
}

// --------------------------------------------------------------- IRLS ----

TEST(Irls, ApproximatesL1OnOutlierProblem) {
  Matrix a{{1}, {1}, {1}, {1}, {1}, {1}};
  const Vector b{2, 2, 2, 2, 2, 100};
  const IrlsResult r = irls_l1(a, b);
  EXPECT_NEAR(r.x[0], 2.0, 0.1);
}

TEST(Irls, ConsistentSystemExact) {
  Matrix a{{2, 0}, {0, 4}};
  const IrlsResult r = irls_l1(a, {2, 8});
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], 2.0, 1e-6);
}

// ------------------------------------------------------------ solvers ----

TEST(Solvers, KindParsingRoundTrip) {
  for (const auto kind :
       {SolverKind::kLeastSquares, SolverKind::kNnls, SolverKind::kL1Lp,
        SolverKind::kIrls}) {
    EXPECT_EQ(solver_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(solver_kind_from_string("bogus"), Error);
}

TEST(Solvers, AllKindsSolveConsistentLogSystem) {
  // x = (log 0.9, log 0.8, log 0.7); equations: x0+x1, x1+x2, x0+x2.
  const double x0 = std::log(0.9), x1 = std::log(0.8), x2 = std::log(0.7);
  Matrix a{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}};
  const Vector y{x0 + x1, x1 + x2, x0 + x2};
  for (const auto kind :
       {SolverKind::kLeastSquares, SolverKind::kNnls, SolverKind::kL1Lp,
        SolverKind::kIrls}) {
    const LogSystemSolution s = solve_log_system(a, y, kind);
    EXPECT_NEAR(s.x[0], x0, 1e-5) << to_string(kind);
    EXPECT_NEAR(s.x[1], x1, 1e-5) << to_string(kind);
    EXPECT_NEAR(s.x[2], x2, 1e-5) << to_string(kind);
  }
}

TEST(Solvers, SolutionsAreAlwaysNonPositive) {
  // Inconsistent noisy system: whatever the solver does, x must stay <= 0
  // (they are log-probabilities).
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const Vector y{0.5, -0.1, -0.2};  // note the positive (infeasible) entry
  for (const auto kind :
       {SolverKind::kLeastSquares, SolverKind::kNnls, SolverKind::kL1Lp,
        SolverKind::kIrls}) {
    const LogSystemSolution s = solve_log_system(a, y, kind);
    for (double v : s.x) {
      EXPECT_LE(v, 0.0) << to_string(kind);
    }
  }
}

TEST(Solvers, RejectsNonFiniteRhs) {
  Matrix a{{1}};
  EXPECT_THROW(
      solve_log_system(a, {std::numeric_limits<double>::quiet_NaN()}),
      Error);
}

// -------------------------------------------- windowed Gram pipeline ----

/// A random 0/1-support sparse system with owned index storage (what the
/// core equation harvest hands the solver, minus the harvest).
struct OwnedSparseSystem {
  std::vector<std::vector<std::size_t>> supports;
  SparseSystemView view;
};

OwnedSparseSystem random_sparse_system(std::size_t rows, std::size_t cols,
                                       std::uint64_t seed) {
  OwnedSparseSystem out;
  out.view.cols = cols;
  Rng rng(seed);
  out.supports.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::size_t> support;
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.uniform() < 0.3) support.push_back(j);
    }
    if (support.empty()) support.push_back(i % cols);
    out.supports.push_back(std::move(support));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    SparseRow row;
    row.support = out.supports[i].data();
    row.support_size = out.supports[i].size();
    row.value = 0.25 + rng.uniform();
    row.y = -rng.uniform();
    out.view.rows.push_back(row);
  }
  return out;
}

void expect_gram_bits_equal(const GramSystem& a, const GramSystem& b,
                            const std::string& what) {
  ASSERT_EQ(a.gram.rows(), b.gram.rows()) << what;
  for (std::size_t i = 0; i < a.gram.rows(); ++i) {
    for (std::size_t j = 0; j < a.gram.cols(); ++j) {
      ASSERT_EQ(a.gram(i, j), b.gram(i, j))
          << what << " gram(" << i << "," << j << ")";
    }
  }
  ASSERT_EQ(a.atb.size(), b.atb.size()) << what;
  for (std::size_t j = 0; j < a.atb.size(); ++j) {
    ASSERT_EQ(a.atb[j], b.atb[j]) << what << " atb[" << j << "]";
  }
  ASSERT_EQ(a.btb, b.btb) << what;
}

/// The streaming contract: accumulating any consecutive row partition —
/// window by window, into the same GramSystem — is *bitwise* equal to the
/// once-per-solve batch build, because every per-entry reduction runs in
/// ascending row order regardless of how the rows arrive.
TEST(Solvers, WindowedGramAccumulationIsBitwiseBatchEqual) {
  for (const std::uint64_t seed : {1ul, 2ul, 3ul}) {
    const OwnedSparseSystem sys = random_sparse_system(60, 17, seed);
    const GramSystem batch = sparse_gram(sys.view, 1);

    for (const std::size_t window : {1ul, 7ul, 13ul, 60ul, 100ul}) {
      GramSystem accumulated;
      for (std::size_t first = 0; first < sys.view.rows.size();
           first += window) {
        SparseSystemView chunk;
        chunk.cols = sys.view.cols;
        const std::size_t last =
            std::min(first + window, sys.view.rows.size());
        chunk.rows.assign(sys.view.rows.begin() + first,
                          sys.view.rows.begin() + last);
        accumulate_gram(accumulated, chunk, 1);
      }
      expect_gram_bits_equal(accumulated, batch,
                             "seed=" + std::to_string(seed) +
                                 " window=" + std::to_string(window));
    }
  }
}

TEST(Solvers, GramAccumulationIsJobsInvariant) {
  const OwnedSparseSystem sys = random_sparse_system(80, 23, 0x9e);
  const GramSystem serial = sparse_gram(sys.view, 1);
  const GramSystem parallel = sparse_gram(sys.view, 3);
  expect_gram_bits_equal(serial, parallel, "jobs 1 vs 3");
}

/// refresh_gram_rhs rebuilds only atb/btb (the per-window right-hand
/// side) and must restore the exact accumulate_gram bits while leaving
/// the reused G = A^T A untouched.
TEST(Solvers, RefreshGramRhsRestoresExactBits) {
  const OwnedSparseSystem sys = random_sparse_system(40, 11, 0x42);
  const GramSystem batch = sparse_gram(sys.view, 1);

  GramSystem scribbled = batch;
  for (std::size_t j = 0; j < scribbled.atb.size(); ++j) {
    scribbled.atb[j] = 1e9 + static_cast<double>(j);
  }
  scribbled.btb = -1.0;
  refresh_gram_rhs(scribbled, sys.view, 1);
  expect_gram_bits_equal(scribbled, batch, "refreshed rhs");
}

}  // namespace
}  // namespace tomo::linalg
