#include <gtest/gtest.h>

#include "graph/coverage.hpp"
#include "graph/transform.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::graph {
namespace {

TEST(RequirePartition, AcceptsExactCover) {
  auto sys = tomo::testing::figure_1a();
  EXPECT_NO_THROW(require_partition(sys.graph, sys.sets.partition()));
}

TEST(RequirePartition, RejectsMissingAndDuplicateLinks) {
  auto sys = tomo::testing::figure_1a();
  LinkPartition missing{{0, 1}, {2}};  // link 3 missing
  EXPECT_THROW(require_partition(sys.graph, missing), Error);
  LinkPartition dup{{0, 1}, {1, 2}, {3}};
  EXPECT_THROW(require_partition(sys.graph, dup), Error);
  LinkPartition empty_cell{{0, 1, 2, 3}, {}};
  EXPECT_THROW(require_partition(sys.graph, empty_cell), Error);
}

TEST(Merge, Figure1aIsAlreadyIdentifiable) {
  // In Figure 1(a) node b has ingress {e1,e2} (one set) but egress {e3,e4}
  // in two different sets, so nothing merges.
  auto sys = tomo::testing::figure_1a();
  const MergeResult r =
      merge_indistinguishable(sys.graph, sys.paths, sys.sets.partition());
  EXPECT_EQ(r.merge_rounds, 0u);
  EXPECT_EQ(r.graph.link_count(), 4u);
  EXPECT_EQ(r.paths.size(), 3u);
}

TEST(Merge, Figure1bMergesThroughTheMiddleNode) {
  // The paper's §3.3 example: node b (all ingress in {e1,e2}, all egress in
  // {e3}) is removed; the two paths collapse to single merged links and the
  // two correlation sets fuse into one set of two merged links.
  auto sys = tomo::testing::figure_1b();
  const MergeResult r =
      merge_indistinguishable(sys.graph, sys.paths, sys.sets.partition());
  EXPECT_EQ(r.merge_rounds, 1u);
  EXPECT_EQ(r.graph.link_count(), 2u);
  ASSERT_EQ(r.paths.size(), 2u);
  EXPECT_EQ(r.paths[0].length(), 1u);
  EXPECT_EQ(r.paths[1].length(), 1u);
  ASSERT_EQ(r.partition.size(), 1u);
  EXPECT_EQ(r.partition[0].size(), 2u);
  // Each merged link is composed of one original ingress + e3.
  ASSERT_EQ(r.composition.size(), 2u);
  EXPECT_EQ(r.composition[0].size(), 2u);
  EXPECT_EQ(r.composition[1].size(), 2u);
}

TEST(Merge, MergedTopologyPreservesEndpoints) {
  auto sys = tomo::testing::figure_1b();
  const MergeResult r =
      merge_indistinguishable(sys.graph, sys.paths, sys.sets.partition());
  for (std::size_t p = 0; p < sys.paths.size(); ++p) {
    EXPECT_EQ(r.paths[p].source(), sys.paths[p].source());
    EXPECT_EQ(r.paths[p].destination(), sys.paths[p].destination());
  }
}

TEST(Merge, AllLinksOneSetCollapsesToPathLinks) {
  // Paper §3.3: if every link of Figure 1(a) is in one correlation set,
  // the transformation ends with one merged link per end-to-end path.
  auto sys = tomo::testing::figure_1a();
  LinkPartition one_set{{0, 1, 2, 3}};
  const MergeResult r =
      merge_indistinguishable(sys.graph, sys.paths, one_set);
  EXPECT_EQ(r.graph.link_count(), 3u);  // one merged link per path
  for (const Path& p : r.paths) {
    EXPECT_EQ(p.length(), 1u);
  }
  ASSERT_EQ(r.partition.size(), 1u);
  EXPECT_EQ(r.partition[0].size(), 3u);
}

TEST(Merge, ResultSatisfiesStructuralCriterion) {
  // After merging to fixpoint, no intermediate node may still have all
  // ingress in one cell and all egress in one cell.
  auto sys = tomo::testing::figure_1b();
  const MergeResult r =
      merge_indistinguishable(sys.graph, sys.paths, sys.sets.partition());
  const CoverageIndex cov(r.graph, r.paths);
  // All merged links covered by paths.
  EXPECT_TRUE(cov.all_links_covered());
}

TEST(Merge, CompositionPartitionsOriginalLinks) {
  auto sys = tomo::testing::figure_1b();
  const MergeResult r =
      merge_indistinguishable(sys.graph, sys.paths, sys.sets.partition());
  std::vector<int> seen(sys.graph.link_count(), 0);
  for (const auto& comp : r.composition) {
    for (LinkId original : comp) {
      ASSERT_LT(original, seen.size());
      ++seen[original];
    }
  }
  // e3 (id 2) is traversed by both paths so it appears in both merged
  // links; e1 and e2 appear exactly once.
  EXPECT_EQ(seen[0], 1);
  EXPECT_EQ(seen[1], 1);
  EXPECT_EQ(seen[2], 2);
}

}  // namespace
}  // namespace tomo::graph
