#include <gtest/gtest.h>

#include "core/localization.hpp"
#include "core/theorem_algorithm.hpp"
#include "corr/model_factory.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;
using tomo::testing::figure_1a_model;

// ------------------------------------------------------------- domain ----

TEST(LocalizationDomain, GoodPathsCertifyLinks) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  // Only P1 = {e1,e3} congested: P2,P3 good certify e2,e3,e4 good.
  const LocalizationDomain domain = build_domain(cov, {0});
  EXPECT_FALSE(domain.forced_good[0]);
  EXPECT_TRUE(domain.forced_good[1]);
  EXPECT_TRUE(domain.forced_good[2]);
  EXPECT_TRUE(domain.forced_good[3]);
  ASSERT_EQ(domain.candidates.size(), 1u);
  EXPECT_EQ(domain.candidates[0], (std::vector<graph::LinkId>{0}));
}

TEST(LocalizationDomain, AllCongestedLeavesEverythingOpen) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const LocalizationDomain domain = build_domain(cov, {0, 1, 2});
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_FALSE(domain.forced_good[e]);
  }
}

TEST(LocalizationDomain, RejectsBadPathIds) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  EXPECT_THROW(build_domain(cov, {17}), Error);
}

// ------------------------------------------------------- smallest set ----

TEST(SmallestSet, UniqueExplanationFound) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  // Only P1 congested => e1 is the only possible culprit.
  const LocalizationResult r = localize_smallest_set(cov, {0});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.congested_links, (std::vector<graph::LinkId>{0}));
}

TEST(SmallestSet, PrefersSharedLink) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  // P1 and P2 congested, P3 good: e3 alone explains both (e1+e2 would be
  // two links, and e2 is certified good by P3 anyway).
  const LocalizationResult r = localize_smallest_set(cov, {0, 1});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.congested_links, (std::vector<graph::LinkId>{2}));
}

TEST(SmallestSet, EmptyObservationMeansNoCongestion) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const LocalizationResult r = localize_smallest_set(cov, {});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.congested_links.empty());
}

TEST(SmallestSet, DetectsInfeasibleObservation) {
  // Two paths over the same single link: one congested, one good is a
  // contradiction under Assumption 2.
  graph::Graph g;
  const auto a = g.add_node(), b = g.add_node();
  const auto e = g.add_link(a, b);
  std::vector<graph::Path> paths;
  paths.emplace_back(g, std::vector<graph::LinkId>{e});
  paths.emplace_back(g, std::vector<graph::LinkId>{e});
  const graph::CoverageIndex cov(g, paths);
  const LocalizationResult r = localize_smallest_set(cov, {0});
  EXPECT_FALSE(r.feasible);
}

// --------------------------------------------------------- greedy MAP ----

TEST(GreedyMap, ProbabilitiesBreakTies) {
  // Two parallel candidate links for a single congested path: MAP picks
  // the one with the higher congestion probability.
  graph::Graph g;
  const auto a = g.add_node(), b = g.add_node(), c = g.add_node();
  const auto e1 = g.add_link(a, b), e2 = g.add_link(b, c);
  std::vector<graph::Path> paths;
  paths.emplace_back(g, std::vector<graph::LinkId>{e1, e2});
  const graph::CoverageIndex cov(g, paths);
  {
    const auto r = localize_greedy_map(cov, {0}, {0.6, 0.1});
    EXPECT_EQ(r.congested_links, (std::vector<graph::LinkId>{e1}));
  }
  {
    const auto r = localize_greedy_map(cov, {0}, {0.1, 0.6});
    EXPECT_EQ(r.congested_links, (std::vector<graph::LinkId>{e2}));
  }
}

TEST(GreedyMap, HighProbabilityLinksAreIncluded) {
  // P1 and P2 congested; e1 has probability 0.9 (log-odds positive), so
  // the MAP includes it even though e3 alone would cover both paths: under
  // independence, P(e1 congested) = 0.9 makes {e1, e3} likelier than {e3}.
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const auto r = localize_greedy_map(cov, {0, 1}, {0.9, 0.0, 0.05, 0.0});
  EXPECT_EQ(r.congested_links, (std::vector<graph::LinkId>{0, 2}));
}

TEST(GreedyMap, LowProbabilityPrefersSharedExplanation) {
  // Same observation, but all probabilities low: the shared link e3 with
  // the better cost/coverage ratio explains both paths alone.
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const auto r = localize_greedy_map(cov, {0, 1}, {0.1, 0.0, 0.2, 0.0});
  EXPECT_EQ(r.congested_links, (std::vector<graph::LinkId>{2}));
}

TEST(GreedyMap, HandlesZeroProbabilityEstimates) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  // All estimates zero: clamping still lets the algorithm explain.
  const auto r = localize_greedy_map(cov, {0}, {0.0, 0.0, 0.0, 0.0});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.congested_links, (std::vector<graph::LinkId>{0}));
}

TEST(GreedyMap, ValidatesProbabilityVector) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  EXPECT_THROW(localize_greedy_map(cov, {0}, {0.5}), Error);
}

// ---------------------------------------------------------- exact MAP ----

TEST(ExactMap, UsesCorrelationInformation) {
  // Figure 1(a) with all paths congested. Feasible explanations include
  // {e1,e2}, {e1 or e3, e2 or e4} combinations... With the strong joint
  // P(e1,e2)=0.2, the MAP should favour explanations consistent with the
  // correlated pair over independent coincidences.
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const TheoremResult probs = run_theorem_algorithm(cov, sys.sets, oracle);
  const LocalizationResult r =
      localize_exact_map(cov, sys.sets, probs, {0, 1, 2});
  EXPECT_TRUE(r.feasible);
  // The chosen explanation must be feasible: cover all three paths.
  graph::PathIdSet covered = cov.covered_paths(r.congested_links);
  EXPECT_EQ(covered, (graph::PathIdSet{0, 1, 2}));
  // And it must be the global optimum: enumerate all link subsets and
  // check none has higher probability.
  auto state_prob = [&](std::uint32_t mask) {
    double prob = 1.0;
    // set 0 = {e1,e2} bits 0,1; set 1 = {e3} bit 2; set 2 = {e4} bit 3.
    prob *= probs.state_prob[0][mask & 3];
    prob *= probs.state_prob[1][(mask >> 2) & 1];
    prob *= probs.state_prob[2][(mask >> 3) & 1];
    return prob;
  };
  std::uint32_t chosen_mask = 0;
  for (graph::LinkId e : r.congested_links) chosen_mask |= 1u << e;
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    std::vector<graph::LinkId> links;
    for (graph::LinkId e = 0; e < 4; ++e) {
      if (mask & (1u << e)) links.push_back(e);
    }
    if (cov.covered_paths(links) != (graph::PathIdSet{0, 1, 2})) continue;
    EXPECT_LE(state_prob(mask), state_prob(chosen_mask) + 1e-12)
        << "mask " << mask;
  }
}

TEST(ExactMap, MatchesTruthOnUnambiguousSnapshots) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const TheoremResult probs = run_theorem_algorithm(cov, sys.sets, oracle);
  // Only P3 congested: e4 is the only feasible culprit (e2 would congest
  // P2 as well).
  const LocalizationResult r =
      localize_exact_map(cov, sys.sets, probs, {2});
  EXPECT_EQ(r.congested_links, (std::vector<graph::LinkId>{3}));
}

TEST(ExactMap, GuardsProblemSize) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const TheoremResult probs = run_theorem_algorithm(cov, sys.sets, oracle);
  EXPECT_THROW(localize_exact_map(cov, sys.sets, probs, {0}, 2), Error);
}

// -------------------------------------------------------------- score ----

TEST(LocalizationScoreTest, CountsCorrectly) {
  const std::vector<std::uint8_t> truth{1, 0, 1, 0};
  const LocalizationScore s = score_localization(truth, {0, 1});
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(s.detection_rate(), 0.5);
  EXPECT_DOUBLE_EQ(s.false_positive_rate(), 0.5);
}

TEST(LocalizationScoreTest, DegenerateCases) {
  const LocalizationScore none =
      score_localization({0, 0}, std::vector<graph::LinkId>{});
  EXPECT_DOUBLE_EQ(none.detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(none.false_positive_rate(), 0.0);
}

TEST(LocalizationEndToEnd, MapBeatsSmallestSetOnCorrelatedSnapshots) {
  // Simulate many snapshots of the correlated Figure 1(a) model and
  // compare cumulative detection of exact MAP vs smallest-set. When e1,e2
  // congest together (probability 0.2), smallest-set prefers the
  // single-link explanation {e3} for pattern {P1,P2}; the probability-
  // aware MAP knows the correlated pair is likelier.
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const TheoremResult probs = run_theorem_algorithm(cov, sys.sets, oracle);

  Rng rng(99);
  std::size_t map_correct = 0, smallest_correct = 0, snapshots = 0;
  for (int n = 0; n < 400; ++n) {
    const auto state = model->sample(rng);
    graph::PathIdSet congested;
    for (graph::PathId p = 0; p < sys.paths.size(); ++p) {
      for (graph::LinkId e : sys.paths[p].links()) {
        if (state[e]) {
          congested.push_back(p);
          break;
        }
      }
    }
    ++snapshots;
    std::vector<graph::LinkId> truth_links;
    for (graph::LinkId e = 0; e < 4; ++e) {
      if (state[e]) truth_links.push_back(e);
    }
    const auto map_r = localize_exact_map(cov, sys.sets, probs, congested);
    const auto ss_r = localize_smallest_set(cov, congested);
    map_correct += (map_r.congested_links == truth_links) ? 1 : 0;
    smallest_correct += (ss_r.congested_links == truth_links) ? 1 : 0;
  }
  EXPECT_GE(map_correct, smallest_correct);
  EXPECT_GT(static_cast<double>(map_correct) /
                static_cast<double>(snapshots),
            0.6);
}

}  // namespace
}  // namespace tomo::core
