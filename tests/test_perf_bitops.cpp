// Perf-regression smoke for the bit-transposed bootstrap resample (ctest
// label: "perf").
//
// Resamples a registry-realistic block (waxman-full scale: hundreds of
// paths x 2000 snapshots) 200 times through one hoisted ResampleScratch
// and times the loop against a committed wall-clock budget. The budget is
// generous — CI containers are noisy and the same constant must hold
// across Debug/Release — so this is a tripwire against *gross*
// regressions: reintroducing the per-bit gather (~paths x snapshots bit
// extractions per replicate) or dropping the scratch's cached transpose
// lands well outside it. Bit-exactness of the rewritten resample is
// enforced by the differential suite (test_bitops.cpp); the
// scalar-vs-SIMD kernel cost split is tracked by BENCH_micro_bitops.json.
#include <gtest/gtest.h>

#include <iostream>
#include <vector>

#include "sim/measurement_block.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace tomo::sim {
namespace {

#if defined(__SANITIZE_ADDRESS__)
#define TOMO_PERF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TOMO_PERF_SANITIZED 1
#endif
#endif

#ifdef TOMO_PERF_SANITIZED
constexpr double kBudgetSeconds = 8.0;
#else
constexpr double kBudgetSeconds = 2.0;
#endif
constexpr std::size_t kPaths = 400;
constexpr std::size_t kSnapshots = 2000;
constexpr std::size_t kReplicates = 200;

TEST(PerfBitops, ResampleStaysWithinBudgetAtPaperScale) {
  Rng rng(0xb175);
  MeasurementBlock block;
  block.path_count = kPaths;
  block.snapshot_count = kSnapshots;
  block.good_bits.resize(kPaths * block.words_per_path());
  for (std::uint64_t& w : block.good_bits) w = rng();
  for (PathId p = 0; p < kPaths; ++p) {
    block.good_row(p)[block.words_per_path() - 1] &=
        block.word_mask(block.words_per_path() - 1);
  }
  block.recount();

  ResampleScratch scratch;
  std::vector<std::uint32_t> picks(kSnapshots);
  std::size_t checksum = 0;
  const Stopwatch timer;
  for (std::size_t r = 0; r < kReplicates; ++r) {
    for (std::uint32_t& pick : picks) {
      pick = static_cast<std::uint32_t>(rng.below(kSnapshots));
    }
    const MeasurementBlock replicate = block.resample(picks, scratch);
    checksum += replicate.good_counts[r % kPaths];
  }
  const double seconds = timer.seconds();

  EXPECT_GT(checksum, 0u);
  EXPECT_LT(seconds, kBudgetSeconds)
      << "bit-transposed resample regressed: " << seconds << " s for "
      << kReplicates << " replicates at " << kPaths << " paths x "
      << kSnapshots << " snapshots (budget " << kBudgetSeconds << " s)";
  // Telemetry for the CI log; not an assertion.
  std::cout << "[perf] resample (" << util::bitops::active().name
            << " kernels): " << seconds << " s / " << kReplicates
            << " replicates\n";
}

}  // namespace
}  // namespace tomo::sim
