// Perf-regression smoke for the batched snapshot simulator (ctest label:
// "perf").
//
// Simulates the registry's heaviest entry (waxman-full at paper scale:
// 2000 snapshots x 4000 packets/path) with the block-batched engine and
// times the simulation stage alone against a committed wall-clock budget.
// The budget is generous — CI containers are noisy and the same constant
// must hold across Debug/Release — so this is a tripwire against *gross*
// regressions: anything that reintroduces per-packet Bernoulli draws,
// per-snapshot allocation, or a serial bottleneck in the block fan-out
// lands well outside it. For scale: the batched engine runs one round in
// ~0.08 s Release on one core (the legacy kBinomial engine takes ~1.5x
// longer and re-packs at measurement construction; kPerPacket draws all
// 4000 Bernoullis per path). Bit-exactness of the batched engine is
// enforced by the differential suite (test_sim_fast.cpp); relative cost
// is tracked by bench/micro_sim.cpp and the *_sim_seconds telemetry.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"

namespace tomo::sim {
namespace {

#if defined(__SANITIZE_ADDRESS__)
#define TOMO_PERF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TOMO_PERF_SANITIZED 1
#endif
#endif

// Committed budget for kRounds batched simulations at paper scale.
#ifdef TOMO_PERF_SANITIZED
constexpr double kBudgetSeconds = 20.0;
#else
constexpr double kBudgetSeconds = 5.0;
#endif
constexpr int kRounds = 3;

TEST(PerfSim, WaxmanFullBatchedSimulationStaysWithinBudget) {
  core::ScenarioConfig config =
      core::ScenarioCatalog::instance().at("waxman-full").config;
  config.seed = 42;
  const core::ScenarioInstance inst = core::build_scenario(config);
  ASSERT_GE(inst.paths.size(), 300u)
      << "waxman-full lost its paper-scale path density";

  SimulatorConfig sc;
  sc.snapshots = 2000;
  sc.packets_per_path = 4000;
  sc.mode = PacketMode::kBatched;
  sc.seed = 7;

  std::size_t sink = 0;
  const Stopwatch timer;
  for (int round = 0; round < kRounds; ++round) {
    const auto result =
        simulate(inst.graph, inst.paths, *inst.truth, sc);
    sink += result.measurement.good_counts.empty()
                ? 0
                : result.measurement.good_counts.front();
  }
  const double seconds = timer.seconds();
  EXPECT_LT(seconds, kBudgetSeconds)
      << "batched simulation regressed: " << seconds << " s for "
      << kRounds << " rounds at " << inst.paths.size() << " paths x "
      << sc.snapshots << " snapshots (budget " << kBudgetSeconds << " s)";
  // Telemetry for the CI log; not an assertion. The sink defeats
  // dead-code elimination of the simulation loop.
  std::cout << "[perf] waxman-full batched sim: " << seconds << " s / "
            << kRounds << " rounds, " << inst.paths.size() << " paths ("
            << sink << ")\n";
}

}  // namespace
}  // namespace tomo::sim
