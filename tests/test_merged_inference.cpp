// Direct edge-case tests for the §3.3 merged-link inference pipeline
// (core::infer_on_merged). The happy paths are covered indirectly by
// test_transform.cpp / test_merged_bootstrap.cpp; this suite pins the
// degenerate shapes: every link fusing into a single merged link, serial
// chains under singleton sets, single-path systems, and rank-deficient
// measurements that leave merged links unconstrained.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/merged_inference.hpp"
#include "corr/joint_table.hpp"
#include "corr/model_factory.hpp"
#include "graph/coverage.hpp"
#include "sim/oracle.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;
using tomo::testing::figure_1a_model;

/// A single path over a serial chain of `links` links (a -> b -> c -> ...).
tomo::testing::ToySystem chain_system(std::size_t links,
                                      bool one_correlation_set) {
  tomo::testing::ToySystem sys;
  graph::NodeId prev = sys.graph.add_node("n0");
  std::vector<graph::LinkId> chain;
  for (std::size_t i = 0; i < links; ++i) {
    const graph::NodeId next =
        sys.graph.add_node("n" + std::to_string(i + 1));
    chain.push_back(sys.graph.add_link(prev, next));
    prev = next;
  }
  sys.paths.emplace_back(sys.graph, chain);
  if (one_correlation_set) {
    sys.sets = corr::CorrelationSets(links, {chain});
  } else {
    sys.sets = corr::CorrelationSets::singletons(links);
  }
  return sys;
}

TEST(MergedInference, AllLinksMergeIntoOne) {
  // One path over a 4-link chain, all links in one correlation set: every
  // intermediate node trips the §3.3 criterion and the entire chain
  // collapses into a single merged link.
  auto sys = chain_system(4, /*one_correlation_set=*/true);
  auto model = corr::make_independent({0.1, 0.05, 0.2, 0.15});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);

  const MergedInferenceResult r =
      infer_on_merged(sys.graph, sys.paths, sys.sets, oracle);
  ASSERT_EQ(r.transform.graph.link_count(), 1u);
  ASSERT_EQ(r.transform.composition.size(), 1u);
  EXPECT_EQ(r.transform.composition[0].size(), 4u);
  // The merged link is congested iff the path is; the oracle makes that
  // exact: 1 - prod(1 - p_i).
  const double path_congested = 1.0 - oracle.good_prob(0);
  EXPECT_NEAR(r.inference.congestion_prob[0], path_congested, 1e-6);
  // Projection: every original link inherits the merged probability.
  ASSERT_EQ(r.original_link_prob.size(), 4u);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_EQ(r.merged_of[e], 0u);
    EXPECT_NEAR(r.original_link_prob[e], path_congested, 1e-6);
  }
}

TEST(MergedInference, SingletonSetsStillMergeSerialChains) {
  // Serial links are indistinguishable no matter the declared correlation:
  // with singleton sets each intermediate node still has its whole ingress
  // (one link) in one cell and its whole egress in one cell.
  auto sys = chain_system(3, /*one_correlation_set=*/false);
  auto model = corr::make_independent({0.1, 0.2, 0.05});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);

  const MergedInferenceResult r =
      infer_on_merged(sys.graph, sys.paths, sys.sets, oracle);
  EXPECT_GE(r.transform.merge_rounds, 1u);
  ASSERT_EQ(r.transform.graph.link_count(), 1u);
  EXPECT_NEAR(r.original_link_prob[1], 1.0 - oracle.good_prob(0), 1e-6);
}

TEST(MergedInference, SingletonSetsAreNoOpOnBranchingTopology) {
  // Figure 1(a) under singleton sets: node b's ingress spans two cells, so
  // nothing merges and the pipeline degenerates to plain inference on the
  // original links.
  auto sys = figure_1a();
  const corr::CorrelationSets singles = corr::CorrelationSets::singletons(4);
  auto model = corr::make_independent({0.3, 0.25, 0.15, 0.4});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);

  const MergedInferenceResult r =
      infer_on_merged(sys.graph, sys.paths, singles, oracle);
  EXPECT_EQ(r.transform.merge_rounds, 0u);
  ASSERT_EQ(r.transform.graph.link_count(), 4u);
  for (graph::LinkId e = 0; e < 4; ++e) {
    ASSERT_EQ(r.transform.composition[e].size(), 1u);
    // Ids survive 1:1: each original link is its merged link's sole member.
    EXPECT_EQ(r.transform.composition[r.merged_of[e]][0], e);
    EXPECT_NEAR(r.original_link_prob[e], model->marginal(e), 1e-5);
  }
}

TEST(MergedInference, SinglePathSystemIsOneEquation) {
  // Degenerate shard shape: a single path. The merged system has exactly
  // one link and one (single-path) equation; no pair harvest exists.
  auto sys = chain_system(2, /*one_correlation_set=*/true);
  auto model = corr::make_independent({0.12, 0.08});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);

  const MergedInferenceResult r =
      infer_on_merged(sys.graph, sys.paths, sys.sets, oracle);
  ASSERT_EQ(r.transform.graph.link_count(), 1u);
  EXPECT_EQ(r.inference.system.n2, 0u) << "no pair equations on one path";
  EXPECT_EQ(r.inference.system.rank, 1u);
  EXPECT_NEAR(r.original_link_prob[0], 1.0 - oracle.good_prob(0), 1e-6);
}

TEST(MergedInference, RankDeficientMeasurementLeavesLinkUnconstrained) {
  // e4 congested with probability 1: path P3 is never good, so every
  // equation touching it is unusable and the system goes rank-deficient.
  // The pipeline must not throw. Per-link recovery on the surviving links
  // is no longer identifiable (only P1/P2 remain, and the {e1,e2} set term
  // absorbs the pair equation), but the fitted solution must still
  // reproduce the usable path observables exactly, and the link with no
  // usable evidence must settle at the solver's zero, not garbage.
  auto sys = figure_1a();
  corr::SetDistribution d0;  // {e1,e2}
  d0.prob = {0.65, 0.10, 0.05, 0.20};
  corr::SetDistribution d1;  // {e3}
  d1.prob = {0.85, 0.15};
  corr::SetDistribution d2;  // {e4}: always congested
  d2.prob = {0.0, 1.0};
  const corr::JointTableModel model(
      sys.sets, std::vector<corr::SetDistribution>{d0, d1, d2});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(model, cov);
  ASSERT_EQ(oracle.good_prob(2), 0.0) << "P3 must be always congested";

  const MergedInferenceResult r =
      infer_on_merged(sys.graph, sys.paths, sys.sets, oracle);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_GE(r.original_link_prob[e], 0.0);
    EXPECT_LE(r.original_link_prob[e], 1.0);
  }
  // The usable single-path equations are consistent (the truth satisfies
  // them), so the NNLS fit is zero-residual: the estimated good
  // probability of P1 and P2 matches the oracle exactly.
  const auto fitted_good = [&](std::size_t path) {
    double good = 1.0;
    for (graph::LinkId e : sys.paths[path].links()) {
      good *= 1.0 - r.original_link_prob[e];
    }
    return good;
  };
  EXPECT_NEAR(fitted_good(0), oracle.good_prob(0), 1e-5);
  EXPECT_NEAR(fitted_good(1), oracle.good_prob(1), 1e-5);
  // The unconstrained column cannot be estimated; it reports 0 (no
  // evidence of congestion in the solvable subsystem), not garbage.
  EXPECT_EQ(r.inference.congestion_prob[3], 0.0);
}

TEST(MergedInference, RejectsMismatchedPartition) {
  auto sys = chain_system(3, true);
  const corr::CorrelationSets wrong = corr::CorrelationSets::singletons(2);
  auto model = corr::make_independent({0.1, 0.1, 0.1});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  EXPECT_THROW(infer_on_merged(sys.graph, sys.paths, wrong, oracle), Error);
}

}  // namespace
}  // namespace tomo::core
