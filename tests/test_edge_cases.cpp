// Edge-case and contract tests across modules: the inputs a careless (or
// adversarial) caller will eventually produce.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/equations.hpp"
#include "core/scenario.hpp"
#include "corr/correlation.hpp"
#include "graph/coverage.hpp"
#include "graph/routing.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "linalg/simplex.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo {
namespace {

// -------------------------------------------------------------- linalg ----

TEST(LinalgEdge, WideLeastSquaresReturnsConsistentSolution) {
  // Underdetermined (2 equations, 4 unknowns): the basic solution must
  // still satisfy the system exactly.
  linalg::Matrix a{{1, 0, 1, 0}, {0, 1, 0, 1}};
  const linalg::Vector x = linalg::least_squares(a, {2, 3});
  const linalg::Vector ax = a.multiply(x);
  EXPECT_NEAR(ax[0], 2.0, 1e-10);
  EXPECT_NEAR(ax[1], 3.0, 1e-10);
}

TEST(LinalgEdge, ZeroMatrixLeastSquares) {
  linalg::Matrix a(3, 2);  // all zeros
  const linalg::Vector x = linalg::least_squares(a, {1, 1, 1});
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(LinalgEdge, NnlsZeroRhsGivesZero) {
  linalg::Matrix a{{1, 2}, {3, 4}};
  const linalg::NnlsResult r = linalg::nnls(a, {0, 0});
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
  EXPECT_DOUBLE_EQ(r.x[1], 0.0);
  EXPECT_TRUE(r.converged);
}

TEST(LinalgEdge, SimplexDegenerateRhs) {
  // b = 0: the optimum is 0 at x = 0 (degenerate but must not cycle).
  linalg::Matrix a{{1, 1}};
  const linalg::LpResult r = linalg::simplex_solve(a, {0}, {1, 1});
  ASSERT_EQ(r.status, linalg::LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(LinalgEdge, L1RegressionOnSingleRow) {
  linalg::Matrix a{{2}};
  const linalg::L1Result r = linalg::l1_regression(a, {4});
  ASSERT_TRUE(r.optimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
}

TEST(LinalgEdge, MatrixSizeMismatchesThrow) {
  linalg::Matrix a{{1, 2}};
  EXPECT_THROW(a.multiply({1, 2, 3}), Error);
  EXPECT_THROW(a.multiply_transposed({1, 2}), Error);
  EXPECT_THROW(linalg::dot({1}, {1, 2}), Error);
  EXPECT_THROW(linalg::axpy({1}, 2.0, {1, 2}), Error);
}

// ----------------------------------------------------------------- rng ----

TEST(RngEdge, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngEdge, SplitStreamsAreDecorrelated) {
  Rng parent(42);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (parent() == child()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngEdge, SampleZeroElements) {
  Rng rng(1);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
  EXPECT_TRUE(rng.sample_without_replacement(0, 0).empty());
}

// --------------------------------------------------------------- graph ----

TEST(GraphEdge, CoverageOfEmptyLinkSet) {
  auto sys = tomo::testing::figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  EXPECT_TRUE(cov.covered_paths({}).empty());
}

TEST(GraphEdge, MeshPathsAreDeterministic) {
  auto run = [] {
    graph::Graph g;
    std::vector<graph::NodeId> n;
    for (int i = 0; i < 6; ++i) n.push_back(g.add_node());
    for (int i = 0; i < 5; ++i) {
      g.add_link(n[i], n[i + 1]);
      g.add_link(n[i + 1], n[i]);
    }
    return graph::mesh_paths(g, {n[0], n[3], n[5]});
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].links(), b[i].links());
  }
}

TEST(GraphEdge, SingleLinkPath) {
  graph::Graph g;
  const auto a = g.add_node(), b = g.add_node();
  const auto e = g.add_link(a, b);
  const graph::Path p(g, {e});
  EXPECT_EQ(p.length(), 1u);
  EXPECT_EQ(p.source(), a);
  EXPECT_EQ(p.destination(), b);
}

// ---------------------------------------------------------------- corr ----

TEST(CorrEdge, SubsetEnumerationCountFormula) {
  // |C-tilde| = sum over sets of (2^|Cp| - 1).
  corr::CorrelationSets sets(6, {{0, 1, 2}, {3, 4}, {5}});
  const auto subsets = corr::enumerate_correlation_subsets(sets);
  EXPECT_EQ(subsets.size(), (8u - 1) + (4u - 1) + (2u - 1));
}

TEST(CorrEdge, DefaultConstructedSetsAreEmpty) {
  corr::CorrelationSets sets;
  EXPECT_EQ(sets.link_count(), 0u);
  EXPECT_EQ(sets.set_count(), 0u);
}

TEST(CorrEdge, SetStateProbSumsToOne) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  for (std::size_t s = 0; s < sys.sets.set_count(); ++s) {
    const auto& members = sys.sets.set(s);
    double total = 0.0;
    const std::size_t states = std::size_t{1} << members.size();
    for (std::size_t mask = 0; mask < states; ++mask) {
      std::vector<graph::LinkId> subset;
      for (std::size_t bit = 0; bit < members.size(); ++bit) {
        if (mask & (std::size_t{1} << bit)) subset.push_back(members[bit]);
      }
      total += model->set_state_prob(s, subset);
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "set " << s;
  }
}

// ----------------------------------------------------------- equations ----

TEST(EquationsEdge, RedundantBudgetIsHonoured) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  core::EquationBuildOptions opts;
  opts.include_redundant = true;
  opts.max_pair_equations = 1;
  const auto eq = core::build_equations(cov, sys.sets, oracle, opts);
  EXPECT_LE(eq.n2, 1u + 0u);  // budget 1 (plus rank-increasing continuation
                              // would still count toward n2; here rank is
                              // already full after one pair)
}

TEST(EquationsEdge, MinGoodSnapshotsFiltersThinEstimates) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  sim::SimulatorConfig config;
  config.snapshots = 100;
  config.mode = sim::PacketMode::kExact;
  config.seed = 3;
  const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
  const sim::EmpiricalMeasurement meas(simr.observations());
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  core::EquationBuildOptions strict;
  strict.min_good_snapshots = 1000;  // impossible with 100 snapshots
  const auto eq = core::build_equations(cov, sys.sets, meas, strict);
  EXPECT_TRUE(eq.equations.empty());
  EXPECT_GE(eq.dropped_unusable, 3u);
}

// ------------------------------------------------------------ scenario ----

TEST(ScenarioEdge, ZeroFabricProbMeansAllSingletons) {
  core::ScenarioConfig config;
  config.topology = core::TopologyKind::kPlanetLab;
  config.routers = 60;
  config.vantage_points = 6;
  config.fabric_prob = 0.0;
  config.seed = 9;
  const auto inst = core::build_scenario(config);
  for (std::size_t s = 0; s < inst.declared_sets.set_count(); ++s) {
    EXPECT_EQ(inst.declared_sets.set(s).size(), 1u);
  }
}

TEST(ScenarioEdge, ClusterSizeCapsDeclaredSets) {
  core::ScenarioConfig config;
  config.topology = core::TopologyKind::kPlanetLab;
  config.routers = 80;
  config.vantage_points = 8;
  config.cluster_size = 3;
  config.seed = 10;
  const auto inst = core::build_scenario(config);
  std::size_t biggest = 0;
  for (std::size_t s = 0; s < inst.declared_sets.set_count(); ++s) {
    biggest = std::max(biggest, inst.declared_sets.set(s).size());
  }
  EXPECT_LE(biggest, 3u);
}

TEST(ScenarioEdge, FullCongestionIsRepresentable) {
  core::ScenarioConfig config;
  config.topology = core::TopologyKind::kPlanetLab;
  config.routers = 40;
  config.vantage_points = 5;
  config.congested_fraction = 1.0;
  config.seed = 11;
  const auto inst = core::build_scenario(config);
  EXPECT_EQ(inst.congested_links.size(), inst.graph.link_count());
}

}  // namespace
}  // namespace tomo
