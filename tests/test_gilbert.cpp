#include <gtest/gtest.h>

#include <cmath>

#include "corr/common_shock.hpp"
#include "corr/gilbert.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo::corr {
namespace {

GilbertShockModel two_link_model(double rho, double burst) {
  CorrelationSets sets(2, {{0, 1}});
  std::vector<BurstyShock> shocks(1);
  shocks[0].rho = rho;
  shocks[0].burst_length = burst;
  shocks[0].members = {0, 1};
  return GilbertShockModel(sets, {0.0, 0.0}, shocks);
}

TEST(GilbertModel, TransitionProbabilitiesSatisfyStationarity) {
  const GilbertShockModel model = two_link_model(0.25, 8.0);
  const double r = 1.0 - model.stay_on_prob(0);  // P(on -> off)
  const double q = model.off_to_on_prob(0);
  // Stationary distribution of the chain: q / (q + r) must equal rho.
  EXPECT_NEAR(q / (q + r), 0.25, 1e-12);
}

TEST(GilbertModel, BurstLengthOneAlwaysExits) {
  // burst_length = 1: every ON episode lasts exactly one snapshot, and the
  // OFF->ON rate rises to rho/(1-rho) to keep the stationary mass at rho.
  const GilbertShockModel model = two_link_model(0.3, 1.0);
  EXPECT_DOUBLE_EQ(model.stay_on_prob(0), 0.0);
  EXPECT_NEAR(model.off_to_on_prob(0), 0.3 / 0.7, 1e-12);
}

TEST(GilbertModel, StationaryFrequencyMatchesRho) {
  const GilbertShockModel model = two_link_model(0.2, 10.0);
  Rng rng(7);
  std::size_t on = 0;
  const std::size_t n = 200000;
  for (std::size_t i = 0; i < n; ++i) {
    on += model.sample(rng)[0];
  }
  EXPECT_NEAR(static_cast<double>(on) / static_cast<double>(n), 0.2, 0.01);
}

TEST(GilbertModel, BurstsAreActuallyBursty) {
  const GilbertShockModel model = two_link_model(0.2, 10.0);
  Rng rng(11);
  // Measure mean run length of consecutive congested snapshots.
  std::size_t runs = 0, on_total = 0;
  bool prev = false;
  for (std::size_t i = 0; i < 100000; ++i) {
    const bool on = model.sample(rng)[0] != 0;
    if (on) {
      ++on_total;
      if (!prev) ++runs;
    }
    prev = on;
  }
  ASSERT_GT(runs, 0u);
  const double mean_run =
      static_cast<double>(on_total) / static_cast<double>(runs);
  EXPECT_NEAR(mean_run, 10.0, 1.5);
}

TEST(GilbertModel, PerSnapshotLawMatchesCommonShock) {
  // Same rho/base: the closed-form within-set probabilities coincide with
  // the memoryless common shock.
  CorrelationSets sets(3, {{0, 1, 2}});
  std::vector<BurstyShock> bursty(1);
  bursty[0].rho = 0.25;
  bursty[0].burst_length = 6.0;
  bursty[0].members = {0, 1};
  GilbertShockModel gilbert(sets, {0.1, 0.2, 0.3}, bursty);
  std::vector<Shock> memoryless(1);
  memoryless[0].rho = 0.25;
  memoryless[0].members = {0, 1};
  CommonShockModel shock(sets, {0.1, 0.2, 0.3}, memoryless);
  for (const std::vector<LinkId>& query :
       {std::vector<LinkId>{0}, {1}, {2}, {0, 1}, {0, 2}, {0, 1, 2}}) {
    EXPECT_NEAR(gilbert.within_set_all_good(0, query),
                shock.within_set_all_good(0, query), 1e-12);
  }
}

TEST(GilbertModel, ResetRestartsFromStationary) {
  const GilbertShockModel model = two_link_model(0.5, 50.0);
  Rng rng(3);
  // Drive the chain into a known state, then reset; the next draw must be
  // stationary (probability ~0.5), not a continuation.
  std::size_t on_after_reset = 0;
  const std::size_t trials = 20000;
  for (std::size_t t = 0; t < trials; ++t) {
    model.sample(rng);
    model.reset();
    on_after_reset += model.sample(rng)[0];
    model.reset();
  }
  EXPECT_NEAR(static_cast<double>(on_after_reset) / trials, 0.5, 0.02);
}

TEST(GilbertModel, ValidatesParameters) {
  CorrelationSets sets(1, {{0}});
  std::vector<BurstyShock> shocks(1);
  shocks[0].rho = 0.2;
  shocks[0].burst_length = 0.5;  // < 1 snapshot
  shocks[0].members = {0};
  EXPECT_THROW(GilbertShockModel(sets, {0.0}, shocks), Error);
  shocks[0].burst_length = 2.0;
  shocks[0].rho = 1.0;
  EXPECT_THROW(GilbertShockModel(sets, {0.0}, shocks), Error);
}

TEST(GilbertModel, SimulatorEstimatesStayConsistent) {
  // Assumption 3 (stationarity) holds even though snapshots are dependent:
  // empirical path-good frequencies still converge to the per-snapshot law.
  auto sys = tomo::testing::figure_1a();
  std::vector<BurstyShock> shocks(3);
  shocks[0].rho = 0.25;
  shocks[0].burst_length = 8.0;
  shocks[0].members = {0, 1};
  GilbertShockModel model(sys.sets, {0.0, 0.0, 0.15, 0.3}, shocks);
  sim::SimulatorConfig config;
  config.snapshots = 60000;
  config.mode = sim::PacketMode::kExact;
  config.seed = 21;
  const auto result = sim::simulate(sys.graph, sys.paths, model, config);
  // P(P1 good) = P(e1 good) P(e3 good) = (1-0.25)(1-0.15).
  const double p1_good =
      static_cast<double>(result.observations().good_count(0)) /
      static_cast<double>(config.snapshots);
  EXPECT_NEAR(p1_good, 0.75 * 0.85, 0.02);
}

}  // namespace
}  // namespace tomo::corr
