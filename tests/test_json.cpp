// The bench telemetry JSON writer: ordered members, correct escaping,
// and stable number formatting.
#include <gtest/gtest.h>

#include <limits>

#include "util/json.hpp"

namespace {

using tomo::util::Json;

TEST(Json, ScalarRendering) {
  EXPECT_EQ(Json(true).str(), "true");
  EXPECT_EQ(Json(false).str(), "false");
  EXPECT_EQ(Json(static_cast<std::int64_t>(-12)).str(), "-12");
  EXPECT_EQ(Json(static_cast<std::uint64_t>(18446744073709551615ULL)).str(),
            "18446744073709551615");
  EXPECT_EQ(Json(0.25).str(), "0.25");
  EXPECT_EQ(Json("hi").str(), "\"hi\"");
  EXPECT_EQ(Json().str(), "null");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).str(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).str(), "null");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(Json::escape("plain"), "plain");
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Json::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(Json::escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1).set("apple", 2).set("mango", 3);
  const std::string text = obj.str();
  EXPECT_LT(text.find("zebra"), text.find("apple"));
  EXPECT_LT(text.find("apple"), text.find("mango"));
}

TEST(Json, NestedStructureRendersWithIndentation) {
  Json doc = Json::object();
  doc.set("name", "bench")
      .set("values", Json::array_of(std::vector<double>{1.0, 2.5}))
      .set("empty_array", Json::array())
      .set("empty_object", Json::object());
  EXPECT_EQ(doc.str(),
            "{\n"
            "  \"name\": \"bench\",\n"
            "  \"values\": [\n"
            "    1,\n"
            "    2.5\n"
            "  ],\n"
            "  \"empty_array\": [],\n"
            "  \"empty_object\": {}\n"
            "}");
}

TEST(Json, ArrayOfStrings) {
  const Json arr =
      Json::array_of(std::vector<std::string>{"a", "b"});
  EXPECT_EQ(arr.str(), "[\n  \"a\",\n  \"b\"\n]");
}

}  // namespace
