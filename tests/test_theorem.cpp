#include <gtest/gtest.h>

#include <cmath>

#include "core/theorem_algorithm.hpp"
#include "corr/model_factory.hpp"
#include "sim/measurement.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;
using tomo::testing::figure_1a_model;
using tomo::testing::figure_1b;

TEST(TheoremAlgorithm, RecoversAllStateProbabilitiesOnFigure1a) {
  // The proof's showcase: with exact pattern probabilities, every per-set
  // state probability — including the correlated joint P(e1,e2) — is
  // identified exactly.
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const TheoremResult r = run_theorem_algorithm(cov, sys.sets, oracle);

  // Set 0 = {e1,e2} with table {00:0.65, 01:0.10, 10:0.05, 11:0.20}.
  EXPECT_NEAR(r.state_prob[0][0], 0.65, 1e-9);
  EXPECT_NEAR(r.state_prob[0][1], 0.10, 1e-9);
  EXPECT_NEAR(r.state_prob[0][2], 0.05, 1e-9);
  EXPECT_NEAR(r.state_prob[0][3], 0.20, 1e-9);
  EXPECT_NEAR(r.state_prob[1][1], 0.15, 1e-9);
  EXPECT_NEAR(r.state_prob[2][1], 0.40, 1e-9);
}

TEST(TheoremAlgorithm, MarginalsMatchModel) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const TheoremResult r = run_theorem_algorithm(cov, sys.sets, oracle);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 1e-9);
  }
}

TEST(TheoremAlgorithm, CongestionFactorsMatchDefinition) {
  // α_A = P(S^p = A) / P(S^p = ∅) (paper Eq. 2).
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const TheoremResult r = run_theorem_algorithm(cov, sys.sets, oracle);
  EXPECT_NEAR(r.alpha[0][1], 0.10 / 0.65, 1e-9);  // {e1}
  EXPECT_NEAR(r.alpha[0][2], 0.05 / 0.65, 1e-9);  // {e2}
  EXPECT_NEAR(r.alpha[0][3], 0.20 / 0.65, 1e-9);  // {e1,e2}
  EXPECT_NEAR(r.alpha[1][1], 0.15 / 0.85, 1e-9);  // {e3}
}

TEST(TheoremAlgorithm, JointCongestedProbability) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const TheoremResult r = run_theorem_algorithm(cov, sys.sets, oracle);
  // P(e1 and e2 congested) = 0.20 (within-set joint).
  EXPECT_NEAR(joint_congested_prob(r, sys.sets, {0, 1}), 0.20, 1e-9);
  // Across sets the probability factorizes (paper's Step 4 example).
  EXPECT_NEAR(joint_congested_prob(r, sys.sets, {0, 2}),
              model->marginal(0) * model->marginal(2), 1e-9);
  // Empty query: probability 1.
  EXPECT_NEAR(joint_congested_prob(r, sys.sets, {}), 1.0, 1e-12);
}

TEST(TheoremAlgorithm, AgreesWithEmpiricalMeasurements) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  sim::SimulatorConfig config;
  config.snapshots = 60000;
  config.mode = sim::PacketMode::kExact;
  config.seed = 7;
  const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
  const sim::EmpiricalMeasurement meas(simr.observations());
  const TheoremResult r = run_theorem_algorithm(cov, sys.sets, meas);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 0.02)
        << "link " << e;
  }
}

TEST(TheoremAlgorithm, DetectsAssumption4Violation) {
  auto sys = figure_1b();
  auto model = corr::make_independent({0.2, 0.3, 0.15});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  EXPECT_THROW(run_theorem_algorithm(cov, sys.sets, oracle), Error);
}

TEST(TheoremAlgorithm, IndependentSpecialCaseMatchesMarginals) {
  // With singleton sets, the theorem algorithm degenerates to classical
  // Boolean tomography and must still be exact.
  auto sys = figure_1a();
  auto model = corr::make_independent({0.3, 0.25, 0.15, 0.4});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const auto singles = corr::CorrelationSets::singletons(4);
  const TheoremResult r = run_theorem_algorithm(cov, singles, oracle);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 1e-9);
  }
}

TEST(TheoremAlgorithm, GuardsAgainstOversizedProblems) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  TheoremOptions opts;
  opts.max_links = 2;
  EXPECT_THROW(run_theorem_algorithm(cov, sys.sets, oracle, opts), Error);
}

TEST(TheoremAlgorithm, RequiresObservableAllGoodState) {
  auto sys = figure_1a();
  auto model = corr::make_independent({1.0, 0.1, 0.1, 0.1});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  // e1 always congested => P(all paths good) = 0 => no ratio exists.
  EXPECT_THROW(run_theorem_algorithm(cov, sys.sets, oracle), Error);
}

}  // namespace
}  // namespace tomo::core
