// Perf-regression smoke for the NNLS solve path (ctest label: "perf").
//
// Builds the registry's heaviest entry (waxman-dense-vps, 40 vantage
// points = 1560 ordered-pair paths, ~840 links) and times a few full
// incremental solves — sparse view -> Gram build -> active-set loop over
// the updatable Cholesky factor — against a committed wall-clock budget.
// Like the harvest tier, the budget is a tripwire against *gross*
// regressions, generous enough for noisy CI containers and shared across
// Debug/Release: anything that reintroduces a per-iteration O(m k^2)
// refactorization (the pre-PR-5 dense QR per inner step took ~8 minutes
// per solve at this scale, vs ~0.2 s for the incremental engine) lands
// minutes over budget in every build flavor. Exactness of the engine is
// enforced by the differential suite (test_nnls_fast.cpp); isolated
// engine-vs-engine cost is tracked by bench/micro_linalg.cpp and the
// *_solve_seconds JSON telemetry.
#include <gtest/gtest.h>

#include <cmath>
#include <iostream>

#include "core/equations.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "linalg/solvers.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"

namespace tomo::core {
namespace {

#if defined(__SANITIZE_ADDRESS__)
#define TOMO_PERF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TOMO_PERF_SANITIZED 1
#endif
#endif

// Committed budget for kRounds x (correlation + independence) solves.
#ifdef TOMO_PERF_SANITIZED
constexpr double kBudgetSeconds = 60.0;
#else
constexpr double kBudgetSeconds = 15.0;
#endif
constexpr int kRounds = 3;

TEST(PerfSolver, DenseVpsNnlsSolveStaysWithinBudget) {
  ScenarioConfig config =
      ScenarioCatalog::instance().at("waxman-dense-vps").config;
  config.seed = 42;
  const ScenarioInstance inst = build_scenario(config);
  ASSERT_GE(inst.paths.size(), 1000u)
      << "waxman-dense-vps lost its uncapped vantage density";

  sim::SimulatorConfig sc;
  sc.snapshots = 2000;
  sc.packets_per_path = 4000;
  sc.mode = sim::PacketMode::kBinomial;
  sc.seed = 7;
  const auto simr = sim::simulate(inst.graph, inst.paths, *inst.truth, sc);
  const graph::CoverageIndex coverage(inst.graph, inst.paths);
  const sim::EmpiricalMeasurement meas(simr.observations());
  const corr::CorrelationSets singles =
      corr::CorrelationSets::singletons(coverage.link_count());
  const EquationSystem correlation =
      build_equations(coverage, inst.declared_sets, meas);
  const EquationSystem independence =
      build_equations(coverage, singles, meas);
  ASSERT_FALSE(correlation.equations.empty());
  ASSERT_FALSE(independence.equations.empty());

  double sink = 0.0;
  const Stopwatch timer;
  for (int round = 0; round < kRounds; ++round) {
    const auto corr_solution =
        linalg::solve_log_system(sparse_view(correlation));
    const auto ind_solution =
        linalg::solve_log_system(sparse_view(independence));
    sink += corr_solution.residual_norm2 + ind_solution.residual_norm2;
  }
  const double seconds = timer.seconds();
  EXPECT_TRUE(std::isfinite(sink));
  EXPECT_LT(seconds, kBudgetSeconds)
      << "NNLS solve regressed: " << seconds << " s for " << kRounds
      << " rounds at " << correlation.equations.size() << "+"
      << independence.equations.size() << " equations x "
      << coverage.link_count() << " links (budget " << kBudgetSeconds
      << " s)";
  // Telemetry for the CI log; not an assertion.
  std::cout << "[perf] waxman-dense-vps solve: " << seconds << " s / "
            << kRounds << " rounds, " << correlation.equations.size() << "+"
            << independence.equations.size() << " equations, "
            << coverage.link_count() << " links\n";
}

}  // namespace
}  // namespace tomo::core
