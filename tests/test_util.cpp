#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace tomo {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(0.25, 0.75);
    EXPECT_GE(u, 0.25);
    EXPECT_LT(u, 0.75);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BinomialMeanAndRange) {
  Rng rng(17);
  const std::uint64_t n = 1000;
  const double p = 0.2;
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.binomial(n, p);
    EXPECT_LE(v, n);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 2000.0, n * p, 5.0);
}

TEST(Rng, BinomialSmallMeanBranch) {
  Rng rng(19);
  // n large, n*p small: exercises the geometric-gap branch.
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    sum += static_cast<double>(rng.binomial(10000, 0.0005));
  }
  EXPECT_NEAR(sum / 5000.0, 5.0, 0.5);
}

TEST(Rng, BinomialDegenerateCases) {
  Rng rng(23);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(31);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, MixSeedSeparatesStreams) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
  EXPECT_EQ(mix_seed(5, 9), mix_seed(5, 9));
}

// -------------------------------------------------------------- stats ----

TEST(Stats, MeanAndVariance) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(variance(v), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({42.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
}

TEST(Stats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile({3.5}, 90), 3.5);
}

TEST(Stats, PercentileRejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50), Error);
  EXPECT_THROW(percentile({1.0}, -1), Error);
  EXPECT_THROW(percentile({1.0}, 101), Error);
}

TEST(Stats, WilsonIntervalBracketsProportion) {
  const auto iv = wilson_interval(30, 100);
  EXPECT_LT(iv.lo, 0.3);
  EXPECT_GT(iv.hi, 0.3);
  EXPECT_GE(iv.lo, 0.0);
  EXPECT_LE(iv.hi, 1.0);
}

TEST(Stats, WilsonIntervalEmptySample) {
  const auto iv = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(iv.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv.hi, 1.0);
}

TEST(Stats, WilsonIntervalShrinksWithSamples) {
  const auto narrow = wilson_interval(500, 1000);
  const auto wide = wilson_interval(5, 10);
  EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

// -------------------------------------------------------------- flags ----

TEST(Flags, ParsesAllValueForms) {
  Flags flags("prog", "test");
  flags.add_int("n", 5, "count")
      .add_double("x", 1.5, "ratio")
      .add_bool("verbose", false, "talk")
      .add_string("name", "default", "label");
  const char* argv[] = {"prog", "--n", "10", "--x=2.5", "--verbose",
                        "--name", "hello"};
  ASSERT_TRUE(flags.parse(7, argv));
  EXPECT_EQ(flags.get_int("n"), 10);
  EXPECT_DOUBLE_EQ(flags.get_double("x"), 2.5);
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_string("name"), "hello");
}

TEST(Flags, DefaultsSurviveParse) {
  Flags flags("prog", "test");
  flags.add_int("n", 5, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_int("n"), 5);
}

TEST(Flags, RejectsUnknownFlag) {
  Flags flags("prog", "test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(flags.parse(3, argv), Error);
}

TEST(Flags, RejectsMalformedValue) {
  Flags flags("prog", "test");
  flags.add_int("n", 5, "count");
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_THROW(flags.get_int("n"), Error);
}

TEST(Flags, HelpReturnsFalse) {
  Flags flags("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, WrongTypeAccessThrows) {
  Flags flags("prog", "test");
  flags.add_int("n", 5, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_THROW(flags.get_bool("n"), Error);
}

// -------------------------------------------------------------- table ----

TEST(Table, TextRenderingAligns) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_text(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(0.5, 4), "0.5000");
}

// -------------------------------------------------------------- error ----

TEST(ErrorTest, MessageRoundTrip) {
  Error e("something broke");
  EXPECT_EQ(e.message(), "something broke");
  EXPECT_NE(std::string(e.what()).find("something broke"),
            std::string::npos);
}

TEST(ErrorTest, RequireMacroThrows) {
  EXPECT_THROW(TOMO_REQUIRE(false, "boom"), Error);
  EXPECT_NO_THROW(TOMO_REQUIRE(true, "fine"));
}

// ---------------------------------------------------------- stopwatch ----

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace tomo
