// The thread pool and parallel_for underpin the trial engine's
// determinism contract: results land by index, exceptions propagate, and
// worker count never changes observable output.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using tomo::util::ThreadPool;
using tomo::util::parallel_for;
using tomo::util::resolve_jobs;

TEST(ResolveJobs, ZeroMeansHardwareAndAtLeastOne) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(ThreadPool, RunsZeroTasks) {
  ThreadPool pool(2);  // construct + destruct with an empty queue
  EXPECT_EQ(pool.worker_count(), 2u);
}

TEST(ThreadPool, RunsOneTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, RunsManyTasksOnFewWorkers) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task exploded"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {1u, 2u, 5u}) {
    std::vector<int> hits(97, 0);
    parallel_for(jobs, hits.size(),
                 [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 97)
        << "jobs=" << jobs;
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, HandlesZeroAndOneItems) {
  int calls = 0;
  parallel_for(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(4, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsLowestIndexExceptionAfterAllSettle) {
  std::atomic<int> completed{0};
  try {
    parallel_for(4, 20, [&](std::size_t i) {
      if (i == 3 || i == 11) {
        throw tomo::Error("boom at " + std::to_string(i));
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected tomo::Error";
  } catch (const tomo::Error& e) {
    EXPECT_EQ(e.message(), "boom at 3");  // lowest index wins
  }
  EXPECT_EQ(completed.load(), 18);  // every non-throwing item still ran
}

TEST(ParallelFor, InlinePathAlsoThrows) {
  EXPECT_THROW(
      parallel_for(1, 5,
                   [](std::size_t i) {
                     if (i == 2) throw tomo::Error("inline boom");
                   }),
      tomo::Error);
}

}  // namespace
