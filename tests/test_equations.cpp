#include <gtest/gtest.h>

#include <cmath>

#include "core/equations.hpp"
#include "corr/model_factory.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;
using tomo::testing::figure_1a_model;

TEST(Equations, Figure1aBuildsThePaperSystem) {
  // §4's worked example: singles y1,y2,y3 plus exactly one pair equation
  // (P2,P3) — the pair (P1,P2) involves correlated links e1,e2 and must be
  // rejected; (P1,P3) is disjoint and cannot add rank.
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const EquationSystem eq = build_equations(cov, sys.sets, oracle);

  EXPECT_EQ(eq.n1, 3u);
  EXPECT_EQ(eq.n2, 1u);
  EXPECT_EQ(eq.rank, 4u);
  EXPECT_TRUE(eq.full_rank());
  // The pair equation covers exactly {e2,e3,e4}.
  const Equation& pair = eq.equations.back();
  ASSERT_EQ(pair.paths.size(), 2u);
  EXPECT_EQ(pair.links, (std::vector<graph::LinkId>{1, 2, 3}));
}

TEST(Equations, RightHandSidesAreLogProbabilities) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const EquationSystem eq = build_equations(cov, sys.sets, oracle);
  // y1 = log P(P1 good) = log(P(e1 good) P(e3 good)).
  EXPECT_NEAR(eq.rhs()[0], std::log(0.70 * 0.85), 1e-12);
  for (double y : eq.rhs()) {
    EXPECT_LE(y, 0.0);
  }
}

TEST(Equations, IndependenceStructureAcceptsEveryPath) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const auto singles = corr::CorrelationSets::singletons(4);
  const EquationSystem eq = build_equations(cov, singles, oracle);
  EXPECT_EQ(eq.n1, 3u);
  EXPECT_TRUE(eq.full_rank());
  EXPECT_EQ(eq.dropped_correlated, 0u);
}

TEST(Equations, CorrelatedPathIsRejected) {
  // Make e1 and e3 correlated: P1 = {e1,e3} is then unusable as a single.
  auto sys = figure_1a();
  corr::CorrelationSets sets(4, {{0, 2}, {1}, {3}});
  auto model = figure_1a_model(sys.sets);  // truth irrelevant here
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const EquationSystem eq = build_equations(cov, sets, oracle);
  EXPECT_EQ(eq.n1, 2u);  // P2, P3 remain
  EXPECT_GE(eq.dropped_correlated, 1u);
  EXPECT_FALSE(eq.full_rank());  // e1's column is unreachable
}

TEST(Equations, UnusableMeasurementsAreDropped) {
  auto sys = figure_1a();
  // e3 congested with probability 1: P1 and P2 are never good, so their
  // single equations are unusable.
  auto model = corr::make_independent({0.1, 0.1, 1.0, 0.1});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const EquationSystem eq =
      build_equations(cov, corr::CorrelationSets::singletons(4), oracle);
  EXPECT_EQ(eq.n1, 1u);  // only P3 = {e2,e4}
  EXPECT_GE(eq.dropped_unusable, 2u);
}

TEST(Equations, PairsDisabledOption) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  EquationBuildOptions opts;
  opts.use_pairs = false;
  const EquationSystem eq = build_equations(cov, sys.sets, oracle, opts);
  EXPECT_EQ(eq.n2, 0u);
  EXPECT_EQ(eq.rank, 3u);
  EXPECT_FALSE(eq.full_rank());
}

TEST(Equations, PairCandidateCapRespected) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  EquationBuildOptions opts;
  opts.max_pair_candidates = 0;  // unlimited
  const auto unlimited = build_equations(cov, sys.sets, oracle, opts);
  EXPECT_TRUE(unlimited.full_rank());
}

TEST(Equations, MatrixMatchesEquationSupports) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const EquationSystem eq = build_equations(cov, sys.sets, oracle);
  ASSERT_EQ(eq.matrix().rows(), eq.equations.size());
  for (std::size_t i = 0; i < eq.equations.size(); ++i) {
    for (graph::LinkId e = 0; e < 4; ++e) {
      const bool in_support =
          std::find(eq.equations[i].links.begin(),
                    eq.equations[i].links.end(),
                    e) != eq.equations[i].links.end();
      EXPECT_DOUBLE_EQ(eq.matrix()(i, e), in_support ? 1.0 : 0.0);
    }
  }
}

TEST(Equations, EquationsAreConsistentWithTruth) {
  // With oracle measurements, every accepted equation must hold exactly
  // for the true log-probabilities.
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const EquationSystem eq = build_equations(cov, sys.sets, oracle);
  linalg::Vector x_true(4);
  for (graph::LinkId e = 0; e < 4; ++e) {
    x_true[e] = std::log(model->prob_all_good({e}));
  }
  const linalg::Vector lhs = eq.matrix().multiply(x_true);
  for (std::size_t i = 0; i < eq.rhs().size(); ++i) {
    EXPECT_NEAR(lhs[i], eq.rhs()[i], 1e-10) << "equation " << i;
  }
}

}  // namespace
}  // namespace tomo::core
