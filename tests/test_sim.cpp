#include <gtest/gtest.h>

#include <cmath>

#include "corr/model_factory.hpp"
#include "sim/estimator.hpp"
#include "sim/loss_model.hpp"
#include "sim/measurement.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::sim {
namespace {

// --------------------------------------------------------- loss model ----

TEST(LossModel, RatesRespectThreshold) {
  LossModel lm(0.01);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double good = lm.sample_loss_rate(rng, false);
    EXPECT_GE(good, 0.0);
    EXPECT_LE(good, 0.01);
    const double bad = lm.sample_loss_rate(rng, true);
    EXPECT_GE(bad, 0.01);
    EXPECT_LE(bad, 1.0);
  }
}

TEST(LossModel, PathThresholdFormula) {
  LossModel lm(0.01);
  EXPECT_NEAR(lm.path_threshold(1), 0.01, 1e-12);
  EXPECT_NEAR(lm.path_threshold(3), 1.0 - std::pow(0.99, 3), 1e-12);
  EXPECT_THROW(lm.path_threshold(0), Error);
}

TEST(LossModel, RejectsBadThreshold) {
  EXPECT_THROW(LossModel(0.0), Error);
  EXPECT_THROW(LossModel(1.0), Error);
}

// --------------------------------------------------- path observations ----

TEST(PathObservations, BitAccounting) {
  PathObservations obs(2, 100);
  EXPECT_EQ(obs.good_count(0), 100u);
  obs.set_congested(0, 3);
  obs.set_congested(0, 64);  // second word
  obs.set_congested(1, 3);
  EXPECT_EQ(obs.good_count(0), 98u);
  EXPECT_TRUE(obs.congested(0, 3));
  EXPECT_FALSE(obs.congested(0, 4));
  // Congested snapshots of either path: {3, 64} -> 98 jointly good.
  EXPECT_EQ(obs.both_good_count(0, 1), 98u);
  EXPECT_EQ(obs.all_good_count({0, 1}), 98u);
}

TEST(PathObservations, ExactPatternCount) {
  PathObservations obs(3, 10);
  // Snapshot 0: paths {0,1} congested. Snapshot 1: {0}. Snapshot 2: {0,1}.
  obs.set_congested(0, 0);
  obs.set_congested(1, 0);
  obs.set_congested(0, 1);
  obs.set_congested(0, 2);
  obs.set_congested(1, 2);
  EXPECT_EQ(obs.exact_pattern_count({0, 1}), 2u);
  EXPECT_EQ(obs.exact_pattern_count({0}), 1u);
  EXPECT_EQ(obs.exact_pattern_count({}), 7u);
  EXPECT_EQ(obs.exact_pattern_count({2}), 0u);
}

TEST(PathObservations, TailBitsDoNotLeak) {
  // snapshot_count not a multiple of 64: the all-good pattern must count
  // only real snapshots.
  PathObservations obs(1, 70);
  EXPECT_EQ(obs.exact_pattern_count({}), 70u);
  EXPECT_EQ(obs.good_count(0), 70u);
}

// ---------------------------------------------------------- simulator ----

TEST(Simulator, ExactModeAppliesSeparability) {
  auto sys = tomo::testing::figure_1a();
  // e3 always congested, everything else always good.
  auto model = corr::make_independent({0.0, 0.0, 1.0, 0.0});
  SimulatorConfig config;
  config.snapshots = 50;
  config.mode = PacketMode::kExact;
  const auto result = simulate(sys.graph, sys.paths, *model, config);
  // P1={e1,e3} and P2={e2,e3} congested every snapshot; P3={e2,e4} never.
  EXPECT_EQ(result.observations().good_count(0), 0u);
  EXPECT_EQ(result.observations().good_count(1), 0u);
  EXPECT_EQ(result.observations().good_count(2), 50u);
  EXPECT_EQ(result.link_congested_count[2], 50u);
  EXPECT_EQ(result.link_congested_count[0], 0u);
}

TEST(Simulator, BinomialModeDetectsCongestionReliably) {
  auto sys = tomo::testing::figure_1a();
  auto model = corr::make_independent({0.0, 0.0, 1.0, 0.0});
  SimulatorConfig config;
  config.snapshots = 200;
  config.packets_per_path = 1000;
  config.mode = PacketMode::kBinomial;
  config.seed = 9;
  const auto result = simulate(sys.graph, sys.paths, *model, config);
  // With 1000 packets, a congested path (loss > ~1%) is almost always
  // detected and a good path almost never misflagged.
  EXPECT_LE(result.observations().good_count(0), 20u);
  EXPECT_GE(result.observations().good_count(2), 180u);
}

TEST(Simulator, PerPacketAgreesWithBinomialStatistically) {
  auto sys = tomo::testing::figure_1a();
  auto model = corr::make_independent({0.3, 0.0, 0.0, 0.3});
  SimulatorConfig binom;
  binom.snapshots = 400;
  binom.packets_per_path = 200;
  binom.mode = PacketMode::kBinomial;
  binom.seed = 17;
  SimulatorConfig perpkt = binom;
  perpkt.mode = PacketMode::kPerPacket;
  perpkt.seed = 18;
  const auto rb = simulate(sys.graph, sys.paths, *model, binom);
  const auto rp = simulate(sys.graph, sys.paths, *model, perpkt);
  // Same congestion process statistics: good fractions agree within noise.
  for (graph::PathId p = 0; p < 3; ++p) {
    const double fb = static_cast<double>(rb.observations().good_count(p)) /
                      binom.snapshots;
    const double fp = static_cast<double>(rp.observations().good_count(p)) /
                      perpkt.snapshots;
    EXPECT_NEAR(fb, fp, 0.08) << "path " << p;
  }
}

TEST(Simulator, DeterministicInSeed) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  SimulatorConfig config;
  config.snapshots = 100;
  config.seed = 33;
  const auto r1 = simulate(sys.graph, sys.paths, *model, config);
  const auto r2 = simulate(sys.graph, sys.paths, *model, config);
  for (graph::PathId p = 0; p < 3; ++p) {
    EXPECT_EQ(r1.observations().good_count(p), r2.observations().good_count(p));
  }
}

TEST(Simulator, EmpiricalMarginalsTrackModel) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  SimulatorConfig config;
  config.snapshots = 20000;
  config.mode = PacketMode::kExact;
  config.seed = 5;
  const auto result = simulate(sys.graph, sys.paths, *model, config);
  for (graph::LinkId e = 0; e < 4; ++e) {
    const double freq =
        static_cast<double>(result.link_congested_count[e]) /
        static_cast<double>(config.snapshots);
    EXPECT_NEAR(freq, model->marginal(e), 0.02) << "link " << e;
  }
}

// -------------------------------------------------------- measurement ----

TEST(EmpiricalMeasurement, ProbabilitiesFromCounts) {
  PathObservations obs(2, 10);
  obs.set_congested(0, 0);
  obs.set_congested(0, 1);
  obs.set_congested(1, 1);
  const EmpiricalMeasurement m(obs);
  EXPECT_DOUBLE_EQ(m.good_prob(0), 0.8);
  EXPECT_DOUBLE_EQ(m.good_prob(1), 0.9);
  EXPECT_DOUBLE_EQ(m.pair_good_prob(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(m.all_good_prob({}), 1.0);
  EXPECT_DOUBLE_EQ(m.exact_pattern_prob({0}), 0.1);
  EXPECT_EQ(m.sample_count(), 10u);
}

// ------------------------------------------------------------- oracle ----

TEST(Oracle, PathProbabilitiesMatchModel) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const OracleMeasurement oracle(*model, cov);
  // P1 = {e1,e3}: P(good) = P(e1 good) * P(e3 good).
  EXPECT_NEAR(oracle.good_prob(0), 0.70 * 0.85, 1e-12);
  // Pair (P1,P2) involves {e1,e2,e3}.
  EXPECT_NEAR(oracle.pair_good_prob(0, 1), 0.65 * 0.85, 1e-12);
  EXPECT_EQ(oracle.sample_count(), 0u);
}

TEST(Oracle, PatternProbabilitiesSumToOne) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const OracleMeasurement oracle(*model, cov);
  // Sum of P(ψ(S) = T) over all subsets T of paths must be 1.
  double total = 0.0;
  for (std::uint32_t mask = 0; mask < 8; ++mask) {
    graph::PathIdSet pattern;
    for (std::uint32_t bit = 0; bit < 3; ++bit) {
      if (mask & (1u << bit)) pattern.push_back(bit);
    }
    total += oracle.exact_pattern_prob(pattern);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Oracle, PatternProbMatchesEmpirical) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const OracleMeasurement oracle(*model, cov);
  SimulatorConfig config;
  config.snapshots = 50000;
  config.mode = PacketMode::kExact;
  config.seed = 77;
  const auto result = simulate(sys.graph, sys.paths, *model, config);
  const EmpiricalMeasurement empirical(result.observations());
  for (const graph::PathIdSet& pattern :
       {graph::PathIdSet{}, {0}, {0, 1}, {0, 1, 2}, {2}}) {
    EXPECT_NEAR(empirical.exact_pattern_prob(pattern),
                oracle.exact_pattern_prob(pattern), 0.01);
  }
}

// ---------------------------------------------------------- estimator ----

TEST(LogEstimate, UsableAndUnusableCases) {
  const auto ok = log_estimate(0.5, 100);
  EXPECT_TRUE(ok.usable);
  EXPECT_NEAR(ok.log_prob, std::log(0.5), 1e-12);

  const auto zero = log_estimate(0.0, 100);
  EXPECT_FALSE(zero.usable);

  // 0.005 * 100 = 0.5 good snapshots < 1 required.
  const auto thin = log_estimate(0.005, 100);
  EXPECT_FALSE(thin.usable);

  // Oracle estimates (samples = 0) are usable whenever positive.
  const auto oracle = log_estimate(1e-9, 0);
  EXPECT_TRUE(oracle.usable);

  EXPECT_THROW(log_estimate(-0.1, 10), Error);
}

}  // namespace
}  // namespace tomo::sim
