#include <gtest/gtest.h>

#include <cmath>

#include "core/correlation_algorithm.hpp"
#include "core/independence_algorithm.hpp"
#include "corr/model_factory.hpp"
#include "sim/measurement.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;
using tomo::testing::figure_1a_model;
using tomo::testing::figure_1b;

TEST(CorrelationAlgorithm, ExactOnFigure1aWithOracle) {
  // With exact measurements and a full-rank system, the §4 algorithm must
  // recover every marginal exactly even though e1,e2 are correlated.
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  for (const auto solver :
       {linalg::SolverKind::kLeastSquares, linalg::SolverKind::kNnls,
        linalg::SolverKind::kL1Lp, linalg::SolverKind::kIrls}) {
    InferenceOptions opts;
    opts.solver.kind = solver;
    const InferenceResult r = infer_congestion(
        sys.graph, sys.paths, cov, sys.sets, oracle, opts);
    for (graph::LinkId e = 0; e < 4; ++e) {
      EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 1e-5)
          << "solver " << linalg::to_string(solver) << " link " << e;
    }
  }
}

TEST(CorrelationAlgorithm, ConvergesWithSnapshots) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  sim::SimulatorConfig config;
  config.mode = sim::PacketMode::kExact;
  config.seed = 101;
  double previous_error = 1.0;
  for (const std::size_t snapshots : {200u, 20000u}) {
    config.snapshots = snapshots;
    const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
    const sim::EmpiricalMeasurement meas(simr.observations());
    const InferenceResult r =
        infer_congestion(sys.graph, sys.paths, cov, sys.sets, meas);
    double err = 0.0;
    for (graph::LinkId e = 0; e < 4; ++e) {
      err = std::max(err, std::abs(r.congestion_prob[e] -
                                   model->marginal(e)));
    }
    EXPECT_LT(err, previous_error + 0.02);
    previous_error = err;
  }
  EXPECT_LT(previous_error, 0.03);  // 20k snapshots: tight estimates
}

TEST(CorrelationAlgorithm, HandlesPacketNoise) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  sim::SimulatorConfig config;
  config.mode = sim::PacketMode::kBinomial;
  config.snapshots = 5000;
  config.packets_per_path = 800;
  config.seed = 103;
  const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
  const sim::EmpiricalMeasurement meas(simr.observations());
  const InferenceResult r =
      infer_congestion(sys.graph, sys.paths, cov, sys.sets, meas);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 0.08)
        << "link " << e;
  }
}

TEST(IndependenceAlgorithm, ExactWhenTruthIsIndependent) {
  auto sys = figure_1a();
  auto model = corr::make_independent({0.3, 0.25, 0.15, 0.4});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const InferenceResult r =
      infer_congestion_independent(sys.graph, sys.paths, cov, oracle);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 1e-6);
  }
}

TEST(IndependenceAlgorithm, BiasedWhenLinksCorrelated) {
  // Figure 1(b) augmented: force the independence baseline to use the
  // correlated pair. Truth: e1,e2 congest together (common shock), e3
  // independent. The baseline's pair equation P(Y1=0,Y2=0) =
  // x1+x2+x3 is wrong because P(e1,e2 both good) != P(e1)P(e2).
  auto sys = figure_1b();
  std::vector<corr::Shock> shocks(2);
  shocks[0].rho = 0.3;
  shocks[0].members = {0, 1};
  corr::CommonShockModel model(sys.sets, {0.0, 0.0, 0.2}, shocks);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(model, cov);
  const InferenceResult r =
      infer_congestion_independent(sys.graph, sys.paths, cov, oracle);
  // e3's true congestion probability is 0.2; the baseline, forced to
  // explain the correlated joint with independent links, misses it.
  double max_err = 0.0;
  for (graph::LinkId e = 0; e < 3; ++e) {
    max_err = std::max(max_err,
                       std::abs(r.congestion_prob[e] - model.marginal(e)));
  }
  EXPECT_GT(max_err, 0.03);
}

TEST(DemoteToSingletons, MovesLinksOut) {
  corr::CorrelationSets sets(4, {{0, 1, 2}, {3}});
  const auto demoted = demote_to_singletons(sets, {1});
  EXPECT_EQ(demoted.set_count(), 3u);
  EXPECT_FALSE(demoted.may_be_correlated(0, 1));
  EXPECT_TRUE(demoted.may_be_correlated(0, 2));
}

TEST(DemoteToSingletons, WholeSetDemotion) {
  corr::CorrelationSets sets(3, {{0, 1}, {2}});
  const auto demoted = demote_to_singletons(sets, {0, 1});
  EXPECT_EQ(demoted.set_count(), 3u);
  EXPECT_FALSE(demoted.may_be_correlated(0, 1));
}

TEST(CorrelationAlgorithm, RefinementRecoversFigure1b) {
  // Figure 1(b) is unidentifiable under its declared sets. With the §3.3
  // fallback the algorithm treats the three links as uncorrelated and can
  // at least produce estimates; with a truly independent truth they are
  // even correct.
  auto sys = figure_1b();
  auto model = corr::make_independent({0.2, 0.3, 0.15});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  InferenceOptions opts;
  opts.refine_unidentifiable = true;
  const InferenceResult r =
      infer_congestion(sys.graph, sys.paths, cov, sys.sets, oracle, opts);
  EXPECT_EQ(r.refined_links.size(), 3u);
  // The refined system has singles for P1,P2 and the pair — still rank 3?
  // {e1,e3},{e2,e3},{e1,e2,e3} has rank 3.
  EXPECT_EQ(r.system.rank, 3u);
  for (graph::LinkId e = 0; e < 3; ++e) {
    EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 1e-5);
  }
}

TEST(CorrelationAlgorithm, WithoutRefinementFigure1bIsUnderdetermined) {
  auto sys = figure_1b();
  auto model = corr::make_independent({0.2, 0.3, 0.15});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  InferenceOptions opts;
  opts.refine_unidentifiable = false;
  const InferenceResult r =
      infer_congestion(sys.graph, sys.paths, cov, sys.sets, oracle, opts);
  // Both paths involve e3 only through correlated company? P1={e1,e3} is
  // correlation-free (e1 in {e1,e2}, e3 alone), as is P2. But their pair
  // union {e1,e2,e3} is correlated, so rank stays 2 < 3.
  EXPECT_EQ(r.system.rank, 2u);
  EXPECT_FALSE(r.system.full_rank());
}

TEST(CorrelationAlgorithm, ThrowsWhenNothingIsUsable) {
  auto sys = figure_1a();
  // Every link congested with probability 1: no path is ever good.
  auto model = corr::make_independent({1.0, 1.0, 1.0, 1.0});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  EXPECT_THROW(infer_congestion(sys.graph, sys.paths, cov,
                                corr::CorrelationSets::singletons(4), oracle),
               Error);
}

TEST(CorrelationAlgorithm, EstimatesStayInUnitInterval) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  sim::SimulatorConfig config;
  config.snapshots = 50;  // deliberately noisy
  config.packets_per_path = 30;
  config.seed = 999;
  const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
  const sim::EmpiricalMeasurement meas(simr.observations());
  const InferenceResult r =
      infer_congestion(sys.graph, sys.paths, cov, sys.sets, meas);
  for (double p : r.congestion_prob) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace tomo::core
