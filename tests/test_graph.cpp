#include <gtest/gtest.h>

#include <sstream>

#include "graph/coverage.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "graph/routing.hpp"
#include "graph/serialize.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::graph {
namespace {

// -------------------------------------------------------------- graph ----

TEST(Graph, AddNodesAndLinks) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node();
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node_name(a), "a");
  EXPECT_EQ(g.node_name(b), "v1");
  const LinkId e = g.add_link(a, b);
  EXPECT_EQ(g.link_count(), 1u);
  EXPECT_EQ(g.link(e).src, a);
  EXPECT_EQ(g.link(e).dst, b);
}

TEST(Graph, AdjacencyLists) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node(), c = g.add_node();
  const LinkId ab = g.add_link(a, b);
  const LinkId ac = g.add_link(a, c);
  const LinkId cb = g.add_link(c, b);
  EXPECT_EQ(g.out_links(a), (std::vector<LinkId>{ab, ac}));
  EXPECT_EQ(g.in_links(b), (std::vector<LinkId>{ab, cb}));
  EXPECT_TRUE(g.out_links(b).empty());
}

TEST(Graph, FindLink) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node();
  EXPECT_FALSE(g.find_link(a, b).has_value());
  const LinkId e = g.add_link(a, b);
  EXPECT_EQ(g.find_link(a, b), e);
  EXPECT_FALSE(g.find_link(b, a).has_value());
}

TEST(Graph, RejectsSelfLoopsAndBadIds) {
  Graph g;
  const NodeId a = g.add_node();
  EXPECT_THROW(g.add_link(a, a), Error);
  EXPECT_THROW(g.add_link(a, 99), Error);
  EXPECT_THROW(g.link(0), Error);
  EXPECT_THROW(g.node_name(5), Error);
}

TEST(Graph, ParallelLinksAllowed) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node();
  const LinkId e1 = g.add_link(a, b);
  const LinkId e2 = g.add_link(a, b);
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.out_links(a).size(), 2u);
}

// --------------------------------------------------------------- path ----

TEST(Path, ValidPathEndpoints) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node(), c = g.add_node();
  const LinkId ab = g.add_link(a, b), bc = g.add_link(b, c);
  const Path p(g, {ab, bc});
  EXPECT_EQ(p.source(), a);
  EXPECT_EQ(p.destination(), c);
  EXPECT_EQ(p.length(), 2u);
  EXPECT_TRUE(p.traverses(ab));
  EXPECT_FALSE(p.traverses(99));
}

TEST(Path, RejectsEmptyAndNonContiguous) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node(), c = g.add_node();
  const LinkId ab = g.add_link(a, b);
  const LinkId ca = g.add_link(c, a);
  EXPECT_THROW(Path(g, {}), Error);
  EXPECT_THROW(Path(g, {ab, ca}), Error);  // b != c
}

TEST(Path, RejectsLoops) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node();
  const LinkId ab = g.add_link(a, b), ba = g.add_link(b, a);
  // a -> b -> a revisits node a.
  EXPECT_THROW(Path(g, {ab, ba}), Error);
}

TEST(Path, FullCoverageCheck) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node(), c = g.add_node();
  const LinkId ab = g.add_link(a, b);
  g.add_link(b, c);  // never used by a path
  std::vector<Path> paths;
  paths.emplace_back(g, std::vector<LinkId>{ab});
  EXPECT_THROW(require_full_coverage(g, paths), Error);
}

// ----------------------------------------------------------- coverage ----

TEST(Coverage, PathsThroughAndPsi) {
  auto sys = tomo::testing::figure_1a();
  const CoverageIndex cov(sys.graph, sys.paths);
  EXPECT_EQ(cov.link_count(), 4u);
  EXPECT_EQ(cov.path_count(), 3u);
  // The paper's ψ table for Figure 1(a).
  EXPECT_EQ(cov.paths_through(0), (PathIdSet{0}));        // e1 -> {P1}
  EXPECT_EQ(cov.paths_through(1), (PathIdSet{1, 2}));     // e2 -> {P2,P3}
  EXPECT_EQ(cov.paths_through(2), (PathIdSet{0, 1}));     // e3 -> {P1,P2}
  EXPECT_EQ(cov.paths_through(3), (PathIdSet{2}));        // e4 -> {P3}
  EXPECT_EQ(cov.covered_paths({0, 1}), (PathIdSet{0, 1, 2}));
  EXPECT_TRUE(cov.all_links_covered());
}

TEST(Coverage, Figure1bCollision) {
  auto sys = tomo::testing::figure_1b();
  const CoverageIndex cov(sys.graph, sys.paths);
  // ψ({e1,e2}) == ψ({e3}) — the identifiability failure of Figure 1(b).
  EXPECT_EQ(cov.covered_paths({0, 1}), cov.covered_paths({2}));
}

TEST(Coverage, UnionHelper) {
  EXPECT_EQ(path_set_union({1, 3}, {2, 3}), (PathIdSet{1, 2, 3}));
  EXPECT_EQ(path_set_union({}, {5}), (PathIdSet{5}));
}

// ------------------------------------------------------------ routing ----

TEST(Routing, ShortestPathByHops) {
  Graph g;
  std::vector<NodeId> n;
  for (int i = 0; i < 4; ++i) n.push_back(g.add_node());
  g.add_link(n[0], n[1]);
  g.add_link(n[1], n[3]);
  const LinkId direct = g.add_link(n[0], n[3]);
  const auto p = shortest_path(g, n[0], n[3]);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->links(), (std::vector<LinkId>{direct}));
}

TEST(Routing, WeightsChangeRoute) {
  Graph g;
  std::vector<NodeId> n;
  for (int i = 0; i < 3; ++i) n.push_back(g.add_node());
  const LinkId ab = g.add_link(n[0], n[1]);
  const LinkId bc = g.add_link(n[1], n[2]);
  const LinkId ac = g.add_link(n[0], n[2]);
  std::vector<double> w{1.0, 1.0, 10.0};  // direct link expensive
  const auto p = shortest_path(g, n[0], n[2], w);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->links(), (std::vector<LinkId>{ab, bc}));
  (void)ac;
}

TEST(Routing, UnreachableReturnsNullopt) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node();
  EXPECT_FALSE(shortest_path(g, a, b).has_value());
  EXPECT_FALSE(shortest_path(g, a, a).has_value());
}

TEST(Routing, MeshPathsSkipsUnreachablePairs) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node(), c = g.add_node();
  g.add_link(a, b);
  g.add_link(b, a);
  const auto paths = mesh_paths(g, {a, b, c});
  EXPECT_EQ(paths.size(), 2u);  // a<->b only
}

TEST(Routing, RejectsNonPositiveWeights) {
  Graph g;
  const NodeId a = g.add_node(), b = g.add_node();
  g.add_link(a, b);
  EXPECT_THROW(shortest_path(g, a, b, {0.0}), Error);
  EXPECT_THROW(shortest_path(g, a, b, {1.0, 2.0}), Error);
}

// ---------------------------------------------------------- serialize ----

TEST(Serialize, RoundTrip) {
  auto sys = tomo::testing::figure_1a();
  MeasuredSystem ms;
  ms.graph = sys.graph;
  ms.paths = sys.paths;
  ms.partition = sys.sets.partition();
  std::stringstream buffer;
  write_system(buffer, ms);
  const MeasuredSystem loaded = read_system(buffer);
  EXPECT_EQ(loaded.graph.node_count(), ms.graph.node_count());
  EXPECT_EQ(loaded.graph.link_count(), ms.graph.link_count());
  ASSERT_EQ(loaded.paths.size(), ms.paths.size());
  for (std::size_t p = 0; p < ms.paths.size(); ++p) {
    EXPECT_EQ(loaded.paths[p].links(), ms.paths[p].links());
  }
  EXPECT_EQ(loaded.partition, ms.partition);
}

TEST(Serialize, RejectsMissingHeader) {
  std::stringstream buffer("node 0 a\n");
  EXPECT_THROW(read_system(buffer), Error);
}

TEST(Serialize, RejectsDanglingReferences) {
  std::stringstream buffer(
      "tomo-topology v1\nnode 0 a\nnode 1 b\nlink 0 0 5\n");
  EXPECT_THROW(read_system(buffer), Error);
}

TEST(Serialize, RejectsSparseIds) {
  std::stringstream buffer("tomo-topology v1\nnode 3 a\n");
  EXPECT_THROW(read_system(buffer), Error);
}

TEST(Serialize, IgnoresCommentsAndBlankLines) {
  std::stringstream buffer(
      "# a comment\n\ntomo-topology v1\nnode 0 a # trailing\nnode 1 b\n"
      "link 0 0 1\npath 0 0\n");
  const MeasuredSystem ms = read_system(buffer);
  EXPECT_EQ(ms.graph.node_count(), 2u);
  EXPECT_EQ(ms.paths.size(), 1u);
}

}  // namespace
}  // namespace tomo::graph
