// Property-based suites: parameterized sweeps over random instances
// checking invariants that must hold for *every* seed, not just a fixture.
#include <gtest/gtest.h>

#include <cmath>

#include "core/correlation_algorithm.hpp"
#include "core/equations.hpp"
#include "core/theorem_algorithm.hpp"
#include "corr/joint_table.hpp"
#include "corr/model_factory.hpp"
#include "graph/coverage.hpp"
#include "linalg/qr.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "topogen/planetlab_like.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo {
namespace {

// Builds a random small measured system + correlated truth from a seed.
struct RandomInstance {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  corr::CorrelationSets sets;
  std::unique_ptr<corr::CongestionModel> truth;
};

RandomInstance make_random_instance(std::uint64_t seed) {
  topogen::PlanetLabParams params;
  params.routers = 40;
  params.vantage_points = 6;
  params.cluster_size = 3;
  params.seed = seed;
  auto topo = topogen::generate_planetlab_like(params);

  RandomInstance inst;
  inst.graph = std::move(topo.graph);
  inst.paths = std::move(topo.paths);
  inst.sets =
      corr::CorrelationSets(inst.graph.link_count(), topo.partition);

  Rng rng(mix_seed(seed, 0xfeed));
  const std::size_t congested_count =
      std::max<std::size_t>(1, inst.graph.link_count() / 8);
  std::vector<graph::LinkId> congested;
  for (std::size_t idx :
       rng.sample_without_replacement(inst.graph.link_count(),
                                      congested_count)) {
    congested.push_back(idx);
  }
  std::sort(congested.begin(), congested.end());
  std::vector<double> marginals(congested.size());
  for (double& m : marginals) m = rng.uniform(0.1, 0.5);
  inst.truth = corr::make_clustered_shock_model(inst.sets, congested,
                                                marginals, 0.7);
  return inst;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(SeedSweep, EquationsHoldForTrueLogProbabilities) {
  // Property: every equation the builder accepts is *exactly* satisfied by
  // the ground-truth log-probabilities when measurements are exact.
  const RandomInstance inst = make_random_instance(GetParam());
  const graph::CoverageIndex cov(inst.graph, inst.paths);
  const sim::OracleMeasurement oracle(*inst.truth, cov);
  const core::EquationSystem eq =
      core::build_equations(cov, inst.sets, oracle);
  linalg::Vector x_true(inst.graph.link_count());
  for (graph::LinkId e = 0; e < x_true.size(); ++e) {
    x_true[e] = std::log(inst.truth->prob_all_good({e}));
  }
  const linalg::Vector lhs = eq.matrix().multiply(x_true);
  for (std::size_t i = 0; i < eq.rhs().size(); ++i) {
    ASSERT_NEAR(lhs[i], eq.rhs()[i], 1e-9) << "equation " << i;
  }
}

TEST_P(SeedSweep, AcceptedEquationsAreLinearlyIndependent) {
  const RandomInstance inst = make_random_instance(GetParam());
  const graph::CoverageIndex cov(inst.graph, inst.paths);
  const sim::OracleMeasurement oracle(*inst.truth, cov);
  core::EquationBuildOptions opts;
  opts.include_redundant = false;  // the minimal §4 system
  const core::EquationSystem eq =
      core::build_equations(cov, inst.sets, oracle, opts);
  ASSERT_GT(eq.matrix().rows(), 0u);
  EXPECT_EQ(linalg::QrDecomposition(eq.matrix().transposed()).rank(), eq.matrix().rows());
  EXPECT_EQ(eq.rank, eq.matrix().rows());
  EXPECT_LE(eq.rank, inst.graph.link_count());
}

TEST_P(SeedSweep, OracleInferenceRecoversIdentifiableMarginals) {
  // Property: with exact measurements and a full-rank system the inferred
  // marginals match truth; with rank deficiency the inferred marginals
  // still stay in [0,1] and match truth on links covered by equations.
  const RandomInstance inst = make_random_instance(GetParam());
  const graph::CoverageIndex cov(inst.graph, inst.paths);
  const sim::OracleMeasurement oracle(*inst.truth, cov);
  const core::InferenceResult r = core::infer_congestion(
      inst.graph, inst.paths, cov, inst.sets, oracle);
  for (double p : r.congestion_prob) {
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
  }
  if (r.system.full_rank()) {
    for (graph::LinkId e = 0; e < inst.graph.link_count(); ++e) {
      ASSERT_NEAR(r.congestion_prob[e], inst.truth->marginal(e), 1e-5)
          << "link " << e;
    }
  }
}

TEST_P(SeedSweep, ModelStateProbabilitiesFormDistributions) {
  // Property: each correlation set's state probabilities are a valid
  // probability distribution, and tabulating the model preserves all
  // queries (round-trip through JointTableModel).
  const RandomInstance inst = make_random_instance(GetParam());
  bool tabulable = true;
  for (std::size_t s = 0; s < inst.sets.set_count(); ++s) {
    tabulable &= inst.sets.set(s).size() <= 12;
  }
  if (!tabulable) GTEST_SKIP() << "sets too large to tabulate";
  const corr::JointTableModel table =
      corr::JointTableModel::from_model(*inst.truth);
  for (graph::LinkId e = 0; e < inst.graph.link_count(); ++e) {
    ASSERT_NEAR(table.marginal(e), inst.truth->marginal(e), 1e-9);
  }
}

TEST_P(SeedSweep, SimulatedFrequenciesMatchOracle) {
  const RandomInstance inst = make_random_instance(GetParam());
  const graph::CoverageIndex cov(inst.graph, inst.paths);
  const sim::OracleMeasurement oracle(*inst.truth, cov);
  sim::SimulatorConfig config;
  config.snapshots = 4000;
  config.mode = sim::PacketMode::kExact;
  config.seed = mix_seed(GetParam(), 0xabc);
  const auto simr =
      sim::simulate(inst.graph, inst.paths, *inst.truth, config);
  const sim::EmpiricalMeasurement meas(simr.observations());
  // Single-path good frequencies track the oracle within sampling noise.
  for (graph::PathId p = 0; p < inst.paths.size(); ++p) {
    ASSERT_NEAR(meas.good_prob(p), oracle.good_prob(p), 0.05)
        << "path " << p;
  }
}

TEST_P(SeedSweep, TheoremAlgorithmMatchesOracleOnTinyInstances) {
  // Shrink until the theorem algorithm's guards accept the instance.
  topogen::PlanetLabParams params;
  params.routers = 12;
  params.vantage_points = 4;
  params.cluster_size = 2;
  params.seed = GetParam();
  auto topo = topogen::generate_planetlab_like(params);
  if (topo.graph.link_count() > 16) GTEST_SKIP() << "instance too large";
  corr::CorrelationSets sets(topo.graph.link_count(), topo.partition);

  Rng rng(mix_seed(GetParam(), 0xbeef));
  std::vector<graph::LinkId> congested;
  std::vector<double> marginals;
  for (graph::LinkId e = 0; e < topo.graph.link_count(); ++e) {
    if (rng.bernoulli(0.4)) {
      congested.push_back(e);
      marginals.push_back(rng.uniform(0.1, 0.4));
    }
  }
  if (congested.empty()) {
    congested.push_back(0);
    marginals.push_back(0.2);
  }
  auto truth =
      corr::make_clustered_shock_model(sets, congested, marginals, 0.6);
  const graph::CoverageIndex cov(topo.graph, topo.paths);
  const sim::OracleMeasurement oracle(*truth, cov, /*max_total_links=*/16);
  core::TheoremResult r;
  try {
    r = core::run_theorem_algorithm(cov, sets, oracle,
                                    {/*max_set_size=*/16, /*max_links=*/16});
  } catch (const Error&) {
    GTEST_SKIP() << "Assumption 4 does not hold for this seed";
  }
  for (graph::LinkId e = 0; e < topo.graph.link_count(); ++e) {
    ASSERT_NEAR(r.congestion_prob[e], truth->marginal(e), 1e-6)
        << "link " << e;
  }
}

}  // namespace
}  // namespace tomo
