// Integration tests driving the tomo_cli binary end to end: generate a
// topology, check it, simulate congestion, infer, merge, localize — the
// full workflow a user runs, through the real executable.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef TOMO_CLI_PATH
#error "TOMO_CLI_PATH must be defined by the build"
#endif

namespace {

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string command =
      std::string(TOMO_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe)) {
    output += buffer;
  }
  const int status = pclose(pipe);
  return {WEXITSTATUS(status), output};
}

// Unique per test process: ctest -j runs every discovered case as its own
// process, and each one re-runs SetUpTestSuite — shared fixed names made
// concurrent processes clobber each other's files (the old CliWorkflow
// parallel flake).
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid());
}

class CliWorkflow : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = new std::string(temp_path("cli_topo.txt"));
    obs_ = new std::string(temp_path("cli_obs.txt"));
    const CommandResult gen = run_cli(
        "gen --kind planetlab --size 60 --endpoints 6 --seed 3 --out " +
        *topo_);
    ASSERT_EQ(gen.exit_code, 0) << gen.output;
    const CommandResult sim = run_cli(
        "simulate --snapshots 300 --packets 500 --topology " + *topo_ +
        " --out " + *obs_);
    ASSERT_EQ(sim.exit_code, 0) << sim.output;
  }
  static void TearDownTestSuite() {
    std::remove(topo_->c_str());
    std::remove(obs_->c_str());
    delete topo_;
    delete obs_;
  }
  static std::string* topo_;
  static std::string* obs_;
};

std::string* CliWorkflow::topo_ = nullptr;
std::string* CliWorkflow::obs_ = nullptr;

TEST_F(CliWorkflow, GenWritesParsableTopology) {
  std::ifstream is(*topo_);
  ASSERT_TRUE(is.good());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "tomo-topology v1");
}

TEST_F(CliWorkflow, CheckReportsIdentifiability) {
  const CommandResult r = run_cli("check --topology " + *topo_);
  // Exit code 0 (holds) or 1 (violated) — both are valid reports.
  EXPECT_LE(r.exit_code, 1);
  EXPECT_NE(r.output.find("correlation sets"), std::string::npos);
}

TEST_F(CliWorkflow, InferPrintsPerLinkTable) {
  const CommandResult r = run_cli("infer --topology " + *topo_ +
                                  " --obs " + *obs_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("congestion_prob"), std::string::npos);
  EXPECT_NE(r.output.find("equations:"), std::string::npos);
}

TEST_F(CliWorkflow, InferCsvAndBaselineModes) {
  const CommandResult csv = run_cli("infer --csv --topology " + *topo_ +
                                    " --obs " + *obs_);
  EXPECT_EQ(csv.exit_code, 0);
  EXPECT_NE(csv.output.find("link,src,dst,congestion_prob"),
            std::string::npos);
  const CommandResult ind = run_cli("infer --independent --topology " +
                                    *topo_ + " --obs " + *obs_);
  EXPECT_EQ(ind.exit_code, 0) << ind.output;
}

TEST_F(CliWorkflow, InferWithBootstrapIntervals) {
  const CommandResult r = run_cli("infer --bootstrap 10 --topology " +
                                  *topo_ + " --obs " + *obs_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ci90_lo"), std::string::npos);
}

TEST_F(CliWorkflow, MergeWritesTransformedTopology) {
  const std::string out = temp_path("cli_merged.txt");
  const CommandResult r = run_cli("merge --topology " + *topo_ +
                                  " --out " + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  {
    std::ifstream is(out);
    EXPECT_TRUE(is.good());
  }
  std::remove(out.c_str());
}

TEST_F(CliWorkflow, LocalizeReportsLinks) {
  const CommandResult r = run_cli("localize --snapshot 5 --topology " +
                                  *topo_ + " --obs " + *obs_);
  EXPECT_LE(r.exit_code, 1);  // 1 = infeasible snapshot (noise), still ok
  EXPECT_NE(r.output.find("congested path"), std::string::npos);
}

TEST(CliErrors, UnknownSubcommandFails) {
  const CommandResult r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(CliErrors, MissingFileIsReportedCleanly) {
  const CommandResult r = run_cli("infer --topology /nonexistent.txt");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("tomo_cli:"), std::string::npos);
}

TEST(CliErrors, HelpExitsZero) {
  const CommandResult r = run_cli("gen --help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--kind"), std::string::npos);
}

}  // namespace
