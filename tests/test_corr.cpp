#include <gtest/gtest.h>

#include <cmath>

#include "corr/common_shock.hpp"
#include "corr/correlation.hpp"
#include "corr/cross_set_shock.hpp"
#include "corr/joint_table.hpp"
#include "corr/model_factory.hpp"
#include "corr/router_derived.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo::corr {
namespace {

// Empirical frequency of an event over many samples of a model.
template <typename Pred>
double frequency(const CongestionModel& model, Pred pred, int n = 200000,
                 std::uint64_t seed = 4242) {
  Rng rng(seed);
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (pred(model.sample(rng))) ++hits;
  }
  return static_cast<double>(hits) / n;
}

// --------------------------------------------------- correlation sets ----

TEST(CorrelationSets, PartitionValidation) {
  EXPECT_NO_THROW(CorrelationSets(3, {{0, 2}, {1}}));
  EXPECT_THROW(CorrelationSets(3, {{0}, {1}}), Error);        // missing 2
  EXPECT_THROW(CorrelationSets(3, {{0, 1}, {1, 2}}), Error);  // duplicate
  EXPECT_THROW(CorrelationSets(3, {{0, 1, 2}, {}}), Error);   // empty cell
  EXPECT_THROW(CorrelationSets(2, {{0, 5}}), Error);          // unknown link
}

TEST(CorrelationSets, SetOfAndMayBeCorrelated) {
  CorrelationSets sets(4, {{0, 1}, {2}, {3}});
  EXPECT_EQ(sets.set_of(0), sets.set_of(1));
  EXPECT_NE(sets.set_of(0), sets.set_of(2));
  EXPECT_TRUE(sets.may_be_correlated(0, 1));
  EXPECT_FALSE(sets.may_be_correlated(1, 2));
  EXPECT_TRUE(sets.may_be_correlated(2, 2));
}

TEST(CorrelationSets, CorrelationFree) {
  CorrelationSets sets(4, {{0, 1}, {2}, {3}});
  EXPECT_TRUE(sets.correlation_free({0, 2, 3}));
  EXPECT_FALSE(sets.correlation_free({0, 1}));
  EXPECT_TRUE(sets.correlation_free({}));
  EXPECT_TRUE(sets.correlation_free({2}));
}

TEST(CorrelationSets, SingletonsFactory) {
  const auto sets = CorrelationSets::singletons(5);
  EXPECT_EQ(sets.set_count(), 5u);
  EXPECT_TRUE(sets.correlation_free({0, 1, 2, 3, 4}));
}

TEST(CorrelationSets, SubsetEnumerationMatchesPaper) {
  // Figure 1(a): C-tilde = {{e1},{e2},{e1,e2},{e3},{e4}} — 5 subsets.
  auto sys = tomo::testing::figure_1a();
  const auto subsets = enumerate_correlation_subsets(sys.sets);
  EXPECT_EQ(subsets.size(), 5u);
}

TEST(CorrelationSets, SubsetEnumerationGuard) {
  std::vector<graph::LinkId> big(25);
  graph::LinkPartition partition(1);
  for (std::size_t i = 0; i < big.size(); ++i) partition[0].push_back(i);
  CorrelationSets sets(25, partition);
  EXPECT_THROW(enumerate_correlation_subsets(sets, 20), Error);
}

// --------------------------------------------------- independent model ----

TEST(IndependentModel, MarginalsMatchInput) {
  auto model = make_independent({0.1, 0.5, 0.9});
  EXPECT_NEAR(model->marginal(0), 0.1, 1e-12);
  EXPECT_NEAR(model->marginal(1), 0.5, 1e-12);
  EXPECT_NEAR(model->marginal(2), 0.9, 1e-12);
}

TEST(IndependentModel, ProbAllGoodFactorizes) {
  auto model = make_independent({0.1, 0.2, 0.3});
  EXPECT_NEAR(model->prob_all_good({0, 1, 2}), 0.9 * 0.8 * 0.7, 1e-12);
  EXPECT_NEAR(model->prob_all_good({}), 1.0, 1e-12);
}

TEST(IndependentModel, SampleFrequencies) {
  auto model = make_independent({0.25, 0.0, 1.0});
  const double f0 =
      frequency(*model, [](const auto& s) { return s[0] == 1; }, 100000);
  EXPECT_NEAR(f0, 0.25, 0.01);
  const double f1 =
      frequency(*model, [](const auto& s) { return s[1] == 1; }, 1000);
  EXPECT_DOUBLE_EQ(f1, 0.0);
  const double f2 =
      frequency(*model, [](const auto& s) { return s[2] == 1; }, 1000);
  EXPECT_DOUBLE_EQ(f2, 1.0);
}

TEST(IndependentModel, SetStateProbInclusionExclusion) {
  auto model = make_independent({0.3});
  EXPECT_NEAR(model->set_state_prob(0, {0}), 0.3, 1e-12);
  EXPECT_NEAR(model->set_state_prob(0, {}), 0.7, 1e-12);
}

// --------------------------------------------------- joint table model ----

TEST(JointTableModel, WithinSetAllGood) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  // Set 0 = {e1,e2}: P(both good) = 0.65, P(e1 good) = 0.65 + 0.05 = 0.7.
  EXPECT_NEAR(model->within_set_all_good(0, {0, 1}), 0.65, 1e-12);
  EXPECT_NEAR(model->within_set_all_good(0, {0}), 0.70, 1e-12);
  EXPECT_NEAR(model->within_set_all_good(0, {1}), 0.75, 1e-12);
}

TEST(JointTableModel, MarginalsAndJointAreCorrelated) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  EXPECT_NEAR(model->marginal(0), 0.30, 1e-12);
  EXPECT_NEAR(model->marginal(1), 0.25, 1e-12);
  // Joint congestion 0.20 != 0.075 = product of marginals: correlated.
  EXPECT_NEAR(model->set_state_prob(0, {0, 1}), 0.20, 1e-12);
}

TEST(JointTableModel, CrossSetIndependence) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  EXPECT_NEAR(model->prob_all_good({0, 2}),
              model->prob_all_good({0}) * model->prob_all_good({2}), 1e-12);
}

TEST(JointTableModel, SamplingMatchesTable) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  const double both = frequency(
      *model, [](const auto& s) { return s[0] == 1 && s[1] == 1; });
  EXPECT_NEAR(both, 0.20, 0.005);
  const double e3 =
      frequency(*model, [](const auto& s) { return s[2] == 1; });
  EXPECT_NEAR(e3, 0.15, 0.005);
}

TEST(JointTableModel, FromModelRoundTrip) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  const JointTableModel tabulated = JointTableModel::from_model(*model);
  for (std::uint32_t mask = 0; mask < 4; ++mask) {
    EXPECT_NEAR(tabulated.state_prob(0, mask), model->state_prob(0, mask),
                1e-9);
  }
}

TEST(JointTableModel, ValidatesDistribution) {
  CorrelationSets sets(1, {{0}});
  SetDistribution bad;
  bad.prob = {0.5, 0.6};  // sums to 1.1
  EXPECT_THROW(
      JointTableModel(sets, std::vector<SetDistribution>{bad}), Error);
  SetDistribution wrong_size;
  wrong_size.prob = {1.0};
  EXPECT_THROW(
      JointTableModel(sets, std::vector<SetDistribution>{wrong_size}),
      Error);
}

// -------------------------------------------------- common shock model ----

TEST(CommonShockModel, ClosedFormMatchesSampling) {
  CorrelationSets sets(3, {{0, 1, 2}});
  std::vector<Shock> shocks(1);
  shocks[0].rho = 0.2;
  shocks[0].members = {0, 1};
  CommonShockModel model(sets, {0.1, 0.1, 0.3}, shocks);
  // P(0 and 1 good) = (1-0.1)^2 * (1-0.2).
  EXPECT_NEAR(model.within_set_all_good(0, {0, 1}), 0.81 * 0.8, 1e-12);
  // Link 2 is not shock-exposed.
  EXPECT_NEAR(model.within_set_all_good(0, {2}), 0.7, 1e-12);
  const double f = frequency(
      model, [](const auto& s) { return s[0] == 0 && s[1] == 0; });
  EXPECT_NEAR(f, 0.81 * 0.8, 0.005);
}

TEST(CommonShockModel, ShockCorrelatesMembers) {
  CorrelationSets sets(2, {{0, 1}});
  std::vector<Shock> shocks(1);
  shocks[0].rho = 0.3;
  shocks[0].members = {0, 1};
  CommonShockModel model(sets, {0.0, 0.0}, shocks);
  // Links congest only together (via the shock).
  const double joint = model.set_state_prob(0, {0, 1});
  EXPECT_NEAR(joint, 0.3, 1e-12);
  EXPECT_NEAR(model.set_state_prob(0, {0}), 0.0, 1e-12);
}

TEST(CommonShockModel, BaseForMarginalInverts) {
  const double target = 0.4, rho = 0.25;
  const double base = CommonShockModel::base_for_marginal(target, rho, true);
  EXPECT_NEAR(1.0 - (1.0 - base) * (1.0 - rho), target, 1e-12);
  EXPECT_DOUBLE_EQ(CommonShockModel::base_for_marginal(0.4, 0.25, false),
                   0.4);
  EXPECT_THROW(CommonShockModel::base_for_marginal(0.1, 0.25, true), Error);
}

TEST(CommonShockModel, RejectsForeignShockMembers) {
  CorrelationSets sets(2, {{0}, {1}});
  std::vector<Shock> shocks(2);
  shocks[0].rho = 0.1;
  shocks[0].members = {1};  // link 1 is not in set 0
  EXPECT_THROW(CommonShockModel(sets, {0.1, 0.1}, shocks), Error);
}

// ------------------------------------------------- router derived model ----

TEST(RouterDerivedModel, SharedRouterLinkCorrelates) {
  // Two logical links share router link 0; a third is independent.
  CorrelationSets sets(3, {{0, 1}, {2}});
  RouterDerivedModel model(sets, {{0, 1}, {0, 2}, {3}}, {0.2, 0.1, 0.1, 0.3});
  // P(link0 good) = (1-0.2)(1-0.1) = 0.72.
  EXPECT_NEAR(model.prob_all_good({0}), 0.72, 1e-12);
  // P(link0 and link1 good) counts the shared router link once.
  EXPECT_NEAR(model.within_set_all_good(0, {0, 1}), 0.8 * 0.9 * 0.9, 1e-12);
  // Correlation: joint good != product of marginals.
  EXPECT_GT(model.within_set_all_good(0, {0, 1}),
            model.prob_all_good({0}) * model.prob_all_good({1}) + 1e-6);
}

TEST(RouterDerivedModel, SamplingMatchesClosedForm) {
  CorrelationSets sets(2, {{0, 1}});
  RouterDerivedModel model(sets, {{0, 1}, {0}}, {0.3, 0.2});
  const double f = frequency(
      model, [](const auto& s) { return s[0] == 0 && s[1] == 0; });
  EXPECT_NEAR(f, 0.7 * 0.8, 0.005);
}

TEST(RouterDerivedModel, RejectsCrossSetSharing) {
  CorrelationSets sets(2, {{0}, {1}});
  EXPECT_THROW(RouterDerivedModel(sets, {{0}, {0}}, {0.1}), Error);
}

TEST(RouterDerivedModel, RejectsEmptyUnderlying) {
  CorrelationSets sets(1, {{0}});
  EXPECT_THROW(RouterDerivedModel(sets, {{}}, {0.1}), Error);
}

// ------------------------------------------------- cross-set shock model ----

TEST(CrossSetShockModel, CreatesCrossSetCorrelation) {
  auto inner = make_independent({0.1, 0.1});
  CrossSetShockModel model(std::move(inner), {0, 1}, 0.3);
  // True joint: P(both good) = (0.9*0.9)*(1-0.3).
  EXPECT_NEAR(model.prob_all_good({0, 1}), 0.81 * 0.7, 1e-12);
  // Marginals rise accordingly.
  EXPECT_NEAR(model.marginal(0), 1.0 - 0.9 * 0.7, 1e-12);
  const double f = frequency(
      model, [](const auto& s) { return s[0] == 0 && s[1] == 0; });
  EXPECT_NEAR(f, 0.81 * 0.7, 0.005);
}

TEST(CrossSetShockModel, DeclaredSetsStayInnocent) {
  auto inner = make_independent({0.1, 0.1});
  const CorrelationSets& declared = inner->sets();
  EXPECT_EQ(declared.set_count(), 2u);
  CrossSetShockModel model(std::move(inner), {0, 1}, 0.3);
  // The declared structure still claims independence — that is the point.
  EXPECT_EQ(model.sets().set_count(), 2u);
}

TEST(CrossSetShockModel, NonTargetLinksUnaffected) {
  auto inner = make_independent({0.1, 0.2, 0.3});
  CrossSetShockModel model(std::move(inner), {0}, 0.4);
  EXPECT_NEAR(model.marginal(1), 0.2, 1e-12);
  EXPECT_NEAR(model.marginal(2), 0.3, 1e-12);
}

// ------------------------------------------------------- model factory ----

TEST(ModelFactory, ClusteredShockHitsTargetMarginals) {
  CorrelationSets sets(5, {{0, 1, 2}, {3}, {4}});
  const std::vector<graph::LinkId> congested{0, 1, 3};
  const std::vector<double> targets{0.4, 0.3, 0.5};
  auto model =
      make_clustered_shock_model(sets, congested, targets, 0.8);
  EXPECT_NEAR(model->marginal(0), 0.4, 1e-9);
  EXPECT_NEAR(model->marginal(1), 0.3, 1e-9);
  EXPECT_NEAR(model->marginal(3), 0.5, 1e-9);
  EXPECT_NEAR(model->marginal(2), 0.0, 1e-12);  // not congested
  EXPECT_NEAR(model->marginal(4), 0.0, 1e-12);
}

TEST(ModelFactory, ClusteredShockInducesPositiveCorrelation) {
  CorrelationSets sets(2, {{0, 1}});
  auto model = make_clustered_shock_model(sets, {0, 1}, {0.4, 0.4}, 0.8);
  const double joint_congested =
      1.0 - model->prob_all_good({0}) - model->prob_all_good({1}) +
      model->prob_all_good({0, 1});
  EXPECT_GT(joint_congested, 0.4 * 0.4 + 0.05);
}

TEST(ModelFactory, SingleCongestedLinkGetsNoShock) {
  CorrelationSets sets(2, {{0, 1}});
  auto model = make_clustered_shock_model(sets, {0}, {0.4}, 0.8);
  EXPECT_NEAR(model->marginal(0), 0.4, 1e-12);
  // With one congested link there is nothing to correlate with.
  EXPECT_NEAR(model->prob_all_good({0, 1}), 0.6, 1e-12);
}

TEST(ModelFactory, RejectsDuplicateCongestedLinks) {
  CorrelationSets sets(2, {{0, 1}});
  EXPECT_THROW(
      make_clustered_shock_model(sets, {0, 0}, {0.4, 0.4}, 0.5), Error);
}

}  // namespace
}  // namespace tomo::corr
