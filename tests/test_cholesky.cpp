#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo::linalg {
namespace {

TEST(Cholesky, FactorizesAndSolvesSpdSystem) {
  Matrix a{{4, 2}, {2, 3}};
  const CholeskyDecomposition chol(a);
  const Vector x = chol.solve({10, 8});
  EXPECT_NEAR(a.multiply(x)[0], 10.0, 1e-10);
  EXPECT_NEAR(a.multiply(x)[1], 8.0, 1e-10);
  // L is lower triangular with positive diagonal.
  EXPECT_GT(chol.factor()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(chol.factor()(0, 1), 0.0);
}

TEST(Cholesky, RejectsNonSpd) {
  Matrix not_pd{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyDecomposition{not_pd}, Error);
  Matrix rect(2, 3);
  EXPECT_THROW(CholeskyDecomposition{rect}, Error);
}

TEST(Cholesky, FactorReproducesMatrix) {
  Rng rng(9);
  const std::size_t n = 6;
  // Random SPD: M = B B^T + n I.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = (i == j) ? static_cast<double>(n) : 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += b(i, k) * b(j, k);
      m(i, j) = sum;
    }
  }
  const CholeskyDecomposition chol(m);
  const Matrix& l = chol.factor();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += l(i, k) * l(j, k);
      EXPECT_NEAR(sum, m(i, j), 1e-9);
    }
  }
}

TEST(NormalEquations, MatchesQrOnWellConditionedProblems) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 15, n = 6;
    Matrix a(m, n);
    Vector b(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
      b[i] = rng.uniform(-1, 1);
    }
    const Vector x_qr = least_squares(a, b);
    const Vector x_ne = normal_equations_least_squares(a, b);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(x_ne[j], x_qr[j], 1e-7);
    }
  }
}

TEST(NormalEquations, RidgeHandlesRankDeficiency) {
  Matrix a{{1, 1}, {2, 2}, {3, 3}};  // rank 1
  EXPECT_THROW(normal_equations_least_squares(a, {1, 2, 3}), Error);
  const Vector x = normal_equations_least_squares(a, {1, 2, 3}, 1e-6);
  // Regularized solution splits the weight symmetrically.
  EXPECT_NEAR(x[0], x[1], 1e-9);
  const Vector ax = a.multiply(x);
  EXPECT_NEAR(ax[0], 1.0, 1e-3);
}

TEST(NormalEquations, ExactOnConsistentSystems) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const Vector x = normal_equations_least_squares(a, {2, 3, 5});
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

}  // namespace
}  // namespace tomo::linalg
