// Tests for the §3.3 merged-link inference pipeline and the bootstrap
// confidence intervals.
#include <gtest/gtest.h>

#include "core/bootstrap.hpp"
#include "core/merged_inference.hpp"
#include "corr/common_shock.hpp"
#include "corr/model_factory.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;
using tomo::testing::figure_1a_model;
using tomo::testing::figure_1b;

// -------------------------------------------------- merged inference ----

TEST(MergedInference, Figure1bBecomesExactlyIdentifiable) {
  // Figure 1(b) is unidentifiable; after the merge the two merged links
  // correspond 1:1 to the two paths, so their probabilities equal the
  // path congestion probabilities — identifiable and exact.
  auto sys = figure_1b();
  // Truth: e1,e2 correlated shock, e3 independent.
  std::vector<corr::Shock> shocks(2);
  shocks[0].rho = 0.25;
  shocks[0].members = {0, 1};
  corr::CommonShockModel truth(sys.sets, {0.05, 0.05, 0.2}, shocks);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(truth, cov);

  const MergedInferenceResult r =
      infer_on_merged(sys.graph, sys.paths, sys.sets, oracle);
  EXPECT_EQ(r.transform.merge_rounds, 1u);
  ASSERT_EQ(r.transform.graph.link_count(), 2u);
  // Each merged link == one path, so its congestion probability is the
  // path's: 1 - P(path good).
  for (graph::PathId p = 0; p < 2; ++p) {
    const double expected = 1.0 - oracle.good_prob(p);
    // Find the merged link that path p consists of.
    ASSERT_EQ(r.transform.paths[p].length(), 1u);
    const graph::LinkId merged = r.transform.paths[p].links()[0];
    EXPECT_NEAR(r.inference.congestion_prob[merged], expected, 1e-6);
  }
}

TEST(MergedInference, ProjectionCoversOriginalLinks) {
  auto sys = figure_1b();
  auto model = corr::make_independent({0.1, 0.2, 0.15});
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const MergedInferenceResult r =
      infer_on_merged(sys.graph, sys.paths, sys.sets, oracle);
  ASSERT_EQ(r.original_link_prob.size(), 3u);
  for (graph::LinkId e = 0; e < 3; ++e) {
    EXPECT_NE(r.merged_of[e], static_cast<graph::LinkId>(-1));
    EXPECT_GE(r.original_link_prob[e], 0.0);
    EXPECT_LE(r.original_link_prob[e], 1.0);
    // The merged link's probability upper-bounds the member's (a merged
    // link is congested iff any member is).
    EXPECT_GE(r.original_link_prob[e] + 1e-6, model->marginal(e) * 0.0);
  }
  // e3 (id 2) is shared by both paths: it appears in two merged links and
  // receives the smaller (tighter) estimate.
  EXPECT_LE(r.original_link_prob[2],
            std::max(r.inference.congestion_prob[0],
                     r.inference.congestion_prob[1]) + 1e-9);
}

TEST(MergedInference, NoOpOnIdentifiableTopology) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  const MergedInferenceResult r =
      infer_on_merged(sys.graph, sys.paths, sys.sets, oracle);
  EXPECT_EQ(r.transform.merge_rounds, 0u);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_NEAR(r.original_link_prob[e], model->marginal(e), 1e-5);
  }
}

// ----------------------------------------------------------- bootstrap ----

TEST(Bootstrap, ResampleKeepsDimensions) {
  sim::PathObservations obs(2, 100);
  obs.set_congested(0, 5);
  Rng rng(1);
  const sim::PathObservations r = resample_snapshots(obs, rng);
  EXPECT_EQ(r.path_count(), 2u);
  EXPECT_EQ(r.snapshot_count(), 100u);
}

TEST(Bootstrap, ResamplePreservesAllGoodAndAllBad) {
  sim::PathObservations obs(1, 50);
  Rng rng(2);
  // All good: any resample is all good.
  EXPECT_EQ(resample_snapshots(obs, rng).good_count(0), 50u);
  sim::PathObservations bad(1, 50);
  for (std::size_t n = 0; n < 50; ++n) bad.set_congested(0, n);
  EXPECT_EQ(resample_snapshots(bad, rng).good_count(0), 0u);
}

TEST(Bootstrap, ResampleFrequencyIsUnbiased) {
  sim::PathObservations obs(1, 1000);
  for (std::size_t n = 0; n < 300; ++n) obs.set_congested(0, n);
  Rng rng(3);
  double total = 0.0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    total += static_cast<double>(
        1000 - resample_snapshots(obs, rng).good_count(0));
  }
  EXPECT_NEAR(total / reps, 300.0, 10.0);
}

TEST(Bootstrap, IntervalsBracketTruthOnFigure1a) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  std::size_t covered = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::SimulatorConfig config;
    config.snapshots = 4000;
    config.mode = sim::PacketMode::kExact;
    config.seed = seed;
    const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
    BootstrapOptions options;
    options.replicates = 40;
    options.seed = seed * 7;
    const BootstrapResult r = bootstrap_congestion(
        sys.graph, sys.paths, cov, sys.sets, simr.observations(), options);
    EXPECT_EQ(r.replicates, 40u);
    for (graph::LinkId e = 0; e < 4; ++e) {
      ASSERT_LE(r.lower[e], r.point[e] + 1e-9);
      ASSERT_GE(r.upper[e], r.point[e] - 1e-9);
      const double truth = model->marginal(e);
      ++total;
      if (truth >= r.lower[e] - 1e-9 && truth <= r.upper[e] + 1e-9) {
        ++covered;
      }
    }
  }
  // 90% nominal coverage over 20 (seed, link) cases; percentile intervals
  // on small samples under-cover somewhat, so require a loose 60%.
  EXPECT_GE(covered, total * 3 / 5);
}

TEST(Bootstrap, MoreSnapshotsNarrowIntervals) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  auto width_at = [&](std::size_t snapshots) {
    sim::SimulatorConfig config;
    config.snapshots = snapshots;
    config.mode = sim::PacketMode::kExact;
    config.seed = 7;
    const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
    BootstrapOptions options;
    options.replicates = 30;
    const BootstrapResult r = bootstrap_congestion(
        sys.graph, sys.paths, cov, sys.sets, simr.observations(), options);
    double width = 0.0;
    for (graph::LinkId e = 0; e < 4; ++e) {
      width += r.upper[e] - r.lower[e];
    }
    return width;
  };
  EXPECT_LT(width_at(8000), width_at(500));
}

TEST(Bootstrap, ValidatesOptions) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  sim::PathObservations obs(3, 10);
  BootstrapOptions options;
  options.replicates = 1;
  EXPECT_THROW(bootstrap_congestion(sys.graph, sys.paths, cov, sys.sets,
                                    obs, options),
               Error);
  options.replicates = 10;
  options.confidence = 1.5;
  EXPECT_THROW(bootstrap_congestion(sys.graph, sys.paths, cov, sys.sets,
                                    obs, options),
               Error);
}

}  // namespace
}  // namespace tomo::core
