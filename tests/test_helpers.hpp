// Shared fixtures: the paper's two toy topologies (Figure 1) and small
// model builders used across test files.
#pragma once

#include <memory>
#include <vector>

#include "corr/correlation.hpp"
#include "corr/joint_table.hpp"
#include "graph/coverage.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace tomo::testing {

struct ToySystem {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  corr::CorrelationSets sets;
};

/// Figure 1(a): links e1..e4 (ids 0..3), paths P1={e1,e3}, P2={e2,e3},
/// P3={e2,e4}; correlation sets {{e1,e2},{e3},{e4}}. Assumption 4 holds.
inline ToySystem figure_1a() {
  ToySystem sys;
  const auto a = sys.graph.add_node("a");
  const auto b = sys.graph.add_node("b");
  const auto c = sys.graph.add_node("c");
  const auto d = sys.graph.add_node("d");
  const auto f = sys.graph.add_node("f");
  const auto e1 = sys.graph.add_link(a, b);
  const auto e2 = sys.graph.add_link(d, b);
  const auto e3 = sys.graph.add_link(b, c);
  const auto e4 = sys.graph.add_link(b, f);
  sys.paths.emplace_back(sys.graph, std::vector<graph::LinkId>{e1, e3});
  sys.paths.emplace_back(sys.graph, std::vector<graph::LinkId>{e2, e3});
  sys.paths.emplace_back(sys.graph, std::vector<graph::LinkId>{e2, e4});
  sys.sets = corr::CorrelationSets(4, {{e1, e2}, {e3}, {e4}});
  return sys;
}

/// Figure 1(b): links e1..e3 (ids 0..2), paths P1={e1,e3}, P2={e2,e3};
/// correlation sets {{e1,e2},{e3}}. Assumption 4 fails: ψ({e1,e2}) =
/// ψ({e3}) = {P1,P2}.
inline ToySystem figure_1b() {
  ToySystem sys;
  const auto a = sys.graph.add_node("a");
  const auto b = sys.graph.add_node("b");
  const auto c = sys.graph.add_node("c");
  const auto d = sys.graph.add_node("d");
  const auto e1 = sys.graph.add_link(a, b);
  const auto e2 = sys.graph.add_link(d, b);
  const auto e3 = sys.graph.add_link(b, c);
  sys.paths.emplace_back(sys.graph, std::vector<graph::LinkId>{e1, e3});
  sys.paths.emplace_back(sys.graph, std::vector<graph::LinkId>{e2, e3});
  sys.sets = corr::CorrelationSets(3, {{e1, e2}, {e3}});
  return sys;
}

/// A correlated joint model for Figure 1(a): e1,e2 positively correlated,
/// e3 and e4 independent. Marginals: P(e1)=0.3, P(e2)=0.25 (with joint
/// P(e1&e2)=0.2 > 0.075 = independence), P(e3)=0.15, P(e4)=0.4.
inline std::unique_ptr<corr::JointTableModel> figure_1a_model(
    const corr::CorrelationSets& sets) {
  // Set 0 = {e1,e2}: masks 00, 01 (e1), 10 (e2), 11.
  corr::SetDistribution d0;
  d0.prob = {0.65, 0.10, 0.05, 0.20};
  corr::SetDistribution d1;  // {e3}
  d1.prob = {0.85, 0.15};
  corr::SetDistribution d2;  // {e4}
  d2.prob = {0.60, 0.40};
  return std::make_unique<corr::JointTableModel>(
      sets, std::vector<corr::SetDistribution>{d0, d1, d2});
}

}  // namespace tomo::testing
