#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "corr/correlation.hpp"
#include "corr/router_derived.hpp"
#include "graph/coverage.hpp"
#include "graph/transform.hpp"
#include "topogen/barabasi_albert.hpp"
#include "topogen/generated.hpp"
#include "topogen/hierarchical.hpp"
#include "topogen/planetlab_like.hpp"
#include "topogen/traceroute.hpp"
#include "topogen/waxman.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo::topogen {
namespace {

bool is_connected_undirected(
    std::size_t nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  std::vector<std::vector<std::size_t>> adj(nodes);
  for (auto [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(nodes, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t u : adj[v]) {
      if (!seen[u]) {
        seen[u] = true;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == nodes;
}

// ----------------------------------------------------- Barabási-Albert ----

TEST(BarabasiAlbert, EdgeCountAndConnectivity) {
  Rng rng(1);
  const std::size_t n = 50, m = 2;
  const auto edges = barabasi_albert_edges(n, m, rng);
  // Seed clique of m+1 nodes plus m edges per remaining node.
  const std::size_t expected = m * (m + 1) / 2 + (n - m - 1) * m;
  EXPECT_EQ(edges.size(), expected);
  EXPECT_TRUE(is_connected_undirected(n, edges));
}

TEST(BarabasiAlbert, NoSelfLoopsOrDuplicatesPerNode) {
  Rng rng(2);
  const auto edges = barabasi_albert_edges(40, 3, rng);
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (auto [a, b] : edges) {
    EXPECT_NE(a, b);
    auto key = std::minmax(a, b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate edge " << a << "-" << b;
  }
}

TEST(BarabasiAlbert, HubsEmerge) {
  Rng rng(3);
  const auto edges = barabasi_albert_edges(200, 2, rng);
  std::vector<std::size_t> degree(200, 0);
  for (auto [a, b] : edges) {
    ++degree[a];
    ++degree[b];
  }
  const std::size_t max_degree =
      *std::max_element(degree.begin(), degree.end());
  EXPECT_GE(max_degree, 10u);  // preferential attachment grows hubs
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  Rng rng(4);
  EXPECT_THROW(barabasi_albert_edges(2, 2, rng), Error);
  EXPECT_THROW(barabasi_albert_edges(10, 0, rng), Error);
}

TEST(BarabasiAlbert, DirectedConversion) {
  Rng rng(5);
  const auto edges = barabasi_albert_edges(10, 2, rng);
  const graph::Graph g = to_directed_graph(10, edges, "x");
  EXPECT_EQ(g.link_count(), 2 * edges.size());
  EXPECT_EQ(g.node_name(0), "x0");
}

// --------------------------------------------------------------- Waxman ----

TEST(Waxman, ConnectedAndSimple) {
  Rng rng(6);
  const auto edges = waxman_edges(80, WaxmanParams{}, rng);
  EXPECT_TRUE(is_connected_undirected(80, edges));
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (auto [a, b] : edges) {
    EXPECT_NE(a, b);
    auto key = std::minmax(a, b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(Waxman, DensityGrowsWithAlpha) {
  Rng rng1(7), rng2(7);
  const auto sparse = waxman_edges(60, {0.05, 0.2}, rng1);
  const auto dense = waxman_edges(60, {0.6, 0.2}, rng2);
  EXPECT_GT(dense.size(), sparse.size());
}

TEST(Waxman, RejectsBadParameters) {
  Rng rng(8);
  EXPECT_THROW(waxman_edges(1, WaxmanParams{}, rng), Error);
  EXPECT_THROW(waxman_edges(10, {0.0, 0.2}, rng), Error);
  EXPECT_THROW(waxman_edges(10, {0.5, 0.0}, rng), Error);
}

// ---------------------------------------------------------------- prune ----

TEST(Prune, DropsDarkLinksAndRemaps) {
  graph::Graph g;
  const auto a = g.add_node(), b = g.add_node(), c = g.add_node();
  const auto ab = g.add_link(a, b);
  g.add_link(a, c);  // never used
  const auto bc = g.add_link(b, c);
  std::vector<graph::Path> paths;
  paths.emplace_back(g, std::vector<graph::LinkId>{ab, bc});
  const PrunedSystem pruned = prune_to_covered(g, paths);
  EXPECT_EQ(pruned.graph.link_count(), 2u);
  EXPECT_EQ(pruned.link_map[ab], 0u);
  EXPECT_EQ(pruned.link_map[1], PrunedSystem::npos);
  const graph::CoverageIndex cov(pruned.graph, pruned.paths);
  EXPECT_TRUE(cov.all_links_covered());
}

// ----------------------------------------------------------- hierarchical ----

TEST(Hierarchical, ProducesValidMeasuredSystem) {
  HierarchicalParams params;
  params.as_nodes = 40;
  params.endpoints = 10;
  params.seed = 11;
  const GeneratedTopology topo = generate_hierarchical(params);
  EXPECT_GT(topo.graph.link_count(), 0u);
  EXPECT_GT(topo.paths.size(), 0u);
  const graph::CoverageIndex cov(topo.graph, topo.paths);
  EXPECT_TRUE(cov.all_links_covered());
  EXPECT_NO_THROW(graph::require_partition(topo.graph, topo.partition));
}

TEST(Hierarchical, CorrelationSetsRespectSizeCap) {
  HierarchicalParams params;
  params.as_nodes = 60;
  params.endpoints = 14;
  params.max_corrset_size = 6;
  params.seed = 12;
  const GeneratedTopology topo = generate_hierarchical(params);
  bool has_nontrivial = false;
  for (const auto& cell : topo.partition) {
    EXPECT_LE(cell.size(), 6u);
    has_nontrivial |= cell.size() >= 2;
  }
  EXPECT_TRUE(has_nontrivial);  // correlation must actually exist
}

TEST(Hierarchical, SharingDefinesThePartition) {
  HierarchicalParams params;
  params.as_nodes = 30;
  params.endpoints = 8;
  params.seed = 13;
  const GeneratedTopology topo = generate_hierarchical(params);
  corr::CorrelationSets sets(topo.graph.link_count(), topo.partition);
  // Two links share an underlying router link iff they are in the same set.
  for (graph::LinkId e1 = 0; e1 < topo.graph.link_count(); ++e1) {
    for (graph::LinkId e2 = e1 + 1; e2 < topo.graph.link_count(); ++e2) {
      bool share = false;
      for (std::size_t r1 : topo.underlying[e1]) {
        for (std::size_t r2 : topo.underlying[e2]) {
          share |= (r1 == r2);
        }
      }
      EXPECT_EQ(share, sets.set_of(e1) == sets.set_of(e2))
          << "links " << e1 << "," << e2;
    }
  }
}

TEST(Hierarchical, UnderlyingFeedsRouterDerivedModel) {
  HierarchicalParams params;
  params.as_nodes = 30;
  params.endpoints = 8;
  params.seed = 14;
  const GeneratedTopology topo = generate_hierarchical(params);
  corr::CorrelationSets sets(topo.graph.link_count(), topo.partition);
  std::vector<double> router_prob(topo.router_link_count, 0.02);
  EXPECT_NO_THROW(corr::RouterDerivedModel(sets, topo.underlying,
                                           router_prob));
}

TEST(Hierarchical, DeterministicInSeed) {
  HierarchicalParams params;
  params.seed = 15;
  const auto t1 = generate_hierarchical(params);
  const auto t2 = generate_hierarchical(params);
  EXPECT_EQ(t1.graph.link_count(), t2.graph.link_count());
  EXPECT_EQ(t1.paths.size(), t2.paths.size());
  EXPECT_EQ(t1.partition, t2.partition);
}

// ------------------------------------------------------------ planetlab ----

TEST(PlanetLab, ProducesValidMeasuredSystem) {
  PlanetLabParams params;
  params.routers = 80;
  params.vantage_points = 8;
  params.seed = 21;
  const GeneratedTopology topo = generate_planetlab_like(params);
  EXPECT_GT(topo.graph.link_count(), 0u);
  EXPECT_GT(topo.paths.size(), 0u);
  const graph::CoverageIndex cov(topo.graph, topo.paths);
  EXPECT_TRUE(cov.all_links_covered());
  EXPECT_NO_THROW(graph::require_partition(topo.graph, topo.partition));
}

TEST(PlanetLab, ClustersAreBoundedAndContiguous) {
  PlanetLabParams params;
  params.routers = 80;
  params.vantage_points = 8;
  params.cluster_size = 4;
  params.seed = 22;
  const GeneratedTopology topo = generate_planetlab_like(params);
  for (const auto& cell : topo.partition) {
    EXPECT_LE(cell.size(), 4u);
    // Contiguity: the cell's links form a connected subgraph under
    // node-sharing adjacency.
    if (cell.size() < 2) continue;
    std::set<graph::NodeId> nodes;
    std::vector<std::set<graph::NodeId>> endpoints;
    for (graph::LinkId e : cell) {
      endpoints.push_back(
          {topo.graph.link(e).src, topo.graph.link(e).dst});
    }
    std::vector<bool> reached(cell.size(), false);
    std::vector<std::size_t> stack{0};
    reached[0] = true;
    std::size_t count = 1;
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      for (std::size_t j = 0; j < cell.size(); ++j) {
        if (reached[j]) continue;
        bool adjacent = false;
        for (graph::NodeId v : endpoints[i]) {
          adjacent |= endpoints[j].count(v) > 0;
        }
        if (adjacent) {
          reached[j] = true;
          ++count;
          stack.push_back(j);
        }
      }
    }
    EXPECT_EQ(count, cell.size()) << "non-contiguous cluster";
  }
}

TEST(PlanetLab, DeterministicInSeed) {
  PlanetLabParams params;
  params.seed = 23;
  const auto t1 = generate_planetlab_like(params);
  const auto t2 = generate_planetlab_like(params);
  EXPECT_EQ(t1.partition, t2.partition);
}

// ----------------------------------------------------------- traceroute ----

TEST(Traceroute, ParsesTracesAndAsSets) {
  std::stringstream input(R"(
# two traces sharing a middle segment
trace h1 r1 r2 h2
trace h3 r1 r2 h2
asn r1 100
asn r2 100
)");
  const graph::MeasuredSystem sys = parse_traceroutes(input);
  EXPECT_EQ(sys.paths.size(), 2u);
  EXPECT_EQ(sys.graph.link_count(), 4u);  // h1-r1, r1-r2, r2-h2, h3-r1
  // The r1->r2 link lives inside AS 100; every other link is a singleton.
  std::size_t multi = 0;
  for (const auto& cell : sys.partition) {
    if (cell.size() > 1) ++multi;
  }
  EXPECT_EQ(multi, 0u);  // only one link is intra-AS, so it is a singleton
  EXPECT_NO_THROW(graph::require_partition(sys.graph, sys.partition));
}

TEST(Traceroute, GroupsIntraAsLinks) {
  std::stringstream input(R"(
trace h1 a b c h2
trace h3 a b c h4
asn a 7018
asn b 7018
asn c 7018
)");
  const graph::MeasuredSystem sys = parse_traceroutes(input);
  // a->b and b->c are both inside AS 7018: one correlation set of size 2.
  bool found = false;
  for (const auto& cell : sys.partition) {
    if (cell.size() == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Traceroute, CollapsesDuplicateTraces) {
  std::stringstream input("trace a b c\ntrace a b c\n");
  const graph::MeasuredSystem sys = parse_traceroutes(input);
  EXPECT_EQ(sys.paths.size(), 1u);
}

TEST(Traceroute, RejectsLoopsAndConflicts) {
  std::stringstream loop("trace a b a\n");
  EXPECT_THROW(parse_traceroutes(loop), Error);
  std::stringstream conflict("trace a b\nasn a 1\nasn a 2\n");
  EXPECT_THROW(parse_traceroutes(conflict), Error);
  std::stringstream tooshort("trace a\n");
  EXPECT_THROW(parse_traceroutes(tooshort), Error);
  std::stringstream empty("# nothing\n");
  EXPECT_THROW(parse_traceroutes(empty), Error);
}

TEST(Traceroute, LoopRejectionNamesTheOffendingHop) {
  std::stringstream loop("trace r1 r2 r3 r2 h1\n");
  try {
    parse_traceroutes(loop);
    FAIL() << "routing loop must be rejected";
  } catch (const Error& e) {
    // The diagnostic must point at the revisited token, not just say
    // "a hop" — loops in real dumps are found by grepping for the router.
    EXPECT_NE(std::string(e.what()).find("'r2'"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
}

TEST(Traceroute, StripsCarriageReturnsAndTrailingWhitespace) {
  // A CRLF dump: without stripping, the last hop of each trace and the AS
  // number would grow a phantom '\r' and 'h2\r' != 'h2' would split the
  // node, orphaning the asn mapping.
  std::stringstream crlf(
      "trace h1 r1 h2\r\n"
      "trace h2 r1 h1   \r\n"
      "asn r1 100\r\n");
  const graph::MeasuredSystem sys = parse_traceroutes(crlf);
  EXPECT_EQ(sys.paths.size(), 2u);
  EXPECT_EQ(sys.graph.node_count(), 3u) << "'h2\\r' must not split 'h2'";
  std::stringstream clean(
      "trace h1 r1 h2\n"
      "trace h2 r1 h1\n"
      "asn r1 100\n");
  const graph::MeasuredSystem ref = parse_traceroutes(clean);
  EXPECT_EQ(sys.graph.link_count(), ref.graph.link_count());
  EXPECT_EQ(sys.partition, ref.partition);
  // Whitespace-only and '\r'-only lines are blank, not unknown tags.
  std::stringstream blanks("trace a b\n\r\n   \t\r\n");
  EXPECT_EQ(parse_traceroutes(blanks).paths.size(), 1u);
}

}  // namespace
}  // namespace tomo::topogen
