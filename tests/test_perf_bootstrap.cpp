// Perf-regression smoke for the batched bootstrap engine (ctest label:
// "perf").
//
// Bootstraps the registry's heaviest entry (waxman-full at paper scale,
// 2000 snapshots x 4000 packets/path) and times the bootstrap stage alone
// against a committed wall-clock budget. The budget is generous — CI
// containers are noisy and the same constant must hold across
// Debug/Release — so this is a tripwire against *gross* regressions:
// anything that reintroduces per-bit resampling, a per-replicate equation
// re-harvest on stable support, or a cold NNLS solve per replicate lands
// well outside it. For scale: the batched engine runs one waxman-full
// replicate in ~30 ms Release on one core (the serial reference engine
// takes ~150 ms — it re-harvests and re-factors everything). Bit-exactness
// of the batched engine is enforced by the differential suite
// (test_bootstrap_fast.cpp); the engine-vs-engine cost ratio is tracked by
// fig1_tables --scenario telemetry (bootstrap_speedup).
#include <gtest/gtest.h>

#include <iostream>

#include "core/bootstrap.hpp"
#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"

namespace tomo::core {
namespace {

#if defined(__SANITIZE_ADDRESS__)
#define TOMO_PERF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TOMO_PERF_SANITIZED 1
#endif
#endif

// Committed budget for kReplicates batched bootstrap replicates at paper
// scale (point estimate and harvest included).
#ifdef TOMO_PERF_SANITIZED
constexpr double kBudgetSeconds = 40.0;
#else
constexpr double kBudgetSeconds = 10.0;
#endif
constexpr std::size_t kReplicates = 60;

TEST(PerfBootstrap, WaxmanFullBatchedBootstrapStaysWithinBudget) {
  core::ScenarioConfig config =
      core::ScenarioCatalog::instance().at("waxman-full").config;
  config.seed = 42;
  const core::ScenarioInstance inst = core::build_scenario(config);
  ASSERT_GE(inst.paths.size(), 300u)
      << "waxman-full lost its paper-scale path density";
  const graph::CoverageIndex cov(inst.graph, inst.paths);

  sim::SimulatorConfig sc;
  sc.snapshots = 2000;
  sc.packets_per_path = 4000;
  sc.mode = sim::PacketMode::kBatched;
  sc.seed = 7;
  const auto simr = sim::simulate(inst.graph, inst.paths, *inst.truth, sc);

  BootstrapOptions options;  // batched engine, warm starts on
  options.replicates = kReplicates;
  options.seed = 0xbff;
  options.jobs = 1;

  const Stopwatch timer;
  const BootstrapResult r =
      bootstrap_congestion(inst.graph, inst.paths, cov, inst.declared_sets,
                           simr.measurement, options);
  const double seconds = timer.seconds();

  EXPECT_EQ(r.replicates + r.skipped, kReplicates);
  EXPECT_LT(seconds, kBudgetSeconds)
      << "batched bootstrap regressed: " << seconds << " s for "
      << kReplicates << " replicates at " << inst.paths.size()
      << " paths x " << sc.snapshots << " snapshots (budget "
      << kBudgetSeconds << " s)";
  // Telemetry for the CI log; not an assertion. On stable support the
  // fast path should carry essentially every replicate.
  std::cout << "[perf] waxman-full batched bootstrap: " << seconds
            << " s / " << kReplicates << " replicates, "
            << r.reharvested << " reharvested, " << r.skipped
            << " skipped\n";
}

}  // namespace
}  // namespace tomo::core
