// The determinism contract of the parallel trial engine: for a fixed base
// seed, run_trials returns bit-identical outcomes for any worker count,
// because every trial derives its own RNG streams from (seed, tag, trial)
// and results are reduced in trial order.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/run_trials.hpp"
#include "core/scenario.hpp"
#include "util/rng.hpp"

namespace {

using tomo::core::TrialContext;
using tomo::core::run_trials;

TEST(TrialContext, SeedMatchesTheBenchConvention) {
  const TrialContext ctx{5, 123};
  EXPECT_EQ(ctx.seed(0x3a00), tomo::mix_seed(123, 0x3a00 + 5));
  // Different tags give different streams for the same trial.
  EXPECT_NE(ctx.seed(0x3a00), ctx.seed(0x3b00));
}

TEST(RunTrials, ZeroTrialsYieldNothing) {
  const auto outcomes =
      run_trials(0, 4, 1, [](const TrialContext&) { return 1; });
  EXPECT_TRUE(outcomes.empty());
}

TEST(RunTrials, OutcomesArriveInTrialOrderWithTimings) {
  const auto outcomes = run_trials(
      8, 3, 99, [](const TrialContext& ctx) { return ctx.trial * 10; });
  ASSERT_EQ(outcomes.size(), 8u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].index, i);
    EXPECT_EQ(outcomes[i].value, i * 10);
    EXPECT_GE(outcomes[i].seconds, 0.0);
  }
}

// A seeded stochastic body must produce identical values no matter how
// many workers ran it — the property every figure binary's --jobs flag
// relies on.
TEST(RunTrials, JobsCountNeverChangesSeededRandomOutput) {
  const auto body = [](const TrialContext& ctx) {
    tomo::Rng rng(ctx.seed(0x7700));
    std::vector<double> draws;
    for (int i = 0; i < 100; ++i) draws.push_back(rng.uniform());
    return draws;
  };
  const auto serial = run_trials(16, 1, 42, body);
  for (const std::size_t jobs : {2u, 4u, 16u}) {
    const auto parallel = run_trials(16, jobs, 42, body);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].value, serial[i].value) << "jobs=" << jobs;
    }
  }
}

// End-to-end: a full (small) simulate -> infer -> score experiment per
// trial, compared across worker counts at every inferred probability.
TEST(RunTrials, ExperimentPipelineIsBitIdenticalAcrossJobs) {
  const auto body = [](const TrialContext& ctx) {
    tomo::core::ScenarioConfig scenario;
    scenario.as_nodes = 24;
    scenario.as_endpoints = 8;
    scenario.routers = 50;
    scenario.vantage_points = 6;
    scenario.seed = ctx.seed(0x1000);
    const auto inst = tomo::core::build_scenario(scenario);
    tomo::core::ExperimentConfig config;
    config.sim.snapshots = 120;
    config.sim.packets_per_path = 200;
    config.sim.seed = ctx.seed(0x2000);
    const auto result = tomo::core::run_experiment(inst, config);
    return result.correlation.congestion_prob;
  };
  const auto serial = run_trials(3, 1, 7, body);
  const auto parallel = run_trials(3, 3, 7, body);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].value.size(), parallel[i].value.size());
    for (std::size_t k = 0; k < serial[i].value.size(); ++k) {
      EXPECT_EQ(serial[i].value[k], parallel[i].value[k]);
    }
  }
}

}  // namespace
