#include <gtest/gtest.h>

#include <unordered_set>

#include "core/scenario.hpp"
#include "corr/identifiability.hpp"
#include "graph/coverage.hpp"
#include "util/error.hpp"

namespace tomo::core {
namespace {

ScenarioConfig small_brite() {
  ScenarioConfig config;
  config.topology = TopologyKind::kBrite;
  config.as_nodes = 40;
  config.as_endpoints = 10;
  config.seed = 5;
  return config;
}

ScenarioConfig small_planetlab() {
  ScenarioConfig config;
  config.topology = TopologyKind::kPlanetLab;
  config.routers = 80;
  config.vantage_points = 8;
  config.seed = 5;
  return config;
}

TEST(Scenario, BriteInstanceIsWellFormed) {
  const ScenarioInstance inst = build_scenario(small_brite());
  EXPECT_GT(inst.graph.link_count(), 0u);
  EXPECT_GT(inst.paths.size(), 0u);
  const graph::CoverageIndex cov(inst.graph, inst.paths);
  EXPECT_TRUE(cov.all_links_covered());
  EXPECT_EQ(inst.declared_sets.link_count(), inst.graph.link_count());
  EXPECT_EQ(inst.true_marginals.size(), inst.graph.link_count());
}

TEST(Scenario, PlanetLabInstanceIsWellFormed) {
  const ScenarioInstance inst = build_scenario(small_planetlab());
  EXPECT_GT(inst.graph.link_count(), 0u);
  const graph::CoverageIndex cov(inst.graph, inst.paths);
  EXPECT_TRUE(cov.all_links_covered());
}

TEST(Scenario, CongestedFractionIsHonoured) {
  auto config = small_brite();
  config.congested_fraction = 0.20;
  const ScenarioInstance inst = build_scenario(config);
  const double fraction =
      static_cast<double>(inst.congested_links.size()) /
      static_cast<double>(inst.graph.link_count());
  EXPECT_NEAR(fraction, 0.20, 0.05);
  // Non-congested links have zero marginal; congested ones are inside the
  // configured range (worm-free scenario).
  std::unordered_set<graph::LinkId> congested(inst.congested_links.begin(),
                                              inst.congested_links.end());
  for (graph::LinkId e = 0; e < inst.graph.link_count(); ++e) {
    if (congested.count(e)) {
      EXPECT_GE(inst.true_marginals[e], config.marginal_lo - 1e-9);
      EXPECT_LE(inst.true_marginals[e], config.marginal_hi + 1e-9);
    } else {
      EXPECT_NEAR(inst.true_marginals[e], 0.0, 1e-12);
    }
  }
}

TEST(Scenario, HighCorrelationClustersCongestion) {
  auto config = small_brite();
  config.level = CorrelationLevel::kHigh;
  config.congested_fraction = 0.15;
  const ScenarioInstance inst = build_scenario(config);
  // At least one correlation set must hold > 2 congested links.
  std::vector<std::size_t> per_set(inst.declared_sets.set_count(), 0);
  for (graph::LinkId e : inst.congested_links) {
    ++per_set[inst.declared_sets.set_of(e)];
  }
  EXPECT_GT(*std::max_element(per_set.begin(), per_set.end()), 2u);
}

TEST(Scenario, LooseCorrelationCapsCongestionPerSet) {
  auto config = small_brite();
  config.level = CorrelationLevel::kLoose;
  config.congested_fraction = 0.10;
  const ScenarioInstance inst = build_scenario(config);
  std::vector<std::size_t> per_set(inst.declared_sets.set_count(), 0);
  for (graph::LinkId e : inst.congested_links) {
    ++per_set[inst.declared_sets.set_of(e)];
  }
  EXPECT_LE(*std::max_element(per_set.begin(), per_set.end()), 2u);
}

TEST(Scenario, UnidentifiableInjectionReachesTarget) {
  auto config = small_brite();
  config.unidentifiable_fraction = 0.25;
  const ScenarioInstance inst = build_scenario(config);
  const double fraction =
      static_cast<double>(inst.unidentifiable_congested.size()) /
      static_cast<double>(inst.congested_links.size());
  EXPECT_GE(fraction, 0.15);  // at or near the target
}

TEST(Scenario, MislabeledLinksComeFromDistinctSets) {
  auto config = small_brite();
  config.mislabeled_fraction = 0.5;
  const ScenarioInstance inst = build_scenario(config);
  EXPECT_FALSE(inst.mislabeled_links.empty());
  // Worm targets are drawn from pairwise-distinct sets as far as the
  // congested population allows (high correlation clusters congestion into
  // few sets, so perfect distinctness is not always possible).
  std::unordered_set<std::size_t> sets_used;
  std::unordered_set<std::size_t> congested_sets;
  for (graph::LinkId e : inst.mislabeled_links) {
    sets_used.insert(inst.declared_sets.set_of(e));
  }
  for (graph::LinkId e : inst.congested_links) {
    congested_sets.insert(inst.declared_sets.set_of(e));
  }
  EXPECT_EQ(sets_used.size(),
            std::min(inst.mislabeled_links.size(), congested_sets.size()));
  // Worm targets are congested links.
  std::unordered_set<graph::LinkId> congested(inst.congested_links.begin(),
                                              inst.congested_links.end());
  for (graph::LinkId e : inst.mislabeled_links) {
    EXPECT_TRUE(congested.count(e));
  }
}

TEST(Scenario, WormRaisesTargetMarginals) {
  auto base_config = small_brite();
  const ScenarioInstance base = build_scenario(base_config);
  auto worm_config = base_config;
  worm_config.mislabeled_fraction = 0.5;
  worm_config.worm_rho = 0.4;
  const ScenarioInstance worm = build_scenario(worm_config);
  // Same topology/seed: worm targets must have higher marginals than the
  // configured cap would otherwise allow... at least rho.
  for (graph::LinkId e : worm.mislabeled_links) {
    EXPECT_GE(worm.true_marginals[e], 0.4 - 1e-9);
  }
}

TEST(Scenario, DeterministicInSeed) {
  const ScenarioInstance a = build_scenario(small_brite());
  const ScenarioInstance b = build_scenario(small_brite());
  EXPECT_EQ(a.congested_links, b.congested_links);
  EXPECT_EQ(a.true_marginals, b.true_marginals);
}

TEST(Scenario, DifferentSeedsDiffer) {
  auto c1 = small_brite();
  auto c2 = small_brite();
  c2.seed = 6;
  const ScenarioInstance a = build_scenario(c1);
  const ScenarioInstance b = build_scenario(c2);
  EXPECT_NE(a.congested_links, b.congested_links);
}

TEST(Scenario, RejectsBadConfig) {
  auto config = small_brite();
  config.congested_fraction = 0.0;
  EXPECT_THROW(build_scenario(config), Error);
  config = small_brite();
  config.marginal_lo = 0.0;
  EXPECT_THROW(build_scenario(config), Error);
}

}  // namespace
}  // namespace tomo::core
