// Differential suite for the fast equation-harvest paths.
//
// The harvest has three "fast" layers — the EmpiricalMeasurement bitset
// cache, the correlation-set signature precheck, and the batched parallel
// candidate evaluation — each with a scalar/sequential reference
// implementation kept behind a flag. These tests pin the fast paths
// against the references: identical accepted equations (links, paths,
// bitwise-equal right-hand sides), identical drop counters, and an
// identical dense matrix, across every registry scenario, random seeds,
// option variations, and --jobs values. Any divergence is an exactness
// bug, not a tolerance question, so comparisons are exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/equations.hpp"
#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace tomo::core {
namespace {

struct PreparedScenario {
  ScenarioInstance inst;
  graph::CoverageIndex coverage;
  sim::SimulationResult sim_result;
  // Scalar copy of the snapshots, for the reference measurement path.
  sim::PathObservations observations;
};

PreparedScenario prepare(ScenarioConfig config, std::uint64_t sim_seed) {
  ScenarioInstance inst = build_scenario(config);
  graph::CoverageIndex coverage(inst.graph, inst.paths);
  sim::SimulatorConfig sc;
  sc.snapshots = 300;
  sc.packets_per_path = 500;
  sc.mode = sim::PacketMode::kBinomial;
  sc.seed = sim_seed;
  sim::SimulationResult sim_result =
      sim::simulate(inst.graph, inst.paths, *inst.truth, sc);
  sim::PathObservations observations = sim_result.observations();
  return PreparedScenario{std::move(inst), std::move(coverage),
                          std::move(sim_result), std::move(observations)};
}

void expect_identical(const EquationSystem& a, const EquationSystem& b,
                      const std::string& what) {
  ASSERT_EQ(a.equations.size(), b.equations.size()) << what;
  for (std::size_t i = 0; i < a.equations.size(); ++i) {
    EXPECT_EQ(a.equations[i].links, b.equations[i].links)
        << what << ": equation " << i;
    EXPECT_EQ(a.equations[i].paths, b.equations[i].paths)
        << what << ": equation " << i;
    // Bitwise equality: the fast paths must perform the same arithmetic.
    EXPECT_EQ(a.equations[i].y, b.equations[i].y)
        << what << ": equation " << i;
  }
  EXPECT_EQ(a.link_count, b.link_count) << what;
  EXPECT_EQ(a.n1, b.n1) << what;
  EXPECT_EQ(a.n2, b.n2) << what;
  EXPECT_EQ(a.rank, b.rank) << what;
  EXPECT_EQ(a.dropped_correlated, b.dropped_correlated) << what;
  EXPECT_EQ(a.dropped_unusable, b.dropped_unusable) << what;
  EXPECT_EQ(a.dropped_dependent, b.dropped_dependent) << what;
  EXPECT_EQ(a.pair_candidates_tried, b.pair_candidates_tried) << what;
  // The lazily materialized dense views must agree cell for cell.
  ASSERT_EQ(a.matrix().rows(), b.matrix().rows()) << what;
  ASSERT_EQ(a.matrix().cols(), b.matrix().cols()) << what;
  for (std::size_t r = 0; r < a.matrix().rows(); ++r) {
    for (std::size_t c = 0; c < a.matrix().cols(); ++c) {
      ASSERT_EQ(a.matrix()(r, c), b.matrix()(r, c))
          << what << ": cell (" << r << "," << c << ")";
    }
  }
  EXPECT_EQ(a.rhs(), b.rhs()) << what;
}

/// Reference build: scalar measurement path, no signature precheck, inline
/// evaluation — the historical sequential implementation's behaviour.
EquationSystem reference_build(const PreparedScenario& p,
                               const corr::CorrelationSets& sets,
                               EquationBuildOptions options) {
  const sim::EmpiricalMeasurement scalar(p.observations,
                                         /*use_bitset_cache=*/false);
  options.use_signature_precheck = false;
  options.jobs = 1;
  return build_equations(p.coverage, sets, scalar, options);
}

class RegistryDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryDifferential, FastPathsMatchReferenceExactly) {
  ScenarioConfig config =
      shrink_for_tests(ScenarioCatalog::instance().at(GetParam()).config);
  config.seed = 0xd1ff;
  const PreparedScenario p = prepare(config, 0xd1ff00);

  const EquationBuildOptions defaults;
  const EquationSystem ref = reference_build(p, p.inst.declared_sets,
                                             defaults);

  const sim::EmpiricalMeasurement fast(p.sim_result.measurement);
  ASSERT_TRUE(fast.uses_bitset_cache());
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3}}) {
    EquationBuildOptions options;
    options.jobs = jobs;
    const EquationSystem sys =
        build_equations(p.coverage, p.inst.declared_sets, fast, options);
    expect_identical(sys, ref,
                     GetParam() + " jobs=" + std::to_string(jobs));
  }
}

std::vector<std::string> registry_names() {
  return ScenarioCatalog::instance().names();
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistryDifferential,
    ::testing::ValuesIn(registry_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(EquationsFast, BitsetCacheMatchesScalarCountsEverywhere) {
  ScenarioConfig config;
  config.topology = TopologyKind::kWaxman;
  config.vantage_points = 10;
  config.seed = 21;
  const PreparedScenario p = prepare(config, 7);
  const sim::EmpiricalMeasurement fast(p.sim_result.measurement);
  const sim::EmpiricalMeasurement scalar(p.observations, false);
  ASSERT_FALSE(scalar.uses_bitset_cache());
  const std::size_t n = p.observations.path_count();
  for (graph::PathId a = 0; a < n; ++a) {
    ASSERT_EQ(fast.good_prob(a), scalar.good_prob(a)) << "path " << a;
    for (graph::PathId b = 0; b < n; ++b) {
      ASSERT_EQ(fast.pair_good_prob(a, b), scalar.pair_good_prob(a, b))
          << "pair " << a << "," << b;
    }
  }
  // The generic set query routes singles/pairs through the cache too.
  ASSERT_EQ(fast.all_good_prob({3}), scalar.all_good_prob({3}));
  ASSERT_EQ(fast.all_good_prob({1, 4}), scalar.all_good_prob({1, 4}));
  ASSERT_EQ(fast.all_good_prob({0, 2, 5}), scalar.all_good_prob({0, 2, 5}));
}

TEST(EquationsFast, RandomTopologiesSeedsAndOptionVariations) {
  Rng rng(0xfa57);
  for (int round = 0; round < 4; ++round) {
    ScenarioConfig config;
    config.topology =
        round % 2 == 0 ? TopologyKind::kWaxman : TopologyKind::kBarabasiAlbert;
    config.routers = 60 + 20 * round;
    config.vantage_points = 8 + 2 * round;
    config.cluster_size = 3 + round;
    config.seed = rng.below(1u << 30);
    const PreparedScenario p = prepare(config, rng.below(1u << 30));
    const sim::EmpiricalMeasurement fast(p.sim_result.measurement);

    std::vector<EquationBuildOptions> variations(4);
    variations[1].include_redundant = false;
    variations[2].max_pair_candidates = 40;
    variations[3].min_good_snapshots = 5;
    variations[3].max_pair_equations = 25;
    for (std::size_t v = 0; v < variations.size(); ++v) {
      EquationBuildOptions options = variations[v];
      const EquationSystem ref =
          reference_build(p, p.inst.declared_sets, options);
      options.jobs = 3;
      const EquationSystem sys =
          build_equations(p.coverage, p.inst.declared_sets, fast, options);
      expect_identical(sys, ref,
                       "round " + std::to_string(round) + " variation " +
                           std::to_string(v));
    }
  }
}

TEST(EquationsFast, SingletonStructureShortCircuitMatchesReference) {
  ScenarioConfig config;
  config.topology = TopologyKind::kWaxman;
  config.vantage_points = 10;
  config.seed = 5;
  const PreparedScenario p = prepare(config, 11);
  const corr::CorrelationSets singles =
      corr::CorrelationSets::singletons(p.coverage.link_count());
  const EquationSystem ref = reference_build(p, singles, {});
  const sim::EmpiricalMeasurement fast(p.sim_result.measurement);
  const EquationSystem sys = build_equations(p.coverage, singles, fast);
  expect_identical(sys, ref, "singleton structure");
  EXPECT_EQ(sys.dropped_correlated, 0u);
}

}  // namespace
}  // namespace tomo::core
