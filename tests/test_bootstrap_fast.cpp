// Differential suite for the batched bootstrap engine.
//
// The batched engine (BootstrapMode::kBatched) is pinned against the
// serial reference (kReference) that shares only the per-replicate seed
// streams: with warm starts off, intervals are bitwise identical at
// matched seeds on every registry scenario, for any `jobs`, and on the
// fallback path (the reference computation verbatim). The word-level
// MeasurementBlock::resample gather is pinned the same way against the
// scalar per-bit resample_snapshots, and percentile_pair against two
// separate percentile calls. Any divergence is an exactness bug, not a
// tolerance question, so the comparisons are exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/bootstrap.hpp"
#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/measurement_block.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;

void expect_identical(const BootstrapResult& a, const BootstrapResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.point, b.point) << what;
  EXPECT_EQ(a.lower, b.lower) << what;
  EXPECT_EQ(a.upper, b.upper) << what;
  EXPECT_EQ(a.replicates, b.replicates) << what;
  EXPECT_EQ(a.skipped, b.skipped) << what;
}

struct Workload {
  core::ScenarioInstance inst;
  sim::SimulationResult simr;
};

Workload registry_workload(const std::string& name) {
  core::ScenarioConfig config = core::shrink_for_tests(
      core::ScenarioCatalog::instance().at(name).config);
  config.seed = 0xb001;
  Workload w{core::build_scenario(config), {}};
  sim::SimulatorConfig sc;
  sc.snapshots = 150;  // two full 64-snapshot words plus a ragged tail
  sc.packets_per_path = 400;
  sc.mode = sim::PacketMode::kBatched;
  sc.seed = 0x51ee;
  w.simr = sim::simulate(w.inst.graph, w.inst.paths, *w.inst.truth, sc);
  return w;
}

class RegistryBootstrapDifferential
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryBootstrapDifferential, BatchedMatchesReferenceBitwise) {
  const Workload w = registry_workload(GetParam());
  const graph::CoverageIndex cov(w.inst.graph, w.inst.paths);

  BootstrapOptions options;
  options.replicates = 10;
  options.seed = 0xb00;
  options.jobs = 1;
  // Warm starts reach the same optimum along a different active-set path;
  // off, the fast path is the reference arithmetic bit for bit.
  options.warm_start = false;

  options.mode = BootstrapMode::kReference;
  const BootstrapResult reference =
      bootstrap_congestion(w.inst.graph, w.inst.paths, cov,
                           w.inst.declared_sets, w.simr.measurement, options);
  options.mode = BootstrapMode::kBatched;
  const BootstrapResult batched =
      bootstrap_congestion(w.inst.graph, w.inst.paths, cov,
                           w.inst.declared_sets, w.simr.measurement, options);
  expect_identical(batched, reference, GetParam());
}

TEST_P(RegistryBootstrapDifferential, JobsDoNotChangeIntervals) {
  const Workload w = registry_workload(GetParam());
  const graph::CoverageIndex cov(w.inst.graph, w.inst.paths);

  BootstrapOptions options;  // batched, warm starts on: the default engine
  options.replicates = 12;
  options.seed = 0xfa2;
  options.jobs = 1;
  const BootstrapResult serial =
      bootstrap_congestion(w.inst.graph, w.inst.paths, cov,
                           w.inst.declared_sets, w.simr.measurement, options);
  options.jobs = 3;
  const BootstrapResult threaded =
      bootstrap_congestion(w.inst.graph, w.inst.paths, cov,
                           w.inst.declared_sets, w.simr.measurement, options);
  expect_identical(threaded, serial, GetParam() + " jobs=3");
  EXPECT_EQ(threaded.reharvested, serial.reharvested) << GetParam();
}

std::vector<std::string> registry_names() {
  return core::ScenarioCatalog::instance().names();
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistryBootstrapDifferential,
    ::testing::ValuesIn(registry_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------- fallback & skipping ----

// min_good_snapshots > 1 voids the support-stability certificate (a
// dropped candidate could cross the threshold), so the static gate must
// route every replicate through the full re-harvest — which is the
// reference computation verbatim.
TEST(BootstrapFast, UnprovableSupportFallsBackToReferencePath) {
  // worm-mislabeled: secretly correlated links, so the refine/demote
  // chain actually fires before the harvest this configuration re-runs.
  const Workload w = registry_workload("worm-mislabeled");
  const graph::CoverageIndex cov(w.inst.graph, w.inst.paths);

  BootstrapOptions options;
  options.replicates = 8;
  options.seed = 0x5a11;
  options.warm_start = false;
  options.inference.equations.min_good_snapshots = 2;

  options.mode = BootstrapMode::kReference;
  const BootstrapResult reference =
      bootstrap_congestion(w.inst.graph, w.inst.paths, cov,
                           w.inst.declared_sets, w.simr.measurement, options);
  options.mode = BootstrapMode::kBatched;
  const BootstrapResult batched =
      bootstrap_congestion(w.inst.graph, w.inst.paths, cov,
                           w.inst.declared_sets, w.simr.measurement, options);
  EXPECT_EQ(batched.reharvested, options.replicates);
  EXPECT_EQ(reference.reharvested, 0u);  // reference never reports it
  expect_identical(batched, reference, "min_good_snapshots=2");
}

// A path with a single good snapshot flips its equations' usability in
// exactly the replicates whose resample drops that snapshot: those must
// take the fallback, the others the fast path, and both must agree with
// the reference engine bit for bit.
TEST(BootstrapFast, SupportChangeTriggersPerReplicateFallback) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const std::size_t n = 32;
  sim::PathObservations obs(3, n);
  // Paths 1 and 2 good everywhere; path 0 good only in snapshot 0.
  for (std::size_t s = 1; s < n; ++s) obs.set_congested(0, s);

  BootstrapOptions options;
  options.replicates = 24;
  options.seed = 0xfb;
  options.warm_start = false;
  options.mode = BootstrapMode::kBatched;
  const BootstrapResult batched = bootstrap_congestion(
      sys.graph, sys.paths, cov, sys.sets, obs, options);
  // P(a 32-draw resample keeps snapshot 0) ~ 0.63: both branches must be
  // exercised. Deterministic given the fixed seed.
  EXPECT_GT(batched.reharvested, 0u);
  EXPECT_LT(batched.reharvested, options.replicates);

  options.mode = BootstrapMode::kReference;
  const BootstrapResult reference = bootstrap_congestion(
      sys.graph, sys.paths, cov, sys.sets, obs, options);
  expect_identical(batched, reference, "single-good-snapshot path");
}

// Replicates whose resample loses every usable equation are dropped, not
// silently folded in: both engines account for every requested replicate
// and agree on which were lost.
TEST(BootstrapFast, SkippedReplicatesAreAccountedFor) {
  auto sys = figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const std::size_t n = 16;
  sim::PathObservations obs(3, n);
  // Every path good only in snapshot 0: a resample that misses it has no
  // usable equation at all and the replicate must be skipped.
  for (sim::PathId p = 0; p < 3; ++p) {
    for (std::size_t s = 1; s < n; ++s) obs.set_congested(p, s);
  }

  BootstrapOptions options;
  options.replicates = 30;
  options.seed = 0x5c1;
  options.warm_start = false;
  options.mode = BootstrapMode::kBatched;
  const BootstrapResult batched = bootstrap_congestion(
      sys.graph, sys.paths, cov, sys.sets, obs, options);
  EXPECT_GT(batched.skipped, 0u);  // ~36% of resamples miss snapshot 0
  EXPECT_EQ(batched.replicates + batched.skipped, options.replicates);

  options.mode = BootstrapMode::kReference;
  const BootstrapResult reference = bootstrap_congestion(
      sys.graph, sys.paths, cov, sys.sets, obs, options);
  EXPECT_EQ(reference.replicates + reference.skipped, options.replicates);
  expect_identical(batched, reference, "mostly-unusable sample");
}

// ------------------------------------------------- resample & percentiles

// The word-level gather must reproduce the scalar per-bit resample
// exactly, picks for picks — including the zeroed tail past the snapshot
// count and the per-path good counts.
TEST(BootstrapFast, BlockResampleMatchesScalarReference) {
  const std::size_t paths = 5, n = 150;
  sim::PathObservations obs(paths, n);
  Rng fill(0xf111);
  for (sim::PathId p = 0; p < paths; ++p) {
    for (std::size_t s = 0; s < n; ++s) {
      if (fill.below(3) == 0) obs.set_congested(p, s);
    }
  }
  const sim::MeasurementBlock block =
      sim::MeasurementBlock::from_observations(obs);

  for (std::uint64_t seed : {1ull, 7ull, 0xabcdull}) {
    // Both paths consume the identical pick stream by contract.
    Rng scalar_rng(seed);
    const sim::PathObservations scalar = resample_snapshots(obs, scalar_rng);
    Rng block_rng(seed);
    const std::vector<std::uint32_t> picks = draw_picks(n, block_rng);
    const sim::MeasurementBlock gathered = block.resample(picks);
    const sim::MeasurementBlock expected =
        sim::MeasurementBlock::from_observations(scalar);
    EXPECT_EQ(gathered.good_bits, expected.good_bits) << "seed " << seed;
    EXPECT_EQ(gathered.good_counts, expected.good_counts) << "seed " << seed;
  }
}

TEST(BootstrapFast, PercentilePairMatchesTwoSeparateCalls) {
  Rng rng(0x9e);
  for (const std::size_t size : {1u, 2u, 7u, 40u, 201u}) {
    std::vector<double> values(size);
    for (double& v : values) {
      v = static_cast<double>(rng.below(1000)) / 999.0;
    }
    const Interval pair = percentile_pair(values, 5.0, 95.0);
    EXPECT_EQ(pair.lo, percentile(values, 5.0)) << size;
    EXPECT_EQ(pair.hi, percentile(values, 95.0)) << size;
  }
}

}  // namespace
}  // namespace tomo::core
