// End-to-end integration tests: full scenarios through the simulator and
// both algorithms, checking the paper's qualitative claims at small scale.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "metrics/cdf.hpp"
#include "metrics/error_metrics.hpp"
#include "util/stats.hpp"

namespace tomo::core {
namespace {

ExperimentConfig fast_config() {
  ExperimentConfig config;
  config.sim.snapshots = 800;
  config.sim.mode = sim::PacketMode::kExact;
  config.sim.seed = 31;
  return config;
}

ScenarioConfig base_scenario() {
  ScenarioConfig config;
  config.topology = TopologyKind::kBrite;
  config.as_nodes = 40;
  config.as_endpoints = 12;
  config.congested_fraction = 0.10;
  config.seed = 77;
  return config;
}

TEST(Integration, IdealConditionsCorrelationBeatsIndependence) {
  const ScenarioInstance inst = build_scenario(base_scenario());
  const ExperimentResult result = run_experiment(inst, fast_config());
  const auto corr_err = result.correlation_errors();
  const auto ind_err = result.independence_errors();
  ASSERT_FALSE(corr_err.empty());
  const double corr_mean = mean(corr_err);
  const double ind_mean = mean(ind_err);
  // The paper's headline: under correlated congestion, the correlation
  // algorithm is accurate and the baseline is notably worse.
  EXPECT_LT(corr_mean, 0.06);
  EXPECT_GT(ind_mean, corr_mean);
}

TEST(Integration, PotentiallyCongestedLinksCoverCongestedTruth) {
  const ScenarioInstance inst = build_scenario(base_scenario());
  const ExperimentResult result = run_experiment(inst, fast_config());
  // Every truly congested link with non-trivial marginal should appear in
  // the potentially congested population (its paths get congested).
  std::size_t missing = 0;
  for (graph::LinkId e : inst.congested_links) {
    if (inst.true_marginals[e] < 0.15) continue;
    if (!std::binary_search(result.potentially_congested.begin(),
                            result.potentially_congested.end(), e)) {
      ++missing;
    }
  }
  EXPECT_EQ(missing, 0u);
}

TEST(Integration, CdfSeriesIsMonotone) {
  const ScenarioInstance inst = build_scenario(base_scenario());
  const ExperimentResult result = run_experiment(inst, fast_config());
  const auto series = metrics::cdf_series(result.correlation_errors());
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].percent, series[i - 1].percent);
  }
  EXPECT_NEAR(series.back().percent, 100.0, 1e-9);
}

TEST(Integration, MoreCongestionHurtsIndependenceMore) {
  // Fig 3(a)'s shape, averaged over seeds (single instances are noisy):
  // at heavy congestion the baseline is clearly worse than the
  // correlation algorithm, and it loses more ground than at light
  // congestion.
  double gap_low = 0.0, gap_high = 0.0, corr_high_sum = 0.0,
         ind_high_sum = 0.0;
  const int trials = 3;
  for (int trial = 0; trial < trials; ++trial) {
    auto low = base_scenario();
    low.congested_fraction = 0.05;
    low.seed = 100 + trial;
    auto high = base_scenario();
    high.congested_fraction = 0.25;
    high.seed = 100 + trial;
    const auto r_low = run_experiment(build_scenario(low), fast_config());
    const auto r_high = run_experiment(build_scenario(high), fast_config());
    gap_low += mean(r_low.independence_errors()) -
               mean(r_low.correlation_errors());
    gap_high += mean(r_high.independence_errors()) -
                mean(r_high.correlation_errors());
    corr_high_sum += mean(r_high.correlation_errors());
    ind_high_sum += mean(r_high.independence_errors());
  }
  EXPECT_LT(corr_high_sum, ind_high_sum);
  EXPECT_GT(gap_high, -0.005);  // baseline never meaningfully ahead
  (void)gap_low;
}

TEST(Integration, UnidentifiableScenarioStillFavoursCorrelation) {
  auto config = base_scenario();
  config.unidentifiable_fraction = 0.5;
  const ScenarioInstance inst = build_scenario(config);
  const ExperimentResult result = run_experiment(inst, fast_config());
  const double corr_mean = mean(result.correlation_errors());
  const double ind_mean = mean(result.independence_errors());
  EXPECT_LT(corr_mean, ind_mean + 0.02);  // never meaningfully worse
  EXPECT_LT(corr_mean, 0.15);
}

TEST(Integration, MislabeledScenarioStillFavoursCorrelation) {
  auto config = base_scenario();
  config.mislabeled_fraction = 0.5;
  const ScenarioInstance inst = build_scenario(config);
  const ExperimentResult result = run_experiment(inst, fast_config());
  const double corr_mean = mean(result.correlation_errors());
  const double ind_mean = mean(result.independence_errors());
  EXPECT_LT(corr_mean, ind_mean + 0.02);
}

TEST(Integration, PlanetLabScenarioRuns) {
  ScenarioConfig config;
  config.topology = TopologyKind::kPlanetLab;
  config.routers = 70;
  config.vantage_points = 8;
  config.congested_fraction = 0.10;
  config.seed = 12;
  const ScenarioInstance inst = build_scenario(config);
  const ExperimentResult result = run_experiment(inst, fast_config());
  EXPECT_FALSE(result.correlation_errors().empty());
  EXPECT_LT(mean(result.correlation_errors()), 0.2);
}

TEST(Integration, ExperimentIsDeterministic) {
  const ScenarioInstance inst = build_scenario(base_scenario());
  const ExperimentResult a = run_experiment(inst, fast_config());
  const ExperimentResult b = run_experiment(inst, fast_config());
  EXPECT_EQ(a.correlation.congestion_prob, b.correlation.congestion_prob);
  EXPECT_EQ(a.independence.congestion_prob,
            b.independence.congestion_prob);
}

}  // namespace
}  // namespace tomo::core
