#include <gtest/gtest.h>

#include "corr/identifiability.hpp"
#include "graph/coverage.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::corr {
namespace {

TEST(Identifiability, Figure1aHolds) {
  auto sys = tomo::testing::figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const auto report = check_identifiability(cov, sys.sets);
  EXPECT_TRUE(report.holds);
  EXPECT_TRUE(report.collisions.empty());
  EXPECT_TRUE(report.unidentifiable_links.empty());
}

TEST(Identifiability, Figure1bFails) {
  auto sys = tomo::testing::figure_1b();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const auto report = check_identifiability(cov, sys.sets);
  EXPECT_FALSE(report.holds);
  ASSERT_EQ(report.collisions.size(), 1u);
  // The paper's collision: {e1,e2} vs {e3}.
  const auto& c = report.collisions[0];
  const std::size_t sizes =
      c.a.links.size() + c.b.links.size();
  EXPECT_EQ(sizes, 3u);
  // All three links are unidentifiable.
  EXPECT_EQ(report.unidentifiable_links,
            (std::vector<LinkId>{0, 1, 2}));
}

TEST(Identifiability, UncorrelatedSpecialCaseMatchesClassicRule) {
  // With singleton sets, Assumption 4 reduces to "no two links covered by
  // exactly the same paths". Build a graph with two consecutive links
  // traversed by the same single path: classic unidentifiability.
  graph::Graph g;
  const auto a = g.add_node(), b = g.add_node(), c = g.add_node();
  const auto e1 = g.add_link(a, b), e2 = g.add_link(b, c);
  std::vector<graph::Path> paths;
  paths.emplace_back(g, std::vector<graph::LinkId>{e1, e2});
  const graph::CoverageIndex cov(g, paths);
  const auto report =
      check_identifiability(cov, CorrelationSets::singletons(2));
  EXPECT_FALSE(report.holds);
  EXPECT_EQ(report.unidentifiable_links, (std::vector<LinkId>{0, 1}));
}

TEST(Identifiability, StructuralCriterionFindsFigure1bNode) {
  auto sys = tomo::testing::figure_1b();
  const auto nodes =
      structurally_violating_nodes(sys.graph, sys.paths, sys.sets);
  // Node "b" (id 1) has ingress {e1,e2} in one set, egress {e3} in one set.
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 1u);
  const auto links =
      structurally_unidentifiable_links(sys.graph, sys.paths, sys.sets);
  EXPECT_EQ(links, (std::vector<LinkId>{0, 1, 2}));
}

TEST(Identifiability, StructuralCriterionClearsFigure1a) {
  auto sys = tomo::testing::figure_1a();
  EXPECT_TRUE(
      structurally_violating_nodes(sys.graph, sys.paths, sys.sets).empty());
}

TEST(Identifiability, EndpointNodesAreExempt) {
  // A two-link chain where the middle node b is an endpoint of one path:
  // b must not be flagged even though its links line up.
  graph::Graph g;
  const auto a = g.add_node(), b = g.add_node(), c = g.add_node();
  const auto e1 = g.add_link(a, b), e2 = g.add_link(b, c);
  std::vector<graph::Path> paths;
  paths.emplace_back(g, std::vector<graph::LinkId>{e1});
  paths.emplace_back(g, std::vector<graph::LinkId>{e1, e2});
  CorrelationSets sets(2, {{0}, {1}});
  EXPECT_TRUE(structurally_violating_nodes(g, paths, sets).empty());
}

TEST(Identifiability, ExactCheckerRespectsSizeGuard) {
  auto sys = tomo::testing::figure_1a();
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  EXPECT_THROW(check_identifiability(cov, sys.sets, /*max_set_size=*/1),
               Error);
}

}  // namespace
}  // namespace tomo::corr
