// Differential suite for the incremental NNLS solve path.
//
// The solver was rebuilt around a once-per-solve Gram system and an
// updatable Cholesky factor (linalg::nnls, NnlsMode::kIncremental); the
// historical per-iteration dense QR survives as NnlsMode::kReference.
// These tests pin the two engines against each other on every registry
// scenario's real equation system: the converged active sets must be
// identical and the solutions must agree to tight relative tolerance —
// and the sparse Gram pipeline (core sparse view -> parallel Gram build ->
// nnls_gram) must be bit-identical for any jobs value, the contract the
// CI byte-identity checks rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/equations.hpp"
#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "linalg/nnls.hpp"
#include "linalg/solvers.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"

namespace tomo::core {
namespace {

struct PreparedSystem {
  ScenarioInstance inst;
  EquationSystem correlation;   // declared correlation structure
  EquationSystem independence;  // singleton baseline structure
};

PreparedSystem prepare(ScenarioConfig config, std::uint64_t sim_seed) {
  PreparedSystem out{build_scenario(std::move(config)), {}, {}};
  const graph::CoverageIndex coverage(out.inst.graph, out.inst.paths);
  sim::SimulatorConfig sc;
  sc.snapshots = 300;
  sc.packets_per_path = 500;
  sc.mode = sim::PacketMode::kBinomial;
  sc.seed = sim_seed;
  const sim::SimulationResult simr =
      sim::simulate(out.inst.graph, out.inst.paths, *out.inst.truth, sc);
  const sim::EmpiricalMeasurement meas(simr.observations());
  out.correlation =
      build_equations(coverage, out.inst.declared_sets, meas);
  const corr::CorrelationSets singles =
      corr::CorrelationSets::singletons(coverage.link_count());
  out.independence = build_equations(coverage, singles, meas);
  return out;
}

std::vector<std::size_t> active_set(const linalg::Vector& x) {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] != 0.0) out.push_back(j);
  }
  return out;
}

/// Incremental (sparse Gram pipeline, jobs 1 and 3) vs reference (dense
/// per-iteration QR) on one harvested system.
void expect_engines_agree(const EquationSystem& sys,
                          const std::string& what) {
  ASSERT_FALSE(sys.equations.empty()) << what;

  linalg::SolverOptions reference;
  reference.nnls_mode = linalg::NnlsMode::kReference;
  const linalg::LogSystemSolution ref =
      linalg::solve_log_system(sys.matrix(), sys.rhs(), reference);

  linalg::SolverOptions incremental;  // defaults: nnls, incremental
  incremental.jobs = 1;
  const linalg::LogSystemSolution inc =
      linalg::solve_log_system(sparse_view(sys), incremental);
  incremental.jobs = 3;
  const linalg::LogSystemSolution inc_parallel =
      linalg::solve_log_system(sparse_view(sys), incremental);

  // The parallel Gram build reduces every entry in row order regardless of
  // the worker count: bit-identical solutions, not merely close ones.
  EXPECT_EQ(inc.x, inc_parallel.x) << what << ": jobs must not change bits";

  // Same converged active set as the reference engine...
  EXPECT_EQ(active_set(inc.x), active_set(ref.x)) << what;

  // ...and the same solution to tight relative tolerance (the engines do
  // different arithmetic: Cholesky on the normal equations vs QR).
  double scale = 1.0;
  for (double v : ref.x) scale = std::max(scale, std::abs(v));
  for (std::size_t j = 0; j < ref.x.size(); ++j) {
    EXPECT_NEAR(inc.x[j], ref.x[j], 1e-8 * scale)
        << what << ": link " << j;
  }
  EXPECT_NEAR(inc.residual_norm2, ref.residual_norm2, 1e-6 * scale) << what;
}

class RegistrySolveDifferential
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySolveDifferential, IncrementalMatchesReference) {
  ScenarioConfig config =
      shrink_for_tests(ScenarioCatalog::instance().at(GetParam()).config);
  config.seed = 0x50f7;
  const PreparedSystem p = prepare(config, 0x50f700);
  expect_engines_agree(p.correlation, GetParam() + " correlation");
  expect_engines_agree(p.independence, GetParam() + " independence");
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistrySolveDifferential,
    ::testing::ValuesIn(ScenarioCatalog::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(NnlsFast, WeightedSparseViewMatchesDenseWeighting) {
  ScenarioConfig config = shrink_for_tests(
      ScenarioCatalog::instance().at("waxman-bursty").config);
  config.seed = 0x3e1;
  PreparedSystem p = prepare(config, 0x3e100);
  const std::size_t samples = 300;

  // The sparse view's per-row weights must be the same doubles
  // apply_variance_weights installs into the dense system.
  EquationSystem weighted = p.correlation;
  apply_variance_weights(weighted, samples);
  const linalg::SparseSystemView view = sparse_view(p.correlation, samples);
  ASSERT_EQ(view.rows.size(), weighted.equations.size());
  for (std::size_t i = 0; i < view.rows.size(); ++i) {
    const auto& links = weighted.equations[i].links;
    ASSERT_EQ(view.rows[i].support_size, links.size());
    for (std::size_t k = 0; k < links.size(); ++k) {
      EXPECT_EQ(view.rows[i].value, weighted.matrix()(i, links[k]));
    }
    EXPECT_EQ(view.rows[i].y, weighted.rhs()[i]);
  }

  // And the engines agree on the weighted system too.
  linalg::SolverOptions reference;
  reference.nnls_mode = linalg::NnlsMode::kReference;
  const linalg::LogSystemSolution ref =
      linalg::solve_log_system(weighted.matrix(), weighted.rhs(), reference);
  const linalg::LogSystemSolution inc = linalg::solve_log_system(view);
  EXPECT_EQ(active_set(inc.x), active_set(ref.x));
  double scale = 1.0;
  for (double v : ref.x) scale = std::max(scale, std::abs(v));
  for (std::size_t j = 0; j < ref.x.size(); ++j) {
    EXPECT_NEAR(inc.x[j], ref.x[j], 1e-8 * scale) << "link " << j;
  }
}

TEST(NnlsFast, SparseGramMatchesDenseGramBitwise) {
  ScenarioConfig config = shrink_for_tests(
      ScenarioCatalog::instance().at("ba-sparse-vps").config);
  config.seed = 0x9a;
  const PreparedSystem p = prepare(config, 0x9a00);
  const EquationSystem& sys = p.correlation;

  // Dense reference: Gram of the negated system (b = -y).
  linalg::Vector b(sys.rhs().size());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = -sys.rhs()[i];
  const linalg::GramSystem dense = linalg::make_gram(sys.matrix(), b);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3}}) {
    const linalg::GramSystem sparse =
        linalg::sparse_gram(sparse_view(sys), jobs);
    ASSERT_EQ(sparse.gram.rows(), dense.gram.rows());
    for (std::size_t i = 0; i < dense.gram.rows(); ++i) {
      for (std::size_t j = 0; j < dense.gram.cols(); ++j) {
        ASSERT_EQ(sparse.gram(i, j), dense.gram(i, j))
            << "jobs " << jobs << " cell " << i << "," << j;
      }
    }
    EXPECT_EQ(sparse.atb, dense.atb) << "jobs " << jobs;
    EXPECT_EQ(sparse.btb, dense.btb) << "jobs " << jobs;
  }
}

// ------------------------------------------------- NNLS warm start ----

/// Deliberately stale seed: the cold active set with every third column
/// dropped — what the previous window hands the next one after part of
/// the support shifts. (Injecting *arbitrary* extra columns is not tested
/// against x-equality here: the worm scenarios carry duplicate columns,
/// and seeding one twin instead of the other selects a different — equally
/// optimal — vertex of the degenerate face. WarmStartSurvivesJunkSeeds
/// covers injection on a well-posed problem.)
std::vector<std::size_t> perturb_seed(const std::vector<std::size_t>& cold) {
  std::vector<std::size_t> seed;
  for (std::size_t k = 0; k < cold.size(); ++k) {
    if (k % 3 != 2) seed.push_back(cold[k]);
  }
  return seed;
}

class RegistryWarmStart : public ::testing::TestWithParam<std::string> {};

/// Seeding kIncremental from the previous active set — exact or perturbed
/// — must converge to the same optimum as a cold solve, with the
/// refactorization telemetry staying bounded and the warm climb never
/// longer than the cold one.
///
/// "Same optimum" is graded: with the exact seed the same support and the
/// same x to solver tolerance; with a perturbed seed the same *fitted*
/// quantities (residual norm and G·x, which are unique over the optimal
/// set even when the system is rank-deficient — the worm scenarios carry
/// duplicate columns, so x itself can differ between equally optimal
/// vertices when the seed withholds one twin).
TEST_P(RegistryWarmStart, PerturbedSeedReachesTheColdOptimum) {
  ScenarioConfig config =
      shrink_for_tests(ScenarioCatalog::instance().at(GetParam()).config);
  config.seed = 0x3a77;
  const PreparedSystem p = prepare(config, 0x3a7700);
  const linalg::GramSystem gs =
      linalg::sparse_gram(sparse_view(p.correlation), 1);

  const linalg::NnlsResult cold = linalg::nnls_gram(gs);
  ASSERT_TRUE(cold.converged) << GetParam();
  ASSERT_FALSE(cold.active_set.empty()) << GetParam();

  double scale = 1.0;
  for (double v : cold.x) scale = std::max(scale, std::abs(v));

  const auto gram_times = [&](const linalg::Vector& x) {
    linalg::Vector out(gs.gram.rows(), 0.0);
    for (std::size_t i = 0; i < gs.gram.rows(); ++i) {
      for (std::size_t j = 0; j < gs.gram.cols(); ++j) {
        out[i] += gs.gram(i, j) * x[j];
      }
    }
    return out;
  };
  const linalg::Vector cold_fit = gram_times(cold.x);

  linalg::NnlsOptions options;
  for (const bool exact_seed : {true, false}) {
    options.warm_start = exact_seed
                             ? cold.active_set
                             : perturb_seed(cold.active_set);
    const linalg::NnlsResult warm = linalg::nnls_gram(gs, options);
    const std::string what =
        GetParam() + (exact_seed ? " exact seed" : " perturbed seed");
    ASSERT_TRUE(warm.converged) << what;
    if (exact_seed) {
      EXPECT_EQ(warm.active_set, cold.active_set) << what;
      for (std::size_t j = 0; j < cold.x.size(); ++j) {
        EXPECT_NEAR(warm.x[j], cold.x[j], 1e-8 * scale)
            << what << ": column " << j;
      }
    }
    EXPECT_NEAR(warm.residual_norm, cold.residual_norm, 1e-8 * scale)
        << what;
    const linalg::Vector warm_fit = gram_times(warm.x);
    for (std::size_t i = 0; i < cold_fit.size(); ++i) {
      EXPECT_NEAR(warm_fit[i], cold_fit[i], 1e-6 * scale)
          << what << ": fitted component " << i;
    }
    // Telemetry: the factor edits stay condition-safe (no refactorize
    // storm) and the outer climb is no longer than the cold one.
    EXPECT_LE(warm.refactorizations, cold.refactorizations + 1) << what;
    EXPECT_LE(warm.iterations, cold.iterations) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistryWarmStart,
    ::testing::ValuesIn(ScenarioCatalog::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(NnlsFast, WarmStartSurvivesJunkSeeds) {
  // A tiny well-posed problem; the seed mixes duplicates, out-of-range
  // columns, and the whole column space. Documented contract: a stale
  // seed is always safe, the optimum is unchanged.
  const linalg::Matrix a{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  const linalg::Vector b{1.0, 2.0, 0.5, 3.0};
  const linalg::GramSystem gs = linalg::make_gram(a, b);
  const linalg::NnlsResult cold = linalg::nnls_gram(gs);

  linalg::NnlsOptions options;
  options.warm_start = {2, 2, 0, 99, 1, 0};
  const linalg::NnlsResult warm = linalg::nnls_gram(gs, options);
  ASSERT_TRUE(warm.converged);
  EXPECT_EQ(warm.active_set, cold.active_set);
  for (std::size_t j = 0; j < cold.x.size(); ++j) {
    EXPECT_NEAR(warm.x[j], cold.x[j], 1e-12) << "column " << j;
  }
}

}  // namespace
}  // namespace tomo::core
