// Second property suite: cross-module invariants on randomized instances
// (transform correctness, solver optimality, theorem/practical agreement,
// serialization round trips).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/correlation_algorithm.hpp"
#include "core/merged_inference.hpp"
#include "core/theorem_algorithm.hpp"
#include "corr/identifiability.hpp"
#include "corr/model_factory.hpp"
#include "graph/serialize.hpp"
#include "graph/transform.hpp"
#include "linalg/irls.hpp"
#include "linalg/qr.hpp"
#include "linalg/simplex.hpp"
#include "sim/oracle.hpp"
#include "topogen/planetlab_like.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo {
namespace {

class Seeds2 : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Sweep, Seeds2,
                         ::testing::Values(2, 4, 6, 10, 12, 14));

struct SmallSystem {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  graph::LinkPartition partition;
};

SmallSystem make_small_system(std::uint64_t seed) {
  topogen::PlanetLabParams params;
  params.routers = 30;
  params.vantage_points = 5;
  params.cluster_size = 3;
  params.seed = seed;
  auto topo = topogen::generate_planetlab_like(params);
  return {std::move(topo.graph), std::move(topo.paths),
          std::move(topo.partition)};
}

// ---------------------------------------------------------- transform ----

TEST_P(Seeds2, MergeReachesFixpointWithNoViolatingNodes) {
  SmallSystem sys = make_small_system(GetParam());
  const graph::MergeResult merged =
      graph::merge_indistinguishable(sys.graph, sys.paths, sys.partition);
  // Property 1: the result is a valid measured system.
  EXPECT_NO_THROW(graph::require_partition(merged.graph, merged.partition));
  graph::require_full_coverage(merged.graph, merged.paths);
  // Property 2: path endpoints are preserved.
  ASSERT_EQ(merged.paths.size(), sys.paths.size());
  for (std::size_t p = 0; p < sys.paths.size(); ++p) {
    EXPECT_EQ(merged.paths[p].source(), sys.paths[p].source());
    EXPECT_EQ(merged.paths[p].destination(), sys.paths[p].destination());
  }
  // Property 3: fixpoint — no intermediate node still matches the merge
  // criterion (= the structural Assumption-4 violation pattern).
  const corr::CorrelationSets merged_sets(merged.graph.link_count(),
                                          merged.partition);
  EXPECT_TRUE(corr::structurally_violating_nodes(merged.graph, merged.paths,
                                                 merged_sets)
                  .empty());
}

TEST_P(Seeds2, MergeCompositionReconstructsPaths) {
  SmallSystem sys = make_small_system(GetParam());
  const graph::MergeResult merged =
      graph::merge_indistinguishable(sys.graph, sys.paths, sys.partition);
  // Expanding each merged path through the composition map must give back
  // exactly the original link sequence.
  for (std::size_t p = 0; p < sys.paths.size(); ++p) {
    std::vector<graph::LinkId> expanded;
    for (graph::LinkId m : merged.paths[p].links()) {
      const auto& comp = merged.composition[m];
      expanded.insert(expanded.end(), comp.begin(), comp.end());
    }
    EXPECT_EQ(expanded, sys.paths[p].links()) << "path " << p;
  }
}

// ---------------------------------------------------------- serialize ----

TEST_P(Seeds2, SerializationRoundTripsGeneratedSystems) {
  SmallSystem sys = make_small_system(GetParam());
  graph::MeasuredSystem ms{sys.graph, sys.paths, sys.partition};
  std::stringstream buffer;
  graph::write_system(buffer, ms);
  const graph::MeasuredSystem loaded = graph::read_system(buffer);
  EXPECT_EQ(loaded.graph.link_count(), ms.graph.link_count());
  EXPECT_EQ(loaded.partition, ms.partition);
  ASSERT_EQ(loaded.paths.size(), ms.paths.size());
  for (std::size_t p = 0; p < ms.paths.size(); ++p) {
    EXPECT_EQ(loaded.paths[p].links(), ms.paths[p].links());
  }
}

// ------------------------------------------------------------ solvers ----

TEST_P(Seeds2, QrResidualIsOrthogonalToColumnSpace) {
  Rng rng(mix_seed(GetParam(), 1));
  const std::size_t m = 12, n = 7;
  linalg::Matrix a(m, n);
  linalg::Vector b(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
    b[i] = rng.uniform(-1, 1);
  }
  const linalg::Vector x = linalg::least_squares(a, b);
  const linalg::Vector grad =
      a.multiply_transposed(linalg::residual(a, x, b));
  EXPECT_LT(linalg::norm_inf(grad), 1e-8);
}

TEST_P(Seeds2, ExactL1NeverWorseThanIrls) {
  Rng rng(mix_seed(GetParam(), 2));
  const std::size_t m = 10, n = 4;
  linalg::Matrix a(m, n);
  linalg::Vector b(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0, 1);
    b[i] = rng.uniform(0, 1);
  }
  const linalg::L1Result lp = linalg::l1_regression(a, b, 1e-9);
  ASSERT_TRUE(lp.optimal);
  const linalg::IrlsResult ir = linalg::irls_l1(a, b);
  // The LP solves the constrained problem (x >= 0); IRLS is unconstrained,
  // so compare on the common ground: the LP objective must not exceed the
  // L1 norm of the clamped IRLS solution.
  linalg::Vector clamped = ir.x;
  for (double& v : clamped) v = std::max(0.0, v);
  const double irls_obj = linalg::norm1(linalg::residual(a, clamped, b));
  EXPECT_LE(linalg::norm1(linalg::residual(a, lp.x, b)), irls_obj + 1e-6);
}

// ------------------------------------------- theorem vs practical §4 ----

TEST_P(Seeds2, TheoremAndPracticalAlgorithmsAgreeOnTinyIdentifiable) {
  topogen::PlanetLabParams params;
  params.routers = 12;
  params.vantage_points = 4;
  params.cluster_size = 2;
  params.seed = GetParam();
  auto topo = topogen::generate_planetlab_like(params);
  if (topo.graph.link_count() > 15) GTEST_SKIP() << "too large";
  corr::CorrelationSets sets(topo.graph.link_count(), topo.partition);

  Rng rng(mix_seed(GetParam(), 3));
  std::vector<graph::LinkId> congested;
  std::vector<double> marginals;
  for (graph::LinkId e = 0; e < topo.graph.link_count(); ++e) {
    if (rng.bernoulli(0.35)) {
      congested.push_back(e);
      marginals.push_back(rng.uniform(0.1, 0.4));
    }
  }
  if (congested.empty()) {
    congested.push_back(0);
    marginals.push_back(0.25);
  }
  auto truth =
      corr::make_clustered_shock_model(sets, congested, marginals, 0.7);
  const graph::CoverageIndex cov(topo.graph, topo.paths);
  const sim::OracleMeasurement oracle(*truth, cov, 15);

  core::TheoremResult theorem;
  try {
    theorem = core::run_theorem_algorithm(cov, sets, oracle,
                                          {15, 15});
  } catch (const Error&) {
    GTEST_SKIP() << "Assumption 4 violated for this seed";
  }
  const core::InferenceResult practical = core::infer_congestion(
      topo.graph, topo.paths, cov, sets, oracle);
  // Where the practical system is full rank, the two must agree with the
  // exact theorem output (and hence with truth).
  if (practical.system.full_rank()) {
    for (graph::LinkId e = 0; e < topo.graph.link_count(); ++e) {
      EXPECT_NEAR(practical.congestion_prob[e],
                  theorem.congestion_prob[e], 1e-5)
          << "link " << e;
    }
  }
  for (graph::LinkId e = 0; e < topo.graph.link_count(); ++e) {
    EXPECT_NEAR(theorem.congestion_prob[e], truth->marginal(e), 1e-7);
  }
}

// ----------------------------------------------- merged inference -------

TEST_P(Seeds2, MergedInferenceProducesValidProbabilities) {
  SmallSystem sys = make_small_system(GetParam());
  corr::CorrelationSets sets(sys.graph.link_count(), sys.partition);
  Rng rng(mix_seed(GetParam(), 4));
  std::vector<graph::LinkId> congested;
  std::vector<double> marginals;
  for (graph::LinkId e = 0; e < sys.graph.link_count(); ++e) {
    if (rng.bernoulli(0.2)) {
      congested.push_back(e);
      marginals.push_back(rng.uniform(0.1, 0.5));
    }
  }
  if (congested.empty()) {
    congested.push_back(0);
    marginals.push_back(0.3);
  }
  auto truth =
      corr::make_clustered_shock_model(sets, congested, marginals, 0.7);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*truth, cov);
  const core::MergedInferenceResult r =
      core::infer_on_merged(sys.graph, sys.paths, sets, oracle);
  ASSERT_EQ(r.original_link_prob.size(), sys.graph.link_count());
  for (graph::LinkId e = 0; e < sys.graph.link_count(); ++e) {
    EXPECT_GE(r.original_link_prob[e], 0.0);
    EXPECT_LE(r.original_link_prob[e], 1.0);
    EXPECT_LT(r.merged_of[e], r.transform.graph.link_count());
  }
}

// --------------------------------------------------------- demotion -----

TEST_P(Seeds2, DemotionFallbackOnlyAddsCoverage) {
  SmallSystem sys = make_small_system(GetParam());
  corr::CorrelationSets sets(sys.graph.link_count(), sys.partition);
  Rng rng(mix_seed(GetParam(), 5));
  std::vector<graph::LinkId> congested{0};
  std::vector<double> marginals{0.3};
  auto truth =
      corr::make_clustered_shock_model(sets, congested, marginals, 0.0);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*truth, cov);
  core::InferenceOptions with, without;
  with.demote_uncovered = true;
  without.demote_uncovered = false;
  const auto r_with = core::infer_congestion(sys.graph, sys.paths, cov,
                                             sets, oracle, with);
  const auto r_without = core::infer_congestion(sys.graph, sys.paths, cov,
                                                sets, oracle, without);
  EXPECT_GE(r_with.system.rank, r_without.system.rank);
  EXPECT_GE(r_with.system.equations.size(),
            r_without.system.equations.size());
}

}  // namespace
}  // namespace tomo
