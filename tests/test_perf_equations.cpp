// Perf-regression smoke for the equation harvest (ctest label: "perf").
//
// Builds the registry's heaviest entry (waxman-dense-vps, uncapped at 40
// vantage points = 1560 ordered-pair paths) and times a few full harvests
// (correlation + independence structures) against a committed wall-clock
// budget. The budget is deliberately generous — CI containers are noisy
// and the same constant must hold across Debug/Release — so this tier is
// a tripwire against *gross* regressions: anything that reintroduces a
// superquadratic per-candidate cost (per-pair observation re-scans, dense
// O(rank x dim) elimination on every candidate, O(P^2) hash-set dedup at
// scale) lands in the seconds-to-minutes range here and fails in every
// build flavor. For scale: the streaming harvest runs this loop in
// ~0.06 s Release / ~2 s Debug+ASan; the full pre-PR-4 implementation
// took ~0.9 s Release / ~10 s Debug. Finer-grained exactness of each
// fast layer is enforced by the differential suite
// (test_equations_fast.cpp), and relative before/after cost is tracked by
// bench/micro_equations.cpp plus the *_harvest_seconds JSON telemetry.
#include <gtest/gtest.h>

#include "core/equations.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"

namespace tomo::core {
namespace {

#if defined(__SANITIZE_ADDRESS__)
#define TOMO_PERF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TOMO_PERF_SANITIZED 1
#endif
#endif

// Committed budget for kRounds x (correlation + independence) harvests.
#ifdef TOMO_PERF_SANITIZED
constexpr double kBudgetSeconds = 40.0;
#else
constexpr double kBudgetSeconds = 10.0;
#endif
constexpr int kRounds = 3;

TEST(PerfEquations, DenseVpsHarvestStaysWithinBudget) {
  ScenarioConfig config =
      ScenarioCatalog::instance().at("waxman-dense-vps").config;
  config.seed = 42;
  const ScenarioInstance inst = build_scenario(config);
  ASSERT_GE(inst.paths.size(), 1000u)
      << "waxman-dense-vps lost its uncapped vantage density";

  sim::SimulatorConfig sc;
  sc.snapshots = 2000;
  sc.packets_per_path = 4000;
  sc.mode = sim::PacketMode::kBinomial;
  sc.seed = 7;
  const auto simr = sim::simulate(inst.graph, inst.paths, *inst.truth, sc);
  const graph::CoverageIndex coverage(inst.graph, inst.paths);
  const corr::CorrelationSets singles =
      corr::CorrelationSets::singletons(coverage.link_count());

  std::size_t sink = 0;
  const Stopwatch timer;
  for (int round = 0; round < kRounds; ++round) {
    const sim::EmpiricalMeasurement meas(simr.observations());
    sink += build_equations(coverage, inst.declared_sets, meas)
                .equations.size();
    sink += build_equations(coverage, singles, meas).equations.size();
  }
  const double seconds = timer.seconds();
  EXPECT_GT(sink, 0u);
  EXPECT_LT(seconds, kBudgetSeconds)
      << "equation harvest regressed: " << seconds << " s for " << kRounds
      << " rounds at " << inst.paths.size() << " paths (budget "
      << kBudgetSeconds << " s)";
  // Telemetry for the CI log; not an assertion.
  std::cout << "[perf] waxman-dense-vps harvest: " << seconds << " s / "
            << kRounds << " rounds, " << inst.paths.size() << " paths, "
            << coverage.link_count() << " links\n";
}

}  // namespace
}  // namespace tomo::core
