// Unit tier for the tomo::stream layer: bit-exact window splicing
// (MeasurementBlock::append/slice and split_windows), the ingestion ring,
// the cumulative StreamingMeasurement provider, the tomo-obs-stream wire
// format, and the serve() loop end to end on in-memory streams. The
// streamed-vs-batch *inference* equivalence lives in
// tests/test_streaming_fast.cpp; this file pins the plumbing under it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corr/model_factory.hpp"
#include "sim/measurement.hpp"
#include "sim/obs_io.hpp"
#include "sim/simulator.hpp"
#include "stream/obs_stream.hpp"
#include "stream/serve.hpp"
#include "stream/streaming_measurement.hpp"
#include "stream/window_ring.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo::stream {
namespace {

/// A dense-ish random block with ragged tail words (snapshot_count not a
/// multiple of 64) so the shifted splice paths are exercised.
sim::MeasurementBlock random_block(std::size_t paths, std::size_t snapshots,
                                   std::uint64_t seed) {
  sim::MeasurementBlock block =
      sim::MeasurementBlock::all_good(paths, snapshots);
  Rng rng(seed);
  for (std::size_t p = 0; p < paths; ++p) {
    for (std::size_t n = 0; n < snapshots; ++n) {
      if (rng.uniform() < 0.35) {
        block.good_row(p)[n / 64] &= ~(std::uint64_t{1} << (n % 64));
      }
    }
  }
  block.recount();
  return block;
}

void expect_blocks_identical(const sim::MeasurementBlock& a,
                             const sim::MeasurementBlock& b,
                             const std::string& what) {
  ASSERT_EQ(a.path_count, b.path_count) << what;
  ASSERT_EQ(a.snapshot_count, b.snapshot_count) << what;
  EXPECT_EQ(a.good_bits, b.good_bits) << what;
  EXPECT_EQ(a.good_counts, b.good_counts) << what;
}

TEST(MeasurementBlockSplice, AppendOfSlicesRebuildsAnyPartition) {
  // 197 spans 4 words with a ragged tail; the window sizes cover shift 0,
  // shifts that cross word boundaries, a one-snapshot stream, and windows
  // larger than the block.
  const sim::MeasurementBlock block = random_block(5, 197, 0x5eed);
  for (std::size_t window : {1ul, 7ul, 64ul, 97ul, 128ul, 197ul, 1000ul}) {
    sim::MeasurementBlock rebuilt;
    for (const sim::MeasurementBlock& w : split_windows(block, window)) {
      rebuilt.append(w);
    }
    expect_blocks_identical(block, rebuilt,
                            "window=" + std::to_string(window));
  }
}

TEST(MeasurementBlockSplice, SliceMatchesPerBitExtraction) {
  const sim::MeasurementBlock block = random_block(3, 150, 0xbeef);
  const sim::MeasurementBlock part = block.slice(33, 90);
  ASSERT_EQ(part.path_count, 3u);
  ASSERT_EQ(part.snapshot_count, 90u);
  for (std::size_t p = 0; p < 3; ++p) {
    std::size_t good = 0;
    for (std::size_t n = 0; n < 90; ++n) {
      const std::size_t src = 33 + n;
      const bool expected =
          (block.good_row(p)[src / 64] >> (src % 64)) & 1u;
      const bool got = (part.good_row(p)[n / 64] >> (n % 64)) & 1u;
      ASSERT_EQ(got, expected) << "path " << p << " snapshot " << n;
      good += expected ? 1 : 0;
    }
    EXPECT_EQ(part.good_counts[p], good) << "path " << p;
    // Tail bits beyond snapshot_count must be cleared (90 % 64 = 26).
    const std::uint64_t tail = part.good_row(p)[part.words_per_path() - 1];
    EXPECT_EQ(tail & ~part.word_mask(part.words_per_path() - 1), 0u);
  }
}

TEST(MeasurementBlockSplice, AppendToEmptyCopiesAndCountsAdd) {
  const sim::MeasurementBlock block = random_block(4, 130, 0xabc);
  sim::MeasurementBlock grown;
  grown.append(block.slice(0, 70));
  ASSERT_EQ(grown.snapshot_count, 70u);
  grown.append(block.slice(70, 60));
  expect_blocks_identical(block, grown, "two-part splice");
}

TEST(MeasurementBlockSplice, AppendRejectsPathCountMismatch) {
  sim::MeasurementBlock a = sim::MeasurementBlock::all_good(3, 10);
  const sim::MeasurementBlock b = sim::MeasurementBlock::all_good(4, 10);
  EXPECT_THROW(a.append(b), Error);
}

TEST(WindowRing, DeliversInOrderAcrossThreads) {
  WindowRing ring(2);  // smaller than the window count: push must block
  const sim::MeasurementBlock block = random_block(2, 640, 0x11);
  const std::vector<sim::MeasurementBlock> windows =
      split_windows(block, 64);
  ASSERT_EQ(windows.size(), 10u);

  std::thread producer([&] {
    for (const sim::MeasurementBlock& w : windows) {
      ASSERT_TRUE(ring.push(sim::MeasurementBlock(w)));
    }
    ring.close();
  });
  std::vector<sim::MeasurementBlock> received;
  while (auto w = ring.pop()) received.push_back(std::move(*w));
  producer.join();

  ASSERT_EQ(received.size(), windows.size());
  for (std::size_t k = 0; k < windows.size(); ++k) {
    expect_blocks_identical(windows[k], received[k],
                            "window " + std::to_string(k));
  }
  EXPECT_FALSE(ring.pop().has_value()) << "closed ring stays drained";
}

TEST(WindowRing, CloseUnblocksProducerAndRejectsPush) {
  WindowRing ring(1);
  ASSERT_TRUE(ring.push(sim::MeasurementBlock::all_good(1, 8)));
  std::atomic<bool> second_push_returned{false};
  std::thread producer([&] {
    // Ring is full: this blocks until close(), then reports rejection.
    EXPECT_FALSE(ring.push(sim::MeasurementBlock::all_good(1, 8)));
    second_push_returned = true;
  });
  ring.close();
  producer.join();
  EXPECT_TRUE(second_push_returned);
  // The window accepted before close is still deliverable.
  EXPECT_TRUE(ring.pop().has_value());
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(StreamingMeasurement, PrefixQueriesMatchBatchProviderExactly) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  sim::SimulatorConfig config;
  config.snapshots = 500;
  config.seed = 21;
  const sim::SimulationResult result =
      sim::simulate(sys.graph, sys.paths, *model, config);

  StreamingMeasurement streaming(result.measurement.path_count);
  std::size_t ingested = 0;
  for (const sim::MeasurementBlock& w :
       split_windows(result.measurement, 130)) {
    streaming.append(w);
    ingested += w.snapshot_count;
    // The batch provider over the same prefix must answer every harvest
    // query with the same doubles (the cumulative block is bit-identical).
    const sim::EmpiricalMeasurement batch(
        result.measurement.slice(0, ingested));
    ASSERT_EQ(streaming.sample_count(), batch.sample_count());
    for (sim::PathId p = 0; p < streaming.path_count(); ++p) {
      ASSERT_EQ(streaming.good_prob(p), batch.good_prob(p));
      for (sim::PathId q = p + 1; q < streaming.path_count(); ++q) {
        ASSERT_EQ(streaming.pair_good_prob(p, q),
                  batch.pair_good_prob(p, q));
      }
    }
    ASSERT_EQ(streaming.all_good_prob({0, 1, 2}),
              batch.all_good_prob({0, 1, 2}));
  }
  EXPECT_EQ(streaming.window_count(), 4u);
  EXPECT_EQ(ingested, 500u);
}

TEST(ObsStream, WindowRoundTripIsBitIdentical) {
  const sim::MeasurementBlock block = random_block(4, 300, 0x77);
  const std::vector<sim::MeasurementBlock> windows =
      split_windows(block, 97);  // 97, 97, 97, 9 — ragged tail window

  std::stringstream wire;
  ObsStreamWriter writer(wire, block.path_count);
  for (const sim::MeasurementBlock& w : windows) writer.write_window(w);
  writer.close();

  ObsStreamReader reader(wire);
  std::vector<sim::MeasurementBlock> received;
  while (auto w = reader.next()) received.push_back(std::move(*w));
  EXPECT_TRUE(reader.finished());
  EXPECT_FALSE(reader.batch_format());
  ASSERT_EQ(received.size(), windows.size());
  for (std::size_t k = 0; k < windows.size(); ++k) {
    expect_blocks_identical(windows[k], received[k],
                            "window " + std::to_string(k));
  }
}

TEST(ObsStream, ReaderAcceptsClassicBatchFilesAsOneWindow) {
  const sim::MeasurementBlock block = random_block(3, 190, 0x99);
  std::stringstream wire;
  sim::write_observations(wire, block);

  ObsStreamReader reader(wire);
  const auto window = reader.next();
  ASSERT_TRUE(window.has_value());
  EXPECT_TRUE(reader.batch_format());
  expect_blocks_identical(block, *window, "batch replay");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.finished());
}

TEST(ObsStream, EofMidWindowIsRetryableNotFatal) {
  const sim::MeasurementBlock block = random_block(2, 64, 0x31);
  std::stringstream full;
  ObsStreamWriter writer(full, block.path_count);
  writer.write_window(block);
  const std::string wire = full.str();

  // Feed a prefix that ends mid-window (no `end` yet): next() must report
  // "nothing complete" without failing or consuming partial state...
  std::stringstream tail;
  tail.str(wire.substr(0, wire.size() / 2));
  ObsStreamReader reader(tail);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.finished());

  // ...and once the rest of the bytes land (the producer kept writing),
  // the same reader picks up where it left off.
  tail.clear();
  const auto pos = tail.tellg();
  std::string grown = tail.str();
  grown += wire.substr(wire.size() / 2);
  tail.str(grown);
  tail.seekg(pos);
  const auto window = reader.next();
  ASSERT_TRUE(window.has_value());
  expect_blocks_identical(block, *window, "resumed window");
}

TEST(ObsStream, MalformedInputFailsWithLineNumbers) {
  {
    std::stringstream wire("bogus-header\n");
    ObsStreamReader reader(wire);
    EXPECT_THROW(reader.next(), Error);
  }
  {
    std::stringstream wire(
        "tomo-obs-stream v1\npaths 2\nwindow 10\ncongested 5 0\nend\n");
    ObsStreamReader reader(wire);
    EXPECT_THROW(reader.next(), Error) << "path id out of range";
  }
  {
    std::stringstream wire(
        "tomo-obs-stream v1\npaths 2\nwindow 4\ncongested 0 7\nend\n");
    ObsStreamReader reader(wire);
    EXPECT_THROW(reader.next(), Error) << "snapshot id out of range";
  }
  {
    std::stringstream wire("tomo-obs-stream v1\npaths 2\nclose\nwindow 4\n");
    ObsStreamReader reader(wire);
    EXPECT_THROW(
        {
          while (reader.next().has_value()) {
          }
        },
        Error)
        << "window after close";
  }
}

/// serve() end to end on in-memory streams: a tiny scenario's trace is
/// replayed through the full daemon loop (producer thread + ring +
/// StreamingInference) and must emit one JSON line per window,
/// byte-identical across jobs values.
TEST(Serve, EmitsOneDeterministicJsonLinePerWindow) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  sim::SimulatorConfig config;
  config.snapshots = 400;
  config.seed = 33;
  const sim::SimulationResult result =
      sim::simulate(sys.graph, sys.paths, *model, config);

  std::stringstream wire;
  ObsStreamWriter writer(wire, result.measurement.path_count);
  for (const sim::MeasurementBlock& w :
       split_windows(result.measurement, 150)) {
    writer.write_window(w);
  }
  writer.close();
  const std::string bytes = wire.str();

  const auto run = [&](std::size_t jobs) {
    std::stringstream input(bytes);
    std::stringstream output;
    ServeOptions options;
    options.streaming.inference.solver.jobs = jobs;
    options.streaming.inference.equations.jobs = jobs;
    const ServeReport report =
        serve(input, output, sys.graph, sys.paths, sys.sets, options);
    EXPECT_EQ(report.windows, 3u);  // 150 + 150 + 100
    EXPECT_EQ(report.snapshots, 400u);
    return output.str();
  };
  const std::string serial = run(1);
  const std::string parallel = run(3);
  EXPECT_EQ(serial, parallel) << "serve stdout must be jobs-invariant";

  // Three lines, each a {"window":k,...} object in arrival order.
  std::stringstream lines(serial);
  std::string line;
  std::size_t k = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("{\"window\":" + std::to_string(k), 0), 0u)
        << line;
    EXPECT_EQ(line.back(), '}') << line;
    ++k;
  }
  EXPECT_EQ(k, 3u);
}

/// A consumer closing the output (EPIPE with SIGPIPE ignored surfaces
/// as a failed stream) must stop the loop cleanly after the failed
/// window — flagged on the report, producer joined — not kill the
/// process or spin on a dead pipe.
TEST(Serve, ClosedOutputStopsTheLoopAndIsReported) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  sim::SimulatorConfig config;
  config.snapshots = 400;
  config.seed = 35;
  const sim::SimulationResult result =
      sim::simulate(sys.graph, sys.paths, *model, config);

  std::stringstream input;
  ObsStreamWriter writer(input, result.measurement.path_count);
  for (const sim::MeasurementBlock& w :
       split_windows(result.measurement, 100)) {
    writer.write_window(w);
  }
  writer.close();

  std::stringstream output;
  output.setstate(std::ios::failbit);  // consumer already gone
  const ServeReport report =
      serve(input, output, sys.graph, sys.paths, sys.sets, {});
  EXPECT_TRUE(report.output_closed);
  EXPECT_EQ(report.windows, 1u);  // the window whose write failed
}

TEST(Serve, MaxWindowsStopsEarlyAndStillJoinsTheProducer) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  sim::SimulatorConfig config;
  config.snapshots = 600;
  config.seed = 34;
  const sim::SimulationResult result =
      sim::simulate(sys.graph, sys.paths, *model, config);

  std::stringstream input;
  ObsStreamWriter writer(input, result.measurement.path_count);
  for (const sim::MeasurementBlock& w :
       split_windows(result.measurement, 50)) {
    writer.write_window(w);
  }
  writer.close();

  std::stringstream output;
  ServeOptions options;
  options.ring_capacity = 2;  // smaller than the 12 windows: producer blocks
  options.max_windows = 3;
  const ServeReport report =
      serve(input, output, sys.graph, sys.paths, sys.sets, options);
  EXPECT_EQ(report.windows, 3u);
  EXPECT_EQ(report.snapshots, 150u);
}

/// Tail-mode truncation: when the tailed file shrinks under the daemon
/// (logrotate copytruncate, a recorder restarting and rewriting in
/// place), the producer's offset points into bytes that no longer exist.
/// It must notice via the input_size probe, reopen from the start, and
/// ingest the new contents — not tail a stale offset forever.
TEST(Serve, TailReopensWhenTheInputFileShrinks) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  sim::SimulatorConfig config;
  config.snapshots = 200;
  config.seed = 36;
  const sim::SimulationResult result =
      sim::simulate(sys.graph, sys.paths, *model, config);

  // Phase 1: two 100-snapshot windows, no close marker — a live tail.
  std::stringstream phase1_wire;
  {
    ObsStreamWriter writer(phase1_wire, result.measurement.path_count);
    for (const sim::MeasurementBlock& w :
         split_windows(result.measurement, 100)) {
      writer.write_window(w);
    }
  }
  // Phase 2: the recorder restarted — one 50-snapshot window, then close.
  std::stringstream phase2_wire;
  {
    ObsStreamWriter writer(phase2_wire, result.measurement.path_count);
    writer.write_window(result.measurement.slice(0, 50));
    writer.close();
  }
  const std::string phase1 = phase1_wire.str();
  const std::string phase2 = phase2_wire.str();
  ASSERT_LT(phase2.size(), phase1.size())
      << "phase 2 must be a shrink, not an append";

  const std::string path = ::testing::TempDir() + "serve_truncation.obs";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << phase1;
  }
  std::ifstream input(path, std::ios::binary);
  ASSERT_TRUE(input.is_open());

  // The probe doubles as the test's actor (it runs on the producer
  // thread, so this stays single-threaded): the first poll records the
  // phase-1 baseline, the second rewrites the file in place and reports
  // the shrunken size.
  std::size_t polls = 0;
  ServeOptions options;
  options.poll_ms = 1;
  options.input_size = [&]() -> long long {
    ++polls;
    if (polls == 2) {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os << phase2;
    }
    return static_cast<long long>(std::filesystem::file_size(path));
  };

  std::stringstream output;
  const ServeReport report =
      serve(input, output, sys.graph, sys.paths, sys.sets, options);
  std::filesystem::remove(path);

  EXPECT_EQ(report.truncations, 1u);
  // Both phase-1 windows and the reopened phase-2 window were ingested.
  EXPECT_EQ(report.windows, 3u);
  EXPECT_EQ(report.snapshots, 250u);
  EXPECT_GE(polls, 2u);
}

}  // namespace
}  // namespace tomo::stream
