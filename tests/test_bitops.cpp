// Differential suite for the util::bitops kernel layer.
//
// The layer's contract is exactness: the scalar reference table and the
// runtime-dispatched SIMD table must be *bitwise identical* on every
// input — that is what keeps the repo's bit-identity contracts
// (jobs-invariance, batched-vs-reference, streamed-vs-batch,
// sharded-vs-monolithic) independent of the machine's vector unit. These
// tests pin that contract with randomized inputs over every width in
// [1, 512] bits (all tail residues mod 64), unaligned word offsets, every
// shift in [1, 63], and per-bit reference models for the structural
// kernels (transpose, resample). On a machine without AVX2 (or a
// scalar-only build) best_kernels() == scalar_kernels() and the
// differential half degenerates to a self-check, which is the intended
// fallback.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/measurement_block.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace tomo::util::bitops {
namespace {

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t words) {
  std::vector<std::uint64_t> out(words);
  for (std::uint64_t& w : out) w = rng();
  return out;
}

/// Masks the bits of `words` beyond `bits` (the block tail convention).
void mask_tail(std::vector<std::uint64_t>& words, std::size_t bits) {
  if (bits % 64 != 0) {
    words.back() &= (std::uint64_t{1} << (bits % 64)) - 1;
  }
}

TEST(BitopsDifferential, TablesAreDistinctExactlyWhenSimdIsAvailable) {
  EXPECT_EQ(simd_available(),
            &best_kernels() != &scalar_kernels());
  // active() must be one of the two tables, whatever the env said when it
  // latched.
  EXPECT_TRUE(&active() == &scalar_kernels() || &active() == &best_kernels());
  EXPECT_STREQ(scalar_kernels().name, "scalar");
}

TEST(BitopsDifferential, PopcountFamilyMatchesScalarAcrossAllWidths) {
  const Kernels& s = scalar_kernels();
  const Kernels& b = best_kernels();
  Rng rng(0xb1707);
  for (std::size_t bits = 1; bits <= 512; ++bits) {
    const std::size_t words = (bits + 63) / 64;
    std::vector<std::uint64_t> a = random_words(rng, words);
    std::vector<std::uint64_t> c = random_words(rng, words);
    std::vector<std::uint64_t> d = random_words(rng, words);
    mask_tail(a, bits);
    mask_tail(c, bits);
    mask_tail(d, bits);
    EXPECT_EQ(s.popcount(a.data(), words), b.popcount(a.data(), words))
        << bits;
    EXPECT_EQ(s.and_popcount(a.data(), c.data(), words),
              b.and_popcount(a.data(), c.data(), words))
        << bits;
    const std::array<const std::uint64_t*, 3> rows = {a.data(), c.data(),
                                                      d.data()};
    for (std::size_t row_count = 1; row_count <= rows.size(); ++row_count) {
      EXPECT_EQ(s.and_popcount_multi(rows.data(), row_count, words),
                b.and_popcount_multi(rows.data(), row_count, words))
          << bits << " rows=" << row_count;
    }
  }
}

TEST(BitopsDifferential, PopcountMatchesScalarAtUnalignedOffsets) {
  const Kernels& s = scalar_kernels();
  const Kernels& b = best_kernels();
  Rng rng(0x0ff5e7);
  const std::vector<std::uint64_t> buf = random_words(rng, 64);
  for (std::size_t offset = 0; offset < 4; ++offset) {
    for (std::size_t words : {1u, 3u, 4u, 7u, 11u, 32u}) {
      const std::uint64_t* a = buf.data() + offset;
      const std::uint64_t* c = buf.data() + offset + 17;
      EXPECT_EQ(s.popcount(a, words), b.popcount(a, words))
          << offset << " " << words;
      EXPECT_EQ(s.and_popcount(a, c, words), b.and_popcount(a, c, words))
          << offset << " " << words;
    }
  }
}

TEST(BitopsDifferential, CopyAndGatherMatchScalar) {
  const Kernels& s = scalar_kernels();
  const Kernels& b = best_kernels();
  Rng rng(0xc09d);
  for (std::size_t row_words : {1u, 2u, 3u, 5u, 8u, 13u}) {
    const std::size_t rows = 37;
    const std::vector<std::uint64_t> src = random_words(rng, rows * row_words);
    std::vector<std::uint32_t> indices(61);
    for (std::uint32_t& idx : indices) {
      idx = static_cast<std::uint32_t>(rng.below(rows));
    }
    std::vector<std::uint64_t> got_s(indices.size() * row_words, 0);
    std::vector<std::uint64_t> got_b(indices.size() * row_words, 0);
    s.gather_rows(got_s.data(), src.data(), row_words, indices.data(),
                  indices.size());
    b.gather_rows(got_b.data(), src.data(), row_words, indices.data(),
                  indices.size());
    EXPECT_EQ(got_s, got_b) << row_words;

    std::vector<std::uint64_t> copy_b(src.size(), 0);
    b.copy_words(copy_b.data(), src.data(), src.size());
    EXPECT_EQ(copy_b, src) << row_words;
  }
}

TEST(BitopsDifferential, ShiftOrMatchesScalarForEveryShift) {
  const Kernels& s = scalar_kernels();
  const Kernels& b = best_kernels();
  Rng rng(0x5f0);
  for (unsigned shift = 1; shift <= 63; ++shift) {
    for (std::size_t words : {1u, 2u, 4u, 5u, 9u, 16u}) {
      const std::vector<std::uint64_t> src = random_words(rng, words);
      std::vector<std::uint64_t> dst_s = random_words(rng, words);
      std::vector<std::uint64_t> dst_b = dst_s;
      s.shift_or(dst_s.data(), src.data(), words, shift);
      b.shift_or(dst_b.data(), src.data(), words, shift);
      EXPECT_EQ(dst_s, dst_b) << "shift=" << shift << " words=" << words;
    }
  }
}

TEST(BitopsDifferential, ShiftExtractMatchesScalarForEveryShift) {
  const Kernels& s = scalar_kernels();
  const Kernels& b = best_kernels();
  Rng rng(0x5f1);
  for (unsigned shift = 1; shift <= 63; ++shift) {
    for (std::size_t words : {1u, 2u, 4u, 5u, 9u, 16u}) {
      // One spare word past the window for the read_tail variant.
      const std::vector<std::uint64_t> src = random_words(rng, words + 1);
      for (const bool read_tail : {false, true}) {
        std::vector<std::uint64_t> dst_s(words, 0);
        std::vector<std::uint64_t> dst_b(words, 0);
        s.shift_extract(dst_s.data(), src.data(), words, shift, read_tail);
        b.shift_extract(dst_b.data(), src.data(), words, shift, read_tail);
        EXPECT_EQ(dst_s, dst_b)
            << "shift=" << shift << " words=" << words << " tail="
            << read_tail;
      }
    }
  }
}

TEST(BitopsDifferential, TransposeMatchesPerBitModelAndScalar) {
  const Kernels& s = scalar_kernels();
  const Kernels& b = best_kernels();
  Rng rng(0x764a);
  for (int round = 0; round < 8; ++round) {
    const std::vector<std::uint64_t> in = random_words(rng, 64);
    std::uint64_t expect[64] = {};
    for (unsigned r = 0; r < 64; ++r) {
      for (unsigned c = 0; c < 64; ++c) {
        if ((in[r] >> c) & 1u) {
          expect[c] |= std::uint64_t{1} << r;
        }
      }
    }
    std::uint64_t got_s[64], got_b[64];
    s.transpose64x64(in.data(), 1, got_s, 1);
    b.transpose64x64(in.data(), 1, got_b, 1);
    for (unsigned c = 0; c < 64; ++c) {
      ASSERT_EQ(got_s[c], expect[c]) << "row " << c;
      ASSERT_EQ(got_b[c], expect[c]) << "row " << c;
    }
  }
}

TEST(BitopsDifferential, TransposeIsAnInvolutionWithStrides) {
  const Kernels& b = best_kernels();
  Rng rng(0x764b);
  const std::size_t stride = 3;
  std::vector<std::uint64_t> in(64 * stride);
  for (std::uint64_t& w : in) w = rng();
  std::vector<std::uint64_t> mid(64 * 2, 0);
  std::vector<std::uint64_t> back(64, 0);
  b.transpose64x64(in.data(), stride, mid.data(), 2);
  b.transpose64x64(mid.data(), 2, back.data(), 1);
  for (unsigned r = 0; r < 64; ++r) {
    ASSERT_EQ(back[r], in[r * stride]) << "row " << r;
  }
}

// The rewritten MeasurementBlock::resample (transpose → word gather →
// transpose back) against a per-bit model, across ragged shapes on both
// axes and pick counts different from the source snapshot count.
TEST(BitopsDifferential, BlockResampleMatchesPerBitModel) {
  Rng rng(0x9e5a);
  sim::ResampleScratch scratch;  // shared across cases: re-keys per block
  for (const std::size_t paths : {1u, 3u, 63u, 64u, 65u, 130u}) {
    for (const std::size_t snaps : {1u, 63u, 64u, 65u, 190u}) {
      sim::MeasurementBlock block;
      block.path_count = paths;
      block.snapshot_count = snaps;
      block.good_bits = random_words(rng, paths * block.words_per_path());
      for (sim::PathId p = 0; p < paths; ++p) {
        block.good_row(p)[block.words_per_path() - 1] &=
            block.word_mask(block.words_per_path() - 1);
      }
      block.recount();
      for (const std::size_t pick_count : {1ul, snaps, 2 * snaps + 5}) {
        std::vector<std::uint32_t> picks(pick_count);
        for (std::uint32_t& pick : picks) {
          pick = static_cast<std::uint32_t>(rng.below(snaps));
        }
        const sim::MeasurementBlock got = block.resample(picks, scratch);
        ASSERT_EQ(got.path_count, paths);
        ASSERT_EQ(got.snapshot_count, pick_count);
        sim::MeasurementBlock expect;
        expect.path_count = paths;
        expect.snapshot_count = pick_count;
        expect.good_bits.assign(paths * expect.words_per_path(), 0);
        for (sim::PathId p = 0; p < paths; ++p) {
          for (std::size_t i = 0; i < pick_count; ++i) {
            const std::uint64_t bit =
                (block.good_row(p)[picks[i] / 64] >> (picks[i] % 64)) & 1u;
            expect.good_row(p)[i / 64] |= bit << (i % 64);
          }
        }
        expect.recount();
        ASSERT_EQ(got.good_bits, expect.good_bits)
            << paths << "x" << snaps << " picks=" << pick_count;
        ASSERT_EQ(got.good_counts, expect.good_counts)
            << paths << "x" << snaps << " picks=" << pick_count;
      }
    }
  }
}

TEST(BitopsDifferential, ResampleScratchReuseIsIdenticalToFreshScratch) {
  Rng rng(0x9e5b);
  sim::ResampleScratch reused;
  for (int round = 0; round < 6; ++round) {
    const std::size_t paths = 10 + static_cast<std::size_t>(rng.below(120));
    const std::size_t snaps = 1 + static_cast<std::size_t>(rng.below(200));
    sim::MeasurementBlock block;
    block.path_count = paths;
    block.snapshot_count = snaps;
    block.good_bits = random_words(rng, paths * block.words_per_path());
    for (sim::PathId p = 0; p < paths; ++p) {
      block.good_row(p)[block.words_per_path() - 1] &=
          block.word_mask(block.words_per_path() - 1);
    }
    block.recount();
    std::vector<std::uint32_t> picks(snaps);
    for (std::uint32_t& pick : picks) {
      pick = static_cast<std::uint32_t>(rng.below(snaps));
    }
    // Two replicates from the same block through the reused scratch (the
    // second hits the cached transpose) versus the fresh-scratch overload.
    const sim::MeasurementBlock first = block.resample(picks, reused);
    const sim::MeasurementBlock second = block.resample(picks, reused);
    const sim::MeasurementBlock fresh = block.resample(picks);
    EXPECT_EQ(first.good_bits, fresh.good_bits) << round;
    EXPECT_EQ(second.good_bits, fresh.good_bits) << round;
    EXPECT_EQ(second.good_counts, fresh.good_counts) << round;
  }
}

}  // namespace
}  // namespace tomo::util::bitops
