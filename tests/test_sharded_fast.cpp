// Differential suite for core::ShardedInference.
//
// The exactness contract (sharded_inference.hpp): with an unbounded plan
// the shards are link-disjoint, correlation-closed components, and — when
// the pair-equation budget does not bind — each shard harvests exactly the
// monolithic equations that live inside it, so the sharded solution must
// match the monolithic pipeline's up to Gram-summation rounding. These
// tests pin that across every registry scenario (1e-8, bitwise on
// single-shard plans), pin bit-identity across --jobs, and check the
// structural/reconciliation invariants of capped plans, including a
// synthetic traceroute dump driven end to end through the sharded path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/correlation_algorithm.hpp"
#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "core/sharded_inference.hpp"
#include "corr/model_factory.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "topogen/traceroute.hpp"
#include "util/rng.hpp"

namespace tomo::core {
namespace {

struct PreparedScenario {
  ScenarioInstance inst;
  graph::CoverageIndex coverage;
  sim::MeasurementBlock block;
};

PreparedScenario prepare(ScenarioConfig config, std::uint64_t sim_seed) {
  ScenarioInstance inst = build_scenario(config);
  graph::CoverageIndex coverage(inst.graph, inst.paths);
  sim::SimulatorConfig sc;
  sc.snapshots = 300;
  sc.packets_per_path = 500;
  sc.mode = sim::PacketMode::kBinomial;
  sc.seed = sim_seed;
  sim::SimulationResult sim_result =
      sim::simulate(inst.graph, inst.paths, *inst.truth, sc);
  return PreparedScenario{std::move(inst), std::move(coverage),
                          std::move(sim_result.measurement)};
}

/// Both sides of the differential must run with a pair budget that cannot
/// bind: only then is the harvest's acceptance order-independent and the
/// monolithic equation set restriction-decomposable across shards.
InferenceOptions unbudgeted_inference() {
  InferenceOptions options;
  options.equations.max_pair_equations = 1'000'000;
  return options;
}

void check_plan_invariants(const ShardPlan& plan,
                           const std::vector<graph::Path>& paths,
                           std::size_t link_count, const std::string& what) {
  // Paths partition exactly; shard link lists are sorted, deduplicated,
  // and are precisely the links their paths traverse.
  std::vector<std::size_t> owner(paths.size(), SIZE_MAX);
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    const Shard& shard = plan.shards[s];
    EXPECT_FALSE(shard.paths.empty()) << what << ": empty shard " << s;
    for (graph::PathId p : shard.paths) {
      ASSERT_LT(p, paths.size()) << what;
      EXPECT_EQ(owner[p], SIZE_MAX)
          << what << ": path " << p << " in two shards";
      owner[p] = s;
    }
    ASSERT_TRUE(std::is_sorted(shard.links.begin(), shard.links.end()))
        << what << ": shard " << s;
    std::set<graph::LinkId> expected;
    for (graph::PathId p : shard.paths) {
      for (graph::LinkId e : paths[p].links()) expected.insert(e);
    }
    EXPECT_EQ(std::vector<graph::LinkId>(expected.begin(), expected.end()),
              shard.links)
        << what << ": shard " << s;
  }
  for (std::size_t p = 0; p < paths.size(); ++p) {
    EXPECT_NE(owner[p], SIZE_MAX) << what << ": path " << p << " unassigned";
  }
  // shards_of_link inverts the shard link lists; shared_links counts the
  // multiply-covered ones.
  ASSERT_EQ(plan.shards_of_link.size(), link_count) << what;
  std::size_t shared = 0;
  for (graph::LinkId e = 0; e < link_count; ++e) {
    const auto& owners = plan.shards_of_link[e];
    ASSERT_TRUE(std::is_sorted(owners.begin(), owners.end())) << what;
    for (std::size_t s : owners) {
      ASSERT_LT(s, plan.shards.size()) << what;
      EXPECT_TRUE(std::binary_search(plan.shards[s].links.begin(),
                                     plan.shards[s].links.end(), e))
          << what << ": link " << e << " not in shard " << s;
    }
    if (owners.size() > 1) ++shared;
  }
  EXPECT_EQ(plan.shared_links, shared) << what;
}

void check_result_invariants(const ShardedInferenceResult& result,
                             std::size_t link_count,
                             const std::string& what) {
  ASSERT_EQ(result.congestion_prob.size(), link_count) << what;
  ASSERT_EQ(result.log_good.size(), link_count) << what;
  ASSERT_EQ(result.shard_of.size(), link_count) << what;
  ASSERT_EQ(result.reconciled.size(), link_count) << what;
  ASSERT_EQ(result.residual_gap.size(), link_count) << what;
  for (graph::LinkId e = 0; e < link_count; ++e) {
    EXPECT_GE(result.congestion_prob[e], 0.0) << what << ": link " << e;
    EXPECT_LE(result.congestion_prob[e], 1.0) << what << ": link " << e;
    EXPECT_LE(result.log_good[e], 0.0) << what << ": link " << e;
    const auto& owners = result.plan.shards_of_link[e];
    if (!owners.empty()) {
      EXPECT_EQ(result.shard_of[e], owners.front()) << what;
    }
    EXPECT_EQ(result.reconciled[e] != 0, owners.size() > 1) << what;
    if (owners.size() <= 1) {
      EXPECT_EQ(result.residual_gap[e], 0.0) << what << ": link " << e;
    } else {
      EXPECT_GE(result.residual_gap[e], 0.0) << what << ": link " << e;
    }
  }
  // Every shared link is settled exactly once, by averaging or re-solve.
  EXPECT_EQ(result.averaged_links + result.resolved_links,
            result.plan.shared_links)
      << what;
}

class RegistryShardedDifferential
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryShardedDifferential, UnboundedPlanMatchesMonolithic) {
  ScenarioConfig config =
      shrink_for_tests(ScenarioCatalog::instance().at(GetParam()).config);
  config.seed = 0x5a4d;
  const PreparedScenario p = prepare(config, 0x5a4d00);
  const InferenceOptions inference = unbudgeted_inference();

  const sim::EmpiricalMeasurement measurement(p.block);
  const InferenceResult mono =
      infer_congestion(p.inst.graph, p.inst.paths, p.coverage,
                       p.inst.declared_sets, measurement, inference);

  ShardedOptions options;
  options.max_shard_paths = 0;  // unbounded: link-disjoint components
  options.inference = inference;
  const ShardedInferenceResult sharded =
      infer_sharded(p.inst.graph, p.inst.paths, p.coverage,
                    p.inst.declared_sets, p.block, options);

  check_plan_invariants(sharded.plan, p.inst.paths,
                        p.inst.graph.link_count(), GetParam());
  check_result_invariants(sharded, p.inst.graph.link_count(), GetParam());
  EXPECT_EQ(sharded.plan.shared_links, 0u)
      << GetParam() << ": unbounded plans are link-disjoint";

  ASSERT_EQ(sharded.congestion_prob.size(), mono.congestion_prob.size());
  for (graph::LinkId e = 0; e < mono.congestion_prob.size(); ++e) {
    if (sharded.plan.shards.size() == 1) {
      // Single-shard bypass: literally the monolithic call, bit for bit.
      EXPECT_EQ(sharded.congestion_prob[e], mono.congestion_prob[e])
          << GetParam() << ": link " << e;
      EXPECT_EQ(sharded.log_good[e], mono.log_good[e])
          << GetParam() << ": link " << e;
    } else {
      EXPECT_NEAR(sharded.congestion_prob[e], mono.congestion_prob[e], 1e-8)
          << GetParam() << ": link " << e << " of "
          << sharded.plan.shards.size() << " shards";
    }
  }
}

TEST_P(RegistryShardedDifferential, CappedPlanIsBitIdenticalAcrossJobs) {
  ScenarioConfig config =
      shrink_for_tests(ScenarioCatalog::instance().at(GetParam()).config);
  config.seed = 0x5a4e;
  const PreparedScenario p = prepare(config, 0x5a4e00);

  ShardedOptions options;
  // Small cap: force several shards (and usually shared links) even at
  // shrink scale, so the parallel fan-out has real work to disagree on.
  options.max_shard_paths = 12;
  options.inference = unbudgeted_inference();

  options.jobs = 1;
  const ShardedInferenceResult a =
      infer_sharded(p.inst.graph, p.inst.paths, p.coverage,
                    p.inst.declared_sets, p.block, options);
  options.jobs = 3;
  const ShardedInferenceResult b =
      infer_sharded(p.inst.graph, p.inst.paths, p.coverage,
                    p.inst.declared_sets, p.block, options);

  check_plan_invariants(a.plan, p.inst.paths, p.inst.graph.link_count(),
                        GetParam());
  check_result_invariants(a, p.inst.graph.link_count(), GetParam());
  ASSERT_EQ(a.plan.shards.size(), b.plan.shards.size());
  EXPECT_EQ(a.averaged_links, b.averaged_links);
  EXPECT_EQ(a.resolved_links, b.resolved_links);
  EXPECT_EQ(a.joint_solves, b.joint_solves);
  // Bitwise, not approximate: per-shard seeds and slot-indexed merges are
  // the determinism contract.
  ASSERT_EQ(a.log_good.size(), b.log_good.size());
  for (graph::LinkId e = 0; e < a.log_good.size(); ++e) {
    EXPECT_EQ(a.log_good[e], b.log_good[e]) << GetParam() << ": link " << e;
    EXPECT_EQ(a.congestion_prob[e], b.congestion_prob[e])
        << GetParam() << ": link " << e;
    EXPECT_EQ(a.residual_gap[e], b.residual_gap[e])
        << GetParam() << ": link " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistryShardedDifferential,
    ::testing::ValuesIn(ScenarioCatalog::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ShardedFast, PlanRespectsPathCapOnOversplitScenario) {
  ScenarioConfig config;
  config.topology = TopologyKind::kWaxman;
  config.vantage_points = 12;
  config.seed = 17;
  const PreparedScenario p = prepare(config, 18);
  const ShardPlan plan =
      plan_shards(p.inst.paths, p.coverage, p.inst.declared_sets, 20);
  check_plan_invariants(plan, p.inst.paths, p.inst.graph.link_count(),
                        "capped plan");
  EXPECT_GT(plan.shards.size(), 1u);
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    // A shard may exceed the cap only when a single vantage cluster does —
    // clusters are never split, so the bound is cap + largest cluster.
    EXPECT_LE(plan.shards[s].paths.size(), 20u + p.inst.paths.size())
        << "shard " << s;
  }
}

TEST(ShardedFast, SharedLinkReconciliationProperties) {
  ScenarioConfig config;
  config.topology = TopologyKind::kBarabasiAlbert;
  config.vantage_points = 10;
  config.seed = 23;
  const PreparedScenario p = prepare(config, 29);

  ShardedOptions options;
  options.max_shard_paths = 10;
  options.inference = unbudgeted_inference();
  const ShardedInferenceResult result =
      infer_sharded(p.inst.graph, p.inst.paths, p.coverage,
                    p.inst.declared_sets, p.block, options);
  check_plan_invariants(result.plan, p.inst.paths,
                        p.inst.graph.link_count(), "BA capped");
  check_result_invariants(result, p.inst.graph.link_count(), "BA capped");
  ASSERT_GT(result.plan.shards.size(), 1u);
  ASSERT_GT(result.plan.shared_links, 0u)
      << "the hub topology must produce shared links under a tight cap";
  // Agreement within tolerance is settled by averaging; only links whose
  // shard estimates spread past the tolerance enter joint re-solves.
  for (graph::LinkId e = 0; e < p.inst.graph.link_count(); ++e) {
    if (result.reconciled[e] &&
        result.residual_gap[e] <= options.disagreement_tol) {
      EXPECT_GT(result.averaged_links, 0u);
      break;
    }
  }
  if (result.joint_solves > 0) {
    EXPECT_GT(result.resolved_links, 0u);
  } else {
    EXPECT_EQ(result.resolved_links, 0u);
  }
}

TEST(ShardedFast, PrecisionWeightsOffStillReconciles) {
  ScenarioConfig config;
  config.topology = TopologyKind::kBarabasiAlbert;
  config.vantage_points = 10;
  config.seed = 23;
  const PreparedScenario p = prepare(config, 29);

  ShardedOptions options;
  options.max_shard_paths = 10;
  options.precision_replicates = 0;  // unweighted log-space mean
  options.inference = unbudgeted_inference();
  const ShardedInferenceResult result =
      infer_sharded(p.inst.graph, p.inst.paths, p.coverage,
                    p.inst.declared_sets, p.block, options);
  check_result_invariants(result, p.inst.graph.link_count(),
                          "unweighted reconciliation");
}

/// Synthesizes a traceroute dump: `sites` vantage hosts fully meshed over
/// chains of shared backbone routers, with AS assignments grouping each
/// backbone segment — the parse → shard → infer hand-off end to end.
std::string synthetic_dump(std::size_t sites, std::size_t backbone) {
  std::ostringstream os;
  os << "# synthetic mesh dump\n";
  for (std::size_t a = 0; a < sites; ++a) {
    for (std::size_t b = 0; b < sites; ++b) {
      if (a == b) continue;
      // Route: site a -> its gateway -> a backbone router -> b's gateway
      // -> site b. Gateways are per-site; backbone routers are shared.
      os << "trace s" << a << " gw" << a << " bb" << (a + b) % backbone
         << " gw" << b << " s" << b << "\r\n";
    }
  }
  for (std::size_t r = 0; r < backbone; ++r) {
    os << "asn bb" << r << " " << 100 + r % 7 << "\n";
  }
  for (std::size_t a = 0; a < sites; ++a) {
    os << "asn gw" << a << " " << 500 + a << "\n";
  }
  return os.str();
}

TEST(ShardedFast, TracerouteDumpRunsEndToEndSharded) {
  std::istringstream is(synthetic_dump(/*sites=*/14, /*backbone=*/9));
  const graph::MeasuredSystem system = topogen::parse_traceroutes(is);
  ASSERT_GT(system.paths.size(), 100u);
  const corr::CorrelationSets sets(system.graph.link_count(),
                                   system.partition);
  const graph::CoverageIndex coverage(system.graph, system.paths);

  // Ground truth: a third of the links congested, clustered shocks.
  Rng rng(0x7e57);
  std::vector<graph::LinkId> congested;
  std::vector<double> marginals;  // one entry per congested link
  for (graph::LinkId e = 0; e < system.graph.link_count(); ++e) {
    if (rng.bernoulli(0.3)) {
      congested.push_back(e);
      marginals.push_back(0.05 + 0.3 * rng.uniform());
    }
  }
  ASSERT_FALSE(congested.empty());
  const auto truth =
      corr::make_clustered_shock_model(sets, congested, marginals, 0.5);

  sim::SimulatorConfig sc;
  sc.snapshots = 300;
  sc.packets_per_path = 500;
  sc.seed = 0x7e5700;
  sim::SimulationResult sim_result =
      sim::simulate(system.graph, system.paths, *truth, sc);

  ShardedOptions options;
  options.max_shard_paths = 30;
  options.inference = unbudgeted_inference();
  const ShardedInferenceResult result =
      infer_sharded(system.graph, system.paths, coverage, sets,
                    sim_result.measurement, options);
  check_plan_invariants(result.plan, system.paths,
                        system.graph.link_count(), "traceroute dump");
  check_result_invariants(result, system.graph.link_count(),
                          "traceroute dump");
  EXPECT_GT(result.plan.shards.size(), 1u);

  // Sanity on quality: estimates must correlate with truth — mean error
  // over the truly congested links well below the mean marginal.
  double err = 0.0, level = 0.0;
  for (graph::LinkId e : congested) {
    err += std::abs(result.congestion_prob[e] - truth->marginal(e));
    level += truth->marginal(e);
  }
  EXPECT_LT(err, 0.5 * level);
}

}  // namespace
}  // namespace tomo::core
