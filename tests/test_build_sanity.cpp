// Pins the inter-target link graph: instantiates one object from each of
// the nine library layers, so a future layering break (a layer dropped
// from the umbrella target, a missing inter-layer link dependency) fails
// this suite before anything subtler does.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "corr/correlation.hpp"
#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "metrics/cdf.hpp"
#include "sim/snapshot.hpp"
#include "stream/window_ring.hpp"
#include "topogen/waxman.hpp"
#include "util/rng.hpp"

namespace {

TEST(BuildSanity, UtilLayerLinks) {
  tomo::Rng rng(42);
  EXPECT_GE(rng.uniform(), 0.0);
}

TEST(BuildSanity, LinalgLayerLinks) {
  tomo::linalg::Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(BuildSanity, GraphLayerLinks) {
  tomo::graph::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_link(a, b);
  EXPECT_EQ(g.link_count(), 1u);
}

TEST(BuildSanity, CorrLayerLinks) {
  const auto sets = tomo::corr::CorrelationSets::singletons(4);
  EXPECT_EQ(sets.set_count(), 4u);
}

TEST(BuildSanity, SimLayerLinks) {
  tomo::sim::PathObservations obs(2, 8);
  obs.set_congested(0, 3);
  EXPECT_TRUE(obs.congested(0, 3));
}

TEST(BuildSanity, TopogenLayerLinks) {
  tomo::Rng rng(7);
  const auto edges = tomo::topogen::waxman_edges(8, {}, rng);
  EXPECT_LE(edges.size(), 8u * 7u);
}

TEST(BuildSanity, MetricsLayerLinks) {
  const std::vector<double> samples = {0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(tomo::metrics::cdf_at(samples, 1.0), 100.0);
}

TEST(BuildSanity, CoreLayerLinks) {
  tomo::core::ScenarioConfig config;
  EXPECT_GT(config.as_nodes, 0u);
}

TEST(BuildSanity, StreamLayerLinks) {
  tomo::stream::WindowRing ring(2);
  EXPECT_EQ(ring.capacity(), 2u);
}

}  // namespace
