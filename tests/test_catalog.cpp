// Property tests for the scenario registry: every named entry must build a
// well-formed, deterministic, seed-sensitive instance whose correlation
// structure honours its config. Runs at shrink_for_tests scale so the full
// catalog stays fast.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "util/error.hpp"

namespace tomo::core {
namespace {

ScenarioConfig test_config(const CatalogEntry& entry,
                           std::uint64_t seed = 11) {
  ScenarioConfig config = shrink_for_tests(entry.config);
  config.seed = seed;
  return config;
}

class CatalogScenario : public ::testing::TestWithParam<std::string> {
 protected:
  const CatalogEntry& entry() const {
    return ScenarioCatalog::instance().at(GetParam());
  }
};

TEST_P(CatalogScenario, BuildsDeterministicallyForFixedSeed) {
  const ScenarioInstance a = build_scenario(test_config(entry()));
  const ScenarioInstance b = build_scenario(test_config(entry()));
  EXPECT_EQ(a.description, b.description);
  EXPECT_EQ(a.graph.link_count(), b.graph.link_count());
  EXPECT_EQ(a.congested_links, b.congested_links);
  EXPECT_EQ(a.mislabeled_links, b.mislabeled_links);
  EXPECT_EQ(a.true_marginals, b.true_marginals);
  EXPECT_EQ(a.declared_sets.partition(), b.declared_sets.partition());
}

TEST_P(CatalogScenario, DiffersAcrossSeeds) {
  const ScenarioInstance a = build_scenario(test_config(entry(), 11));
  const ScenarioInstance b = build_scenario(test_config(entry(), 12));
  EXPECT_TRUE(a.congested_links != b.congested_links ||
              a.true_marginals != b.true_marginals);
}

TEST_P(CatalogScenario, PathsAreValidInTheGraph) {
  const ScenarioInstance inst = build_scenario(test_config(entry()));
  ASSERT_GT(inst.paths.size(), 0u);
  for (const graph::Path& p : inst.paths) {
    for (graph::LinkId e : p.links()) {
      ASSERT_LT(e, inst.graph.link_count());
    }
    // Re-validating against the instance graph re-runs the contiguity and
    // loop-freedom checks of the Path constructor.
    EXPECT_NO_THROW(graph::Path(inst.graph, p.links()));
  }
  const graph::CoverageIndex cov(inst.graph, inst.paths);
  EXPECT_TRUE(cov.all_links_covered());
}

TEST_P(CatalogScenario, CorrelationSetsRespectClusterSize) {
  const ScenarioConfig config = test_config(entry());
  if (config.unidentifiable_fraction > 0.0) {
    GTEST_SKIP() << "unidentifiability injection deliberately fuses sets "
                    "beyond cluster_size";
  }
  const ScenarioInstance inst = build_scenario(config);
  for (std::size_t s = 0; s < inst.declared_sets.set_count(); ++s) {
    EXPECT_LE(inst.declared_sets.set(s).size(), config.cluster_size)
        << "set " << s << " exceeds the configured cluster size";
  }
}

TEST_P(CatalogScenario, LooseLevelCapsCongestedLinksPerSet) {
  const ScenarioConfig config = test_config(entry());
  if (config.level != CorrelationLevel::kLoose) {
    GTEST_SKIP() << "only meaningful for kLoose entries";
  }
  const ScenarioInstance inst = build_scenario(config);
  std::vector<std::size_t> per_set(inst.declared_sets.set_count(), 0);
  for (graph::LinkId e : inst.congested_links) {
    ++per_set[inst.declared_sets.set_of(e)];
  }
  EXPECT_LE(*std::max_element(per_set.begin(), per_set.end()), 2u);
}

TEST_P(CatalogScenario, OnlyCongestedLinksHavePositiveMarginals) {
  const ScenarioInstance inst = build_scenario(test_config(entry()));
  const std::unordered_set<graph::LinkId> congested(
      inst.congested_links.begin(), inst.congested_links.end());
  ASSERT_EQ(inst.true_marginals.size(), inst.graph.link_count());
  for (graph::LinkId e = 0; e < inst.graph.link_count(); ++e) {
    if (congested.count(e)) {
      EXPECT_GT(inst.true_marginals[e], 0.0);
    } else {
      EXPECT_NEAR(inst.true_marginals[e], 0.0, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CatalogScenario,
    ::testing::ValuesIn(ScenarioCatalog::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Catalog, HasAtLeastTenUniquelyNamedEntries) {
  const auto& entries = ScenarioCatalog::instance().entries();
  EXPECT_GE(entries.size(), 10u);
  std::set<std::string> names;
  for (const CatalogEntry& e : entries) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate name " << e.name;
    EXPECT_FALSE(e.summary.empty()) << e.name;
    EXPECT_FALSE(e.figure.empty()) << e.name;
  }
}

TEST(Catalog, CoversEveryTopologyKindAndBothModels) {
  std::set<TopologyKind> kinds;
  bool bursty = false, worm = false, unident = false, loose = false;
  for (const CatalogEntry& e : ScenarioCatalog::instance().entries()) {
    kinds.insert(e.config.topology);
    bursty |= e.config.burst_length > 1.0;
    worm |= e.config.mislabeled_fraction > 0.0;
    unident |= e.config.unidentifiable_fraction > 0.0;
    loose |= e.config.level == CorrelationLevel::kLoose;
  }
  EXPECT_EQ(kinds.size(), 4u) << "a topology generator is unreachable";
  EXPECT_TRUE(bursty);
  EXPECT_TRUE(worm);
  EXPECT_TRUE(unident);
  EXPECT_TRUE(loose);
}

TEST(Catalog, AtThrowsListingKnownNames) {
  EXPECT_THROW(ScenarioCatalog::instance().at("no-such-scenario"), Error);
  try {
    ScenarioCatalog::instance().at("no-such-scenario");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("brite-high"), std::string::npos);
  }
  EXPECT_EQ(ScenarioCatalog::instance().find("no-such-scenario"), nullptr);
  EXPECT_NE(ScenarioCatalog::instance().find("brite-high"), nullptr);
}

TEST(Catalog, AtSuggestsNearMisses) {
  // One-character typo: suggested by edit distance.
  try {
    ScenarioCatalog::instance().at("brite-hgih");
    FAIL() << "unknown name must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean"), std::string::npos) << what;
    EXPECT_NE(what.find("brite-high"), std::string::npos) << what;
  }
  // Prefix fragment: suggested by substring containment.
  try {
    ScenarioCatalog::instance().at("hier");
    FAIL() << "unknown name must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean"), std::string::npos) << what;
    EXPECT_NE(what.find("hier-2k"), std::string::npos) << what;
    EXPECT_NE(what.find("hier-10k"), std::string::npos) << what;
  }
}

TEST(Catalog, SuggestionHelperRanksAndFilters) {
  const std::vector<std::string> known = {"brite-high", "brite-loose",
                                          "waxman-full"};
  const auto close = scenario_suggestions("brite-hihg", known);
  ASSERT_FALSE(close.empty());
  EXPECT_EQ(close.front(), "brite-high");
  EXPECT_TRUE(scenario_suggestions("zzzzzz", known).empty());
  EXPECT_TRUE(scenario_suggestions("", known).empty());
}

TEST(Catalog, RegistrationRejectsDuplicateNames) {
  ScenarioCatalog catalog;
  CatalogEntry entry;
  entry.name = "dup";
  entry.figure = "f";
  entry.summary = "s";
  catalog.add_entry(entry);
  EXPECT_EQ(catalog.entries().size(), 1u);
  EXPECT_THROW(catalog.add_entry(entry), Error);
  try {
    catalog.add_entry(entry);
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dup"), std::string::npos);
  }
  EXPECT_EQ(catalog.entries().size(), 1u) << "failed add must not insert";
  // A different name is still accepted.
  entry.name = "dup-2";
  catalog.add_entry(entry);
  EXPECT_EQ(catalog.entries().size(), 2u);
}

TEST(Catalog, BurstLengthPreservesStationaryMarginals) {
  // The Gilbert chain only changes temporal correlation; the per-snapshot
  // marginal law — and hence true_marginals — must match the memoryless
  // model at the same seed.
  ScenarioConfig bursty = shrink_for_tests(
      ScenarioCatalog::instance().at("waxman-bursty").config);
  bursty.seed = 21;
  ScenarioConfig memoryless = bursty;
  memoryless.burst_length = 1.0;
  const ScenarioInstance a = build_scenario(bursty);
  const ScenarioInstance b = build_scenario(memoryless);
  ASSERT_EQ(a.true_marginals.size(), b.true_marginals.size());
  for (std::size_t i = 0; i < a.true_marginals.size(); ++i) {
    EXPECT_NEAR(a.true_marginals[i], b.true_marginals[i], 1e-9);
  }
}

}  // namespace
}  // namespace tomo::core
