#include <gtest/gtest.h>

#include <sstream>

#include "corr/model_factory.hpp"
#include "sim/obs_io.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tomo::sim {
namespace {

TEST(ObsIo, RoundTripPreservesEveryBit) {
  PathObservations obs(3, 100);
  obs.set_congested(0, 0);
  obs.set_congested(0, 99);
  obs.set_congested(2, 63);
  obs.set_congested(2, 64);
  std::stringstream buffer;
  write_observations(buffer, obs);
  const PathObservations loaded = read_observations(buffer);
  ASSERT_EQ(loaded.path_count(), 3u);
  ASSERT_EQ(loaded.snapshot_count(), 100u);
  for (PathId p = 0; p < 3; ++p) {
    for (std::size_t n = 0; n < 100; ++n) {
      ASSERT_EQ(loaded.congested(p, n), obs.congested(p, n))
          << "path " << p << " snapshot " << n;
    }
  }
}

TEST(ObsIo, RoundTripSimulatedData) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  SimulatorConfig config;
  config.snapshots = 500;
  config.seed = 5;
  const auto result = simulate(sys.graph, sys.paths, *model, config);
  std::stringstream buffer;
  write_observations(buffer, result.observations());
  const PathObservations loaded = read_observations(buffer);
  for (PathId p = 0; p < 3; ++p) {
    EXPECT_EQ(loaded.good_count(p), result.observations().good_count(p));
  }
  EXPECT_EQ(loaded.exact_pattern_count({0, 1}),
            result.observations().exact_pattern_count({0, 1}));
}

TEST(ObsIo, AllGoodMatrixSerializesCompactly) {
  PathObservations obs(2, 50);
  std::stringstream buffer;
  write_observations(buffer, obs);
  const PathObservations loaded = read_observations(buffer);
  EXPECT_EQ(loaded.good_count(0), 50u);
  EXPECT_EQ(loaded.good_count(1), 50u);
}

TEST(ObsIo, RejectsMalformedInput) {
  {
    std::stringstream s("paths 2 snapshots 5\n");
    EXPECT_THROW(read_observations(s), Error);  // missing header
  }
  {
    std::stringstream s("tomo-observations v1\n");
    EXPECT_THROW(read_observations(s), Error);  // missing dimensions
  }
  {
    std::stringstream s(
        "tomo-observations v1\npaths 2 snapshots 5\ncongested 9 0\n");
    EXPECT_THROW(read_observations(s), Error);  // path out of range
  }
  {
    std::stringstream s(
        "tomo-observations v1\npaths 2 snapshots 5\ncongested 0 7\n");
    EXPECT_THROW(read_observations(s), Error);  // snapshot out of range
  }
  {
    std::stringstream s(
        "tomo-observations v1\npaths 0 snapshots 5\n");
    EXPECT_THROW(read_observations(s), Error);  // empty matrix
  }
  {
    std::stringstream s(
        "tomo-observations v1\npaths 2 snapshots 5\nbogus 1\n");
    EXPECT_THROW(read_observations(s), Error);  // unknown tag
  }
}

// The SimulationResult::observations() / obs-IO asymmetry fix: the
// bitmask block now writes and re-reads directly, so daemon replay inputs
// are trustworthy without a PathObservations detour.
TEST(ObsIo, MeasurementBlockRoundTripIsBitIdentical) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  SimulatorConfig config;
  config.snapshots = 197;  // ragged tail word: 197 = 3*64 + 5
  config.seed = 11;
  const auto result = simulate(sys.graph, sys.paths, *model, config);
  const MeasurementBlock& block = result.measurement;

  std::stringstream buffer;
  write_observations(buffer, block);
  const MeasurementBlock loaded = read_observation_block(buffer);
  ASSERT_EQ(loaded.path_count, block.path_count);
  ASSERT_EQ(loaded.snapshot_count, block.snapshot_count);
  EXPECT_EQ(loaded.good_bits, block.good_bits)
      << "tail words included, bit for bit";
  EXPECT_EQ(loaded.good_counts, block.good_counts);
}

TEST(ObsIo, BlockWriterMatchesObservationWriterByteForByte) {
  auto sys = tomo::testing::figure_1a();
  auto model = tomo::testing::figure_1a_model(sys.sets);
  SimulatorConfig config;
  config.snapshots = 130;
  config.seed = 12;
  const auto result = simulate(sys.graph, sys.paths, *model, config);

  // The block writer complements bits inline; the observation writer
  // walks the congested-bit view. Same file either way.
  std::stringstream from_block;
  write_observations(from_block, result.measurement);
  std::stringstream from_obs;
  write_observations(from_obs, result.observations());
  EXPECT_EQ(from_block.str(), from_obs.str());
}

TEST(ObsIo, IgnoresCommentsAndBlankLines) {
  std::stringstream s(
      "# recorded by prober\n\ntomo-observations v1\n"
      "paths 1 snapshots 4  # dims\ncongested 0 1 3\n");
  const PathObservations loaded = read_observations(s);
  EXPECT_TRUE(loaded.congested(0, 1));
  EXPECT_TRUE(loaded.congested(0, 3));
  EXPECT_FALSE(loaded.congested(0, 0));
}

}  // namespace
}  // namespace tomo::sim
