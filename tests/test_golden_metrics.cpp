// Golden-metrics regression suite: runs small registry scenarios end to
// end (correlation + independence algorithms) plus the theorem algorithm's
// congestion-factor recovery on the Figure 1(a) toy, and compares the
// resulting metrics against committed baselines in tests/golden/*.json.
//
// The baselines turn the bench telemetry numbers into an enforced
// contract: an algorithmic change that shifts accuracy beyond the
// per-metric tolerance fails here instead of rotting silently. To accept
// an intentional change, regenerate the baselines with
//
//   ./build/tests/test_golden_metrics --update-golden
//
// and commit the rewritten tests/golden/*.json (see docs/SCENARIOS.md).
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario_catalog.hpp"
#include "core/theorem_algorithm.hpp"
#include "corr/joint_table.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

#ifndef TOMO_GOLDEN_DIR
#error "TOMO_GOLDEN_DIR must be defined by the build"
#endif

namespace tomo {

// Set by main() on --update-golden; rewrites baselines instead of checking.
bool g_update_golden = false;

namespace {

std::string golden_path(const std::string& case_name) {
  return std::string(TOMO_GOLDEN_DIR) + "/" + case_name + ".json";
}

/// Absolute tolerance per metric. Generous enough to absorb libm and
/// optimization-level jitter across platforms, tight enough that a real
/// algorithmic regression (metrics here move by multiples of this when an
/// estimator breaks) fails loudly.
double tolerance_for(const std::string& key) {
  if (key.find("p90_err") != std::string::npos) return 0.020;
  if (key.find("mean_err") != std::string::npos) return 0.010;
  if (key.rfind("alpha_", 0) == 0) return 0.060;
  if (key == "potentially_congested") return 8.0;
  ADD_FAILURE() << "no tolerance registered for metric " << key;
  return 0.0;
}

/// Minimal flat-JSON reader: collects every `"key": <number>` pair. The
/// golden files are written by util::Json with exactly that shape; a full
/// parser would be dead weight.
std::map<std::string, double> read_golden(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "missing golden baseline " << path
                         << " — run test_golden_metrics --update-golden";
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  std::map<std::string, double> out;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    std::size_t cursor = key_end + 1;
    while (cursor < text.size() && std::isspace(text[cursor])) ++cursor;
    if (cursor < text.size() && text[cursor] == ':') {
      ++cursor;
      while (cursor < text.size() && std::isspace(text[cursor])) ++cursor;
      if (cursor < text.size() &&
          (std::isdigit(text[cursor]) || text[cursor] == '-')) {
        out[key] = std::strtod(text.c_str() + cursor, nullptr);
      }
    }
    pos = key_end + 1;
  }
  return out;
}

using Metrics = std::vector<std::pair<std::string, double>>;

/// In update mode, rewrites the case's baseline; otherwise compares every
/// metric against it within tolerance_for().
void check_or_update(const std::string& case_name, const Metrics& metrics) {
  if (g_update_golden) {
    util::Json doc = util::Json::object();
    doc.set("case", case_name);
    util::Json body = util::Json::object();
    for (const auto& [key, value] : metrics) {
      body.set(key, value);
    }
    doc.set("metrics", std::move(body));
    std::ofstream os(golden_path(case_name));
    ASSERT_TRUE(os.good()) << "cannot write " << golden_path(case_name);
    doc.write(os);
    std::cout << "[updated] " << golden_path(case_name) << "\n";
    return;
  }

  const auto golden = read_golden(golden_path(case_name));
  if (golden.empty()) {
    // Covers both a missing file (already reported above) and a present
    // but corrupt/empty one — never silently pass with nothing enforced.
    ADD_FAILURE() << case_name
                  << ": golden baseline is missing or unparseable — run "
                     "test_golden_metrics --update-golden";
    return;
  }
  EXPECT_EQ(golden.size(), metrics.size())
      << case_name << ": metric set changed — update the golden baseline";
  for (const auto& [key, value] : metrics) {
    const auto it = golden.find(key);
    if (it == golden.end()) {
      ADD_FAILURE() << case_name << ": metric " << key
                    << " missing from baseline — run --update-golden";
      continue;
    }
    EXPECT_NEAR(value, it->second, tolerance_for(key))
        << case_name << "/" << key
        << " drifted from its golden value; if intentional, run "
           "test_golden_metrics --update-golden and commit tests/golden/";
  }
}

/// One registry scenario end to end at test scale with a pinned seed.
void run_scenario_case(const std::string& name) {
  core::ScenarioConfig config =
      core::shrink_for_tests(core::ScenarioCatalog::instance().at(name).config);
  config.seed = 0x601d;

  const core::ScenarioInstance inst = core::build_scenario(config);
  core::ExperimentConfig ec;
  ec.sim.snapshots = 500;
  ec.sim.packets_per_path = 800;
  ec.sim.mode = sim::PacketMode::kBinomial;
  ec.sim.seed = mix_seed(config.seed, 0x601d00);
  const core::ExperimentResult result = core::run_experiment(inst, ec);

  const auto corr_errors = result.correlation_errors();
  const auto ind_errors = result.independence_errors();
  ASSERT_FALSE(corr_errors.empty());
  check_or_update(
      name,
      {{"correlation_mean_err", mean(corr_errors)},
       {"correlation_p90_err", percentile(corr_errors, 90.0)},
       {"independence_mean_err", mean(ind_errors)},
       {"independence_p90_err", percentile(ind_errors, 90.0)},
       {"potentially_congested",
        static_cast<double>(result.potentially_congested.size())}});
}

TEST(GoldenMetrics, BriteHigh) { run_scenario_case("brite-high"); }
TEST(GoldenMetrics, BriteLoose) { run_scenario_case("brite-loose"); }
TEST(GoldenMetrics, PlanetLabHigh) { run_scenario_case("planetlab-high"); }
TEST(GoldenMetrics, WaxmanBursty) { run_scenario_case("waxman-bursty"); }
TEST(GoldenMetrics, WormMislabeled) { run_scenario_case("worm-mislabeled"); }
// Pins the scenario the streaming equation harvest opened up: the
// full-scale Waxman measured mesh is regression-guarded from day one.
TEST(GoldenMetrics, WaxmanFull) { run_scenario_case("waxman-full"); }

// Congestion-factor recovery: the theorem algorithm on the paper's worked
// Figure 1(a) example, from simulated measurements. Pins the §3.2 factors
// alpha_A = P(S^p=A)/P(S^p=0) that fig1_tables reports.
TEST(GoldenMetrics, TheoremFig1aCongestionFactors) {
  graph::Graph g;
  const auto a = g.add_node("v4"), b = g.add_node("v3");
  const auto c = g.add_node("v1"), d = g.add_node("v4b");
  const auto f = g.add_node("v5");
  const auto e1 = g.add_link(a, b), e2 = g.add_link(d, b);
  const auto e3 = g.add_link(b, c), e4 = g.add_link(b, f);
  std::vector<graph::Path> paths;
  paths.emplace_back(g, std::vector<graph::LinkId>{e1, e3});
  paths.emplace_back(g, std::vector<graph::LinkId>{e2, e3});
  paths.emplace_back(g, std::vector<graph::LinkId>{e2, e4});
  const corr::CorrelationSets sets(4, {{e1, e2}, {e3}, {e4}});

  corr::SetDistribution d0;
  d0.prob = {0.65, 0.10, 0.05, 0.20};
  corr::SetDistribution d1;
  d1.prob = {0.85, 0.15};
  corr::SetDistribution d2;
  d2.prob = {0.60, 0.40};
  const corr::JointTableModel truth(sets, {d0, d1, d2});

  sim::SimulatorConfig sim_config;
  sim_config.snapshots = 4000;
  sim_config.packets_per_path = 1000;
  sim_config.mode = sim::PacketMode::kBinomial;
  sim_config.seed = 0x601d1a;
  const auto simr = sim::simulate(g, paths, truth, sim_config);

  const graph::CoverageIndex cov(g, paths);
  const sim::EmpiricalMeasurement meas(simr.observations());
  const core::TheoremResult r = core::run_theorem_algorithm(cov, sets, meas);

  // alpha_A by definition from the worked distributions (fig1_tables).
  const std::array<double, 5> definition = {0.10 / 0.65, 0.05 / 0.65,
                                            0.20 / 0.65, 0.15 / 0.85,
                                            0.40 / 0.60};
  const std::array<double, 5> recovered = {r.alpha[0][1], r.alpha[0][2],
                                           r.alpha[0][3], r.alpha[1][1],
                                           r.alpha[2][1]};
  double abs_err = 0.0;
  for (std::size_t i = 0; i < definition.size(); ++i) {
    abs_err += std::abs(recovered[i] - definition[i]) /
               static_cast<double>(definition.size());
  }
  check_or_update("theorem-fig1a",
                  {{"alpha_e1", recovered[0]},
                   {"alpha_e2", recovered[1]},
                   {"alpha_e1e2", recovered[2]},
                   {"alpha_e3", recovered[3]},
                   {"alpha_e4", recovered[4]},
                   {"alpha_mean_abs_err", abs_err}});
}

}  // namespace
}  // namespace tomo

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      tomo::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
