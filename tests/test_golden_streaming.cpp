// Golden-pinned per-window convergence of the streaming inference path:
// two registry scenarios are replayed window by window and the streamed
// error-vs-window curve (mean absolute error over the potentially
// congested links after each window) is compared against committed
// baselines in tests/golden/stream-*.json.
//
// The curve is the daemon's user-visible behaviour — early windows noisy,
// late windows converging onto the batch answer — so pinning it catches
// regressions in the incremental plumbing (splice, Gram reuse, warm
// start) that still pass the exact-equivalence tier by failing *both*
// sides equally. To accept an intentional change, regenerate with
//
//   ./build/tests/test_golden_streaming --update-golden
//
// and commit the rewritten tests/golden/stream-*.json.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario_catalog.hpp"
#include "metrics/error_metrics.hpp"
#include "sim/simulator.hpp"
#include "stream/streaming_inference.hpp"
#include "stream/streaming_measurement.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

#ifndef TOMO_GOLDEN_DIR
#error "TOMO_GOLDEN_DIR must be defined by the build"
#endif

namespace tomo {

// Set by main() on --update-golden; rewrites baselines instead of checking.
bool g_update_golden = false;

namespace {

std::string golden_path(const std::string& case_name) {
  return std::string(TOMO_GOLDEN_DIR) + "/" + case_name + ".json";
}

/// Per-metric absolute tolerance (same calibration as test_golden_metrics:
/// generous for libm/optimization jitter, tight against real regressions).
double tolerance_for(const std::string& key) {
  if (key.find("mean_err") != std::string::npos) return 0.010;
  if (key == "windows" || key == "final_active") return 0.5;
  ADD_FAILURE() << "no tolerance registered for metric " << key;
  return 0.0;
}

/// Minimal flat-JSON reader (same shape util::Json writes).
std::map<std::string, double> read_golden(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "missing golden baseline " << path
                         << " — run test_golden_streaming --update-golden";
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  std::map<std::string, double> out;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    std::size_t cursor = key_end + 1;
    while (cursor < text.size() && std::isspace(text[cursor])) ++cursor;
    if (cursor < text.size() && text[cursor] == ':') {
      ++cursor;
      while (cursor < text.size() && std::isspace(text[cursor])) ++cursor;
      if (cursor < text.size() &&
          (std::isdigit(text[cursor]) || text[cursor] == '-')) {
        out[key] = std::strtod(text.c_str() + cursor, nullptr);
      }
    }
    pos = key_end + 1;
  }
  return out;
}

using Metrics = std::vector<std::pair<std::string, double>>;

void check_or_update(const std::string& case_name, const Metrics& metrics) {
  if (g_update_golden) {
    util::Json doc = util::Json::object();
    doc.set("case", case_name);
    util::Json body = util::Json::object();
    for (const auto& [key, value] : metrics) {
      body.set(key, value);
    }
    doc.set("metrics", std::move(body));
    std::ofstream os(golden_path(case_name));
    ASSERT_TRUE(os.good()) << "cannot write " << golden_path(case_name);
    doc.write(os);
    std::cout << "[updated] " << golden_path(case_name) << "\n";
    return;
  }

  const auto golden = read_golden(golden_path(case_name));
  if (golden.empty()) {
    ADD_FAILURE() << case_name
                  << ": golden baseline is missing or unparseable — run "
                     "test_golden_streaming --update-golden";
    return;
  }
  EXPECT_EQ(golden.size(), metrics.size())
      << case_name << ": metric set changed — update the golden baseline";
  for (const auto& [key, value] : metrics) {
    const auto it = golden.find(key);
    if (it == golden.end()) {
      ADD_FAILURE() << case_name << ": metric " << key
                    << " missing from baseline — run --update-golden";
      continue;
    }
    EXPECT_NEAR(value, it->second, tolerance_for(key))
        << case_name << "/" << key
        << " drifted from its golden value; if intentional, run "
           "test_golden_streaming --update-golden and commit tests/golden/";
  }
}

/// One streamed registry scenario at test scale with a pinned seed: 500
/// snapshots in four 125-snapshot windows, warm-started and Gram-reusing
/// (the daemon's defaults).
void run_streaming_case(const std::string& name) {
  core::ScenarioConfig config = core::shrink_for_tests(
      core::ScenarioCatalog::instance().at(name).config);
  config.seed = 0x601d;
  const core::ScenarioInstance inst = core::build_scenario(config);

  sim::SimulatorConfig sc;
  sc.snapshots = 500;
  sc.packets_per_path = 800;
  sc.mode = sim::PacketMode::kBinomial;
  sc.seed = mix_seed(config.seed, 0x601d00);
  const sim::SimulationResult simr =
      sim::simulate(inst.graph, inst.paths, *inst.truth, sc);

  stream::StreamingInference inference(inst.graph, inst.paths,
                                       inst.declared_sets);
  Metrics metrics;
  std::size_t final_active = 0;
  std::size_t windows = 0;
  for (const sim::MeasurementBlock& w :
       stream::split_windows(simr.measurement, 125)) {
    const stream::WindowEstimate estimate = inference.push_window(w);
    ASSERT_TRUE(estimate.usable) << name << " window " << estimate.window;
    const std::vector<double> errors = metrics::absolute_errors(
        inst.true_marginals, estimate.inference.congestion_prob,
        core::potentially_congested_links(inst.paths,
                                          inference.measurement()));
    ASSERT_FALSE(errors.empty()) << name;
    metrics.emplace_back("mean_err_w" + std::to_string(estimate.window),
                         mean(errors));
    final_active = estimate.inference.active_set.size();
    ++windows;
  }
  metrics.emplace_back("windows", static_cast<double>(windows));
  metrics.emplace_back("final_active", static_cast<double>(final_active));
  check_or_update("stream-" + name, metrics);
}

TEST(GoldenStreaming, BriteHigh) { run_streaming_case("brite-high"); }
TEST(GoldenStreaming, WaxmanBursty) { run_streaming_case("waxman-bursty"); }

}  // namespace
}  // namespace tomo

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      tomo::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
