#include <gtest/gtest.h>

#include <cmath>

#include "core/correlation_algorithm.hpp"
#include "core/equations.hpp"
#include "corr/model_factory.hpp"
#include "sim/measurement.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;
using tomo::testing::figure_1a_model;

EquationSystem build_fig1a_system() {
  static auto sys = figure_1a();
  static auto model = figure_1a_model(sys.sets);
  static graph::CoverageIndex cov(sys.graph, sys.paths);
  static sim::OracleMeasurement oracle(*model, cov);
  return build_equations(cov, sys.sets, oracle);
}

TEST(VarianceWeights, OracleSystemsAreLeftAlone) {
  EquationSystem sys = build_fig1a_system();
  const linalg::Vector y_before = sys.y;
  apply_variance_weights(sys, /*samples=*/0);
  EXPECT_EQ(sys.y, y_before);
}

TEST(VarianceWeights, ScalesRowsAndRhsTogether) {
  EquationSystem sys = build_fig1a_system();
  const EquationSystem original = sys;
  apply_variance_weights(sys, 1000);
  for (std::size_t i = 0; i < sys.y.size(); ++i) {
    // Rows and rhs must be scaled by the same factor: the solution of a
    // consistent system is unchanged.
    double factor = 0.0;
    for (std::size_t c = 0; c < sys.a.cols(); ++c) {
      if (original.a(i, c) != 0.0) {
        factor = sys.a(i, c) / original.a(i, c);
        break;
      }
    }
    ASSERT_GT(factor, 0.0);
    EXPECT_NEAR(sys.y[i], original.y[i] * factor, 1e-12);
  }
}

TEST(VarianceWeights, WellSupportedEquationsWeighMore) {
  // prob 0.9 (well supported) vs prob 0.1 (thin): the 0.9 equation's
  // variance (1-p)/(pN) is smaller, so its weight is larger.
  EquationSystem sys;
  sys.link_count = 2;
  sys.equations.push_back(Equation{{0}, {0}, std::log(0.9)});
  sys.equations.push_back(Equation{{1}, {1}, std::log(0.1)});
  sys.a = linalg::Matrix(2, 2);
  sys.a(0, 0) = 1.0;
  sys.a(1, 1) = 1.0;
  sys.y = {std::log(0.9), std::log(0.1)};
  apply_variance_weights(sys, 1000);
  EXPECT_GT(sys.a(0, 0), sys.a(1, 1));
}

TEST(VarianceWeights, ConsistentSolutionUnchanged) {
  // Weighting a consistent full-rank system must not move the solution.
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  EquationSystem eq = build_equations(cov, sys.sets, oracle);
  const auto unweighted = linalg::solve_log_system(eq.a, eq.y);
  apply_variance_weights(eq, 5000);  // pretend 5000 snapshots
  const auto weighted = linalg::solve_log_system(eq.a, eq.y);
  for (std::size_t k = 0; k < unweighted.x.size(); ++k) {
    EXPECT_NEAR(weighted.x[k], unweighted.x[k], 1e-6);
  }
}

TEST(VarianceWeights, EndToEndOptionStaysAccurate) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  sim::SimulatorConfig config;
  config.snapshots = 20000;
  config.mode = sim::PacketMode::kExact;
  config.seed = 77;
  const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
  const sim::EmpiricalMeasurement meas(simr.observations);
  InferenceOptions options;
  options.weight_by_variance = true;
  const InferenceResult r = infer_congestion(sys.graph, sys.paths, cov,
                                             sys.sets, meas, options);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 0.03)
        << "link " << e;
  }
}

}  // namespace
}  // namespace tomo::core
