#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/correlation_algorithm.hpp"
#include "core/equations.hpp"
#include "corr/model_factory.hpp"
#include "sim/measurement.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace tomo::core {
namespace {

using tomo::testing::figure_1a;
using tomo::testing::figure_1a_model;

EquationSystem build_fig1a_system() {
  static auto sys = figure_1a();
  static auto model = figure_1a_model(sys.sets);
  static graph::CoverageIndex cov(sys.graph, sys.paths);
  static sim::OracleMeasurement oracle(*model, cov);
  return build_equations(cov, sys.sets, oracle);
}

TEST(VarianceWeights, OracleSystemsAreLeftAlone) {
  EquationSystem sys = build_fig1a_system();
  const linalg::Vector y_before = sys.rhs();
  apply_variance_weights(sys, /*samples=*/0);
  EXPECT_EQ(sys.rhs(), y_before);
}

TEST(VarianceWeights, ScalesRowsAndRhsTogether) {
  EquationSystem sys = build_fig1a_system();
  const EquationSystem original = sys;
  apply_variance_weights(sys, 1000);
  for (std::size_t i = 0; i < sys.rhs().size(); ++i) {
    // Rows and rhs must be scaled by the same factor: the solution of a
    // consistent system is unchanged.
    double factor = 0.0;
    for (std::size_t c = 0; c < sys.matrix().cols(); ++c) {
      if (original.matrix()(i, c) != 0.0) {
        factor = sys.matrix()(i, c) / original.matrix()(i, c);
        break;
      }
    }
    ASSERT_GT(factor, 0.0);
    EXPECT_NEAR(sys.rhs()[i], original.rhs()[i] * factor, 1e-12);
  }
}

TEST(VarianceWeights, WellSupportedEquationsWeighMore) {
  // prob 0.9 (well supported) vs prob 0.1 (thin): the 0.9 equation's
  // variance (1-p)/(pN) is smaller, so its weight is larger. The dense
  // view materializes from the sparse equations on first access.
  EquationSystem sys;
  sys.link_count = 2;
  sys.equations.push_back(Equation{{0}, {0}, std::log(0.9)});
  sys.equations.push_back(Equation{{1}, {1}, std::log(0.1)});
  apply_variance_weights(sys, 1000);
  EXPECT_GT(sys.matrix()(0, 0), sys.matrix()(1, 1));
}

TEST(VarianceWeights, StructuralZerosStayExactlyZero) {
  // The weighting must scale only each equation's support columns; a
  // historical bug multiplied every column of the dense row, which happens
  // to preserve zeros (0 * w == 0) but walked |equations| x |links| cells.
  // Pin the support-only contract: off-support entries are exact zeros and
  // support entries carry exactly the row's weight.
  EquationSystem sys = build_fig1a_system();
  const EquationSystem original = sys;
  apply_variance_weights(sys, 500);
  for (std::size_t i = 0; i < sys.equations.size(); ++i) {
    const double weight = sys.rhs()[i] / original.rhs()[i];
    for (std::size_t c = 0; c < sys.matrix().cols(); ++c) {
      const bool in_support =
          std::find(sys.equations[i].links.begin(),
                    sys.equations[i].links.end(),
                    c) != sys.equations[i].links.end();
      if (in_support) {
        EXPECT_DOUBLE_EQ(sys.matrix()(i, c), weight)
            << "equation " << i << " column " << c;
      } else {
        EXPECT_EQ(sys.matrix()(i, c), 0.0)
            << "equation " << i << " column " << c;
      }
    }
  }
}

TEST(VarianceWeights, ConsistentSolutionUnchanged) {
  // Weighting a consistent full-rank system must not move the solution.
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  const sim::OracleMeasurement oracle(*model, cov);
  EquationSystem eq = build_equations(cov, sys.sets, oracle);
  const auto unweighted = linalg::solve_log_system(eq.matrix(), eq.rhs());
  apply_variance_weights(eq, 5000);  // pretend 5000 snapshots
  const auto weighted = linalg::solve_log_system(eq.matrix(), eq.rhs());
  for (std::size_t k = 0; k < unweighted.x.size(); ++k) {
    EXPECT_NEAR(weighted.x[k], unweighted.x[k], 1e-6);
  }
}

TEST(VarianceWeights, EndToEndOptionStaysAccurate) {
  auto sys = figure_1a();
  auto model = figure_1a_model(sys.sets);
  const graph::CoverageIndex cov(sys.graph, sys.paths);
  sim::SimulatorConfig config;
  config.snapshots = 20000;
  config.mode = sim::PacketMode::kExact;
  config.seed = 77;
  const auto simr = sim::simulate(sys.graph, sys.paths, *model, config);
  const sim::EmpiricalMeasurement meas(simr.observations());
  InferenceOptions options;
  options.weight_by_variance = true;
  const InferenceResult r = infer_congestion(sys.graph, sys.paths, cov,
                                             sys.sets, meas, options);
  for (graph::LinkId e = 0; e < 4; ++e) {
    EXPECT_NEAR(r.congestion_prob[e], model->marginal(e), 0.03)
        << "link " << e;
  }
}

}  // namespace
}  // namespace tomo::core
