// Perf-regression smoke for the sharded inference path (ctest label:
// "perf").
//
// Runs the registry's 10k-AS hierarchical entry end to end — generation,
// snapshot simulation, capped shard planning, per-shard inference, and
// reconciliation — against a committed wall-clock budget. The acceptance
// bar for the sharded subsystem is a ≥10k-router scenario through
// `tomo_scenarios --sharded` in under 60 s single-socket; Release wall
// time is ~6 s, so the budget here is a gross-regression tripwire (a
// superlinear relapse in the hierarchical generator's fabric bookkeeping,
// an accidental monolithic Gram build, a serial shard loop) rather than a
// tight benchmark. Exactness of the sharded path is pinned by
// test_sharded_fast.cpp; this suite only watches the clock.
#include <gtest/gtest.h>

#include <iostream>

#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "core/sharded_inference.hpp"
#include "graph/coverage.hpp"
#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"

namespace tomo::core {
namespace {

#if defined(__SANITIZE_ADDRESS__)
#define TOMO_PERF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TOMO_PERF_SANITIZED 1
#endif
#endif

// The subsystem's acceptance budget, doubled under sanitizers (ASan's
// shadow memory roughly doubles the arithmetic-heavy stages).
#ifdef TOMO_PERF_SANITIZED
constexpr double kBudgetSeconds = 120.0;
#else
constexpr double kBudgetSeconds = 60.0;
#endif

TEST(PerfSharded, Hier10kEndToEndStaysWithinBudget) {
  const Stopwatch timer;

  ScenarioConfig config =
      ScenarioCatalog::instance().at("hier-10k").config;
  config.seed = 42;
  const ScenarioInstance inst = build_scenario(config);
  // The entry must stay internet-scale: ≥ 10k routers under the measured
  // links (three router segments per link) and ≥ 10k measured paths.
  ASSERT_GE(inst.paths.size(), 10'000u)
      << "hier-10k lost its path density";
  ASSERT_GE(inst.graph.link_count(), 4'000u);
  const graph::CoverageIndex coverage(inst.graph, inst.paths);

  sim::SimulatorConfig sc;
  sc.snapshots = 300;
  sc.packets_per_path = 400;
  sc.mode = sim::PacketMode::kBatched;
  sc.seed = 7;
  sc.jobs = 0;
  sim::SimulationResult sim_result =
      sim::simulate(inst.graph, inst.paths, *inst.truth, sc);

  ShardedOptions options;
  options.max_shard_paths = 400;
  options.jobs = 0;
  const ShardedInferenceResult result =
      infer_sharded(inst.graph, inst.paths, coverage, inst.declared_sets,
                    sim_result.measurement, options);
  const double seconds = timer.seconds();

  EXPECT_GT(result.plan.shards.size(), 4u)
      << "the cap stopped splitting the hub component";
  EXPECT_LT(seconds, kBudgetSeconds)
      << "sharded 10k-AS run regressed: " << seconds << " s end to end ("
      << result.plan.shards.size() << " shards, "
      << result.plan.shared_links << " shared links; budget "
      << kBudgetSeconds << " s)";
  std::cout << "[perf] hier-10k sharded: " << seconds << " s end to end, "
            << inst.paths.size() << " paths / " << inst.graph.link_count()
            << " links, " << result.plan.shards.size() << " shards ("
            << result.plan.shared_links << " shared, "
            << result.averaged_links << " averaged, "
            << result.resolved_links << " re-solved)\n";
}

}  // namespace
}  // namespace tomo::core
