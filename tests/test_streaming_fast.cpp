// The streamed-vs-batch equivalence tier — the convergence contract of the
// streaming inference subsystem, pinned on every registry scenario.
//
// The contract (see src/stream/streaming_inference.hpp): after ingesting
// windows covering the first N snapshots, StreamingInference's estimate
// equals a one-shot batch infer_congestion over those same N snapshots —
// the identical equation system and Gram bits (the cumulative block is a
// bit-exact splice, and the Gram accumulation is row-ordered and
// additive), the same NNLS optimum (bit-identical when the solve is cold,
// equal active set and solution to solver tolerance when warm-started) —
// and the streamed output is bit-identical for any jobs value.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/correlation_algorithm.hpp"
#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "stream/streaming_inference.hpp"
#include "stream/streaming_measurement.hpp"

namespace tomo::stream {
namespace {

struct Prepared {
  core::ScenarioInstance inst;
  sim::SimulationResult simr;
};

Prepared prepare(const std::string& name) {
  core::ScenarioConfig config = core::shrink_for_tests(
      core::ScenarioCatalog::instance().at(name).config);
  config.seed = 0x57e4;
  Prepared out{core::build_scenario(std::move(config)), {}};
  sim::SimulatorConfig sc;
  sc.snapshots = 300;
  sc.packets_per_path = 500;
  sc.mode = sim::PacketMode::kBinomial;
  sc.seed = 0x57e400;
  out.simr = sim::simulate(out.inst.graph, out.inst.paths, *out.inst.truth,
                           sc);
  return out;
}

core::InferenceResult batch_infer(const Prepared& p, std::size_t jobs = 1) {
  const graph::CoverageIndex coverage(p.inst.graph, p.inst.paths);
  const sim::EmpiricalMeasurement measurement(
      sim::MeasurementBlock(p.simr.measurement));
  core::InferenceOptions options;
  options.solver.jobs = jobs;
  options.equations.jobs = jobs;
  return core::infer_congestion(p.inst.graph, p.inst.paths, coverage,
                                p.inst.declared_sets, measurement, options);
}

std::vector<WindowEstimate> streamed_infer(const Prepared& p,
                                           std::size_t window,
                                           std::size_t jobs,
                                           bool warm_start = true,
                                           bool reuse_gram = true) {
  StreamingOptions options;
  options.inference.solver.jobs = jobs;
  options.inference.equations.jobs = jobs;
  options.warm_start = warm_start;
  options.reuse_gram = reuse_gram;
  StreamingInference inference(p.inst.graph, p.inst.paths,
                               p.inst.declared_sets, options);
  std::vector<WindowEstimate> out;
  for (const sim::MeasurementBlock& w :
       split_windows(p.simr.measurement, window)) {
    out.push_back(inference.push_window(w));
  }
  return out;
}

class RegistryStreamEquivalence
    : public ::testing::TestWithParam<std::string> {};

/// The headline: several window schedules (including a ragged final
/// window), warm-started and Gram-reusing, jobs {1, 3} — the final
/// window's estimate must agree with the one-shot batch solve: same
/// converged active set, solution within solver tolerance.
TEST_P(RegistryStreamEquivalence, FinalWindowMatchesOneShotBatch) {
  const Prepared p = prepare(GetParam());
  const core::InferenceResult batch = batch_infer(p);
  ASSERT_FALSE(batch.congestion_prob.empty());

  // 97 gives 97+97+97+9 (ragged tail), 128 gives 128+128+44.
  for (const std::size_t window : {97ul, 128ul}) {
    const std::string what =
        GetParam() + " window=" + std::to_string(window);
    const std::vector<WindowEstimate> serial = streamed_infer(p, window, 1);
    ASSERT_FALSE(serial.empty()) << what;
    const WindowEstimate& last = serial.back();
    ASSERT_TRUE(last.usable) << what;
    ASSERT_EQ(last.snapshots, 300u) << what;

    // Identical converged support...
    EXPECT_EQ(last.inference.active_set, batch.active_set) << what;
    // ...and the same solution to solver tolerance (the warm solve edits
    // the Cholesky factor in a different insertion order, so the last few
    // bits may differ; observed agreement is ~1e-14).
    ASSERT_EQ(last.inference.congestion_prob.size(),
              batch.congestion_prob.size())
        << what;
    for (std::size_t k = 0; k < batch.congestion_prob.size(); ++k) {
      EXPECT_NEAR(last.inference.congestion_prob[k],
                  batch.congestion_prob[k], 1e-8)
          << what << " link " << k;
    }
    // Same harvested structure as the batch run, bit for bit.
    EXPECT_EQ(last.inference.system.equations.size(),
              batch.system.equations.size())
        << what;
    EXPECT_EQ(last.inference.system.rank, batch.system.rank) << what;
    EXPECT_EQ(last.inference.refined_links, batch.refined_links) << what;

    // Jobs-invariance: every window's solution is bit-identical under a
    // parallel Gram build (in-order additive reduction).
    const std::vector<WindowEstimate> parallel =
        streamed_infer(p, window, 3);
    ASSERT_EQ(parallel.size(), serial.size()) << what;
    for (std::size_t k = 0; k < serial.size(); ++k) {
      ASSERT_EQ(parallel[k].usable, serial[k].usable) << what;
      if (!serial[k].usable) continue;
      EXPECT_EQ(parallel[k].inference.log_good, serial[k].inference.log_good)
          << what << " window " << k << ": jobs must not change bits";
      EXPECT_EQ(parallel[k].inference.congestion_prob,
                serial[k].inference.congestion_prob)
          << what << " window " << k;
      EXPECT_EQ(parallel[k].inference.active_set,
                serial[k].inference.active_set)
          << what << " window " << k;
    }
  }
}

/// A window covering the whole trace makes the only solve a cold one over
/// the full block: the streamed result must be *bit-identical* to batch —
/// the strongest form of the differential contract.
TEST_P(RegistryStreamEquivalence, SingleWindowStreamIsBitIdentical) {
  const Prepared p = prepare(GetParam());
  const core::InferenceResult batch = batch_infer(p);
  const std::vector<WindowEstimate> streamed = streamed_infer(p, 300, 1);
  ASSERT_EQ(streamed.size(), 1u);
  const WindowEstimate& only = streamed.back();
  ASSERT_TRUE(only.usable);
  EXPECT_FALSE(only.warm_started);
  EXPECT_EQ(only.inference.log_good, batch.log_good);
  EXPECT_EQ(only.inference.congestion_prob, batch.congestion_prob);
  EXPECT_EQ(only.inference.active_set, batch.active_set);
  EXPECT_EQ(only.inference.solver_detail, batch.solver_detail);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistryStreamEquivalence,
    ::testing::ValuesIn(core::ScenarioCatalog::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// With the warm start disabled, *every* window's solve is cold over the
/// cumulative block — so each window must be bit-identical to a batch run
/// truncated to the same snapshot prefix. This pins the whole incremental
/// plumbing (splice, harvest, Gram reuse) with zero tolerance, leaving the
/// warm start as the only approximately-equal step in the headline test.
TEST(StreamingFast, ColdWindowsEqualPrefixBatchBitwise) {
  const Prepared p = prepare("waxman-bursty");
  const std::vector<WindowEstimate> streamed =
      streamed_infer(p, 97, 1, /*warm_start=*/false, /*reuse_gram=*/true);
  const graph::CoverageIndex coverage(p.inst.graph, p.inst.paths);
  std::size_t ingested = 0;
  for (const WindowEstimate& estimate : streamed) {
    ingested = estimate.snapshots;
    if (!estimate.usable) continue;
    const sim::EmpiricalMeasurement prefix(
        p.simr.measurement.slice(0, ingested));
    const core::InferenceResult batch = core::infer_congestion(
        p.inst.graph, p.inst.paths, coverage, p.inst.declared_sets, prefix,
        core::InferenceOptions{});
    EXPECT_EQ(estimate.inference.log_good, batch.log_good)
        << "window " << estimate.window;
    EXPECT_EQ(estimate.inference.congestion_prob, batch.congestion_prob)
        << "window " << estimate.window;
    EXPECT_EQ(estimate.inference.active_set, batch.active_set)
        << "window " << estimate.window;
  }
  EXPECT_EQ(ingested, 300u);
}

/// Gram reuse must never change bits: the steady-state windows (unchanged
/// harvested support) refresh only the right-hand side products.
TEST(StreamingFast, GramReuseChangesNoBits) {
  const Prepared p = prepare("brite-high");
  const std::vector<WindowEstimate> reused = streamed_infer(p, 97, 1);
  const std::vector<WindowEstimate> rebuilt =
      streamed_infer(p, 97, 1, /*warm_start=*/true, /*reuse_gram=*/false);
  ASSERT_EQ(reused.size(), rebuilt.size());
  bool any_reused = false;
  for (std::size_t k = 0; k < reused.size(); ++k) {
    any_reused = any_reused || reused[k].gram_reused;
    EXPECT_FALSE(rebuilt[k].gram_reused);
    EXPECT_EQ(reused[k].inference.log_good, rebuilt[k].inference.log_good)
        << "window " << k;
    EXPECT_EQ(reused[k].inference.congestion_prob,
              rebuilt[k].inference.congestion_prob)
        << "window " << k;
  }
  EXPECT_TRUE(any_reused)
      << "expected at least one steady-state window to reuse the Gram";
}

}  // namespace
}  // namespace tomo::stream
