// Differential suite for the batched snapshot simulator.
//
// The block-batched engine (PacketMode::kBatched) is pinned against an
// independent serial reference (kBatchedReference) that shares only the
// RNG, the loss model, and the fate classifier: identical good-bit
// blocks, identical per-path good counts, and identical per-link
// congestion tallies, across every registry scenario and for any --jobs.
// Any divergence is an exactness bug, not a tolerance question, so the
// comparisons are exact. The legacy per-packet engine is held to
// *statistical* agreement only — it draws per-packet Bernoullis, so its
// snapshot fates match the batched engine in distribution, not bitwise.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "sim/measurement.hpp"
#include "sim/measurement_block.hpp"
#include "sim/simulator.hpp"

namespace tomo::sim {
namespace {

void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.snapshots, b.snapshots) << what;
  ASSERT_EQ(a.measurement.path_count, b.measurement.path_count) << what;
  ASSERT_EQ(a.measurement.snapshot_count, b.measurement.snapshot_count)
      << what;
  // Bitwise identity of the packed good-bit rows, word for word.
  ASSERT_EQ(a.measurement.good_bits, b.measurement.good_bits) << what;
  EXPECT_EQ(a.measurement.good_counts, b.measurement.good_counts) << what;
  EXPECT_EQ(a.link_congested_count, b.link_congested_count) << what;
}

SimulationResult run(const core::ScenarioInstance& inst, PacketMode mode,
                     std::size_t jobs, std::size_t snapshots) {
  SimulatorConfig config;
  config.snapshots = snapshots;
  config.packets_per_path = 500;
  config.mode = mode;
  config.jobs = jobs;
  config.seed = 0xba7c4ed;
  return simulate(inst.graph, inst.paths, *inst.truth, config);
}

class RegistrySimDifferential
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySimDifferential, BatchedMatchesReferenceBitExactly) {
  core::ScenarioConfig config = core::shrink_for_tests(
      core::ScenarioCatalog::instance().at(GetParam()).config);
  config.seed = 0x51f7;
  const core::ScenarioInstance inst = core::build_scenario(config);

  // 150 snapshots: two full 64-snapshot blocks plus a ragged tail word,
  // so the final-word masking is exercised on every scenario.
  const SimulationResult reference =
      run(inst, PacketMode::kBatchedReference, 1, 150);
  const SimulationResult batched = run(inst, PacketMode::kBatched, 1, 150);
  expect_identical(batched, reference, GetParam() + " jobs=1");

  const SimulationResult threaded =
      run(inst, PacketMode::kBatched, 3, 150);
  expect_identical(threaded, reference, GetParam() + " jobs=3");
}

TEST_P(RegistrySimDifferential, ObservationsRoundTripThroughBlock) {
  core::ScenarioConfig config = core::shrink_for_tests(
      core::ScenarioCatalog::instance().at(GetParam()).config);
  config.seed = 0x0b5e;
  const core::ScenarioInstance inst = core::build_scenario(config);
  const SimulationResult result = run(inst, PacketMode::kBatched, 1, 97);

  // block -> scalar observations -> block is the identity, including the
  // zeroed tail bits past the snapshot count.
  const PathObservations obs = result.measurement.to_observations();
  const MeasurementBlock back = MeasurementBlock::from_observations(obs);
  EXPECT_EQ(back.good_bits, result.measurement.good_bits) << GetParam();
  EXPECT_EQ(back.good_counts, result.measurement.good_counts) << GetParam();

  // Adopting the block and re-packing the scalar copy must answer set
  // queries identically.
  const EmpiricalMeasurement adopted(result.measurement);
  const EmpiricalMeasurement packed(obs);
  for (graph::PathId p = 0; p < obs.path_count(); ++p) {
    ASSERT_EQ(adopted.good_prob(p), packed.good_prob(p))
        << GetParam() << " path " << p;
  }
}

std::vector<std::string> registry_names() {
  return core::ScenarioCatalog::instance().names();
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistrySimDifferential,
    ::testing::ValuesIn(registry_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SimFast, PerPacketAgreesWithBatchedAtBlockGranularity) {
  core::ScenarioConfig config = core::shrink_for_tests(
      core::ScenarioCatalog::instance().at("brite-high").config);
  config.seed = 0x9e12;
  const core::ScenarioInstance inst = core::build_scenario(config);

  // Per-packet draws individual Bernoullis; batched classifies certain
  // fates analytically and samples one binomial otherwise. The two agree
  // in distribution, so per-path good frequencies over many blocks must
  // match within a few binomial standard errors.
  const std::size_t snapshots = 64 * 40;  // 40 full blocks
  const SimulationResult batched =
      run(inst, PacketMode::kBatched, 1, snapshots);
  const SimulationResult per_packet =
      run(inst, PacketMode::kPerPacket, 1, snapshots);

  const double n = static_cast<double>(snapshots);
  for (graph::PathId p = 0; p < inst.paths.size(); ++p) {
    const double fb =
        static_cast<double>(batched.measurement.good_counts[p]) / n;
    const double fp =
        static_cast<double>(per_packet.measurement.good_counts[p]) / n;
    // 5 sigma of a Bernoulli(f) mean over n snapshots, floored for the
    // near-deterministic paths.
    const double sigma =
        std::sqrt(std::max(fb * (1.0 - fb), 1e-4) / n);
    EXPECT_NEAR(fb, fp, 5.0 * sigma + 5e-3) << "path " << p;
  }
}

TEST(SimFast, BatchedIsInvariantAcrossJobCounts) {
  core::ScenarioConfig config = core::shrink_for_tests(
      core::ScenarioCatalog::instance().at("waxman-bursty").config);
  config.seed = 0x0b5;
  const core::ScenarioInstance inst = core::build_scenario(config);
  const SimulationResult one = run(inst, PacketMode::kBatched, 1, 333);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{5},
                                 std::size_t{0}}) {
    const SimulationResult many =
        run(inst, PacketMode::kBatched, jobs, 333);
    expect_identical(many, one, "jobs=" + std::to_string(jobs));
  }
}

}  // namespace
}  // namespace tomo::sim
