// Figure 4(a-d): CDF of the absolute error when 25% / 50% of the congested
// links are unidentifiable (Assumption 4 broken around them), at 10%
// congested links, on Brite-like and PlanetLab-like topologies.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/cdf.hpp"

namespace {

void run_panel(tomo::bench::Run& run, tomo::core::TopologyKind topo,
               double unident_fraction, const char* label,
               std::uint64_t tag) {
  using namespace tomo;
  const bench::Settings& s = run.settings();
  core::TrialSpec spec = bench::resolve_trial_spec(s, tag, topo);
  spec.scenario.congested_fraction = 0.10;
  spec.scenario.unidentifiable_fraction = unident_fraction;
  const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
    const auto trial = spec.run(ctx);
    return std::pair(trial.result.correlation_errors(),
                     trial.result.independence_errors());
  });
  std::vector<double> corr_errors, ind_errors;
  for (const auto& outcome : outcomes) {
    const auto& [ce, ie] = outcome.value;
    corr_errors.insert(corr_errors.end(), ce.begin(), ce.end());
    ind_errors.insert(ind_errors.end(), ie.begin(), ie.end());
  }
  Table table({"abs_error", "correlation_cdf_pct", "independence_cdf_pct"});
  std::cout << "# Fig 4 — " << label
            << " (10% congested; CDF over potentially congested links)\n";
  const auto corr_cdf = metrics::cdf_series(corr_errors);
  const auto ind_cdf = metrics::cdf_series(ind_errors);
  for (std::size_t i = 0; i < corr_cdf.size(); ++i) {
    table.add_row({Table::fmt(corr_cdf[i].x, 2),
                   Table::fmt(corr_cdf[i].percent, 1),
                   Table::fmt(ind_cdf[i].percent, 1)});
  }
  run.table(label, table);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("fig4_unidentifiable",
              "Fig 4(a-d): error CDFs with unidentifiable links");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("fig4_unidentifiable", s);

  run_panel(run, core::TopologyKind::kBrite, 0.25,
            "(a) 25% of congested links unidentifiable, Brite", 0x4a00);
  run_panel(run, core::TopologyKind::kBrite, 0.50,
            "(b) 50% of congested links unidentifiable, Brite", 0x4b00);
  run_panel(run, core::TopologyKind::kPlanetLab, 0.25,
            "(c) 25% of congested links unidentifiable, PlanetLab", 0x4c00);
  run_panel(run, core::TopologyKind::kPlanetLab, 0.50,
            "(d) 50% of congested links unidentifiable, PlanetLab", 0x4d00);
  run.finish();
  return 0;
}
