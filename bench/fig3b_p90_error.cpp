// Figure 3(b): 90th percentile of the absolute error vs. fraction of
// congested links, high correlation, Brite-like topology.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("fig3b_p90_error",
              "Fig 3(b): 90th-pct abs. error vs %congested, high corr.");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("fig3b_p90_error", s);

  Table table({"congested_links_pct", "correlation_p90_err",
               "independence_p90_err"});
  std::cout << "# Fig 3(b) — 90th percentile of the absolute error, "
               "congested links highly correlated (Brite)\n";
  const core::TrialSpec base =
      bench::resolve_trial_spec(s, 0x3b00, core::TopologyKind::kBrite);
  const std::vector<double> pcts{5.0, 10.0, 15.0, 20.0, 25.0};
  const auto swept = run.sweep(
      pcts.size(), [&](std::size_t point, const core::TrialContext& ctx) {
        core::TrialSpec spec = base;
        spec.scenario.congested_fraction = pcts[point] / 100.0;
        const auto trial = spec.run(ctx);
        return std::pair(
            percentile(trial.result.correlation_errors(), 90.0),
            percentile(trial.result.independence_errors(), 90.0));
      });
  for (std::size_t point = 0; point < pcts.size(); ++point) {
    double corr_sum = 0.0, ind_sum = 0.0;
    for (const auto& outcome : swept[point]) {
      corr_sum += outcome.value.first;
      ind_sum += outcome.value.second;
    }
    table.add_row({Table::fmt(pcts[point], 0),
                   Table::fmt(corr_sum / s.trials),
                   Table::fmt(ind_sum / s.trials)});
  }
  run.table("fig3b_p90_error", table);
  run.finish();
  return 0;
}
