// Microbenchmarks for the congestion simulator and measurement layer.
#include <benchmark/benchmark.h>

#include "core/scenario.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace tomo;

core::ScenarioInstance make_instance() {
  core::ScenarioConfig config;
  config.topology = core::TopologyKind::kBrite;
  config.as_nodes = 60;
  config.as_endpoints = 16;
  config.congested_fraction = 0.10;
  config.seed = 42;
  return core::build_scenario(config);
}

void BM_SimulateBinomial(benchmark::State& state) {
  const auto inst = make_instance();
  sim::SimulatorConfig config;
  config.snapshots = static_cast<std::size_t>(state.range(0));
  config.packets_per_path = 500;
  config.mode = sim::PacketMode::kBinomial;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(inst.graph, inst.paths, *inst.truth, config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.snapshots));
}
BENCHMARK(BM_SimulateBinomial)->Arg(100)->Arg(500);

void BM_SimulateBatched(benchmark::State& state) {
  const auto inst = make_instance();
  sim::SimulatorConfig config;
  config.snapshots = static_cast<std::size_t>(state.range(0));
  config.packets_per_path = 500;
  config.mode = sim::PacketMode::kBatched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(inst.graph, inst.paths, *inst.truth, config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.snapshots));
}
BENCHMARK(BM_SimulateBatched)->Arg(100)->Arg(500)->Arg(2000);

void BM_SimulateExact(benchmark::State& state) {
  const auto inst = make_instance();
  sim::SimulatorConfig config;
  config.snapshots = static_cast<std::size_t>(state.range(0));
  config.mode = sim::PacketMode::kExact;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(inst.graph, inst.paths, *inst.truth, config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.snapshots));
}
BENCHMARK(BM_SimulateExact)->Arg(1000)->Arg(4000);

void BM_PairGoodCounting(benchmark::State& state) {
  const auto inst = make_instance();
  sim::SimulatorConfig config;
  config.snapshots = 2000;
  config.mode = sim::PacketMode::kExact;
  auto result = sim::simulate(inst.graph, inst.paths, *inst.truth, config);
  const sim::EmpiricalMeasurement meas(std::move(result.measurement));
  const std::size_t paths = inst.paths.size();
  std::size_t i = 0, j = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(meas.pair_good_prob(i, j));
    j = (j + 1) % paths;
    if (j == i) j = (j + 1) % paths;
    i = (i + 7) % paths;
    if (i == j) i = (i + 1) % paths;
  }
}
BENCHMARK(BM_PairGoodCounting);

}  // namespace

BENCHMARK_MAIN();
