// Figure 3(d): CDF of the absolute error at 10% congested links, loose
// correlation (<= 2 congested links per set), Brite-like topology.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/cdf.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("fig3d_cdf_loose_corr",
              "Fig 3(d): error CDF at 10% congested, loose correlation");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("fig3d_cdf_loose_corr", s);

  core::TrialSpec spec =
      bench::resolve_trial_spec(s, 0x3d00, core::TopologyKind::kBrite,
                                core::CorrelationLevel::kLoose);
  spec.scenario.congested_fraction = 0.10;
  const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
    const auto trial = spec.run(ctx);
    return std::pair(trial.result.correlation_errors(),
                     trial.result.independence_errors());
  });
  std::vector<double> corr_errors, ind_errors;
  for (const auto& outcome : outcomes) {
    const auto& [ce, ie] = outcome.value;
    corr_errors.insert(corr_errors.end(), ce.begin(), ce.end());
    ind_errors.insert(ind_errors.end(), ie.begin(), ie.end());
  }

  Table table({"abs_error", "correlation_cdf_pct", "independence_cdf_pct"});
  std::cout << "# Fig 3(d) — CDF of the absolute error, 10% congested, "
               "loosely correlated (Brite)\n";
  const auto corr_cdf = metrics::cdf_series(corr_errors);
  const auto ind_cdf = metrics::cdf_series(ind_errors);
  for (std::size_t i = 0; i < corr_cdf.size(); ++i) {
    table.add_row({Table::fmt(corr_cdf[i].x, 2),
                   Table::fmt(corr_cdf[i].percent, 1),
                   Table::fmt(ind_cdf[i].percent, 1)});
  }
  run.table("fig3d_cdf_loose_corr", table);
  run.finish();
  return 0;
}
