// Ablation: value of the pair equations (paper Eq. 10). Compares
// singles-only against singles+pairs on the Fig 3(c) scenario, reporting
// system rank and accuracy.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("ablation_equations",
              "equation-source ablation (singles vs singles+pairs)");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("ablation_equations", s);

  Table table({"equations", "rank_fraction", "n1", "n2",
               "correlation_mean_err", "correlation_p90_err"});
  std::cout << "# Ablation — single-path equations only vs + pair "
               "equations (10% congested, high correlation, Brite)\n";
  const core::TrialSpec base =
      bench::resolve_trial_spec(s, 0xab20, core::TopologyKind::kBrite);
  for (const bool use_pairs : {false, true}) {
    const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
      core::TrialSpec spec = base;
      spec.scenario.congested_fraction = 0.10;
      spec.inference.equations.use_pairs = use_pairs;
      const auto trial = spec.run(ctx);
      const auto& result = trial.result;
      return std::array<double, 5>{
          mean(result.correlation_errors()),
          percentile(result.correlation_errors(), 90.0),
          static_cast<double>(result.correlation.system.rank) /
              static_cast<double>(result.correlation.system.link_count),
          static_cast<double>(result.correlation.system.n1),
          static_cast<double>(result.correlation.system.n2)};
    });
    double mean_sum = 0.0, p90_sum = 0.0, rank_sum = 0.0;
    double n1_sum = 0.0, n2_sum = 0.0;
    for (const auto& outcome : outcomes) {
      mean_sum += outcome.value[0];
      p90_sum += outcome.value[1];
      rank_sum += outcome.value[2];
      n1_sum += outcome.value[3];
      n2_sum += outcome.value[4];
    }
    table.add_row({use_pairs ? "singles+pairs" : "singles-only",
                   Table::fmt(rank_sum / s.trials, 3),
                   Table::fmt(n1_sum / s.trials, 1),
                   Table::fmt(n2_sum / s.trials, 1),
                   Table::fmt(mean_sum / s.trials),
                   Table::fmt(p90_sum / s.trials)});
  }
  run.table("ablation_equations", table);
  run.finish();
  return 0;
}
