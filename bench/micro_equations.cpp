// Microbenchmark: equation building (the rank-guided candidate stream) and
// full inference on a mid-size scenario.
#include <benchmark/benchmark.h>

#include "core/correlation_algorithm.hpp"
#include "core/scenario.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace tomo;

struct Prepared {
  core::ScenarioInstance inst;
  graph::CoverageIndex coverage;
  sim::SimulationResult sim_result;

  explicit Prepared(core::ScenarioInstance instance)
      : inst(std::move(instance)),
        coverage(inst.graph, inst.paths),
        sim_result(sim::simulate(inst.graph, inst.paths, *inst.truth,
                                 make_sim_config())) {}

  static sim::SimulatorConfig make_sim_config() {
    sim::SimulatorConfig config;
    config.snapshots = 1000;
    config.mode = sim::PacketMode::kExact;
    config.seed = 7;
    return config;
  }
};

Prepared& prepared() {
  static Prepared p = [] {
    core::ScenarioConfig config;
    config.topology = core::TopologyKind::kBrite;
    config.as_nodes = 60;
    config.as_endpoints = 16;
    config.congested_fraction = 0.10;
    config.seed = 21;
    return Prepared(core::build_scenario(config));
  }();
  return p;
}

void BM_BuildEquations(benchmark::State& state) {
  Prepared& p = prepared();
  const sim::EmpiricalMeasurement meas(p.sim_result.observations);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_equations(p.coverage, p.inst.declared_sets, meas));
  }
}
BENCHMARK(BM_BuildEquations);

void BM_FullInference(benchmark::State& state) {
  Prepared& p = prepared();
  const sim::EmpiricalMeasurement meas(p.sim_result.observations);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::infer_congestion(
        p.inst.graph, p.inst.paths, p.coverage, p.inst.declared_sets, meas));
  }
}
BENCHMARK(BM_FullInference);

}  // namespace

BENCHMARK_MAIN();
