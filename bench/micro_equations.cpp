// Microbenchmark: equation building (the rank-guided candidate stream) and
// full inference on a mid-size scenario, plus the harvest on the
// registry's heaviest entry (waxman-dense-vps, 1560 paths). The *Reference
// variant runs the two flag-gated reference paths — scalar measurement,
// union-materializing correlation check — that the differential suite pins
// the fast paths against; the structural PR-4 wins (sparse rank tracking,
// seen-set-free candidate generation, lazy dense system) are permanent and
// show up in the main variant's absolute time (~20 ms vs ~300 ms for the
// full pre-PR-4 implementation on the same instance).
#include <benchmark/benchmark.h>

#include "core/correlation_algorithm.hpp"
#include "core/scenario.hpp"
#include "core/scenario_catalog.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace tomo;

struct Prepared {
  core::ScenarioInstance inst;
  graph::CoverageIndex coverage;
  sim::SimulationResult sim_result;

  explicit Prepared(core::ScenarioInstance instance)
      : inst(std::move(instance)),
        coverage(inst.graph, inst.paths),
        sim_result(sim::simulate(inst.graph, inst.paths, *inst.truth,
                                 make_sim_config())) {}

  static sim::SimulatorConfig make_sim_config() {
    sim::SimulatorConfig config;
    config.snapshots = 1000;
    config.mode = sim::PacketMode::kExact;
    config.seed = 7;
    return config;
  }
};

Prepared& prepared() {
  static Prepared p = [] {
    core::ScenarioConfig config;
    config.topology = core::TopologyKind::kBrite;
    config.as_nodes = 60;
    config.as_endpoints = 16;
    config.congested_fraction = 0.10;
    config.seed = 21;
    return Prepared(core::build_scenario(config));
  }();
  return p;
}

void BM_BuildEquations(benchmark::State& state) {
  Prepared& p = prepared();
  const sim::EmpiricalMeasurement meas(p.sim_result.measurement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_equations(p.coverage, p.inst.declared_sets, meas));
  }
}
BENCHMARK(BM_BuildEquations);

void BM_FullInference(benchmark::State& state) {
  Prepared& p = prepared();
  const sim::EmpiricalMeasurement meas(p.sim_result.measurement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::infer_congestion(
        p.inst.graph, p.inst.paths, p.coverage, p.inst.declared_sets, meas));
  }
}
BENCHMARK(BM_FullInference);

Prepared& prepared_dense_vps() {
  static Prepared p = [] {
    core::ScenarioConfig config =
        core::ScenarioCatalog::instance().at("waxman-dense-vps").config;
    config.seed = 42;
    return Prepared(core::build_scenario(config));
  }();
  return p;
}

void BM_HarvestDenseVps(benchmark::State& state) {
  Prepared& p = prepared_dense_vps();
  const sim::EmpiricalMeasurement meas(p.sim_result.measurement);
  const auto singles =
      corr::CorrelationSets::singletons(p.coverage.link_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_equations(p.coverage, p.inst.declared_sets, meas));
    benchmark::DoNotOptimize(
        core::build_equations(p.coverage, singles, meas));
  }
}
BENCHMARK(BM_HarvestDenseVps)->Unit(benchmark::kMillisecond);

void BM_HarvestDenseVpsReference(benchmark::State& state) {
  Prepared& p = prepared_dense_vps();
  const sim::EmpiricalMeasurement scalar(p.sim_result.observations(),
                                         /*use_bitset_cache=*/false);
  const auto singles =
      corr::CorrelationSets::singletons(p.coverage.link_count());
  core::EquationBuildOptions reference;
  reference.use_signature_precheck = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_equations(
        p.coverage, p.inst.declared_sets, scalar, reference));
    benchmark::DoNotOptimize(
        core::build_equations(p.coverage, singles, scalar, reference));
  }
}
BENCHMARK(BM_HarvestDenseVpsReference)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
