// Ablation: variance-weighted equations. Weighting each equation by the
// inverse standard deviation of its estimate (delta method) should help
// most when estimates are thin (few snapshots) and be neutral otherwise.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("ablation_weighting",
              "variance-weighted vs unweighted equation solving");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("ablation_weighting", s);

  Table table({"snapshots", "unweighted_mean_err", "weighted_mean_err"});
  std::cout << "# Ablation — variance weighting of equations "
               "(correlation algorithm; 10% congested, Brite)\n";
  const core::TrialSpec base =
      bench::resolve_trial_spec(s, 0xab50, core::TopologyKind::kBrite);
  const std::vector<std::size_t> counts{125u, 500u, 2000u};
  const auto swept = run.sweep(
      counts.size(), [&](std::size_t point, const core::TrialContext& ctx) {
        core::TrialSpec spec = base;
        spec.scenario.congested_fraction = 0.10;
        spec.sim.snapshots = counts[point];
        const auto inst = core::build_scenario(spec.scenario_for(ctx));
        core::ExperimentConfig config = spec.experiment_for(ctx);
        config.inference.weight_by_variance = false;
        const auto plain = core::run_experiment(inst, config);
        config.inference.weight_by_variance = true;
        const auto weighted = core::run_experiment(inst, config);
        return std::pair(mean(plain.correlation_errors()),
                         mean(weighted.correlation_errors()));
      });
  for (std::size_t point = 0; point < counts.size(); ++point) {
    double plain_sum = 0.0, weighted_sum = 0.0;
    for (const auto& outcome : swept[point]) {
      plain_sum += outcome.value.first;
      weighted_sum += outcome.value.second;
    }
    table.add_row({std::to_string(counts[point]),
                   Table::fmt(plain_sum / s.trials),
                   Table::fmt(weighted_sum / s.trials)});
  }
  run.table("ablation_weighting", table);
  run.finish();
  return 0;
}
