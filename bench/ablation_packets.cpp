// Ablation: probe-packet budget per path per snapshot.
//
// Path congestion is detected by thresholding a measured loss rate; with
// few packets, good paths whose links sit near the tl threshold are
// misclassified, which injects a *bias* (not just variance) into the
// P(paths good) estimates that no amount of snapshots removes. This sweep
// locates the packet budget where detection noise stops dominating.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("ablation_packets",
              "probe-packet budget sensitivity of both algorithms");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("ablation_packets", s);

  Table table({"packets_per_path", "correlation_mean_err",
               "independence_mean_err"});
  std::cout << "# Ablation — probe packets per path per snapshot (10% "
               "congested, high correlation, Brite)\n";
  const core::TrialSpec base =
      bench::resolve_trial_spec(s, 0xab40, core::TopologyKind::kBrite);
  const std::vector<std::size_t> budgets{100u, 250u, 500u, 1000u, 2000u,
                                         4000u};
  const auto swept = run.sweep(
      budgets.size(), [&](std::size_t point, const core::TrialContext& ctx) {
        core::TrialSpec spec = base;
        spec.scenario.congested_fraction = 0.10;
        spec.sim.packets_per_path = budgets[point];
        const auto trial = spec.run(ctx);
        return std::pair(mean(trial.result.correlation_errors()),
                         mean(trial.result.independence_errors()));
      });
  for (std::size_t point = 0; point < budgets.size(); ++point) {
    double corr_sum = 0.0, ind_sum = 0.0;
    for (const auto& outcome : swept[point]) {
      corr_sum += outcome.value.first;
      ind_sum += outcome.value.second;
    }
    table.add_row({std::to_string(budgets[point]),
                   Table::fmt(corr_sum / s.trials),
                   Table::fmt(ind_sum / s.trials)});
  }
  run.table("ablation_packets", table);
  run.finish();
  return 0;
}
