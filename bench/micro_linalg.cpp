// Microbenchmarks for the linear-algebra substrate.
#include <benchmark/benchmark.h>

#include <map>

#include "core/equations.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/coverage.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "linalg/rank_tracker.hpp"
#include "linalg/simplex.hpp"
#include "linalg/solvers.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace tomo;
using namespace tomo::linalg;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      a(i, j) = rng.uniform(-1, 1);
    }
  }
  return a;
}

void BM_QrLeastSquares(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n + 10, n, rng);
  Vector b(n + 10);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(least_squares(a, b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QrLeastSquares)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_Nnls(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n + 10, n, rng);
  Vector b(n + 10);
  for (auto& v : b) v = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nnls(a, b));
  }
}
BENCHMARK(BM_Nnls)->Arg(16)->Arg(32)->Arg(64);

void BM_RankTrackerSparseRows(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  // Pre-generate sparse candidate rows resembling path-incidence vectors.
  std::vector<std::vector<std::size_t>> rows;
  for (std::size_t i = 0; i < dim * 2; ++i) {
    std::vector<std::size_t> ones =
        rng.sample_without_replacement(dim, 8 + rng.below(8));
    rows.push_back(std::move(ones));
  }
  for (auto _ : state) {
    RankTracker tracker(dim);
    std::size_t accepted = 0;
    for (const auto& ones : rows) {
      accepted += tracker.try_add_ones(ones) ? 1 : 0;
      if (tracker.full_rank()) break;
    }
    benchmark::DoNotOptimize(accepted);
  }
}
BENCHMARK(BM_RankTrackerSparseRows)->Arg(64)->Arg(128)->Arg(256);

// ---- NNLS engines on real registry equation systems ---------------------
//
// The solve is the inference hot path at mesh scale, so the engine
// comparison runs on harvested systems, not synthetic dense ones:
//   arg 0 — waxman-bursty at test (shrink) scale, ~260 links
//   arg 1 — waxman-full at test scale, ~250 links / ~230 paths
//   arg 2 — waxman-full at full registry scale (~870 paths, ~870 links)
// The reference engine (fresh dense QR per inner iteration) only runs the
// shrink scales: at arg 2 one solve takes minutes, which is exactly the
// regression the incremental engine removed.

struct RegistrySystem {
  core::EquationSystem system;
};

const RegistrySystem& registry_system(std::int64_t scale) {
  static std::map<std::int64_t, RegistrySystem> cache;
  const auto it = cache.find(scale);
  if (it != cache.end()) return it->second;

  core::ScenarioConfig config =
      core::ScenarioCatalog::instance()
          .at(scale == 0 ? "waxman-bursty" : "waxman-full")
          .config;
  if (scale < 2) config = core::shrink_for_tests(config);
  config.seed = 0xbe7c;
  const core::ScenarioInstance inst = core::build_scenario(config);
  const graph::CoverageIndex coverage(inst.graph, inst.paths);
  sim::SimulatorConfig sc;
  sc.snapshots = scale < 2 ? 400 : 2000;
  sc.packets_per_path = scale < 2 ? 600 : 4000;
  sc.mode = sim::PacketMode::kBinomial;
  sc.seed = 0xbe7c00;
  auto simr = sim::simulate(inst.graph, inst.paths, *inst.truth, sc);
  const sim::EmpiricalMeasurement meas(std::move(simr.measurement));
  RegistrySystem prepared;
  prepared.system =
      core::build_equations(coverage, inst.declared_sets, meas);
  prepared.system.matrix();  // materialize outside the timed region
  return cache.emplace(scale, std::move(prepared)).first->second;
}

void BM_NnlsRegistryIncremental(benchmark::State& state) {
  const RegistrySystem& prepared = registry_system(state.range(0));
  SolverOptions options;  // defaults: nnls, incremental engine
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_log_system(core::sparse_view(prepared.system), options));
  }
}
BENCHMARK(BM_NnlsRegistryIncremental)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_NnlsRegistryReference(benchmark::State& state) {
  const RegistrySystem& prepared = registry_system(state.range(0));
  SolverOptions options;
  options.nnls_mode = NnlsMode::kReference;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_log_system(
        prepared.system.matrix(), prepared.system.rhs(), options));
  }
}
BENCHMARK(BM_NnlsRegistryReference)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_L1Regression(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Matrix a = random_matrix(n + 5, n, rng);
  Vector b(n + 5);
  for (auto& v : b) v = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1_regression(a, b));
  }
}
BENCHMARK(BM_L1Regression)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
