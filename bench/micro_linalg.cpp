// Microbenchmarks for the linear-algebra substrate.
#include <benchmark/benchmark.h>

#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "linalg/rank_tracker.hpp"
#include "linalg/simplex.hpp"
#include "util/rng.hpp"

namespace {

using namespace tomo;
using namespace tomo::linalg;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      a(i, j) = rng.uniform(-1, 1);
    }
  }
  return a;
}

void BM_QrLeastSquares(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n + 10, n, rng);
  Vector b(n + 10);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(least_squares(a, b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QrLeastSquares)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_Nnls(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n + 10, n, rng);
  Vector b(n + 10);
  for (auto& v : b) v = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nnls(a, b));
  }
}
BENCHMARK(BM_Nnls)->Arg(16)->Arg(32)->Arg(64);

void BM_RankTrackerSparseRows(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  // Pre-generate sparse candidate rows resembling path-incidence vectors.
  std::vector<std::vector<std::size_t>> rows;
  for (std::size_t i = 0; i < dim * 2; ++i) {
    std::vector<std::size_t> ones =
        rng.sample_without_replacement(dim, 8 + rng.below(8));
    rows.push_back(std::move(ones));
  }
  for (auto _ : state) {
    RankTracker tracker(dim);
    std::size_t accepted = 0;
    for (const auto& ones : rows) {
      accepted += tracker.try_add_ones(ones) ? 1 : 0;
      if (tracker.full_rank()) break;
    }
    benchmark::DoNotOptimize(accepted);
  }
}
BENCHMARK(BM_RankTrackerSparseRows)->Arg(64)->Arg(128)->Arg(256);

void BM_L1Regression(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Matrix a = random_matrix(n + 5, n, rng);
  Vector b(n + 5);
  for (auto& v : b) v = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1_regression(a, b));
  }
}
BENCHMARK(BM_L1Regression)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
