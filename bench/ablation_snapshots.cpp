// Ablation: sensitivity to the number of snapshots (experiment length).
// The estimates of P(paths good) converge at 1/sqrt(N); this sweep shows
// where the returns diminish.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("ablation_snapshots",
              "snapshot-count sensitivity of both algorithms");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);

  Table table({"snapshots", "correlation_mean_err",
               "independence_mean_err"});
  std::cout << "# Ablation — snapshot count (10% congested, high "
               "correlation, Brite)\n";
  for (const std::size_t snapshots : {125u, 250u, 500u, 1000u, 2000u,
                                      4000u}) {
    double corr_sum = 0.0, ind_sum = 0.0;
    for (std::size_t trial = 0; trial < s.trials; ++trial) {
      core::ScenarioConfig scenario;
      scenario.topology = core::TopologyKind::kBrite;
      bench::apply_scale(scenario, s);
      scenario.congested_fraction = 0.10;
      scenario.seed = mix_seed(s.seed, 0xab30 + trial);
      const auto inst = core::build_scenario(scenario);
      core::ExperimentConfig config = bench::experiment_config(s, trial);
      config.sim.snapshots = snapshots;
      const auto result = core::run_experiment(inst, config);
      corr_sum += mean(result.correlation_errors());
      ind_sum += mean(result.independence_errors());
    }
    table.add_row({std::to_string(snapshots),
                   Table::fmt(corr_sum / s.trials),
                   Table::fmt(ind_sum / s.trials)});
  }
  bench::emit(table, s);
  return 0;
}
