// Ablation: sensitivity to the number of snapshots (experiment length).
// The estimates of P(paths good) converge at 1/sqrt(N); this sweep shows
// where the returns diminish.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("ablation_snapshots",
              "snapshot-count sensitivity of both algorithms");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("ablation_snapshots", s);

  Table table({"snapshots", "correlation_mean_err",
               "independence_mean_err"});
  std::cout << "# Ablation — snapshot count (10% congested, high "
               "correlation, Brite)\n";
  const core::TrialSpec base =
      bench::resolve_trial_spec(s, 0xab30, core::TopologyKind::kBrite);
  const std::vector<std::size_t> counts{125u, 250u, 500u, 1000u, 2000u,
                                        4000u};
  const auto swept = run.sweep(
      counts.size(), [&](std::size_t point, const core::TrialContext& ctx) {
        core::TrialSpec spec = base;
        spec.scenario.congested_fraction = 0.10;
        spec.sim.snapshots = counts[point];
        const auto trial = spec.run(ctx);
        return std::pair(mean(trial.result.correlation_errors()),
                         mean(trial.result.independence_errors()));
      });
  for (std::size_t point = 0; point < counts.size(); ++point) {
    double corr_sum = 0.0, ind_sum = 0.0;
    for (const auto& outcome : swept[point]) {
      corr_sum += outcome.value.first;
      ind_sum += outcome.value.second;
    }
    table.add_row({std::to_string(counts[point]),
                   Table::fmt(corr_sum / s.trials),
                   Table::fmt(ind_sum / s.trials)});
  }
  run.table("ablation_snapshots", table);
  run.finish();
  return 0;
}
