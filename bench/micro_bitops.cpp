// Micro-benchmark for the util::bitops kernel layer: every kernel timed
// scalar vs the runtime-dispatched table, at the shapes the registry
// actually produces (2000-snapshot rows = 31.25 words, ragged tail
// included; waxman-full path counts for the snapshot-major gather), plus
// the end-to-end bit-transposed MeasurementBlock::resample. Emits one
// table row per (kernel, shape) with ns/op for both tables and the
// speedup, and the same numbers as JSON metrics
// (BENCH_micro_bitops.json) for cross-commit comparison.
//
// Unlike the micro_* Google-Benchmark binaries this one builds
// unconditionally (bench::Run only), so CI always has kernel-level
// telemetry next to the macro benches. Timing numbers on stdout mean this
// binary is *not* part of the force-scalar byte-identity cmp set.
#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/measurement_block.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace tomo {
namespace {

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t words) {
  std::vector<std::uint64_t> out(words);
  for (std::uint64_t& w : out) w = rng();
  return out;
}

/// Times `body` (already warmed once) over `iters` runs; ns per run.
template <typename Body>
double time_ns(std::size_t iters, Body&& body) {
  body();  // warm-up: caches, lazy dispatch
  const Stopwatch timer;
  for (std::size_t i = 0; i < iters; ++i) body();
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

struct Row {
  std::string kernel;
  std::string shape;
  double scalar_ns;
  double simd_ns;
};

}  // namespace

int run_main(int argc, char** argv) {
  Flags flags("micro_bitops",
              "bit-kernel layer: scalar vs dispatched SIMD, per kernel");
  bench::add_common_flags(flags);
  flags.parse(argc, argv);
  bench::Settings settings = bench::settings_from_flags(flags);
  bench::Run run("micro_bitops", settings);

  const util::bitops::Kernels& s = util::bitops::scalar_kernels();
  const util::bitops::Kernels& b = util::bitops::best_kernels();
  Rng rng(settings.seed);
  // Keep every result observable so the timed loops cannot fold away
  // (the kernels are reached through runtime-loaded function pointers, so
  // the optimizer cannot prove them pure and hoist the calls).
  std::size_t sink = 0;
  std::vector<Row> rows;

  // Word widths the registry produces: a sparse 150-snapshot debug run
  // (3 words), the standard 2000-snapshot block (32 words, 16-bit ragged
  // tail), and an internet-scale 8192-snapshot row.
  for (const std::size_t bits : {150u, 2000u, 8192u}) {
    const std::size_t words = (bits + 63) / 64;
    const std::size_t iters = 4'000'000 / std::max<std::size_t>(words, 1);
    const auto a = random_words(rng, words);
    const auto c = random_words(rng, words);
    const auto d = random_words(rng, words);
    const std::string shape = std::to_string(bits) + "b";

    rows.push_back(
        {"popcount", shape,
         time_ns(iters, [&] { sink += s.popcount(a.data(), words); }),
         time_ns(iters, [&] { sink += b.popcount(a.data(), words); })});
    rows.push_back(
        {"and_popcount", shape,
         time_ns(iters,
                 [&] { sink += s.and_popcount(a.data(), c.data(), words); }),
         time_ns(iters,
                 [&] { sink += b.and_popcount(a.data(), c.data(), words); })});
    const std::array<const std::uint64_t*, 3> multi = {a.data(), c.data(),
                                                       d.data()};
    rows.push_back(
        {"and_popcount_multi3", shape,
         time_ns(iters,
                 [&] {
                   sink += s.and_popcount_multi(multi.data(), multi.size(),
                                                words);
                 }),
         time_ns(iters, [&] {
           sink += b.and_popcount_multi(multi.data(), multi.size(), words);
         })});

    std::vector<std::uint64_t> dst(words + 1, 0);
    for (const unsigned shift : {1u, 17u, 63u}) {
      const std::string sh_shape = shape + "+" + std::to_string(shift);
      rows.push_back(
          {"shift_or", sh_shape,
           time_ns(iters,
                   [&] {
                     s.shift_or(dst.data(), a.data(), words, shift);
                     sink += static_cast<std::size_t>(dst[words - 1]);
                   }),
           time_ns(iters, [&] {
             b.shift_or(dst.data(), a.data(), words, shift);
             sink += static_cast<std::size_t>(dst[words - 1]);
           })});
      rows.push_back(
          {"shift_extract", sh_shape,
           time_ns(iters,
                   [&] {
                     s.shift_extract(dst.data(), a.data(), words, shift,
                                     false);
                     sink += static_cast<std::size_t>(dst[words - 1]);
                   }),
           time_ns(iters, [&] {
             b.shift_extract(dst.data(), a.data(), words, shift, false);
             sink += static_cast<std::size_t>(dst[words - 1]);
           })});
    }
  }

  {
    // The resample gather at waxman-full scale: 2048 snapshot-major rows
    // of 24 words (~1500 paths), 2000 picks per replicate.
    const std::size_t row_words = 24, src_rows = 2048, picks_n = 2000;
    const auto src = random_words(rng, src_rows * row_words);
    std::vector<std::uint32_t> picks(picks_n);
    for (std::uint32_t& p : picks) {
      p = static_cast<std::uint32_t>(rng.below(src_rows));
    }
    std::vector<std::uint64_t> dst(picks_n * row_words, 0);
    rows.push_back(
        {"gather_rows", "2000x24w",
         time_ns(2000,
                 [&] {
                   s.gather_rows(dst.data(), src.data(), row_words,
                                 picks.data(), picks_n);
                   sink += static_cast<std::size_t>(dst.back());
                 }),
         time_ns(2000, [&] {
           b.gather_rows(dst.data(), src.data(), row_words, picks.data(),
                         picks_n);
           sink += static_cast<std::size_t>(dst.back());
         })});
  }

  {
    const auto in = random_words(rng, 64);
    std::uint64_t out[64];
    rows.push_back(
        {"transpose64x64", "64x64",
         time_ns(2'000'000,
                 [&] {
                   s.transpose64x64(in.data(), 1, out, 1);
                   sink += static_cast<std::size_t>(out[63]);
                 }),
         time_ns(2'000'000, [&] {
           b.transpose64x64(in.data(), 1, out, 1);
           sink += static_cast<std::size_t>(out[63]);
         })});
  }

  {
    // End-to-end bit-transposed resample (what the bootstrap replicate
    // loop pays), via TOMO_FORCE_SCALAR-independent direct table use is
    // not possible — resample dispatches through active() — so both
    // timings here use the active table and the row records the
    // replicate-loop (warm scratch) vs one-off (cold scratch) split
    // instead of scalar vs SIMD.
    const std::size_t paths = 400, snaps = 2000;
    sim::MeasurementBlock block;
    block.path_count = paths;
    block.snapshot_count = snaps;
    block.good_bits = random_words(rng, paths * block.words_per_path());
    for (sim::PathId p = 0; p < paths; ++p) {
      block.good_row(p)[block.words_per_path() - 1] &=
          block.word_mask(block.words_per_path() - 1);
    }
    block.recount();
    std::vector<std::uint32_t> picks(snaps);
    for (std::uint32_t& p : picks) {
      p = static_cast<std::uint32_t>(rng.below(snaps));
    }
    sim::ResampleScratch warm;
    rows.push_back({"block_resample_400x2000", "cold/warm scratch",
                    time_ns(50,
                            [&] {
                              sink += block.resample(picks).good_counts[0];
                            }),
                    time_ns(200, [&] {
                      sink += block.resample(picks, warm).good_counts[0];
                    })});
  }

  Table table({"kernel", "shape", "scalar_ns", "dispatched_ns", "speedup"});
  for (const Row& r : rows) {
    const double speedup = r.simd_ns > 0.0 ? r.scalar_ns / r.simd_ns : 0.0;
    table.add_row({r.kernel, r.shape, Table::fmt(r.scalar_ns, 1),
                   Table::fmt(r.simd_ns, 1), Table::fmt(speedup, 2)});
    const std::string key = r.kernel + "_" + r.shape;
    run.metric(key + "_scalar_ns", r.scalar_ns)
        .metric(key + "_dispatched_ns", r.simd_ns);
  }
  run.table("bit-kernel micro timings (" + std::string(b.name) +
                " dispatched)",
            table);
  run.metric("sink", static_cast<double>(sink != 0));
  run.finish();
  return 0;
}

}  // namespace tomo

int main(int argc, char** argv) {
  try {
    return tomo::run_main(argc, argv);
  } catch (const tomo::Error& e) {
    std::cerr << "micro_bitops: " << e.what() << "\n";
    return 1;
  }
}
