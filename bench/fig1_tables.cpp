// Figure 1 / §3.1-3.2 tables: executable documentation of the paper's
// proof illustration. Prints, for both toy topologies, the ψ coverage
// table of every correlation subset and the Assumption-4 verdict; then,
// for Figure 1(a), the congestion factors α_A recovered by the theorem
// algorithm from the *exact* oracle next to their definitional values;
// and finally the same factors recovered from *simulated measurements* —
// --trials independent experiments (fanned across --jobs workers) of
// --snapshots snapshots at --packets probes each, with a bootstrap
// confidence interval per factor (--replicates resamples per trial).
#include <array>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bootstrap.hpp"
#include "core/theorem_algorithm.hpp"
#include "corr/identifiability.hpp"
#include "corr/joint_table.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace tomo;

struct Toy {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  corr::CorrelationSets sets;
};

Toy figure_1a() {
  Toy t;
  const auto a = t.graph.add_node("v4"), b = t.graph.add_node("v3");
  const auto c = t.graph.add_node("v1"), d = t.graph.add_node("v4b");
  const auto f = t.graph.add_node("v5");
  const auto e1 = t.graph.add_link(a, b), e2 = t.graph.add_link(d, b);
  const auto e3 = t.graph.add_link(b, c), e4 = t.graph.add_link(b, f);
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e1, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e4});
  t.sets = corr::CorrelationSets(4, {{e1, e2}, {e3}, {e4}});
  return t;
}

Toy figure_1b() {
  Toy t;
  const auto a = t.graph.add_node("v4"), b = t.graph.add_node("v3");
  const auto c = t.graph.add_node("v1"), d = t.graph.add_node("v4b");
  const auto e1 = t.graph.add_link(a, b), e2 = t.graph.add_link(d, b);
  const auto e3 = t.graph.add_link(b, c);
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e1, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e3});
  t.sets = corr::CorrelationSets(3, {{e1, e2}, {e3}});
  return t;
}

/// The worked §3.2 joint model on Figure 1(a).
corr::JointTableModel worked_model(const Toy& toy) {
  corr::SetDistribution d0;
  d0.prob = {0.65, 0.10, 0.05, 0.20};
  corr::SetDistribution d1;
  d1.prob = {0.85, 0.15};
  corr::SetDistribution d2;
  d2.prob = {0.60, 0.40};
  return corr::JointTableModel(toy.sets, {d0, d1, d2});
}

constexpr std::size_t kAlphaCount = 5;
constexpr std::array<const char*, kAlphaCount> kAlphaNames = {
    "{e1}", "{e2}", "{e1,e2}", "{e3}", "{e4}"};
// alpha_A = P(S^p=A)/P(S^p=0) per set, from the worked distributions.
constexpr std::array<double, kAlphaCount> kAlphaDefinition = {
    0.10 / 0.65, 0.05 / 0.65, 0.20 / 0.65, 0.15 / 0.85, 0.40 / 0.60};

std::array<double, kAlphaCount> extract_alphas(
    const core::TheoremResult& r) {
  return {r.alpha[0][1], r.alpha[0][2], r.alpha[0][3], r.alpha[1][1],
          r.alpha[2][1]};
}

std::string link_set_name(const std::vector<graph::LinkId>& links) {
  std::string out = "{";
  for (std::size_t i = 0; i < links.size(); ++i) {
    out += (i ? ",e" : "e") + std::to_string(links[i] + 1);
  }
  return out + "}";
}

std::string path_set_name(const graph::PathIdSet& paths) {
  std::string out = "{";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    out += (i ? ",P" : "P") + std::to_string(paths[i] + 1);
  }
  return out + "}";
}

void psi_table(bench::Run& run, const Toy& toy, const char* title) {
  const graph::CoverageIndex cov(toy.graph, toy.paths);
  std::cout << "# " << title << "\n";
  Table table({"A in C-tilde", "psi(A)"});
  for (const auto& subset :
       corr::enumerate_correlation_subsets(toy.sets)) {
    table.add_row({link_set_name(subset.links),
                   path_set_name(cov.covered_paths(subset.links))});
  }
  run.table(title, table);
  const auto report = corr::check_identifiability(cov, toy.sets);
  std::cout << "Assumption 4 " << (report.holds ? "HOLDS" : "VIOLATED");
  if (!report.holds) {
    std::cout << " — e.g. " << link_set_name(report.collisions[0].a.links)
              << " and " << link_set_name(report.collisions[0].b.links)
              << " cover the same paths";
  }
  std::cout << "\n\n";
}

struct McTrial {
  bool valid = false;  // false: the simulation was too degenerate to solve
  std::array<double, kAlphaCount> estimate{};
  std::array<double, kAlphaCount> ci_lo{};
  std::array<double, kAlphaCount> ci_hi{};
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags("fig1_tables",
              "Fig 1 / §3.1-3.2: coverage tables and congestion factors");
  bench::add_common_flags(flags);
  flags.add_int("replicates", 1000,
                "bootstrap resamples per trial for the alpha CIs");
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  const std::size_t replicates =
      static_cast<std::size_t>(flags.get_int("replicates"));
  bench::Run run("fig1_tables", s);

  psi_table(run, figure_1a(),
            "Figure 1(a): correlation-subset coverage table");
  psi_table(run, figure_1b(),
            "Figure 1(b): correlation-subset coverage table");

  // §3.2: congestion factors on Figure 1(a) with the worked joint model,
  // recovered from the exact oracle (no sampling error).
  {
    const Toy toy = figure_1a();
    const corr::JointTableModel truth = worked_model(toy);
    const graph::CoverageIndex cov(toy.graph, toy.paths);
    const sim::OracleMeasurement oracle(truth, cov);
    const core::TheoremResult r =
        core::run_theorem_algorithm(cov, toy.sets, oracle);
    const auto recovered = extract_alphas(r);

    std::cout << "# §3.2 congestion factors on Figure 1(a) — theorem "
                 "algorithm vs definition (alpha_A = P(S^p=A)/P(S^p=0))\n";
    Table table({"A", "alpha_recovered", "alpha_definition"});
    for (std::size_t i = 0; i < kAlphaCount; ++i) {
      table.add_row({kAlphaNames[i], Table::fmt(recovered[i], 6),
                     Table::fmt(kAlphaDefinition[i], 6)});
    }
    run.table("oracle congestion factors", table);
  }

  // The same recovery from simulated measurements: each trial simulates
  // --snapshots snapshots of the worked model, runs the theorem algorithm
  // on the empirical pattern probabilities, and bootstraps the snapshot
  // axis for a 90% CI per factor. Trials are independent and fan across
  // --jobs workers; aggregation is in trial order, so the table below is
  // identical for any --jobs.
  const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
    const Toy toy = figure_1a();
    const corr::JointTableModel truth = worked_model(toy);
    const graph::CoverageIndex cov(toy.graph, toy.paths);

    sim::SimulatorConfig sim_config;
    sim_config.snapshots = s.snapshots;
    sim_config.packets_per_path = s.packets;
    sim_config.mode = sim::PacketMode::kBinomial;
    sim_config.seed = ctx.seed(0x1a00);
    auto simr = sim::simulate(toy.graph, toy.paths, truth, sim_config);
    // The bootstrap resamples the snapshot axis, so keep a scalar copy of
    // the observations alongside the packed measurement block.
    const sim::PathObservations observations = simr.observations();

    McTrial trial;
    try {
      const sim::EmpiricalMeasurement meas(std::move(simr.measurement));
      trial.estimate =
          extract_alphas(core::run_theorem_algorithm(cov, toy.sets, meas));
      trial.valid = true;
    } catch (const Error&) {
      // A pattern the algorithm needs was never observed (tiny
      // --snapshots / unlucky seed); report the trial as unusable
      // instead of aborting the binary.
      return trial;
    }

    // Percentile bootstrap over snapshot resamples. A replicate can fail
    // when a resample leaves a needed pattern unobserved (tiny
    // --snapshots); those replicates are dropped, deterministically.
    std::array<std::vector<double>, kAlphaCount> samples;
    Rng boot_rng(ctx.seed(0x1b00));
    for (std::size_t b = 0; b < replicates; ++b) {
      const auto resampled =
          core::resample_snapshots(observations, boot_rng);
      try {
        const sim::EmpiricalMeasurement meas(resampled);
        const auto alphas =
            extract_alphas(core::run_theorem_algorithm(cov, toy.sets, meas));
        for (std::size_t i = 0; i < kAlphaCount; ++i) {
          samples[i].push_back(alphas[i]);
        }
      } catch (const Error&) {
        // degenerate resample; skip
      }
    }
    for (std::size_t i = 0; i < kAlphaCount; ++i) {
      if (samples[i].empty()) {
        trial.ci_lo[i] = trial.ci_hi[i] = trial.estimate[i];
      } else {
        trial.ci_lo[i] = percentile(samples[i], 5.0);
        trial.ci_hi[i] = percentile(samples[i], 95.0);
      }
    }
    return trial;
  });

  std::array<double, kAlphaCount> est_sum{}, lo_sum{}, hi_sum{};
  double abs_err_sum = 0.0;
  std::size_t valid_trials = 0;
  for (const auto& outcome : outcomes) {
    if (!outcome.value.valid) continue;
    ++valid_trials;
    for (std::size_t i = 0; i < kAlphaCount; ++i) {
      est_sum[i] += outcome.value.estimate[i];
      lo_sum[i] += outcome.value.ci_lo[i];
      hi_sum[i] += outcome.value.ci_hi[i];
      abs_err_sum +=
          std::abs(outcome.value.estimate[i] - kAlphaDefinition[i]);
    }
  }

  std::cout << "\n# §3.2 congestion factors from simulated measurements — "
            << valid_trials << " usable of " << s.trials << " trial(s) x "
            << s.snapshots << " snapshots, 90% bootstrap CI\n";
  if (valid_trials == 0) {
    std::cout << "(no usable trials: every simulation missed a pattern the "
                 "theorem algorithm needs; raise --snapshots)\n";
  } else {
    const double trials = static_cast<double>(valid_trials);
    Table mc_table({"A", "alpha_definition", "alpha_mc_mean", "ci90_lo",
                    "ci90_hi"});
    for (std::size_t i = 0; i < kAlphaCount; ++i) {
      mc_table.add_row({kAlphaNames[i], Table::fmt(kAlphaDefinition[i], 6),
                        Table::fmt(est_sum[i] / trials, 6),
                        Table::fmt(lo_sum[i] / trials, 6),
                        Table::fmt(hi_sum[i] / trials, 6)});
    }
    run.table("monte-carlo congestion factors", mc_table);
    run.metric("alpha_mean_abs_err",
               abs_err_sum / (trials * static_cast<double>(kAlphaCount)));
  }
  run.finish();
  return 0;
}
