// Figure 1 / §3.1-3.2 tables: executable documentation of the paper's
// proof illustration. Prints, for both toy topologies, the ψ coverage
// table of every correlation subset, the Assumption-4 verdict, and (for
// Figure 1(a)) the congestion factors α_A recovered by the theorem
// algorithm next to their definitional values.
#include <iostream>

#include "core/theorem_algorithm.hpp"
#include "corr/identifiability.hpp"
#include "corr/joint_table.hpp"
#include "graph/coverage.hpp"
#include "sim/oracle.hpp"
#include "util/table.hpp"

namespace {

using namespace tomo;

struct Toy {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  corr::CorrelationSets sets;
};

Toy figure_1a() {
  Toy t;
  const auto a = t.graph.add_node("v4"), b = t.graph.add_node("v3");
  const auto c = t.graph.add_node("v1"), d = t.graph.add_node("v4b");
  const auto f = t.graph.add_node("v5");
  const auto e1 = t.graph.add_link(a, b), e2 = t.graph.add_link(d, b);
  const auto e3 = t.graph.add_link(b, c), e4 = t.graph.add_link(b, f);
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e1, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e4});
  t.sets = corr::CorrelationSets(4, {{e1, e2}, {e3}, {e4}});
  return t;
}

Toy figure_1b() {
  Toy t;
  const auto a = t.graph.add_node("v4"), b = t.graph.add_node("v3");
  const auto c = t.graph.add_node("v1"), d = t.graph.add_node("v4b");
  const auto e1 = t.graph.add_link(a, b), e2 = t.graph.add_link(d, b);
  const auto e3 = t.graph.add_link(b, c);
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e1, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e3});
  t.sets = corr::CorrelationSets(3, {{e1, e2}, {e3}});
  return t;
}

std::string link_set_name(const std::vector<graph::LinkId>& links) {
  std::string out = "{";
  for (std::size_t i = 0; i < links.size(); ++i) {
    out += (i ? ",e" : "e") + std::to_string(links[i] + 1);
  }
  return out + "}";
}

std::string path_set_name(const graph::PathIdSet& paths) {
  std::string out = "{";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    out += (i ? ",P" : "P") + std::to_string(paths[i] + 1);
  }
  return out + "}";
}

void psi_table(const Toy& toy, const char* title) {
  const graph::CoverageIndex cov(toy.graph, toy.paths);
  std::cout << "# " << title << "\n";
  Table table({"A in C-tilde", "psi(A)"});
  for (const auto& subset :
       corr::enumerate_correlation_subsets(toy.sets)) {
    table.add_row({link_set_name(subset.links),
                   path_set_name(cov.covered_paths(subset.links))});
  }
  table.print_text(std::cout);
  const auto report = corr::check_identifiability(cov, toy.sets);
  std::cout << "Assumption 4 " << (report.holds ? "HOLDS" : "VIOLATED");
  if (!report.holds) {
    std::cout << " — e.g. " << link_set_name(report.collisions[0].a.links)
              << " and " << link_set_name(report.collisions[0].b.links)
              << " cover the same paths";
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  psi_table(figure_1a(), "Figure 1(a): correlation-subset coverage table");
  psi_table(figure_1b(), "Figure 1(b): correlation-subset coverage table");

  // §3.2: congestion factors on Figure 1(a) with the worked joint model.
  Toy toy = figure_1a();
  corr::SetDistribution d0;
  d0.prob = {0.65, 0.10, 0.05, 0.20};
  corr::SetDistribution d1;
  d1.prob = {0.85, 0.15};
  corr::SetDistribution d2;
  d2.prob = {0.60, 0.40};
  corr::JointTableModel truth(toy.sets, {d0, d1, d2});
  const graph::CoverageIndex cov(toy.graph, toy.paths);
  const sim::OracleMeasurement oracle(truth, cov);
  const core::TheoremResult r =
      core::run_theorem_algorithm(cov, toy.sets, oracle);

  std::cout << "# §3.2 congestion factors on Figure 1(a) — theorem "
               "algorithm vs definition (alpha_A = P(S^p=A)/P(S^p=0))\n";
  Table table({"A", "alpha_recovered", "alpha_definition"});
  const auto row = [&](const char* name, double rec, double def) {
    table.add_row({name, Table::fmt(rec, 6), Table::fmt(def, 6)});
  };
  row("{e1}", r.alpha[0][1], 0.10 / 0.65);
  row("{e2}", r.alpha[0][2], 0.05 / 0.65);
  row("{e1,e2}", r.alpha[0][3], 0.20 / 0.65);
  row("{e3}", r.alpha[1][1], 0.15 / 0.85);
  row("{e4}", r.alpha[2][1], 0.40 / 0.60);
  table.print_text(std::cout);
  return 0;
}
