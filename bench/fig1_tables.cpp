// Figure 1 / §3.1-3.2 tables: executable documentation of the paper's
// proof illustration. Prints, for both toy topologies, the ψ coverage
// table of every correlation subset and the Assumption-4 verdict; then,
// for Figure 1(a), the congestion factors α_A recovered by the theorem
// algorithm from the *exact* oracle next to their definitional values;
// and finally the same factors recovered from *simulated measurements* —
// --trials independent experiments (fanned across --jobs workers) of
// --snapshots snapshots at --packets probes each, with a bootstrap
// confidence interval per factor (--replicates resamples per trial).
//
// With --scenario the binary instead benchmarks the full-pipeline
// bootstrap (core::bootstrap_congestion) on the named registry entry:
// batched vs reference engine at matched seeds, intervals on stdout and
// wall-time/speedup telemetry in the JSON.
#include <array>
#include <cmath>
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/bootstrap.hpp"
#include "core/theorem_algorithm.hpp"
#include "corr/identifiability.hpp"
#include "corr/joint_table.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace tomo;

struct Toy {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  corr::CorrelationSets sets;
};

Toy figure_1a() {
  Toy t;
  const auto a = t.graph.add_node("v4"), b = t.graph.add_node("v3");
  const auto c = t.graph.add_node("v1"), d = t.graph.add_node("v4b");
  const auto f = t.graph.add_node("v5");
  const auto e1 = t.graph.add_link(a, b), e2 = t.graph.add_link(d, b);
  const auto e3 = t.graph.add_link(b, c), e4 = t.graph.add_link(b, f);
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e1, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e4});
  t.sets = corr::CorrelationSets(4, {{e1, e2}, {e3}, {e4}});
  return t;
}

Toy figure_1b() {
  Toy t;
  const auto a = t.graph.add_node("v4"), b = t.graph.add_node("v3");
  const auto c = t.graph.add_node("v1"), d = t.graph.add_node("v4b");
  const auto e1 = t.graph.add_link(a, b), e2 = t.graph.add_link(d, b);
  const auto e3 = t.graph.add_link(b, c);
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e1, e3});
  t.paths.emplace_back(t.graph, std::vector<graph::LinkId>{e2, e3});
  t.sets = corr::CorrelationSets(3, {{e1, e2}, {e3}});
  return t;
}

/// The worked §3.2 joint model on Figure 1(a).
corr::JointTableModel worked_model(const Toy& toy) {
  corr::SetDistribution d0;
  d0.prob = {0.65, 0.10, 0.05, 0.20};
  corr::SetDistribution d1;
  d1.prob = {0.85, 0.15};
  corr::SetDistribution d2;
  d2.prob = {0.60, 0.40};
  return corr::JointTableModel(toy.sets, {d0, d1, d2});
}

constexpr std::size_t kAlphaCount = 5;
constexpr std::array<const char*, kAlphaCount> kAlphaNames = {
    "{e1}", "{e2}", "{e1,e2}", "{e3}", "{e4}"};
// alpha_A = P(S^p=A)/P(S^p=0) per set, from the worked distributions.
constexpr std::array<double, kAlphaCount> kAlphaDefinition = {
    0.10 / 0.65, 0.05 / 0.65, 0.20 / 0.65, 0.15 / 0.85, 0.40 / 0.60};

std::array<double, kAlphaCount> extract_alphas(
    const core::TheoremResult& r) {
  return {r.alpha[0][1], r.alpha[0][2], r.alpha[0][3], r.alpha[1][1],
          r.alpha[2][1]};
}

std::string link_set_name(const std::vector<graph::LinkId>& links) {
  std::string out = "{";
  for (std::size_t i = 0; i < links.size(); ++i) {
    out += (i ? ",e" : "e") + std::to_string(links[i] + 1);
  }
  return out + "}";
}

std::string path_set_name(const graph::PathIdSet& paths) {
  std::string out = "{";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    out += (i ? ",P" : "P") + std::to_string(paths[i] + 1);
  }
  return out + "}";
}

void psi_table(bench::Run& run, const Toy& toy, const char* title) {
  const graph::CoverageIndex cov(toy.graph, toy.paths);
  std::cout << "# " << title << "\n";
  Table table({"A in C-tilde", "psi(A)"});
  for (const auto& subset :
       corr::enumerate_correlation_subsets(toy.sets)) {
    table.add_row({link_set_name(subset.links),
                   path_set_name(cov.covered_paths(subset.links))});
  }
  run.table(title, table);
  const auto report = corr::check_identifiability(cov, toy.sets);
  std::cout << "Assumption 4 " << (report.holds ? "HOLDS" : "VIOLATED");
  if (!report.holds) {
    std::cout << " — e.g. " << link_set_name(report.collisions[0].a.links)
              << " and " << link_set_name(report.collisions[0].b.links)
              << " cover the same paths";
  }
  std::cout << "\n\n";
}

struct McTrial {
  bool valid = false;  // false: the simulation was too degenerate to solve
  std::size_t skipped = 0;  // replicates a degenerate resample dropped
  std::array<double, kAlphaCount> estimate{};
  std::array<double, kAlphaCount> ci_lo{};
  std::array<double, kAlphaCount> ci_hi{};
};

/// Mean upper-lower interval width across links (stdout-safe: fully
/// deterministic for either engine).
double mean_ci_width(const core::BootstrapResult& r) {
  double sum = 0.0;
  for (std::size_t e = 0; e < r.lower.size(); ++e) {
    sum += r.upper[e] - r.lower[e];
  }
  return r.lower.empty() ? 0.0 : sum / static_cast<double>(r.lower.size());
}

/// --scenario mode: full-pipeline bootstrap benchmark on a registry entry.
/// One simulation, then the batched and/or reference engines on the same
/// measurement block at matched seeds. Wall times and the speedup go to
/// the JSON metrics only — stdout is byte-identical for any --jobs, which
/// the CI identity check relies on.
void scenario_bootstrap(bench::Run& run, const bench::Settings& s,
                        std::size_t replicates,
                        const std::string& mode_arg) {
  const bool run_batched = mode_arg == "batched" || mode_arg == "both";
  const bool run_reference = mode_arg == "reference" || mode_arg == "both";
  TOMO_REQUIRE(run_batched || run_reference,
               "unknown --bootstrap-mode: " + mode_arg +
                   " (expected batched|reference|both)");

  core::TrialSpec spec = bench::resolve_trial_spec(
      s, core::ScenarioCatalog::instance().at(s.scenario), 0x5ce0);
  spec.bootstrap.replicates = replicates;
  const core::TrialContext ctx{0, s.seed};
  const core::ScenarioInstance inst =
      core::build_scenario(spec.scenario_for(ctx));
  sim::SimulatorConfig sim_config = spec.sim;
  sim_config.seed = ctx.seed(spec.sim_tag);
  const auto simr =
      sim::simulate(inst.graph, inst.paths, *inst.truth, sim_config);
  const graph::CoverageIndex cov(inst.graph, inst.paths);

  std::cout << "# full-pipeline bootstrap on scenario '" << s.scenario
            << "' — " << replicates << " replicates x "
            << inst.graph.link_count() << " links, "
            << sim_config.snapshots << " snapshots\n";
  Table table(
      {"engine", "replicates", "skipped", "reharvested", "mean_ci_width"});
  const auto run_engine = [&](core::BootstrapMode mode, double& seconds) {
    core::BootstrapOptions boot = spec.bootstrap_for(ctx);
    boot.mode = mode;
    // The replicate fan-out is this mode's whole parallel surface.
    boot.jobs = mode == core::BootstrapMode::kBatched ? s.jobs : 1;
    const Stopwatch timer;
    core::BootstrapResult r =
        core::bootstrap_congestion(inst.graph, inst.paths, cov,
                                   inst.declared_sets, simr.measurement,
                                   boot);
    seconds = timer.seconds();
    table.add_row({core::to_string(mode), std::to_string(r.replicates),
                   std::to_string(r.skipped), std::to_string(r.reharvested),
                   Table::fmt(mean_ci_width(r), 6)});
    return r;
  };

  {
    // Untimed warm-up (page cache, allocator arenas, branch predictors):
    // a short discarded run so neither timed engine pays the process cold
    // start. Stdout is untouched.
    core::BootstrapOptions boot = spec.bootstrap_for(ctx);
    boot.mode = core::BootstrapMode::kBatched;
    boot.jobs = s.jobs;
    boot.replicates = std::max<std::size_t>(2, std::min<std::size_t>(
                                                   replicates, 16));
    core::bootstrap_congestion(inst.graph, inst.paths, cov,
                               inst.declared_sets, simr.measurement, boot);
  }

  std::optional<core::BootstrapResult> batched, reference;
  double batched_seconds = 0.0, reference_seconds = 0.0;
  if (run_batched) batched = run_engine(core::BootstrapMode::kBatched,
                                        batched_seconds);
  if (run_reference) reference = run_engine(core::BootstrapMode::kReference,
                                            reference_seconds);
  run.table("scenario bootstrap", table);

  if (batched) {
    run.metric("bootstrap_batched_seconds", batched_seconds)
        .metric("bootstrap_batched_resample_seconds",
                batched->resample_seconds)
        .metric("bootstrap_skipped",
                static_cast<double>(batched->skipped))
        .metric("bootstrap_reharvested",
                static_cast<double>(batched->reharvested));
  }
  if (reference) {
    run.metric("bootstrap_reference_seconds", reference_seconds)
        .metric("bootstrap_reference_resample_seconds",
                reference->resample_seconds);
  }
  if (batched && reference) {
    run.metric("bootstrap_speedup",
               batched_seconds > 0.0 ? reference_seconds / batched_seconds
                                     : 0.0);
    // Interval agreement between the engines (exact with warm_start off;
    // solver-tolerance-close with the default warm start).
    double max_diff = 0.0;
    for (std::size_t e = 0; e < batched->lower.size(); ++e) {
      max_diff = std::max(max_diff,
                          std::abs(batched->lower[e] - reference->lower[e]));
      max_diff = std::max(max_diff,
                          std::abs(batched->upper[e] - reference->upper[e]));
    }
    run.metric("bootstrap_max_interval_diff", max_diff);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("fig1_tables",
              "Fig 1 / §3.1-3.2: coverage tables and congestion factors");
  bench::add_common_flags(flags);
  flags.add_int("replicates", 1000,
                "bootstrap resamples per trial for the alpha CIs (and per "
                "engine in --scenario mode)");
  flags.add_string("bootstrap-mode", "both",
                   "--scenario mode engines to run: batched|reference|both");
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  const std::size_t replicates =
      static_cast<std::size_t>(flags.get_int("replicates"));
  bench::Run run("fig1_tables", s);

  if (!s.scenario.empty()) {
    // Registry mode: the toys below describe two fixed four-node
    // topologies, so a --scenario invocation benchmarks the full-pipeline
    // bootstrap on the named entry instead.
    scenario_bootstrap(run, s, replicates,
                       flags.get_string("bootstrap-mode"));
    run.finish();
    return 0;
  }

  psi_table(run, figure_1a(),
            "Figure 1(a): correlation-subset coverage table");
  psi_table(run, figure_1b(),
            "Figure 1(b): correlation-subset coverage table");

  // §3.2: congestion factors on Figure 1(a) with the worked joint model,
  // recovered from the exact oracle (no sampling error).
  {
    const Toy toy = figure_1a();
    const corr::JointTableModel truth = worked_model(toy);
    const graph::CoverageIndex cov(toy.graph, toy.paths);
    const sim::OracleMeasurement oracle(truth, cov);
    const core::TheoremResult r =
        core::run_theorem_algorithm(cov, toy.sets, oracle);
    const auto recovered = extract_alphas(r);

    std::cout << "# §3.2 congestion factors on Figure 1(a) — theorem "
                 "algorithm vs definition (alpha_A = P(S^p=A)/P(S^p=0))\n";
    Table table({"A", "alpha_recovered", "alpha_definition"});
    for (std::size_t i = 0; i < kAlphaCount; ++i) {
      table.add_row({kAlphaNames[i], Table::fmt(recovered[i], 6),
                     Table::fmt(kAlphaDefinition[i], 6)});
    }
    run.table("oracle congestion factors", table);
  }

  // The same recovery from simulated measurements: each trial simulates
  // --snapshots snapshots of the worked model, runs the theorem algorithm
  // on the empirical pattern probabilities, and bootstraps the snapshot
  // axis for a 90% CI per factor. Trials are independent and fan across
  // --jobs workers; aggregation is in trial order, so the table below is
  // identical for any --jobs.
  const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
    const Toy toy = figure_1a();
    const corr::JointTableModel truth = worked_model(toy);
    const graph::CoverageIndex cov(toy.graph, toy.paths);

    sim::SimulatorConfig sim_config;
    sim_config.snapshots = s.snapshots;
    sim_config.packets_per_path = s.packets;
    sim_config.mode = sim::PacketMode::kBinomial;
    sim_config.seed = ctx.seed(0x1a00);
    auto simr = sim::simulate(toy.graph, toy.paths, truth, sim_config);
    // The bootstrap resamples the packed block directly (word-level
    // gathers); keep it alongside the measurement that adopts it.
    const sim::MeasurementBlock block = simr.measurement;

    McTrial trial;
    try {
      const sim::EmpiricalMeasurement meas(std::move(simr.measurement));
      trial.estimate =
          extract_alphas(core::run_theorem_algorithm(cov, toy.sets, meas));
      trial.valid = true;
    } catch (const Error&) {
      // A pattern the algorithm needs was never observed (tiny
      // --snapshots / unlucky seed); report the trial as unusable
      // instead of aborting the binary.
      return trial;
    }

    // Percentile bootstrap over snapshot resamples, through the batched
    // resample engine: replicate r always draws from
    // replicate_rng(ctx.seed(0x1b00), r), so the sweep is identical for
    // any fan-out — and with a single trial the replicates themselves
    // spread across --jobs. Replicates that leave a needed pattern
    // unobserved are dropped *and counted* (JSON telemetry below).
    const auto replicate_alphas = core::resample_sweep(
        block, replicates, ctx.seed(0x1b00), s.trials == 1 ? s.jobs : 1,
        [&](const sim::EmpiricalMeasurement& meas) {
          return extract_alphas(
              core::run_theorem_algorithm(cov, toy.sets, meas));
        });
    std::array<std::vector<double>, kAlphaCount> samples;
    for (const auto& alphas : replicate_alphas) {
      if (!alphas) {
        ++trial.skipped;
        continue;
      }
      for (std::size_t i = 0; i < kAlphaCount; ++i) {
        samples[i].push_back((*alphas)[i]);
      }
    }
    for (std::size_t i = 0; i < kAlphaCount; ++i) {
      if (samples[i].empty()) {
        trial.ci_lo[i] = trial.ci_hi[i] = trial.estimate[i];
      } else {
        const Interval interval = percentile_pair(samples[i], 5.0, 95.0);
        trial.ci_lo[i] = interval.lo;
        trial.ci_hi[i] = interval.hi;
      }
    }
    return trial;
  });

  std::array<double, kAlphaCount> est_sum{}, lo_sum{}, hi_sum{};
  double abs_err_sum = 0.0;
  std::size_t valid_trials = 0, skipped_total = 0;
  for (const auto& outcome : outcomes) {
    if (!outcome.value.valid) continue;
    ++valid_trials;
    skipped_total += outcome.value.skipped;
    for (std::size_t i = 0; i < kAlphaCount; ++i) {
      est_sum[i] += outcome.value.estimate[i];
      lo_sum[i] += outcome.value.ci_lo[i];
      hi_sum[i] += outcome.value.ci_hi[i];
      abs_err_sum +=
          std::abs(outcome.value.estimate[i] - kAlphaDefinition[i]);
    }
  }
  const std::size_t attempted = replicates * valid_trials;
  if (skipped_total * 10 > attempted) {
    std::cerr << "fig1_tables: warning: " << skipped_total << " of "
              << attempted << " bootstrap replicates were degenerate and "
              << "dropped; the alpha CIs rest on a thinned sample\n";
  }

  std::cout << "\n# §3.2 congestion factors from simulated measurements — "
            << valid_trials << " usable of " << s.trials << " trial(s) x "
            << s.snapshots << " snapshots, 90% bootstrap CI\n";
  if (valid_trials == 0) {
    std::cout << "(no usable trials: every simulation missed a pattern the "
                 "theorem algorithm needs; raise --snapshots)\n";
  } else {
    const double trials = static_cast<double>(valid_trials);
    Table mc_table({"A", "alpha_definition", "alpha_mc_mean", "ci90_lo",
                    "ci90_hi"});
    for (std::size_t i = 0; i < kAlphaCount; ++i) {
      mc_table.add_row({kAlphaNames[i], Table::fmt(kAlphaDefinition[i], 6),
                        Table::fmt(est_sum[i] / trials, 6),
                        Table::fmt(lo_sum[i] / trials, 6),
                        Table::fmt(hi_sum[i] / trials, 6)});
    }
    run.table("monte-carlo congestion factors", mc_table);
    run.metric("alpha_mean_abs_err",
               abs_err_sum / (trials * static_cast<double>(kAlphaCount)));
    run.metric("bootstrap_replicates", static_cast<double>(attempted));
    run.metric("bootstrap_skipped_replicates",
               static_cast<double>(skipped_total));
  }
  run.finish();
  return 0;
}
