// Shared plumbing for the figure-reproduction binaries: common flags,
// scenario scaling, and multi-trial averaging.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace tomo::bench {

struct Settings {
  bool full = false;
  bool csv = false;
  std::size_t snapshots = 2000;
  std::size_t packets = 4000;
  std::size_t trials = 3;
  std::uint64_t seed = 1;
};

/// Registers the flags every experiment binary shares. Defaults come from
/// a default-constructed Settings so --help always matches behavior.
inline void add_common_flags(Flags& flags) {
  const Settings defaults;
  flags.add_bool("full", defaults.full,
                 "paper-scale topologies (slower; shapes are identical)");
  flags.add_bool("csv", defaults.csv, "emit CSV instead of an aligned table");
  flags.add_int("snapshots", static_cast<std::int64_t>(defaults.snapshots),
                "snapshots per experiment");
  flags.add_int("packets", static_cast<std::int64_t>(defaults.packets),
                "probe packets per path per snapshot");
  flags.add_int("trials", static_cast<std::int64_t>(defaults.trials),
                "independent trials averaged per data point");
  flags.add_int("seed", static_cast<std::int64_t>(defaults.seed),
                "base RNG seed");
}

inline Settings settings_from_flags(const Flags& flags) {
  Settings s;
  s.full = flags.get_bool("full");
  s.csv = flags.get_bool("csv");
  s.snapshots = static_cast<std::size_t>(flags.get_int("snapshots"));
  s.packets = static_cast<std::size_t>(flags.get_int("packets"));
  s.trials = static_cast<std::size_t>(flags.get_int("trials"));
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  return s;
}

/// Applies the scale knobs (default vs --full paper scale) to a scenario.
inline void apply_scale(core::ScenarioConfig& config, const Settings& s) {
  if (s.full) {
    config.as_nodes = 320;
    config.as_endpoints = 40;     // ~1500 ordered-pair paths
    config.routers = 700;
    config.vantage_points = 40;
  } else {
    config.as_nodes = 60;
    config.as_endpoints = 16;
    config.routers = 150;
    config.vantage_points = 14;
  }
}

inline core::ExperimentConfig experiment_config(const Settings& s,
                                                std::uint64_t trial) {
  core::ExperimentConfig config;
  config.sim.snapshots = s.snapshots;
  config.sim.packets_per_path = s.packets;
  config.sim.mode = sim::PacketMode::kBinomial;
  config.sim.seed = mix_seed(s.seed, 0x51000 + trial);
  return config;
}

inline void emit(const Table& table, const Settings& s) {
  if (s.csv) {
    table.print_csv(std::cout);
  } else {
    table.print_text(std::cout);
  }
}

}  // namespace tomo::bench
