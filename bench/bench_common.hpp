// Shared plumbing for the figure-reproduction binaries: common flags,
// scenario scaling, the parallel trial engine, and result emission
// (aligned table / CSV on stdout, JSON telemetry on request).
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/run_trials.hpp"
#include "core/scenario_catalog.hpp"
#include "core/trial_spec.hpp"
#include "util/bitops.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace tomo::bench {

struct Settings {
  bool full = false;
  bool csv = false;
  std::size_t snapshots = 2000;
  std::size_t packets = 4000;
  /// Raised from the historical 3 once trials parallelized across the
  /// pool (PR 8): 8 trials tighten the confidence intervals at roughly
  /// the wall cost 3 serial trials used to pay. docs/REPRODUCING.md's
  /// measured runtimes assume this default.
  std::size_t trials = 8;
  std::size_t jobs = 0;  // trial-level parallelism; 0 = all hardware cores
  std::uint64_t seed = 1;
  /// JSON telemetry destination: "" disables, "auto" writes
  /// BENCH_<name>.json in the working directory, anything else is a path.
  std::string json;
  /// Named registry scenario (see `tomo_scenarios --list`); "" keeps the
  /// binary's built-in workload.
  std::string scenario;
  /// Simulator packet mode (sim::parse_packet_mode names). "batched" is
  /// the block-parallel engine; "batched-ref" its scalar differential
  /// reference; "binomial"/"per-packet"/"exact" the legacy per-snapshot
  /// engines.
  std::string sim_mode = "batched";
};

/// Registers the flags every experiment binary shares. Defaults come from
/// a default-constructed Settings so --help always matches behavior.
inline void add_common_flags(Flags& flags) {
  const Settings defaults;
  flags.add_bool("full", defaults.full,
                 "paper-scale topologies (slower; shapes are identical)");
  flags.add_bool("csv", defaults.csv, "emit CSV instead of an aligned table");
  flags.add_int("snapshots", static_cast<std::int64_t>(defaults.snapshots),
                "snapshots per experiment");
  flags.add_int("packets", static_cast<std::int64_t>(defaults.packets),
                "probe packets per path per snapshot");
  flags.add_int("trials", static_cast<std::int64_t>(defaults.trials),
                "independent trials averaged per data point");
  flags.add_int("jobs", static_cast<std::int64_t>(defaults.jobs),
                "worker threads for trials (0 = all hardware cores); "
                "results are identical for any value");
  flags.add_int("seed", static_cast<std::int64_t>(defaults.seed),
                "base RNG seed");
  flags.add_string("json", defaults.json,
                   "write JSON telemetry: 'auto' = BENCH_<name>.json, else "
                   "a path; empty disables");
  flags.add_string("scenario", defaults.scenario,
                   "registry scenario replacing the binary's built-in "
                   "topology/correlation setup (tomo_scenarios --list; the "
                   "binary's swept knob still applies)");
  flags.add_string("sim-mode", defaults.sim_mode,
                   "simulator packet mode: batched (block-parallel, "
                   "default), batched-ref (scalar reference), binomial, "
                   "per-packet, exact");
}

inline Settings settings_from_flags(const Flags& flags) {
  Settings s;
  s.full = flags.get_bool("full");
  s.csv = flags.get_bool("csv");
  s.snapshots = static_cast<std::size_t>(flags.get_int("snapshots"));
  s.packets = static_cast<std::size_t>(flags.get_int("packets"));
  s.trials = static_cast<std::size_t>(flags.get_int("trials"));
  s.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  s.json = flags.get_string("json");
  s.scenario = flags.get_string("scenario");
  if (!s.scenario.empty()) {
    core::ScenarioCatalog::instance().at(s.scenario);  // fail fast on typos
  }
  s.sim_mode = flags.get_string("sim-mode");
  sim::parse_packet_mode(s.sim_mode);  // fail fast on typos
  return s;
}

/// Applies the scale knobs (default vs --full paper scale) to a scenario.
inline void apply_scale(core::ScenarioConfig& config, const Settings& s) {
  if (s.full) {
    config.as_nodes = 320;
    config.as_endpoints = 40;     // ~1500 ordered-pair paths
    config.routers = 700;
    config.vantage_points = 40;
  } else {
    config.as_nodes = 60;
    config.as_endpoints = 16;
    config.routers = 150;
    config.vantage_points = 14;
  }
}

/// --full upscaling for catalog scenarios: multiplies every scale knob by
/// the default→paper ratio of apply_scale, so an entry's relative density
/// choices (dense/sparse vantage points, node count) are preserved.
inline void scale_to_paper(core::ScenarioConfig& config) {
  const auto scale = [](std::size_t value, double factor) {
    return static_cast<std::size_t>(
        std::llround(static_cast<double>(value) * factor));
  };
  config.as_nodes = scale(config.as_nodes, 320.0 / 60.0);
  config.as_endpoints = scale(config.as_endpoints, 40.0 / 16.0);
  config.routers = scale(config.routers, 700.0 / 150.0);
  config.vantage_points = scale(config.vantage_points, 40.0 / 14.0);
}

/// Resolves the trial's base scenario. With --scenario, the named catalog
/// entry defines topology, correlation structure, and scale (--full
/// upscales it proportionally); without it, the binary's hard-coded
/// fallback topology/level at the standard default/--full scale —
/// byte-identical to the pre-registry behaviour. Callers still set their
/// swept knobs (congested fraction, unidentifiable fraction, ...) and the
/// per-trial seed on the returned config.
inline core::ScenarioConfig resolve_scenario(
    const Settings& s, core::TopologyKind fallback_topology,
    core::CorrelationLevel fallback_level = core::CorrelationLevel::kHigh) {
  if (!s.scenario.empty()) {
    core::ScenarioConfig config =
        core::ScenarioCatalog::instance().at(s.scenario).config;
    if (s.full) scale_to_paper(config);
    return config;
  }
  core::ScenarioConfig config;
  config.topology = fallback_topology;
  config.level = fallback_level;
  apply_scale(config, s);
  return config;
}

/// Fills the non-scenario half of a TrialSpec from the shared settings.
/// With a single trial the trial-level pool would sit idle, so --jobs is
/// handed down to the batched simulator's block fan-out, the pair-candidate
/// evaluation, the solver's Gram build, and the bootstrap's replicate
/// fan-out instead — all of which merge deterministically, so stdout stays
/// byte-identical for any value.
inline void apply_trial_settings(core::TrialSpec& spec, const Settings& s) {
  spec.sim.snapshots = s.snapshots;
  spec.sim.packets_per_path = s.packets;
  spec.sim.mode = sim::parse_packet_mode(s.sim_mode);
  if (s.trials == 1) {
    spec.sim.jobs = s.jobs;
    spec.inference.equations.jobs = s.jobs;
    spec.inference.solver.jobs = s.jobs;
    spec.bootstrap.jobs = s.jobs;
  }
}

/// The resolved spec for a binary's workload: scenario from --scenario (or
/// the binary's fallback topology/level), sim knobs from the shared flags.
/// `scenario_tag` preserves each binary's historical seed stream. Callers
/// still set their swept knobs (congested fraction, ...) on spec.scenario.
inline core::TrialSpec resolve_trial_spec(
    const Settings& s, std::uint64_t scenario_tag,
    core::TopologyKind fallback_topology,
    core::CorrelationLevel fallback_level = core::CorrelationLevel::kHigh) {
  core::TrialSpec spec;
  spec.scenario = resolve_scenario(s, fallback_topology, fallback_level);
  spec.scenario_tag = scenario_tag;
  apply_trial_settings(spec, s);
  return spec;
}

/// Spec for a specific catalog entry (the registry front-end's path).
inline core::TrialSpec resolve_trial_spec(const Settings& s,
                                          const core::CatalogEntry& entry,
                                          std::uint64_t scenario_tag) {
  core::TrialSpec spec;
  spec.scenario = entry.config;
  if (s.full) scale_to_paper(spec.scenario);
  spec.scenario_tag = scenario_tag;
  apply_trial_settings(spec, s);
  return spec;
}

inline void emit(const Table& table, const Settings& s) {
  if (s.csv) {
    table.print_csv(std::cout);
  } else {
    table.print_text(std::cout);
  }
}

/// One bench invocation: wraps the trial engine and records everything a
/// future run needs to compare against — settings, per-trial wall times,
/// every emitted table, and scalar summary metrics — then serializes it
/// to BENCH_<name>.json when --json is set.
///
/// The stdout tables stay byte-identical across --jobs values (callers
/// reduce trial outcomes in index order); wall times live only in the
/// JSON, which is telemetry, not metric output.
class Run {
 public:
  Run(std::string name, Settings settings)
      : name_(std::move(name)), settings_(std::move(settings)) {}

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  ~Run() {
    try {
      finish();
    } catch (...) {
      // Destructors must not throw; an explicit finish() reports errors.
    }
  }

  const Settings& settings() const { return settings_; }

  /// Fans `--trials` independent executions of `body` across `--jobs`
  /// workers; returns outcomes in trial order and records their wall
  /// times. May be called once per data point (series benches) or once
  /// per binary.
  template <typename Body>
  auto trials(Body&& body) {
    auto outcomes = core::run_trials(settings_.trials, settings_.jobs,
                                     settings_.seed, std::forward<Body>(body));
    for (const auto& outcome : outcomes) {
      trial_seconds_.push_back(outcome.seconds);
    }
    return outcomes;
  }

  /// Batched sweep for series benches: every (point, trial) pair runs as
  /// one flattened job across `--jobs` workers instead of one barriered
  /// trials() call per point — a slow trial of point 0 overlaps with
  /// point 5's work instead of stalling the whole sweep. body(point, ctx)
  /// receives exactly the TrialContext a per-point trials() call would
  /// hand it (trial seeds do not depend on the point index), and outcomes
  /// come back grouped by point in trial order, so callers' reductions —
  /// and hence stdout — are byte-identical to the sequential per-point
  /// loop for any --jobs.
  template <typename Body>
  auto sweep(std::size_t points, Body&& body) {
    using R = decltype(body(std::size_t{0},
                            std::declval<const core::TrialContext&>()));
    std::vector<std::vector<core::Trial<R>>> out(points);
    for (auto& per_point : out) per_point.resize(settings_.trials);
    util::parallel_for(
        settings_.jobs, points * settings_.trials, [&](std::size_t k) {
          const std::size_t point = k / settings_.trials;
          const std::size_t trial = k % settings_.trials;
          const core::TrialContext ctx{trial, settings_.seed};
          const Stopwatch stopwatch;
          out[point][trial].value = body(point, ctx);
          out[point][trial].seconds = stopwatch.seconds();
          out[point][trial].index = trial;
        });
    // Wall times recorded point-major, matching what per-point trials()
    // calls would have written.
    for (const auto& per_point : out) {
      for (const auto& outcome : per_point) {
        trial_seconds_.push_back(outcome.seconds);
      }
    }
    return out;
  }

  /// Emits the table to stdout (honoring --csv) and records it for JSON.
  void table(const std::string& label, const Table& t) {
    emit(t, settings_);
    util::Json rows = util::Json::array();
    for (std::size_t i = 0; i < t.rows(); ++i) {
      rows.push(util::Json::array_of(t.row(i)));
    }
    tables_.push(util::Json::object()
                     .set("label", label)
                     .set("header", util::Json::array_of(t.header()))
                     .set("rows", std::move(rows)));
  }

  /// Records a scalar summary metric (e.g. an overall mean error).
  Run& metric(const std::string& key, double value) {
    metrics_.set(key, value);
    return *this;
  }

  /// Records a free-form JSON annotation (e.g. per-trial solver detail
  /// strings). Telemetry only — annotations never reach stdout, so tables
  /// stay byte-comparable.
  Run& annotation(const std::string& key, util::Json value) {
    annotations_.set(key, std::move(value));
    return *this;
  }

  /// Writes BENCH_<name>.json (or the explicit --json path). Idempotent;
  /// called from the destructor as a safety net.
  void finish() {
    if (finished_) return;
    finished_ = true;
    if (settings_.json.empty()) return;
    const std::string path =
        settings_.json == "auto" ? "BENCH_" + name_ + ".json" : settings_.json;
    util::Json doc = util::Json::object();
    doc.set("name", name_)
        // 2: added the scenario descriptor; 3: annotations object
        // (per-trial solver detail) + *_solve_seconds metrics; 4: sim_mode
        // setting + *_sim_seconds metrics; 5: bitops_kernel setting +
        // *_resample_seconds metrics.
        .set("schema_version", 5)
        .set("settings", util::Json::object()
                             .set("full", settings_.full)
                             .set("csv", settings_.csv)
                             .set("snapshots", settings_.snapshots)
                             .set("packets", settings_.packets)
                             .set("trials", settings_.trials)
                             .set("jobs", settings_.jobs)
                             .set("jobs_resolved",
                                  util::resolve_jobs(settings_.jobs))
                             .set("seed", settings_.seed)
                             .set("scenario", settings_.scenario)
                             .set("sim_mode", settings_.sim_mode)
                             // Telemetry for cross-run comparison: which
                             // bit-kernel table the run dispatched to
                             // (JSON only — never printed to stdout).
                             .set("bitops_kernel",
                                  std::string(util::bitops::active().name)))
        .set("scenario", scenario_descriptor())
        .set("trials_run", trial_seconds_.size())
        .set("trial_seconds", util::Json::array_of(trial_seconds_))
        .set("total_seconds", total_.seconds())
        .set("metrics", std::move(metrics_))
        .set("annotations", std::move(annotations_))
        .set("tables", std::move(tables_));
    std::ofstream out(path);
    TOMO_REQUIRE(out.good(), "cannot open JSON telemetry path: " + path);
    doc.write(out);
    // Telemetry note goes to stderr so stdout stays byte-comparable.
    std::cerr << name_ << ": wrote " << path << "\n";
  }

 private:
  /// The resolved registry entry: name, lineage, and the *base* config
  /// after --full scaling — the binary's swept/fixed knobs (congested
  /// fraction, unidentifiable fraction, ...) are applied per data point on
  /// top of it and show up in the tables, not here. The binary's built-in
  /// workload is recorded as such.
  util::Json scenario_descriptor() const {
    if (settings_.scenario.empty()) {
      return util::Json::object().set("name", "(binary default)");
    }
    const core::CatalogEntry& entry =
        core::ScenarioCatalog::instance().at(settings_.scenario);
    core::ScenarioConfig resolved = entry.config;
    if (settings_.full) scale_to_paper(resolved);
    return util::Json::object()
        .set("name", entry.name)
        .set("figure", entry.figure)
        .set("summary", entry.summary)
        .set("base_config", core::scenario_json(resolved));
  }

  std::string name_;
  Settings settings_;
  Stopwatch total_;
  std::vector<double> trial_seconds_;
  util::Json tables_ = util::Json::array();
  util::Json metrics_ = util::Json::object();
  util::Json annotations_ = util::Json::object();
  bool finished_ = false;
};

}  // namespace tomo::bench
