// Extension experiment (paper §3.3 "determine whether a link was congested"
// and its stated future work): per-snapshot congested-link localization.
//
// Compares three localizers over simulated snapshots:
//   smallest-set            — the [13]-style parsimony heuristic
//   greedy MAP (independent) — probability-guided, probabilities from the
//                              independence baseline
//   greedy MAP (correlation) — probabilities from the correlation algorithm
//
// Reported: detection rate (fraction of truly congested links flagged) and
// false-discovery rate (fraction of flagged links that were good).
#include <iostream>

#include "bench_common.hpp"
#include "core/independence_algorithm.hpp"
#include "core/localization.hpp"
#include "sim/measurement.hpp"

namespace {

struct Tally {
  std::size_t tp = 0, fp = 0, fn = 0;

  Tally& operator+=(const Tally& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }
};

struct TrialTallies {
  Tally smallest, map_ind, map_corr;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("localization_accuracy",
              "per-snapshot localization: smallest-set vs MAP variants");
  bench::add_common_flags(flags);
  flags.add_int("eval-snapshots", 300,
                "snapshots localized and scored per trial");
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  const std::size_t eval_snapshots =
      static_cast<std::size_t>(flags.get_int("eval-snapshots"));
  bench::Run run("localization_accuracy", s);

  const auto add = [](Tally& t, const core::LocalizationScore& score) {
    t.tp += score.true_positives;
    t.fp += score.false_positives;
    t.fn += score.false_negatives;
  };

  const core::TrialSpec base =
      bench::resolve_trial_spec(s, 0x10c0, core::TopologyKind::kPlanetLab);
  const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
    core::TrialSpec spec = base;
    spec.scenario.congested_fraction = 0.10;
    const auto inst = core::build_scenario(spec.scenario_for(ctx));
    const graph::CoverageIndex coverage(inst.graph, inst.paths);

    // Estimate probabilities from a training run, then localize snapshots
    // of an independent evaluation run.
    const auto training = core::run_experiment(inst, spec.experiment_for(ctx));

    TrialTallies tallies;
    Rng rng(ctx.seed(0x20c0));
    for (std::size_t n = 0; n < eval_snapshots; ++n) {
      const auto state = inst.truth->sample(rng);
      graph::PathIdSet congested;
      for (graph::PathId p = 0; p < inst.paths.size(); ++p) {
        for (graph::LinkId e : inst.paths[p].links()) {
          if (state[e]) {
            congested.push_back(p);
            break;
          }
        }
      }
      const auto ss = core::localize_smallest_set(coverage, congested);
      const auto mi = core::localize_greedy_map(
          coverage, congested, training.independence.congestion_prob);
      const auto mc = core::localize_greedy_map(
          coverage, congested, training.correlation.congestion_prob);
      add(tallies.smallest, core::score_localization(state, ss.congested_links));
      add(tallies.map_ind, core::score_localization(state, mi.congested_links));
      add(tallies.map_corr, core::score_localization(state, mc.congested_links));
    }
    return tallies;
  });
  Tally smallest, map_ind, map_corr;
  for (const auto& outcome : outcomes) {
    smallest += outcome.value.smallest;
    map_ind += outcome.value.map_ind;
    map_corr += outcome.value.map_corr;
  }

  auto row = [&](const char* name, const Tally& t) {
    const double detection =
        t.tp + t.fn == 0
            ? 1.0
            : static_cast<double>(t.tp) / static_cast<double>(t.tp + t.fn);
    const double fdr =
        t.tp + t.fp == 0
            ? 0.0
            : static_cast<double>(t.fp) / static_cast<double>(t.tp + t.fp);
    return std::vector<std::string>{name, Table::fmt(detection, 3),
                                    Table::fmt(fdr, 3)};
  };
  Table table({"localizer", "detection_rate", "false_discovery_rate"});
  std::cout << "# Localization — per-snapshot congested-link inference "
               "(PlanetLab-like, 10% congested, high correlation)\n";
  table.add_row(row("smallest-set", smallest));
  table.add_row(row("greedy-map-independent", map_ind));
  table.add_row(row("greedy-map-correlation", map_corr));
  run.table("localization_accuracy", table);
  run.finish();
  return 0;
}
