// Ablation: bursty (Gilbert) congestion vs. memoryless congestion.
//
// The paper's Assumption 3 requires stationarity, not independence across
// snapshots. This ablation drives the same marginal law through a Gilbert
// chain with increasing burst length and shows that both algorithms remain
// consistent — convergence just slows, because dependent snapshots carry
// less information per sample.
#include <iostream>

#include "bench_common.hpp"
#include "core/independence_algorithm.hpp"
#include "corr/model_factory.hpp"
#include "metrics/error_metrics.hpp"
#include "sim/measurement.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("ablation_burstiness",
              "Gilbert bursty congestion vs memoryless (Assumption 3)");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("ablation_burstiness", s);

  Table table({"burst_length", "correlation_mean_err",
               "independence_mean_err"});
  std::cout << "# Ablation — mean burst length of congestion episodes "
               "(same stationary marginals; 10% congested, PlanetLab)\n";
  const core::TrialSpec base =
      bench::resolve_trial_spec(s, 0xb0, core::TopologyKind::kPlanetLab);
  const std::vector<double> bursts{1.0, 4.0, 16.0, 64.0};
  const auto swept = run.sweep(
      bursts.size(), [&](std::size_t point, const core::TrialContext& ctx) {
        const double burst = bursts[point];
        core::TrialSpec spec = base;
        spec.scenario.congested_fraction = 0.10;
        const auto inst = core::build_scenario(spec.scenario_for(ctx));

        // Rebuild the scenario's shock model as a Gilbert model with the
        // same marginals: bursty where the original was correlated.
        std::vector<double> congested_marginals;
        congested_marginals.reserve(inst.congested_links.size());
        for (graph::LinkId e : inst.congested_links) {
          congested_marginals.push_back(inst.true_marginals[e]);
        }
        const auto truth_ptr = corr::make_clustered_gilbert_model(
            inst.declared_sets, inst.congested_links, congested_marginals,
            spec.scenario.correlation_strength, burst);
        const corr::GilbertShockModel& truth = *truth_ptr;

        const core::ExperimentConfig config = spec.experiment_for(ctx);
        const graph::CoverageIndex coverage(inst.graph, inst.paths);
        auto simr =
            sim::simulate(inst.graph, inst.paths, truth, config.sim);
        const sim::EmpiricalMeasurement meas(std::move(simr.measurement));
        const auto rc = core::infer_congestion(
            inst.graph, inst.paths, coverage, inst.declared_sets, meas);
        const auto ri = core::infer_congestion_independent(
            inst.graph, inst.paths, coverage, meas);
        const auto truth_marginals = truth.marginals();
        return std::pair(
            mean(metrics::absolute_errors(truth_marginals,
                                          rc.congestion_prob, {})),
            mean(metrics::absolute_errors(truth_marginals,
                                          ri.congestion_prob, {})));
      });
  for (std::size_t point = 0; point < bursts.size(); ++point) {
    double corr_sum = 0.0, ind_sum = 0.0;
    for (const auto& outcome : swept[point]) {
      corr_sum += outcome.value.first;
      ind_sum += outcome.value.second;
    }
    table.add_row({Table::fmt(bursts[point], 0),
                   Table::fmt(corr_sum / s.trials),
                   Table::fmt(ind_sum / s.trials)});
  }
  run.table("ablation_burstiness", table);
  run.finish();
  return 0;
}
