// Ablation: how much does the choice of solver for the log-domain system
// matter? Runs the Fig 3(c) scenario with each of the four solvers.
#include <iostream>

#include "bench_common.hpp"
#include "core/independence_algorithm.hpp"
#include "sim/measurement.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("ablation_solver",
              "solver ablation on the Fig 3(c) scenario");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);

  Table table({"solver", "correlation_mean_err", "correlation_p90_err",
               "solve_seconds"});
  std::cout << "# Ablation — solver choice (10% congested, high "
               "correlation, Brite)\n";
  for (const auto solver :
       {linalg::SolverKind::kNnls, linalg::SolverKind::kLeastSquares,
        linalg::SolverKind::kL1Lp, linalg::SolverKind::kIrls}) {
    double mean_sum = 0.0, p90_sum = 0.0, seconds = 0.0;
    for (std::size_t trial = 0; trial < s.trials; ++trial) {
      core::ScenarioConfig scenario;
      scenario.topology = core::TopologyKind::kBrite;
      bench::apply_scale(scenario, s);
      scenario.congested_fraction = 0.10;
      scenario.seed = mix_seed(s.seed, 0xab10 + trial);
      const auto inst = core::build_scenario(scenario);
      core::ExperimentConfig config = bench::experiment_config(s, trial);
      config.inference.solver = solver;
      Stopwatch sw;
      const auto result = core::run_experiment(inst, config);
      seconds += sw.seconds();
      mean_sum += mean(result.correlation_errors());
      p90_sum += percentile(result.correlation_errors(), 90.0);
    }
    table.add_row({linalg::to_string(solver),
                   Table::fmt(mean_sum / s.trials),
                   Table::fmt(p90_sum / s.trials),
                   Table::fmt(seconds / s.trials, 3)});
  }
  bench::emit(table, s);
  return 0;
}
