// Ablation: how much does the choice of solver for the log-domain system
// matter? Runs the Fig 3(c) scenario with each of the four solvers.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "core/independence_algorithm.hpp"
#include "sim/measurement.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tomo;
  Flags flags("ablation_solver",
              "solver ablation on the Fig 3(c) scenario");
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("ablation_solver", s);

  // Per-solver wall times go to the JSON metrics, not this table: stdout
  // must stay byte-identical across --jobs, and timings are not.
  Table table({"solver", "correlation_mean_err", "correlation_p90_err"});
  std::cout << "# Ablation — solver choice (10% congested, high "
               "correlation, Brite)\n";
  const core::TrialSpec base =
      bench::resolve_trial_spec(s, 0xab10, core::TopologyKind::kBrite);
  for (const auto solver :
       {linalg::SolverKind::kNnls, linalg::SolverKind::kLeastSquares,
        linalg::SolverKind::kL1Lp, linalg::SolverKind::kIrls}) {
    const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
      core::TrialSpec spec = base;
      spec.scenario.congested_fraction = 0.10;
      spec.inference.solver.kind = solver;
      const Stopwatch stopwatch;
      const auto trial = spec.run(ctx);
      const double seconds = stopwatch.seconds();
      const auto& result = trial.result;
      return std::array<double, 3>{mean(result.correlation_errors()),
                                   percentile(result.correlation_errors(),
                                              90.0),
                                   seconds};
    });
    double mean_sum = 0.0, p90_sum = 0.0, seconds = 0.0;
    for (const auto& outcome : outcomes) {
      mean_sum += outcome.value[0];
      p90_sum += outcome.value[1];
      seconds += outcome.value[2];
    }
    table.add_row({linalg::to_string(solver),
                   Table::fmt(mean_sum / s.trials),
                   Table::fmt(p90_sum / s.trials)});
    run.metric(std::string("solve_seconds_") + linalg::to_string(solver),
               seconds / static_cast<double>(s.trials));
  }
  run.table("ablation_solver", table);
  run.finish();
  return 0;
}
