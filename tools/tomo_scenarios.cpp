// Scenario registry front-end: lists every named scenario and runs any of
// them end to end (build topology → simulate → correlation + independence
// algorithms → error summary), on the same shared flags as the bench
// binaries. `--list` is the default; `--scenario <name>` runs one entry,
// `--all` runs the whole catalog. Stdout is byte-identical for any --jobs.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sharded_inference.hpp"
#include "metrics/error_metrics.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace tomo;

std::string special_knobs(const core::ScenarioConfig& c) {
  std::string out;
  const auto append = [&out](const std::string& part) {
    out += out.empty() ? part : " " + part;
  };
  if (c.burst_length > 1.0) {
    append("burst=" + Table::fmt(c.burst_length, 0));
  }
  if (c.unidentifiable_fraction > 0.0) {
    append("unident=" + Table::fmt(100.0 * c.unidentifiable_fraction, 0) +
           "%");
  }
  if (c.mislabeled_fraction > 0.0) {
    append("worm=" + Table::fmt(100.0 * c.mislabeled_fraction, 0) + "%");
  }
  return out.empty() ? "-" : out;
}

void list_catalog(bench::Run& run) {
  Table table({"scenario", "topology", "correlation", "vps", "cluster",
               "special", "descends_from"});
  for (const core::CatalogEntry& entry :
       core::ScenarioCatalog::instance().entries()) {
    const core::ScenarioConfig& c = entry.config;
    const bool brite = c.topology == core::TopologyKind::kBrite;
    table.add_row({entry.name, core::to_string(c.topology),
                   c.level == core::CorrelationLevel::kHigh ? "high"
                                                            : "loose",
                   std::to_string(brite ? c.as_endpoints : c.vantage_points),
                   std::to_string(c.cluster_size), special_knobs(c),
                   entry.figure});
  }
  std::cout << "# Scenario registry — "
            << core::ScenarioCatalog::instance().entries().size()
            << " scenarios (docs/SCENARIOS.md has the full catalogue)\n";
  run.table("scenario registry", table);
}

struct ScenarioScore {
  std::size_t links = 0, paths = 0, sets = 0;
  double corr_mean = 0.0, corr_p90 = 0.0;
  double ind_mean = 0.0, ind_p90 = 0.0;
  /// Equation-harvest wall seconds (final correlation build + independence
  /// build); recorded in the JSON telemetry only — never on stdout.
  double harvest_seconds = 0.0;
  /// Solver wall seconds (correlation + independence solves) and the
  /// per-algorithm solver detail strings (engine, iterations, refactorize
  /// count); JSON telemetry only.
  double solve_seconds = 0.0;
  /// Snapshot-simulation wall seconds; JSON telemetry only.
  double sim_seconds = 0.0;
  std::string corr_detail, ind_detail;
};

/// One catalog entry, end to end: --trials experiments across --jobs
/// workers, reduced in trial order.
ScenarioScore run_entry(bench::Run& run, const core::CatalogEntry& entry,
                        std::uint64_t tag) {
  const bench::Settings& s = run.settings();
  const core::TrialSpec spec = bench::resolve_trial_spec(s, entry, tag);
  const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
    const auto inst = core::build_scenario(spec.scenario_for(ctx));
    const auto result = core::run_experiment(inst, spec.experiment_for(ctx));
    ScenarioScore score;
    score.links = inst.graph.link_count();
    score.paths = inst.paths.size();
    score.sets = inst.declared_sets.set_count();
    score.corr_mean = mean(result.correlation_errors());
    score.corr_p90 = percentile(result.correlation_errors(), 90.0);
    score.ind_mean = mean(result.independence_errors());
    score.ind_p90 = percentile(result.independence_errors(), 90.0);
    score.harvest_seconds = result.correlation.system.build_seconds +
                            result.independence.system.build_seconds;
    score.solve_seconds =
        result.correlation.solve_seconds + result.independence.solve_seconds;
    score.sim_seconds = result.sim_seconds;
    score.corr_detail = result.correlation.solver_detail;
    score.ind_detail = result.independence.solver_detail;
    return score;
  });
  ScenarioScore total;
  if (outcomes.empty()) return total;  // --trials 0
  // Instance shape from trial 0 (each trial reseeds the topology, so
  // counts vary slightly across trials); errors averaged over all trials.
  total.links = outcomes.front().value.links;
  total.paths = outcomes.front().value.paths;
  total.sets = outcomes.front().value.sets;
  const double trials = static_cast<double>(outcomes.size());
  util::Json details = util::Json::array();
  for (const auto& outcome : outcomes) {
    total.corr_mean += outcome.value.corr_mean / trials;
    total.corr_p90 += outcome.value.corr_p90 / trials;
    total.ind_mean += outcome.value.ind_mean / trials;
    total.ind_p90 += outcome.value.ind_p90 / trials;
    total.harvest_seconds += outcome.value.harvest_seconds / trials;
    total.solve_seconds += outcome.value.solve_seconds / trials;
    total.sim_seconds += outcome.value.sim_seconds / trials;
    details.push(util::Json::object()
                     .set("correlation", outcome.value.corr_detail)
                     .set("independence", outcome.value.ind_detail));
  }
  run.metric(entry.name + "_correlation_mean_err", total.corr_mean);
  run.metric(entry.name + "_independence_mean_err", total.ind_mean);
  run.metric(entry.name + "_harvest_seconds", total.harvest_seconds);
  run.metric(entry.name + "_solve_seconds", total.solve_seconds);
  run.metric(entry.name + "_sim_seconds", total.sim_seconds);
  run.annotation(entry.name + "_solver_detail", std::move(details));
  return total;
}

struct ShardedScore {
  std::size_t links = 0, paths = 0, sets = 0;
  std::size_t shards = 0, shared_links = 0;
  std::size_t averaged = 0, resolved = 0, joint_solves = 0, failed = 0;
  double mean_err = 0.0, p90_err = 0.0;
  /// Wall seconds (simulation / per-shard + joint solves); JSON-only.
  double sim_seconds = 0.0, solve_seconds = 0.0;
};

/// One catalog entry through the sharded pipeline (build → simulate →
/// infer_sharded → error summary vs ground truth). Same trial/seed
/// convention as run_entry, so the topology and observations of trial t
/// match the monolithic run's trial t exactly.
ShardedScore run_sharded_entry(bench::Run& run,
                               const core::CatalogEntry& entry,
                               std::uint64_t tag,
                               std::size_t max_shard_paths) {
  const bench::Settings& s = run.settings();
  const core::TrialSpec spec = bench::resolve_trial_spec(s, entry, tag);
  const auto outcomes = run.trials([&](const core::TrialContext& ctx) {
    const auto inst = core::build_scenario(spec.scenario_for(ctx));
    const core::ExperimentConfig config = spec.experiment_for(ctx);
    const graph::CoverageIndex coverage(inst.graph, inst.paths);

    const Stopwatch sim_timer;
    sim::SimulationResult sim_result =
        sim::simulate(inst.graph, inst.paths, *inst.truth, config.sim);
    const sim::MeasurementBlock block = std::move(sim_result.measurement);

    ShardedScore score;
    score.sim_seconds = sim_timer.seconds();
    score.links = inst.graph.link_count();
    score.paths = inst.paths.size();
    score.sets = inst.declared_sets.set_count();

    core::ShardedOptions options;
    options.max_shard_paths = max_shard_paths;
    // Mirrors apply_trial_settings: with one trial the trial pool idles,
    // so --jobs fans the shards instead (bit-identical either way).
    options.jobs = s.trials == 1 ? s.jobs : 1;
    options.seed = ctx.seed(tag + 0x5d);
    options.inference = config.inference;
    const core::ShardedInferenceResult result = core::infer_sharded(
        inst.graph, inst.paths, coverage, inst.declared_sets, block, options);

    score.shards = result.plan.shards.size();
    score.shared_links = result.plan.shared_links;
    score.averaged = result.averaged_links;
    score.resolved = result.resolved_links;
    score.joint_solves = result.joint_solves;
    for (const core::ShardTelemetry& shard : result.shards) {
      score.failed += shard.failed ? 1 : 0;
    }
    score.solve_seconds = result.solve_seconds;

    const sim::EmpiricalMeasurement measurement(block);
    const std::vector<double> errors = metrics::absolute_errors(
        inst.true_marginals, result.congestion_prob,
        core::potentially_congested_links(inst.paths, measurement));
    score.mean_err = mean(errors);
    score.p90_err = percentile(errors, 90.0);
    return score;
  });
  ShardedScore total;
  if (outcomes.empty()) return total;  // --trials 0
  // Shape and shard structure from trial 0, errors/timings averaged.
  total = outcomes.front().value;
  total.mean_err = total.p90_err = 0.0;
  total.sim_seconds = total.solve_seconds = 0.0;
  const double trials = static_cast<double>(outcomes.size());
  util::Json shard_details = util::Json::array();
  for (const auto& outcome : outcomes) {
    total.mean_err += outcome.value.mean_err / trials;
    total.p90_err += outcome.value.p90_err / trials;
    total.sim_seconds += outcome.value.sim_seconds / trials;
    total.solve_seconds += outcome.value.solve_seconds / trials;
  }
  run.metric(entry.name + "_sharded_mean_err", total.mean_err);
  run.metric(entry.name + "_sharded_solve_seconds", total.solve_seconds);
  run.metric(entry.name + "_sharded_sim_seconds", total.sim_seconds);
  run.annotation(
      entry.name + "_sharded_plan",
      util::Json::object()
          .set("max_shard_paths", max_shard_paths)
          .set("shards", total.shards)
          .set("shared_links", total.shared_links)
          .set("averaged_links", total.averaged)
          .set("resolved_links", total.resolved)
          .set("joint_solves", total.joint_solves)
          .set("failed_shards", total.failed));
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("tomo_scenarios",
              "list or run the named scenarios of the registry");
  bench::add_common_flags(flags);
  flags.add_bool("list", false,
                 "print the catalogue and exit (default with no --scenario)");
  flags.add_bool("all", false, "run every registry scenario");
  flags.add_bool("sharded", false,
                 "run through core::infer_sharded (vantage-cluster shards "
                 "+ reconciliation) instead of the monolithic pipeline");
  flags.add_int("max-shard-paths", 400,
                "--sharded: target paths per shard (0 = unbounded "
                "link-disjoint components)");
  if (!flags.parse(argc, argv)) return 0;
  const bench::Settings s = bench::settings_from_flags(flags);
  bench::Run run("tomo_scenarios", s);

  const bool run_all = flags.get_bool("all");
  TOMO_REQUIRE(!(run_all && !s.scenario.empty()),
               "--all and --scenario are mutually exclusive");
  if (flags.get_bool("list") || (s.scenario.empty() && !run_all)) {
    list_catalog(run);
    run.finish();
    return 0;
  }

  std::vector<const core::CatalogEntry*> selected;
  if (run_all) {
    for (const auto& entry : core::ScenarioCatalog::instance().entries()) {
      selected.push_back(&entry);
    }
  } else {
    selected.push_back(&core::ScenarioCatalog::instance().at(s.scenario));
  }

  if (flags.get_bool("sharded")) {
    const std::size_t max_shard_paths =
        static_cast<std::size_t>(flags.get_int("max-shard-paths"));
    Table table({"scenario", "links", "paths", "shards", "shared_links",
                 "averaged", "resolved", "sharded_mean_err",
                 "sharded_p90_err"});
    std::cout << "# Sharded scenario runs — " << s.trials << " trial(s) x "
              << s.snapshots << " snapshots x " << s.packets
              << " packets/path, max " << max_shard_paths
              << " paths/shard\n";
    for (const core::CatalogEntry* entry : selected) {
      const std::uint64_t index = static_cast<std::uint64_t>(
          entry - core::ScenarioCatalog::instance().entries().data());
      const ShardedScore score = run_sharded_entry(
          run, *entry, 0x5ce00 + index * 0x100, max_shard_paths);
      table.add_row({entry->name, std::to_string(score.links),
                     std::to_string(score.paths),
                     std::to_string(score.shards),
                     std::to_string(score.shared_links),
                     std::to_string(score.averaged),
                     std::to_string(score.resolved),
                     Table::fmt(score.mean_err), Table::fmt(score.p90_err)});
    }
    run.table("sharded scenario scores", table);
    run.finish();
    return 0;
  }

  Table table({"scenario", "links", "paths", "sets", "correlation_mean_err",
               "correlation_p90_err", "independence_mean_err",
               "independence_p90_err"});
  std::cout << "# Scenario runs — " << s.trials << " trial(s) x "
            << s.snapshots << " snapshots x " << s.packets
            << " packets/path\n";
  for (const core::CatalogEntry* entry : selected) {
    // Seed tag from the registry index so a single-scenario run and the
    // same scenario inside --all see identical trials.
    const std::uint64_t index = static_cast<std::uint64_t>(
        entry - core::ScenarioCatalog::instance().entries().data());
    const ScenarioScore score =
        run_entry(run, *entry, 0x5ce00 + index * 0x100);
    table.add_row({entry->name, std::to_string(score.links),
                   std::to_string(score.paths), std::to_string(score.sets),
                   Table::fmt(score.corr_mean), Table::fmt(score.corr_p90),
                   Table::fmt(score.ind_mean), Table::fmt(score.ind_p90)});
  }
  run.table("scenario scores", table);
  run.finish();
  return 0;
}
