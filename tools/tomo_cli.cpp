// tomo_cli — command-line front end for libtomo.
//
// Subcommands:
//   gen       generate a synthetic measured system (topology + paths +
//             correlation sets) into a topology file
//   check     identifiability (Assumption 4) report for a topology file
//   simulate  simulate correlated congestion over a topology and write the
//             per-snapshot path observations (plus ground truth)
//   infer     run the correlation algorithm (or the independence baseline)
//             on a topology + observations and print per-link congestion
//             probabilities
//   localize  per-snapshot congested-link localization from observations
//
// Example session:
//   tomo_cli gen --kind planetlab --out topo.txt
//   tomo_cli simulate --topology topo.txt --out obs.txt --truth-out truth.txt
//   tomo_cli infer --topology topo.txt --obs obs.txt
//   tomo_cli localize --topology topo.txt --obs obs.txt --snapshot 17
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/correlation_algorithm.hpp"
#include "core/independence_algorithm.hpp"
#include "core/bootstrap.hpp"
#include "core/localization.hpp"
#include "corr/identifiability.hpp"
#include "corr/model_factory.hpp"
#include "graph/serialize.hpp"
#include "graph/transform.hpp"
#include "sim/measurement.hpp"
#include "sim/obs_io.hpp"
#include "sim/simulator.hpp"
#include "topogen/hierarchical.hpp"
#include "topogen/planetlab_like.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace tomo;

corr::CorrelationSets sets_of(const graph::MeasuredSystem& system) {
  if (system.partition.empty()) {
    return corr::CorrelationSets::singletons(system.graph.link_count());
  }
  return corr::CorrelationSets(system.graph.link_count(), system.partition);
}

int cmd_gen(int argc, const char* const* argv) {
  Flags flags("tomo_cli gen", "generate a synthetic measured system");
  flags.add_string("kind", "planetlab", "topology kind: brite | planetlab");
  flags.add_string("out", "topology.txt", "output topology file");
  flags.add_int("size", 150, "AS count (brite) or router count (planetlab)");
  flags.add_int("endpoints", 14, "number of vantage points");
  flags.add_int("cluster", 6, "max correlation-set size");
  flags.add_double("fabric-prob", 0.65, "P(link rides a shared fabric)");
  flags.add_int("seed", 1, "RNG seed");
  if (!flags.parse(argc, argv)) return 0;

  graph::MeasuredSystem system;
  std::string description;
  if (flags.get_string("kind") == "brite") {
    topogen::HierarchicalParams params;
    params.as_nodes = static_cast<std::size_t>(flags.get_int("size"));
    params.endpoints = static_cast<std::size_t>(flags.get_int("endpoints"));
    params.max_corrset_size =
        static_cast<std::size_t>(flags.get_int("cluster"));
    params.fabric_prob = flags.get_double("fabric-prob");
    params.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    auto topo = topogen::generate_hierarchical(params);
    system.graph = std::move(topo.graph);
    system.paths = std::move(topo.paths);
    system.partition = std::move(topo.partition);
    description = topo.description;
  } else if (flags.get_string("kind") == "planetlab") {
    topogen::PlanetLabParams params;
    params.routers = static_cast<std::size_t>(flags.get_int("size"));
    params.vantage_points =
        static_cast<std::size_t>(flags.get_int("endpoints"));
    params.cluster_size = static_cast<std::size_t>(flags.get_int("cluster"));
    params.fabric_prob = flags.get_double("fabric-prob");
    params.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    auto topo = topogen::generate_planetlab_like(params);
    system.graph = std::move(topo.graph);
    system.paths = std::move(topo.paths);
    system.partition = std::move(topo.partition);
    description = topo.description;
  } else {
    throw Error("unknown --kind (expected brite|planetlab)");
  }
  graph::save_system(flags.get_string("out"), system);
  std::printf("%s\nwrote %s\n", description.c_str(),
              flags.get_string("out").c_str());
  return 0;
}

int cmd_check(int argc, const char* const* argv) {
  Flags flags("tomo_cli check", "Assumption-4 identifiability report");
  flags.add_string("topology", "topology.txt", "topology file");
  flags.add_int("max-set-size", 16, "exact-check enumeration limit");
  if (!flags.parse(argc, argv)) return 0;

  const graph::MeasuredSystem system =
      graph::load_system(flags.get_string("topology"));
  const corr::CorrelationSets sets = sets_of(system);
  const graph::CoverageIndex coverage(system.graph, system.paths);

  const auto nodes = corr::structurally_violating_nodes(
      system.graph, system.paths, sets);
  std::printf("links: %zu  paths: %zu  correlation sets: %zu\n",
              system.graph.link_count(), system.paths.size(),
              sets.set_count());
  std::printf("structural check: %zu violating node(s)\n", nodes.size());
  for (graph::NodeId v : nodes) {
    std::printf("  node %s has all ingress links in one set and all "
                "egress links in one set\n",
                system.graph.node_name(v).c_str());
  }
  bool too_large = false;
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    too_large |= sets.set(s).size() >
                 static_cast<std::size_t>(flags.get_int("max-set-size"));
  }
  if (too_large) {
    std::printf("exact check skipped: a correlation set exceeds "
                "--max-set-size\n");
    return nodes.empty() ? 0 : 1;
  }
  const auto report = corr::check_identifiability(
      coverage, sets,
      static_cast<std::size_t>(flags.get_int("max-set-size")));
  if (report.holds) {
    std::printf("exact check: Assumption 4 HOLDS — every correlation "
                "subset covers a distinct path set\n");
    return 0;
  }
  std::printf("exact check: Assumption 4 VIOLATED — %zu colliding subset "
              "pair(s), %zu unidentifiable link(s)\n",
              report.collisions.size(),
              report.unidentifiable_links.size());
  return 1;
}

int cmd_simulate(int argc, const char* const* argv) {
  Flags flags("tomo_cli simulate",
              "simulate correlated congestion and record observations");
  flags.add_string("topology", "topology.txt", "topology file");
  flags.add_string("out", "observations.txt", "output observation file");
  flags.add_string("truth-out", "", "optional ground-truth marginals file");
  flags.add_int("snapshots", 2000, "number of snapshots");
  flags.add_int("packets", 2000, "probe packets per path per snapshot");
  flags.add_double("congested-fraction", 0.1, "fraction of congested links");
  flags.add_double("strength", 0.95, "correlation strength in [0,1)");
  flags.add_int("seed", 1, "RNG seed");
  flags.add_string("mode", "batched",
                   "simulation engine: batched|binomial|per-packet|exact");
  flags.add_int("jobs", 1,
                "simulation worker threads (0 = all cores); output is "
                "identical for any value");
  if (!flags.parse(argc, argv)) return 0;

  const graph::MeasuredSystem system =
      graph::load_system(flags.get_string("topology"));
  const corr::CorrelationSets sets = sets_of(system);

  // Ground truth: clustered congestion over the declared sets.
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const std::size_t target = std::max<std::size_t>(
      1, static_cast<std::size_t>(flags.get_double("congested-fraction") *
                                  static_cast<double>(
                                      system.graph.link_count())));
  std::vector<graph::LinkId> congested;
  for (std::size_t idx : rng.sample_without_replacement(
           system.graph.link_count(), target)) {
    congested.push_back(idx);
  }
  std::sort(congested.begin(), congested.end());
  std::vector<double> marginals(congested.size());
  for (double& m : marginals) m = rng.uniform(0.1, 0.6);
  auto truth = corr::make_clustered_shock_model(
      sets, congested, marginals, flags.get_double("strength"));

  sim::SimulatorConfig config;
  config.snapshots = static_cast<std::size_t>(flags.get_int("snapshots"));
  config.packets_per_path =
      static_cast<std::size_t>(flags.get_int("packets"));
  config.mode = sim::parse_packet_mode(flags.get_string("mode"));
  config.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  config.seed = rng();
  const auto result =
      sim::simulate(system.graph, system.paths, *truth, config);
  sim::save_observations(flags.get_string("out"), result.observations());
  std::printf("simulated %zu snapshots over %zu paths -> %s\n",
              config.snapshots, system.paths.size(),
              flags.get_string("out").c_str());
  if (!flags.get_string("truth-out").empty()) {
    std::ofstream os(flags.get_string("truth-out"));
    TOMO_REQUIRE(os.good(), "cannot open truth output file");
    for (graph::LinkId e = 0; e < system.graph.link_count(); ++e) {
      os << e << ' ' << truth->marginal(e) << '\n';
    }
    std::printf("ground truth -> %s\n",
                flags.get_string("truth-out").c_str());
  }
  return 0;
}

int cmd_infer(int argc, const char* const* argv) {
  Flags flags("tomo_cli infer",
              "infer per-link congestion probabilities");
  flags.add_string("topology", "topology.txt", "topology file");
  flags.add_string("obs", "observations.txt", "observation file");
  flags.add_string("solver", "nnls", "ls | nnls | l1lp | irls");
  flags.add_bool("independent", false,
                 "run the independence baseline instead");
  flags.add_int("bootstrap", 0,
                "replicates for 90% confidence intervals (0 = off)");
  flags.add_string("bootstrap-mode", "batched",
                   "bootstrap engine: batched (Gram-skeleton reuse) | "
                   "reference (serial full re-inference)");
  flags.add_int("bootstrap-jobs", 1,
                "worker threads for bootstrap replicates (0 = all cores); "
                "intervals are bit-identical for any value");
  flags.add_bool("csv", false, "CSV output");
  if (!flags.parse(argc, argv)) return 0;

  const graph::MeasuredSystem system =
      graph::load_system(flags.get_string("topology"));
  const corr::CorrelationSets sets = sets_of(system);
  const sim::PathObservations obs =
      sim::load_observations(flags.get_string("obs"));
  TOMO_REQUIRE(obs.path_count() == system.paths.size(),
               "observation file path count does not match the topology");
  const sim::EmpiricalMeasurement measurement(obs);
  const graph::CoverageIndex coverage(system.graph, system.paths);

  core::InferenceOptions options;
  options.solver.kind = linalg::solver_kind_from_string(
      flags.get_string("solver"));
  const core::InferenceResult result =
      flags.get_bool("independent")
          ? core::infer_congestion_independent(system.graph, system.paths,
                                               coverage, measurement,
                                               options)
          : core::infer_congestion(system.graph, system.paths, coverage,
                                   sets, measurement, options);

  std::vector<double> lower, upper;
  const std::size_t replicates =
      static_cast<std::size_t>(flags.get_int("bootstrap"));
  if (replicates > 0 && !flags.get_bool("independent")) {
    core::BootstrapOptions boot;
    boot.replicates = replicates;
    boot.mode =
        core::bootstrap_mode_from_string(flags.get_string("bootstrap-mode"));
    boot.jobs = static_cast<std::size_t>(flags.get_int("bootstrap-jobs"));
    boot.inference = options;
    const core::BootstrapResult intervals = core::bootstrap_congestion(
        system.graph, system.paths, coverage, sets, obs, boot);
    lower = intervals.lower;
    upper = intervals.upper;
  }

  const bool with_intervals = !lower.empty();
  Table table(with_intervals
                  ? std::vector<std::string>{"link", "src", "dst",
                                             "congestion_prob", "ci90_lo",
                                             "ci90_hi"}
                  : std::vector<std::string>{"link", "src", "dst",
                                             "congestion_prob"});
  for (graph::LinkId e = 0; e < system.graph.link_count(); ++e) {
    std::vector<std::string> row{
        std::to_string(e),
        system.graph.node_name(system.graph.link(e).src),
        system.graph.node_name(system.graph.link(e).dst),
        Table::fmt(result.congestion_prob[e])};
    if (with_intervals) {
      row.push_back(Table::fmt(lower[e]));
      row.push_back(Table::fmt(upper[e]));
    }
    table.add_row(std::move(row));
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_text(std::cout);
    std::printf("equations: %zu singles + %zu pairs, rank %zu/%zu (%s)\n",
                result.system.n1, result.system.n2, result.system.rank,
                result.system.link_count, result.solver_detail.c_str());
  }
  return 0;
}

int cmd_merge(int argc, const char* const* argv) {
  Flags flags("tomo_cli merge",
              "apply the §3.3 merge transformation and write the result");
  flags.add_string("topology", "topology.txt", "topology file");
  flags.add_string("out", "merged.txt", "output topology file");
  if (!flags.parse(argc, argv)) return 0;

  const graph::MeasuredSystem system =
      graph::load_system(flags.get_string("topology"));
  const corr::CorrelationSets sets = sets_of(system);
  const graph::MergeResult merged = graph::merge_indistinguishable(
      system.graph, system.paths, sets.partition());
  std::printf("merge: %zu round(s); %zu -> %zu links, %zu -> %zu "
              "correlation sets\n",
              merged.merge_rounds, system.graph.link_count(),
              merged.graph.link_count(), sets.set_count(),
              merged.partition.size());
  for (graph::LinkId m = 0; m < merged.graph.link_count(); ++m) {
    if (merged.composition[m].size() > 1) {
      std::printf("  merged link %zu <- originals:", m);
      for (graph::LinkId original : merged.composition[m]) {
        std::printf(" %zu", original);
      }
      std::printf("\n");
    }
  }
  graph::MeasuredSystem out{merged.graph, merged.paths, merged.partition};
  graph::save_system(flags.get_string("out"), out);
  std::printf("wrote %s\n", flags.get_string("out").c_str());
  return 0;
}

int cmd_localize(int argc, const char* const* argv) {
  Flags flags("tomo_cli localize",
              "localize the congested links of one snapshot");
  flags.add_string("topology", "topology.txt", "topology file");
  flags.add_string("obs", "observations.txt", "observation file");
  flags.add_int("snapshot", 0, "snapshot index to localize");
  if (!flags.parse(argc, argv)) return 0;

  const graph::MeasuredSystem system =
      graph::load_system(flags.get_string("topology"));
  const corr::CorrelationSets sets = sets_of(system);
  const sim::PathObservations obs =
      sim::load_observations(flags.get_string("obs"));
  TOMO_REQUIRE(obs.path_count() == system.paths.size(),
               "observation file path count does not match the topology");
  const std::size_t snapshot =
      static_cast<std::size_t>(flags.get_int("snapshot"));
  TOMO_REQUIRE(snapshot < obs.snapshot_count(), "snapshot out of range");

  const sim::EmpiricalMeasurement measurement(obs);
  const graph::CoverageIndex coverage(system.graph, system.paths);
  const core::InferenceResult probs = core::infer_congestion(
      system.graph, system.paths, coverage, sets, measurement);

  graph::PathIdSet congested;
  for (graph::PathId p = 0; p < obs.path_count(); ++p) {
    if (obs.congested(p, snapshot)) congested.push_back(p);
  }
  std::printf("snapshot %zu: %zu congested path(s)\n", snapshot,
              congested.size());
  const core::LocalizationResult result = core::localize_greedy_map(
      coverage, congested, probs.congestion_prob);
  if (!result.feasible) {
    std::printf("observation is infeasible under Assumption 2 "
                "(measurement noise?)\n");
    return 1;
  }
  for (graph::LinkId e : result.congested_links) {
    std::printf("  link %zu  %s -> %s   (P_congested = %.3f)\n", e,
                system.graph.node_name(system.graph.link(e).src).c_str(),
                system.graph.node_name(system.graph.link(e).dst).c_str(),
                probs.congestion_prob[e]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* usage =
      "usage: tomo_cli <gen|check|simulate|infer|merge|localize> [flags]\n"
      "       tomo_cli <subcommand> --help\n";
  if (argc < 2) {
    std::fputs(usage, stderr);
    return 2;
  }
  try {
    const std::string cmd = argv[1];
    // Shift argv so each subcommand parses its own flags.
    if (cmd == "gen") return cmd_gen(argc - 1, argv + 1);
    if (cmd == "check") return cmd_check(argc - 1, argv + 1);
    if (cmd == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (cmd == "infer") return cmd_infer(argc - 1, argv + 1);
    if (cmd == "merge") return cmd_merge(argc - 1, argv + 1);
    if (cmd == "localize") return cmd_localize(argc - 1, argv + 1);
    std::fputs(usage, stderr);
    return 2;
  } catch (const tomo::Error& e) {
    std::fprintf(stderr, "tomo_cli: %s\n", e.message().c_str());
    return 1;
  }
}
