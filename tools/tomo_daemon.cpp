// tomo_daemon — the streaming inference service ("tomo serve").
//
// Subcommands:
//   serve    tail an observation file or pipe (classic obs-IO or the
//            windowed tomo-obs-stream format) and emit one JSON estimate
//            line per window on stdout. The JSON protocol carries no
//            timings, so output is byte-identical for any --jobs; latency
//            telemetry goes to stderr.
//   record   simulate a registry scenario and write its observation trace
//            (classic obs-IO, or windowed stream format with --format
//            stream) for later replay through serve.
//   batch    one-shot batch inference over a complete trace, printed in
//            the same JSON shape — the differential reference for serve's
//            final window.
//
// Example session (replaying a recorded trace):
//   tomo_daemon record --scenario waxman-full --seed 7 --snapshots 768
//       --out trace.obs
//   tomo_daemon serve  --scenario waxman-full --seed 7 --input trace.obs
//       --window 256 > streamed.jsonl
//   tomo_daemon batch  --scenario waxman-full --seed 7 --input trace.obs
//       --window 256 > batch.jsonl
//
// Live tailing: point --input at a file another process appends
// tomo-obs-stream windows to (or pipe into --input -) and pass
// --poll-ms 200; each window's estimate prints the moment it lands.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/correlation_algorithm.hpp"
#include "core/experiment.hpp"
#include "core/scenario_catalog.hpp"
#include "graph/serialize.hpp"
#include "metrics/error_metrics.hpp"
#include "sim/measurement.hpp"
#include "sim/obs_io.hpp"
#include "sim/simulator.hpp"
#include "stream/obs_stream.hpp"
#include "stream/serve.hpp"
#include "util/bitops.hpp"
#include "stream/streaming_inference.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

using namespace tomo;

/// The measured system a daemon run operates on: either a registry
/// scenario (which also provides ground truth for --mean-err) or a
/// topology file written by tomo_cli gen.
struct ResolvedSystem {
  core::ScenarioInstance instance;  // scenario mode
  graph::MeasuredSystem measured;   // topology mode
  const graph::Graph* graph = nullptr;
  const std::vector<graph::Path>* paths = nullptr;
  std::unique_ptr<corr::CorrelationSets> sets;
  std::vector<double> truth;  // true marginals; empty in topology mode
};

void add_system_flags(Flags& flags) {
  flags.add_string("scenario", "",
                   "registry scenario name (see tomo_scenarios --list)");
  flags.add_int("seed", 7, "scenario seed (topology + truth derivation)");
  flags.add_bool("shrink", false, "shrink the scenario to test scale");
  flags.add_string("topology", "",
                   "topology file instead of --scenario (no ground truth)");
}

ResolvedSystem resolve_system(const Flags& flags) {
  ResolvedSystem out;
  const std::string scenario = flags.get_string("scenario");
  const std::string topology = flags.get_string("topology");
  TOMO_REQUIRE(scenario.empty() != topology.empty(),
               "pass exactly one of --scenario or --topology");
  if (!scenario.empty()) {
    core::ScenarioConfig config =
        core::ScenarioCatalog::instance().at(scenario).config;
    if (flags.get_bool("shrink")) config = core::shrink_for_tests(config);
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    out.instance = core::build_scenario(config);
    out.graph = &out.instance.graph;
    out.paths = &out.instance.paths;
    out.sets =
        std::make_unique<corr::CorrelationSets>(out.instance.declared_sets);
    out.truth = out.instance.true_marginals;
  } else {
    out.measured = graph::load_system(topology);
    out.graph = &out.measured.graph;
    out.paths = &out.measured.paths;
    if (out.measured.partition.empty()) {
      out.sets = std::make_unique<corr::CorrelationSets>(
          corr::CorrelationSets::singletons(out.measured.graph.link_count()));
    } else {
      out.sets = std::make_unique<corr::CorrelationSets>(
          out.measured.graph.link_count(), out.measured.partition);
    }
  }
  return out;
}

core::InferenceOptions inference_from(const Flags& flags) {
  core::InferenceOptions options;
  options.solver.kind =
      linalg::solver_kind_from_string(flags.get_string("solver"));
  const std::size_t jobs =
      static_cast<std::size_t>(flags.get_int("jobs"));
  options.solver.jobs = jobs;
  options.equations.jobs = jobs;
  return options;
}

/// Reads a complete trace (either format) into one block.
sim::MeasurementBlock read_trace(std::istream& is) {
  stream::ObsStreamReader reader(is);
  sim::MeasurementBlock all;
  while (auto window = reader.next()) {
    if (reader.batch_format()) return std::move(*window);
    all.append(*window);
  }
  TOMO_REQUIRE(!all.empty(), "trace contains no observations");
  return all;
}

double mean_error(const std::vector<double>& truth,
                  const std::vector<graph::Path>& paths,
                  const sim::MeasurementProvider& measurement,
                  const std::vector<double>& estimate) {
  if (truth.empty()) return -1.0;
  const std::vector<double> errors = metrics::absolute_errors(
      truth, estimate, core::potentially_congested_links(paths, measurement));
  if (errors.empty()) return -1.0;
  double sum = 0.0;
  for (double e : errors) sum += e;
  return sum / static_cast<double>(errors.size());
}

int cmd_record(int argc, const char* const* argv) {
  Flags flags("tomo_daemon record",
              "simulate a scenario and record its observation trace");
  add_system_flags(flags);
  flags.add_int("snapshots", 768, "snapshots to simulate");
  flags.add_int("packets", 1000, "probe packets per path per snapshot");
  flags.add_string("mode", "batched",
                   "simulation engine: batched|binomial|per-packet|exact");
  flags.add_int("sim-seed", 0,
                "simulator seed (0 = derive from --seed like a batch "
                "trial would)");
  flags.add_int("jobs", 1, "simulation worker threads (0 = all cores)");
  flags.add_string("out", "trace.obs", "output trace file");
  flags.add_string("format", "obs",
                   "obs (classic, complete file) | stream (windowed)");
  flags.add_int("window", 256, "snapshots per window (stream format)");
  if (!flags.parse(argc, argv)) return 0;

  const ResolvedSystem system = resolve_system(flags);
  TOMO_REQUIRE(!system.truth.empty(),
               "record needs a --scenario (the truth model drives the "
               "simulation)");

  sim::SimulatorConfig config;
  config.snapshots = static_cast<std::size_t>(flags.get_int("snapshots"));
  config.packets_per_path =
      static_cast<std::size_t>(flags.get_int("packets"));
  config.mode = sim::parse_packet_mode(flags.get_string("mode"));
  config.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  config.seed = flags.get_int("sim-seed") != 0
                    ? static_cast<std::uint64_t>(flags.get_int("sim-seed"))
                    : mix_seed(static_cast<std::uint64_t>(
                                   flags.get_int("seed")),
                               0x51000);
  const sim::SimulationResult result = sim::simulate(
      *system.graph, *system.paths, *system.instance.truth, config);

  const std::string out = flags.get_string("out");
  const std::string format = flags.get_string("format");
  if (format == "obs") {
    sim::save_observations(out, result.measurement);
  } else if (format == "stream") {
    std::ofstream os(out);
    TOMO_REQUIRE(os.good(), "cannot open " + out + " for writing");
    stream::ObsStreamWriter writer(os, result.measurement.path_count);
    for (const sim::MeasurementBlock& window : stream::split_windows(
             result.measurement,
             static_cast<std::size_t>(flags.get_int("window")))) {
      writer.write_window(window);
    }
    writer.close();
    TOMO_REQUIRE(os.good(), "failed writing " + out);
  } else {
    throw Error("unknown --format (expected obs|stream)");
  }
  std::fprintf(stderr,
               "recorded %zu snapshots over %zu paths -> %s (%s format)\n",
               config.snapshots, system.paths->size(), out.c_str(),
               format.c_str());
  return 0;
}

int cmd_serve(int argc, const char* const* argv) {
  Flags flags("tomo_daemon serve",
              "tail an observation stream and re-estimate per window");
  add_system_flags(flags);
  flags.add_string("input", "-",
                   "trace file to tail ('-' = stdin); classic obs files "
                   "are re-sliced by --window");
  flags.add_int("window", 256,
                "snapshots per window when re-slicing a classic file");
  flags.add_string("solver", "nnls", "ls | nnls | l1lp | irls");
  flags.add_int("jobs", 1,
                "harvest/Gram worker threads (0 = all cores); stdout is "
                "byte-identical for any value");
  flags.add_bool("cold", false,
                 "disable the NNLS warm start (every window solves cold)");
  flags.add_bool("no-gram-reuse", false,
                 "rebuild the Gram matrix every window");
  flags.add_int("poll-ms", 0,
                "tail mode: retry interval after EOF (0 = stop at EOF)");
  flags.add_int("max-windows", 0, "stop after this many windows (0 = all)");
  flags.add_int("ring", 8, "ingestion ring capacity (windows)");
  flags.add_bool("mean-err", true,
                 "report per-window mean_err when ground truth is known");
  if (!flags.parse(argc, argv)) return 0;

  const ResolvedSystem system = resolve_system(flags);

  stream::ServeOptions options;
  options.streaming.inference = inference_from(flags);
  options.streaming.warm_start = !flags.get_bool("cold");
  options.streaming.reuse_gram = !flags.get_bool("no-gram-reuse");
  options.window_snapshots =
      static_cast<std::size_t>(flags.get_int("window"));
  options.ring_capacity = static_cast<std::size_t>(flags.get_int("ring"));
  options.poll_ms = static_cast<long>(flags.get_int("poll-ms"));
  options.max_windows =
      static_cast<std::size_t>(flags.get_int("max-windows"));
  if (flags.get_bool("mean-err") && !system.truth.empty()) {
    options.truth = &system.truth;
  }

  const std::string input = flags.get_string("input");
  std::ifstream file;
  if (input != "-") {
    file.open(input);
    TOMO_REQUIRE(file.good(), "cannot open " + input);
    // Tailing a real file: let the producer notice in-place truncation
    // (logrotate copytruncate, a recorder restarting) and replay from the
    // start instead of tailing a stale offset.
    options.input_size = [input]() -> long long {
      std::error_code ec;
      const auto size = std::filesystem::file_size(input, ec);
      return ec ? -1 : static_cast<long long>(size);
    };
  }
  std::istream& is = input == "-" ? std::cin : file;

  const stream::ServeReport report = stream::serve(
      is, std::cout, *system.graph, *system.paths, *system.sets, options);
  if (report.output_closed) {
    std::fprintf(stderr,
                 "tomo_daemon: output closed by consumer after %zu "
                 "windows; stopping\n",
                 report.windows);
  }
  if (report.truncations > 0) {
    std::fprintf(stderr, "tomo_daemon: input reopened %zu time(s)\n",
                 report.truncations);
  }
  // Which bit-kernel table the window splices/harvests dispatched to —
  // stderr only, so the JSON window stream on stdout stays byte-stable.
  std::fprintf(stderr,
               "served %zu windows (%zu usable, %zu snapshots): "
               "%.1f ms/window mean, %.1f ms max (%s bit kernels)\n",
               report.windows, report.usable_windows, report.snapshots,
               report.windows
                   ? 1e3 * report.total_seconds /
                         static_cast<double>(report.windows)
                   : 0.0,
               1e3 * report.max_window_seconds,
               tomo::util::bitops::active().name);
  return report.usable_windows > 0 ? 0 : 1;
}

int cmd_batch(int argc, const char* const* argv) {
  Flags flags("tomo_daemon batch",
              "one-shot batch estimate over a complete trace (the "
              "differential reference for serve)");
  add_system_flags(flags);
  flags.add_string("input", "trace.obs", "trace file ('-' = stdin)");
  flags.add_int("window", 256,
                "window size serve would use (labels the JSON line)");
  flags.add_string("solver", "nnls", "ls | nnls | l1lp | irls");
  flags.add_int("jobs", 1, "harvest/Gram worker threads (0 = all cores)");
  flags.add_bool("mean-err", true,
                 "report mean_err when ground truth is known");
  if (!flags.parse(argc, argv)) return 0;

  const ResolvedSystem system = resolve_system(flags);

  const std::string input = flags.get_string("input");
  std::ifstream file;
  if (input != "-") {
    file.open(input);
    TOMO_REQUIRE(file.good(), "cannot open " + input);
  }
  sim::MeasurementBlock block =
      read_trace(input == "-" ? std::cin : file);
  const std::size_t window =
      static_cast<std::size_t>(flags.get_int("window"));
  const std::size_t windows = (block.snapshot_count + window - 1) / window;
  const std::size_t snapshots = block.snapshot_count;
  const sim::EmpiricalMeasurement measurement(std::move(block));

  const graph::CoverageIndex coverage(*system.graph, *system.paths);
  stream::WindowEstimate estimate;
  estimate.window = windows - 1;
  estimate.snapshots = snapshots;
  estimate.usable = true;
  estimate.inference =
      core::infer_congestion(*system.graph, *system.paths, coverage,
                             *system.sets, measurement,
                             inference_from(flags));
  const double err =
      flags.get_bool("mean-err")
          ? mean_error(system.truth, *system.paths, measurement,
                       estimate.inference.congestion_prob)
          : -1.0;
  std::cout << stream::window_json(estimate, err) << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* usage =
      "usage: tomo_daemon <serve|record|batch> [flags]\n"
      "       tomo_daemon <subcommand> --help\n";
  if (argc < 2) {
    std::fputs(usage, stderr);
    return 2;
  }
#ifdef SIGPIPE
  // A consumer like `head` closing our stdout must surface as a stream
  // write failure (handled in stream::serve), not a fatal signal.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  try {
    const std::string cmd = argv[1];
    // Shift argv so each subcommand parses its own flags.
    if (cmd == "serve") return cmd_serve(argc - 1, argv + 1);
    if (cmd == "record") return cmd_record(argc - 1, argv + 1);
    if (cmd == "batch") return cmd_batch(argc - 1, argv + 1);
    std::fputs(usage, stderr);
    return 2;
  } catch (const tomo::Error& e) {
    std::fprintf(stderr, "tomo_daemon: %s\n", e.message().c_str());
    return 1;
  }
}
