// Shortest-path routing used to materialize measured paths.
//
// The topology generators route probes between vantage points the way
// traceroute would observe them: along (weighted) shortest paths. Weights
// default to hop count; generators can perturb them to diversify routes.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace tomo::graph {

/// Dijkstra from `src`; returns for each node the incoming link on a
/// shortest path (or nullopt when unreachable). `weights` must either be
/// empty (hop count) or have one positive entry per link.
std::vector<std::optional<LinkId>> shortest_path_tree(
    const Graph& g, NodeId src, const std::vector<double>& weights = {});

/// Shortest path src -> dst as a Path, or nullopt when unreachable or
/// src == dst.
std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const std::vector<double>& weights = {});

/// All-pairs shortest paths between the given endpoints (ordered pairs,
/// src != dst), skipping unreachable pairs. This mimics a full-mesh
/// unicast measurement among vantage points.
std::vector<Path> mesh_paths(const Graph& g,
                             const std::vector<NodeId>& endpoints,
                             const std::vector<double>& weights = {});

}  // namespace tomo::graph
