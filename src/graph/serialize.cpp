#include "graph/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace tomo::graph {

void write_system(std::ostream& os, const MeasuredSystem& system) {
  os << "tomo-topology v1\n";
  const Graph& g = system.graph;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "node " << v << ' ' << g.node_name(v) << '\n';
  }
  for (LinkId e = 0; e < g.link_count(); ++e) {
    os << "link " << e << ' ' << g.link(e).src << ' ' << g.link(e).dst
       << '\n';
  }
  for (PathId p = 0; p < system.paths.size(); ++p) {
    os << "path " << p;
    for (LinkId e : system.paths[p].links()) os << ' ' << e;
    os << '\n';
  }
  for (std::size_t c = 0; c < system.partition.size(); ++c) {
    os << "corrset " << c;
    for (LinkId e : system.partition[c]) os << ' ' << e;
    os << '\n';
  }
}

MeasuredSystem read_system(std::istream& is) {
  MeasuredSystem system;
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) -> void {
    throw Error("topology line " + std::to_string(line_no) + ": " + what);
  };

  bool have_header = false;
  std::vector<std::vector<LinkId>> raw_paths;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // blank line
    if (!have_header) {
      std::string version;
      if (tag != "tomo-topology" || !(ls >> version) || version != "v1") {
        fail("expected header 'tomo-topology v1'");
      }
      have_header = true;
      continue;
    }
    if (tag == "node") {
      std::size_t id;
      std::string name;
      if (!(ls >> id >> name)) fail("malformed node line");
      if (id != system.graph.node_count()) fail("node ids must be dense");
      system.graph.add_node(name);
    } else if (tag == "link") {
      std::size_t id, src, dst;
      if (!(ls >> id >> src >> dst)) fail("malformed link line");
      if (id != system.graph.link_count()) fail("link ids must be dense");
      if (src >= system.graph.node_count() ||
          dst >= system.graph.node_count()) {
        fail("link references unknown node");
      }
      system.graph.add_link(src, dst);
    } else if (tag == "path") {
      std::size_t id;
      if (!(ls >> id)) fail("malformed path line");
      if (id != raw_paths.size()) fail("path ids must be dense");
      std::vector<LinkId> links;
      std::size_t e;
      while (ls >> e) {
        if (e >= system.graph.link_count()) fail("path uses unknown link");
        links.push_back(e);
      }
      if (links.empty()) fail("path has no links");
      raw_paths.push_back(std::move(links));
    } else if (tag == "corrset") {
      std::size_t id;
      if (!(ls >> id)) fail("malformed corrset line");
      if (id != system.partition.size()) fail("corrset ids must be dense");
      std::vector<LinkId> links;
      std::size_t e;
      while (ls >> e) {
        if (e >= system.graph.link_count()) fail("corrset uses unknown link");
        links.push_back(e);
      }
      if (links.empty()) fail("corrset has no links");
      system.partition.push_back(std::move(links));
    } else {
      fail("unknown tag '" + tag + "'");
    }
  }
  TOMO_REQUIRE(have_header, "topology file is empty or missing its header");
  system.paths.reserve(raw_paths.size());
  for (auto& links : raw_paths) {
    system.paths.emplace_back(system.graph, std::move(links));
  }
  if (!system.partition.empty()) {
    require_partition(system.graph, system.partition);
  }
  return system;
}

void save_system(const std::string& filename, const MeasuredSystem& system) {
  std::ofstream os(filename);
  TOMO_REQUIRE(os.good(), "cannot open " + filename + " for writing");
  write_system(os, system);
  TOMO_REQUIRE(os.good(), "failed writing " + filename);
}

MeasuredSystem load_system(const std::string& filename) {
  std::ifstream is(filename);
  TOMO_REQUIRE(is.good(), "cannot open " + filename);
  return read_system(is);
}

}  // namespace tomo::graph
