#include "graph/path.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace tomo::graph {

Path::Path(const Graph& g, std::vector<LinkId> links)
    : links_(std::move(links)) {
  TOMO_REQUIRE(!links_.empty(), "a path needs at least one link");
  std::unordered_set<NodeId> seen_nodes;
  std::unordered_set<LinkId> seen_links;
  const Link& first = g.link(links_[0]);
  source_ = first.src;
  seen_nodes.insert(first.src);
  NodeId cursor = first.src;
  for (LinkId id : links_) {
    const Link& link = g.link(id);
    TOMO_REQUIRE(link.src == cursor, "path links are not contiguous");
    TOMO_REQUIRE(seen_links.insert(id).second, "path repeats a link");
    TOMO_REQUIRE(seen_nodes.insert(link.dst).second, "path repeats a node");
    cursor = link.dst;
  }
  destination_ = cursor;
}

bool Path::traverses(LinkId link) const {
  return std::find(links_.begin(), links_.end(), link) != links_.end();
}

void require_full_coverage(const Graph& g, const std::vector<Path>& paths) {
  std::vector<bool> covered(g.link_count(), false);
  for (const Path& path : paths) {
    for (LinkId id : path.links()) {
      covered[id] = true;
    }
  }
  for (LinkId id = 0; id < covered.size(); ++id) {
    if (!covered[id]) {
      throw Error("link " + std::to_string(id) +
                  " is not traversed by any path");
    }
  }
}

}  // namespace tomo::graph
