#include "graph/coverage.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::graph {

CoverageIndex::CoverageIndex(const Graph& g, const std::vector<Path>& paths) {
  paths_through_.resize(g.link_count());
  path_links_.reserve(paths.size());
  for (PathId pid = 0; pid < paths.size(); ++pid) {
    path_links_.push_back(paths[pid].links());
    for (LinkId link : paths[pid].links()) {
      TOMO_REQUIRE(link < g.link_count(), "path references unknown link");
      paths_through_[link].push_back(pid);
    }
  }
  // Path ids are appended in increasing order, so each list is sorted and
  // duplicate-free already (a path never repeats a link).
  path_links_sorted_ = path_links_;
  for (auto& links : path_links_sorted_) {
    std::sort(links.begin(), links.end());
  }
}

const PathIdSet& CoverageIndex::paths_through(LinkId link) const {
  TOMO_REQUIRE(link < paths_through_.size(), "link id out of range");
  return paths_through_[link];
}

const std::vector<LinkId>& CoverageIndex::links_of(PathId path) const {
  TOMO_REQUIRE(path < path_links_.size(), "path id out of range");
  return path_links_[path];
}

const std::vector<LinkId>& CoverageIndex::sorted_links_of(PathId path) const {
  TOMO_REQUIRE(path < path_links_sorted_.size(), "path id out of range");
  return path_links_sorted_[path];
}

PathIdSet CoverageIndex::covered_paths(
    const std::vector<LinkId>& links) const {
  PathIdSet result;
  for (LinkId link : links) {
    result = path_set_union(result, paths_through(link));
  }
  return result;
}

bool CoverageIndex::all_links_covered() const {
  return std::all_of(paths_through_.begin(), paths_through_.end(),
                     [](const PathIdSet& s) { return !s.empty(); });
}

PathIdSet path_set_union(const PathIdSet& a, const PathIdSet& b) {
  PathIdSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace tomo::graph
