// Directed network graph.
//
// Nodes represent traffic-handling network elements (hosts, switches,
// routers, border routers); links are *logical* directed edges — an edge in
// the measured graph may stand for a whole sequence of physical links,
// which is exactly what makes link correlation possible (paper §2.1).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace tomo::graph {

using NodeId = std::size_t;
using LinkId = std::size_t;

/// A directed logical link between two network elements.
struct Link {
  NodeId src;
  NodeId dst;
};

class Graph {
 public:
  Graph() = default;

  /// Adds a node; `name` is optional and used only for diagnostics.
  NodeId add_node(std::string name = {});

  /// Adds a directed link src -> dst. Self-loops are rejected; parallel
  /// links are allowed (two logical links can join the same node pair).
  LinkId add_link(NodeId src, NodeId dst);

  std::size_t node_count() const { return node_names_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Link& link(LinkId id) const;
  const std::string& node_name(NodeId id) const;

  /// Link ids leaving / entering a node.
  const std::vector<LinkId>& out_links(NodeId id) const;
  const std::vector<LinkId>& in_links(NodeId id) const;

  /// First link src -> dst if one exists.
  std::optional<LinkId> find_link(NodeId src, NodeId dst) const;

 private:
  void check_node(NodeId id) const;

  std::vector<std::string> node_names_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
};

}  // namespace tomo::graph
