// Path-coverage function ψ (paper Eq. 1) and the link/path incidence index.
//
// ψ(A) maps a set of links to the set of paths traversing at least one of
// them. Identifiability (Assumption 4) and the theorem algorithm both hinge
// on comparing ψ over correlation subsets, so covered-path sets are
// represented as sorted PathId vectors usable as map keys.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace tomo::graph {

/// A canonical (sorted, deduplicated) set of path ids; the value of ψ(A).
using PathIdSet = std::vector<PathId>;

class CoverageIndex {
 public:
  CoverageIndex(const Graph& g, const std::vector<Path>& paths);

  std::size_t link_count() const { return paths_through_.size(); }
  std::size_t path_count() const { return path_links_.size(); }

  /// Paths traversing a single link, sorted ascending.
  const PathIdSet& paths_through(LinkId link) const;

  /// Links traversed by a path (in path order).
  const std::vector<LinkId>& links_of(PathId path) const;

  /// Links traversed by a path, sorted ascending. Precomputed once here so
  /// every equation build over this index (correlation + independence runs,
  /// demotion-round rebuilds) reuses the same rows instead of re-sorting
  /// per build.
  const std::vector<LinkId>& sorted_links_of(PathId path) const;

  /// ψ(A): the union of paths_through(e) over e in `links`.
  PathIdSet covered_paths(const std::vector<LinkId>& links) const;

  /// True iff every link is traversed by at least one path.
  bool all_links_covered() const;

 private:
  std::vector<PathIdSet> paths_through_;      // link -> sorted path ids
  std::vector<std::vector<LinkId>> path_links_;  // path -> links
  std::vector<std::vector<LinkId>> path_links_sorted_;
};

/// Set union of two canonical PathIdSets.
PathIdSet path_set_union(const PathIdSet& a, const PathIdSet& b);

}  // namespace tomo::graph
