#include "graph/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace tomo::graph {

std::vector<std::optional<LinkId>> shortest_path_tree(
    const Graph& g, NodeId src, const std::vector<double>& weights) {
  TOMO_REQUIRE(weights.empty() || weights.size() == g.link_count(),
               "weights must be empty or one per link");
  for (double w : weights) {
    TOMO_REQUIRE(w > 0.0, "link weights must be positive");
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.node_count(), inf);
  std::vector<std::optional<LinkId>> parent(g.node_count());
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[src] = 0.0;
  queue.emplace(0.0, src);
  while (!queue.empty()) {
    auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[node]) continue;
    for (LinkId id : g.out_links(node)) {
      const double w = weights.empty() ? 1.0 : weights[id];
      const NodeId next = g.link(id).dst;
      if (dist[node] + w < dist[next]) {
        dist[next] = dist[node] + w;
        parent[next] = id;
        queue.emplace(dist[next], next);
      }
    }
  }
  return parent;
}

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const std::vector<double>& weights) {
  if (src == dst) return std::nullopt;
  auto parent = shortest_path_tree(g, src, weights);
  if (!parent[dst]) return std::nullopt;
  std::vector<LinkId> links;
  NodeId cursor = dst;
  while (cursor != src) {
    const LinkId id = *parent[cursor];
    links.push_back(id);
    cursor = g.link(id).src;
  }
  std::reverse(links.begin(), links.end());
  return Path(g, std::move(links));
}

std::vector<Path> mesh_paths(const Graph& g,
                             const std::vector<NodeId>& endpoints,
                             const std::vector<double>& weights) {
  std::vector<Path> paths;
  for (NodeId src : endpoints) {
    auto parent = shortest_path_tree(g, src, weights);
    for (NodeId dst : endpoints) {
      if (src == dst || !parent[dst]) continue;
      std::vector<LinkId> links;
      NodeId cursor = dst;
      while (cursor != src) {
        const LinkId id = *parent[cursor];
        links.push_back(id);
        cursor = g.link(id).src;
      }
      std::reverse(links.begin(), links.end());
      paths.emplace_back(g, std::move(links));
    }
  }
  return paths;
}

}  // namespace tomo::graph
