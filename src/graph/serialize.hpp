// Plain-text serialization of measured systems (graph + paths + partition).
//
// Format (line-oriented, '#' comments allowed):
//   tomo-topology v1
//   node <id> <name>
//   link <id> <src-node> <dst-node>
//   path <id> <link-id>...
//   corrset <id> <link-id>...
// Ids must be dense and in order; this keeps the parser honest and the
// files diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "graph/transform.hpp"

namespace tomo::graph {

struct MeasuredSystem {
  Graph graph;
  std::vector<Path> paths;
  LinkPartition partition;  // may be empty (meaning: all singletons)
};

/// Writes the system in the v1 text format.
void write_system(std::ostream& os, const MeasuredSystem& system);

/// Parses the v1 text format; throws tomo::Error with a line number on any
/// syntax or referential error.
MeasuredSystem read_system(std::istream& is);

/// Convenience round-trips through files.
void save_system(const std::string& filename, const MeasuredSystem& system);
MeasuredSystem load_system(const std::string& filename);

}  // namespace tomo::graph
