// Measured end-to-end paths.
//
// A path is a loop-free sequence of links whose end-to-end congestion
// status can be observed (paper §2.1): contiguous, no repeated link, no
// repeated node.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace tomo::graph {

using PathId = std::size_t;

class Path {
 public:
  /// Validates contiguity and loop-freedom against `g`; throws tomo::Error
  /// on violation. The link list must be non-empty.
  Path(const Graph& g, std::vector<LinkId> links);

  const std::vector<LinkId>& links() const { return links_; }
  std::size_t length() const { return links_.size(); }

  NodeId source() const { return source_; }
  NodeId destination() const { return destination_; }

  bool traverses(LinkId link) const;

 private:
  std::vector<LinkId> links_;
  NodeId source_;
  NodeId destination_;
};

/// Checks the paper's structural preconditions for a measured system:
/// every link participates in at least one path. Throws tomo::Error naming
/// the first offending link otherwise.
void require_full_coverage(const Graph& g, const std::vector<Path>& paths);

}  // namespace tomo::graph
