#include "graph/transform.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "util/error.hpp"

namespace tomo::graph {

void require_partition(const Graph& g, const LinkPartition& partition) {
  std::vector<int> seen(g.link_count(), 0);
  for (const auto& cell : partition) {
    TOMO_REQUIRE(!cell.empty(), "partition contains an empty cell");
    for (LinkId id : cell) {
      TOMO_REQUIRE(id < g.link_count(), "partition references unknown link");
      TOMO_REQUIRE(seen[id] == 0, "partition assigns a link twice");
      seen[id] = 1;
    }
  }
  for (LinkId id = 0; id < g.link_count(); ++id) {
    TOMO_REQUIRE(seen[id] == 1,
                 "partition misses link " + std::to_string(id));
  }
}

namespace {

// Working representation: everything indexed by "current link index", with
// node ids stable throughout (a removed node simply loses all its links).
struct Work {
  std::vector<Link> links;
  std::vector<std::vector<std::size_t>> paths;        // link indices
  std::vector<std::size_t> cell_of;                   // link -> cell id
  std::vector<std::vector<LinkId>> composition;       // link -> originals
  std::size_t cell_count = 0;
};

/// Finds a node whose ingress links all share one cell and egress links all
/// share one cell, and which is not a path endpoint. Returns node or npos.
std::size_t find_mergeable(const Work& w, std::size_t node_count,
                           const std::unordered_set<NodeId>& endpoints) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> in(node_count), out(node_count);
  for (std::size_t i = 0; i < w.links.size(); ++i) {
    out[w.links[i].src].push_back(i);
    in[w.links[i].dst].push_back(i);
  }
  for (NodeId v = 0; v < node_count; ++v) {
    if (endpoints.count(v)) continue;
    if (in[v].empty() || out[v].empty()) continue;
    const std::size_t in_cell = w.cell_of[in[v][0]];
    const std::size_t out_cell = w.cell_of[out[v][0]];
    bool uniform = true;
    for (std::size_t i : in[v]) uniform &= (w.cell_of[i] == in_cell);
    for (std::size_t i : out[v]) uniform &= (w.cell_of[i] == out_cell);
    if (uniform) return v;
  }
  return npos;
}

/// Removes node v from the working set, replacing each (in-link, out-link)
/// pair used by a path with a merged link, and fusing the two cells.
void merge_at(Work& w, NodeId v) {
  const std::size_t old_count = w.links.size();

  // Identify the fused cell: union of the ingress cell and egress cell.
  std::size_t in_cell = static_cast<std::size_t>(-1);
  std::size_t out_cell = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < old_count; ++i) {
    if (w.links[i].dst == v) in_cell = w.cell_of[i];
    if (w.links[i].src == v) out_cell = w.cell_of[i];
  }
  TOMO_ASSERT(in_cell != static_cast<std::size_t>(-1));
  TOMO_ASSERT(out_cell != static_cast<std::size_t>(-1));
  const std::size_t fused = std::min(in_cell, out_cell);
  const std::size_t absorbed = std::max(in_cell, out_cell);

  // Create merged links lazily, one per (in-link, out-link) pair that some
  // path actually traverses.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> merged_ids;
  std::vector<Link> new_links = w.links;
  std::vector<std::size_t> new_cells = w.cell_of;
  std::vector<std::vector<LinkId>> new_comp = w.composition;
  auto merged_link = [&](std::size_t a, std::size_t b) {
    auto it = merged_ids.find({a, b});
    if (it != merged_ids.end()) return it->second;
    new_links.push_back(Link{w.links[a].src, w.links[b].dst});
    new_cells.push_back(fused);
    std::vector<LinkId> comp = w.composition[a];
    comp.insert(comp.end(), w.composition[b].begin(),
                w.composition[b].end());
    new_comp.push_back(std::move(comp));
    const std::size_t id = new_links.size() - 1;
    merged_ids.emplace(std::make_pair(a, b), id);
    return id;
  };

  // Rewrite paths: each passage through v pairs the arriving link with the
  // departing link.
  for (auto& path : w.paths) {
    std::vector<std::size_t> rewritten;
    rewritten.reserve(path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      const std::size_t id = path[i];
      if (w.links[id].dst == v) {
        TOMO_ASSERT(i + 1 < path.size());  // v is not an endpoint
        TOMO_ASSERT(w.links[path[i + 1]].src == v);
        rewritten.push_back(merged_link(id, path[i + 1]));
        ++i;  // consume the departing link as well
      } else {
        TOMO_ASSERT(w.links[id].src != v || i == 0);
        rewritten.push_back(id);
      }
    }
    path = std::move(rewritten);
  }

  // Drop links adjacent to v and compact indices.
  std::vector<std::size_t> remap(new_links.size(),
                                 static_cast<std::size_t>(-1));
  Work next;
  next.cell_count = w.cell_count;
  for (std::size_t i = 0; i < new_links.size(); ++i) {
    if (new_links[i].src == v || new_links[i].dst == v) continue;
    remap[i] = next.links.size();
    next.links.push_back(new_links[i]);
    std::size_t cell = new_cells[i];
    if (cell == absorbed) cell = fused;
    next.cell_of.push_back(cell);
    next.composition.push_back(std::move(new_comp[i]));
  }
  next.paths.reserve(w.paths.size());
  for (const auto& path : w.paths) {
    std::vector<std::size_t> mapped;
    mapped.reserve(path.size());
    for (std::size_t id : path) {
      TOMO_ASSERT(remap[id] != static_cast<std::size_t>(-1));
      mapped.push_back(remap[id]);
    }
    next.paths.push_back(std::move(mapped));
  }
  w = std::move(next);
}

}  // namespace

MergeResult merge_indistinguishable(const Graph& g,
                                    const std::vector<Path>& paths,
                                    const LinkPartition& partition) {
  require_partition(g, partition);

  Work w;
  w.links.reserve(g.link_count());
  for (LinkId id = 0; id < g.link_count(); ++id) {
    w.links.push_back(g.link(id));
    w.composition.push_back({id});
  }
  w.cell_of.assign(g.link_count(), 0);
  for (std::size_t cell = 0; cell < partition.size(); ++cell) {
    for (LinkId id : partition[cell]) {
      w.cell_of[id] = cell;
    }
  }
  w.cell_count = partition.size();
  for (const Path& p : paths) {
    w.paths.emplace_back(p.links().begin(), p.links().end());
  }

  std::unordered_set<NodeId> endpoints;
  for (const Path& p : paths) {
    endpoints.insert(p.source());
    endpoints.insert(p.destination());
  }

  MergeResult result;
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  for (;;) {
    const std::size_t v = find_mergeable(w, g.node_count(), endpoints);
    if (v == npos) break;
    merge_at(w, v);
    result.removed_nodes.push_back(v);
    ++result.merge_rounds;
  }

  // Drop links no path uses (can appear when an unused link was adjacent to
  // nothing mergeable), then materialize the result.
  std::vector<bool> used(w.links.size(), false);
  for (const auto& path : w.paths) {
    for (std::size_t id : path) used[id] = true;
  }
  std::vector<std::size_t> remap(w.links.size(), npos);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    result.graph.add_node(g.node_name(v));
  }
  std::vector<std::size_t> final_cell;
  for (std::size_t i = 0; i < w.links.size(); ++i) {
    if (!used[i]) continue;
    remap[i] = result.graph.add_link(w.links[i].src, w.links[i].dst);
    result.composition.push_back(w.composition[i]);
    final_cell.push_back(w.cell_of[i]);
  }
  for (const auto& path : w.paths) {
    std::vector<LinkId> links;
    links.reserve(path.size());
    for (std::size_t id : path) links.push_back(remap[id]);
    result.paths.emplace_back(result.graph, std::move(links));
  }
  // Compact the partition: cells in first-seen order, empties dropped.
  std::map<std::size_t, std::size_t> cell_remap;
  for (std::size_t i = 0; i < final_cell.size(); ++i) {
    auto [it, inserted] =
        cell_remap.emplace(final_cell[i], result.partition.size());
    if (inserted) result.partition.emplace_back();
    result.partition[it->second].push_back(i);
  }
  return result;
}

}  // namespace tomo::graph
