#include "graph/graph.hpp"

#include "util/error.hpp"

namespace tomo::graph {

NodeId Graph::add_node(std::string name) {
  if (name.empty()) {
    name = "v" + std::to_string(node_names_.size());
  }
  node_names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return node_names_.size() - 1;
}

LinkId Graph::add_link(NodeId src, NodeId dst) {
  check_node(src);
  check_node(dst);
  TOMO_REQUIRE(src != dst, "self-loop links are not allowed");
  links_.push_back(Link{src, dst});
  const LinkId id = links_.size() - 1;
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

const Link& Graph::link(LinkId id) const {
  TOMO_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

const std::string& Graph::node_name(NodeId id) const {
  check_node(id);
  return node_names_[id];
}

const std::vector<LinkId>& Graph::out_links(NodeId id) const {
  check_node(id);
  return out_[id];
}

const std::vector<LinkId>& Graph::in_links(NodeId id) const {
  check_node(id);
  return in_[id];
}

std::optional<LinkId> Graph::find_link(NodeId src, NodeId dst) const {
  check_node(src);
  check_node(dst);
  for (LinkId id : out_[src]) {
    if (links_[id].dst == dst) {
      return id;
    }
  }
  return std::nullopt;
}

void Graph::check_node(NodeId id) const {
  TOMO_REQUIRE(id < node_names_.size(), "node id out of range");
}

}  // namespace tomo::graph
