// The link-merge transformation of paper §3.3.
//
// When an intermediate node has all its ingress links inside one partition
// cell and all its egress links inside one cell, the correlation subsets
// formed by those links cover exactly the same paths and Assumption 4
// fails. The paper's remedy removes such a node and replaces each
// (ingress, egress) pair traversed by a path with a single merged link; the
// two cells fuse. The result is a coarser but identifiable topology.
//
// The transformation is expressed over an arbitrary link partition so the
// graph layer stays independent of the correlation layer.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace tomo::graph {

using LinkPartition = std::vector<std::vector<LinkId>>;

struct MergeResult {
  Graph graph;                 // transformed graph
  std::vector<Path> paths;     // rewritten paths (same order as input)
  LinkPartition partition;     // transformed partition
  // For each new link, the original links it is composed of (in path
  // order for merged links; a single element for untouched links).
  std::vector<std::vector<LinkId>> composition;
  // Names of removed nodes (diagnostic).
  std::vector<NodeId> removed_nodes;
  std::size_t merge_rounds = 0;
};

/// Validates that `partition` is a partition of the links of `g`.
void require_partition(const Graph& g, const LinkPartition& partition);

/// Applies the merge transformation to fixpoint. Links not traversed by
/// any path are dropped. Path endpoints are never removed.
MergeResult merge_indistinguishable(const Graph& g,
                                    const std::vector<Path>& paths,
                                    const LinkPartition& partition);

}  // namespace tomo::graph
