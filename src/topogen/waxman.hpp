// Waxman random-geometric generator (BRITE's router-level mode).
//
// Nodes are placed uniformly in the unit square; each pair is joined with
// probability alpha * exp(-d / (beta * L)), L = sqrt(2). To guarantee a
// connected result (probes must route), every node is additionally joined
// to its nearest already-placed neighbour.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace tomo::topogen {

struct WaxmanParams {
  double alpha = 0.15;
  double beta = 0.2;
};

std::vector<std::pair<std::size_t, std::size_t>> waxman_edges(
    std::size_t nodes, const WaxmanParams& params, Rng& rng);

}  // namespace tomo::topogen
