// Barabási-Albert preferential-attachment generator.
//
// BRITE's AS-level mode is a BA construction; this is the stand-in for the
// paper's AS-level topologies. The generator returns an undirected edge
// list over `nodes` vertices; helpers convert it to a directed Graph with
// one link per direction (measured links are directed).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace tomo::topogen {

/// Undirected BA graph: starts from a small clique, then each new node
/// attaches to `edges_per_node` distinct existing nodes with probability
/// proportional to degree. Requires nodes > edges_per_node >= 1.
std::vector<std::pair<std::size_t, std::size_t>> barabasi_albert_edges(
    std::size_t nodes, std::size_t edges_per_node, Rng& rng);

/// Materializes an undirected edge list as a directed Graph with links in
/// both directions. Node names get the given prefix.
graph::Graph to_directed_graph(
    std::size_t nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    const std::string& name_prefix = "as");

}  // namespace tomo::topogen
