#include "topogen/traceroute.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace tomo::topogen {

graph::MeasuredSystem parse_traceroutes(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) -> void {
    throw Error("traceroute line " + std::to_string(line_no) + ": " + what);
  };

  std::vector<std::vector<std::string>> traces;
  std::map<std::string, long> as_of;
  std::set<std::vector<std::string>> seen_traces;

  while (std::getline(is, line)) {
    ++line_no;
    // Dumps written on Windows (or fetched through HTTP) arrive with CRLF
    // endings; getline leaves the '\r' on the line. Strip it — and any
    // other trailing whitespace — so the last token of a line never grows
    // a phantom control character.
    const auto last = line.find_last_not_of(" \t\r\f\v");
    line.erase(last == std::string::npos ? 0 : last + 1);
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (tag == "trace") {
      std::vector<std::string> hops;
      std::string hop;
      while (ls >> hop) hops.push_back(hop);
      if (hops.size() < 2) fail("trace needs at least two hops");
      std::set<std::string> unique;
      for (const std::string& h : hops) {
        if (!unique.insert(h).second) {
          fail("trace revisits hop '" + h + "' (routing loop)");
        }
      }
      if (seen_traces.insert(hops).second) {
        traces.push_back(std::move(hops));
      }
    } else if (tag == "asn") {
      std::string hop;
      long asn;
      if (!(ls >> hop >> asn)) fail("malformed asn line");
      auto [it, inserted] = as_of.emplace(hop, asn);
      if (!inserted && it->second != asn) {
        fail("hop '" + hop + "' mapped to two AS numbers");
      }
    } else {
      fail("unknown tag '" + tag + "'");
    }
  }
  TOMO_REQUIRE(!traces.empty(), "traceroute input contains no traces");

  graph::MeasuredSystem system;
  std::map<std::string, graph::NodeId> node_of;
  auto node = [&](const std::string& name) {
    auto it = node_of.find(name);
    if (it != node_of.end()) return it->second;
    const graph::NodeId id = system.graph.add_node(name);
    node_of.emplace(name, id);
    return id;
  };

  std::map<std::pair<graph::NodeId, graph::NodeId>, graph::LinkId> link_of;
  std::vector<std::pair<std::string, std::string>> link_hops;
  auto link = [&](graph::NodeId src, graph::NodeId dst,
                  const std::string& hs, const std::string& hd) {
    auto it = link_of.find({src, dst});
    if (it != link_of.end()) return it->second;
    const graph::LinkId id = system.graph.add_link(src, dst);
    link_of.emplace(std::make_pair(src, dst), id);
    link_hops.emplace_back(hs, hd);
    return id;
  };

  for (const auto& hops : traces) {
    std::vector<graph::LinkId> links;
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      links.push_back(
          link(node(hops[i]), node(hops[i + 1]), hops[i], hops[i + 1]));
    }
    system.paths.emplace_back(system.graph, std::move(links));
  }

  // Correlation sets: links whose two endpoints share an AS are grouped by
  // that AS; everything else is a singleton.
  std::map<long, std::vector<graph::LinkId>> by_as;
  std::vector<graph::LinkId> singles;
  for (graph::LinkId e = 0; e < system.graph.link_count(); ++e) {
    const auto& [hs, hd] = link_hops[e];
    auto a = as_of.find(hs);
    auto b = as_of.find(hd);
    if (a != as_of.end() && b != as_of.end() && a->second == b->second) {
      by_as[a->second].push_back(e);
    } else {
      singles.push_back(e);
    }
  }
  for (auto& [asn, links] : by_as) {
    system.partition.push_back(std::move(links));
  }
  for (graph::LinkId e : singles) {
    system.partition.push_back({e});
  }
  return system;
}

graph::MeasuredSystem load_traceroutes(const std::string& filename) {
  std::ifstream is(filename);
  TOMO_REQUIRE(is.good(), "cannot open " + filename);
  return parse_traceroutes(is);
}

}  // namespace tomo::topogen
