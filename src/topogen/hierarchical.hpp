// Brite-substitute hierarchical (AS + router level) topology generator.
//
// The measured graph is an AS-level Barabási-Albert topology; unicast
// probes are routed between vantage ASes along jittered shortest paths.
// Each measured (AS-level) link is backed by a sequence of router-level
// links inside its endpoint ASes:
//
//   core_u -> border_u[i]   shared by all AS links leaving u via border i
//   border_u[i] -> border_v[j]   dedicated inter-AS link
//   border_v[j] -> core_v   dedicated per measured link (ingress side)
//
// Two AS-level links are correlated iff they share a router-level link —
// the paper's Brite derivation. Sharing only on the egress side keeps each
// correlation set equal to one egress border group, so set sizes stay
// bounded by `max_corrset_size` (border groups are chunked when an AS has
// very high degree).
#pragma once

#include <cstdint>

#include "topogen/generated.hpp"
#include "util/rng.hpp"

namespace tomo::topogen {

struct HierarchicalParams {
  std::size_t as_nodes = 60;
  std::size_t ba_edges_per_node = 2;
  std::size_t borders_per_as = 2;
  std::size_t max_corrset_size = 8;
  std::size_t endpoints = 16;  // vantage ASes for the measurement mesh
  /// Probability that a measured link's bottleneck segment lies on a
  /// *shared* fabric of one of its endpoint ASes (otherwise it is a
  /// dedicated segment and the link is uncorrelated with everything).
  double fabric_prob = 0.5;
  std::uint64_t seed = 1;
};

GeneratedTopology generate_hierarchical(const HierarchicalParams& params);

}  // namespace tomo::topogen
