#include "topogen/waxman.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tomo::topogen {

std::vector<std::pair<std::size_t, std::size_t>> waxman_edges(
    std::size_t nodes, const WaxmanParams& params, Rng& rng) {
  TOMO_REQUIRE(nodes >= 2, "waxman needs at least two nodes");
  TOMO_REQUIRE(params.alpha > 0.0 && params.alpha <= 1.0,
               "waxman alpha must be in (0,1]");
  TOMO_REQUIRE(params.beta > 0.0, "waxman beta must be positive");

  std::vector<double> x(nodes), y(nodes);
  for (std::size_t v = 0; v < nodes; ++v) {
    x[v] = rng.uniform();
    y[v] = rng.uniform();
  }
  auto distance = [&](std::size_t a, std::size_t b) {
    const double dx = x[a] - x[b];
    const double dy = y[a] - y[b];
    return std::sqrt(dx * dx + dy * dy);
  };
  const double scale = std::sqrt(2.0);

  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::vector<std::vector<bool>> connected(nodes,
                                           std::vector<bool>(nodes, false));
  auto add_edge = [&](std::size_t a, std::size_t b) {
    if (a == b || connected[a][b]) return;
    connected[a][b] = connected[b][a] = true;
    edges.emplace_back(a, b);
  };

  // Connectivity spine: each node links to its nearest predecessor.
  for (std::size_t v = 1; v < nodes; ++v) {
    std::size_t nearest = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < v; ++u) {
      const double d = distance(u, v);
      if (d < best) {
        best = d;
        nearest = u;
      }
    }
    add_edge(nearest, v);
  }

  for (std::size_t a = 0; a < nodes; ++a) {
    for (std::size_t b = a + 1; b < nodes; ++b) {
      const double p =
          params.alpha * std::exp(-distance(a, b) / (params.beta * scale));
      if (rng.bernoulli(p)) {
        add_edge(a, b);
      }
    }
  }
  return edges;
}

}  // namespace tomo::topogen
