#include "topogen/planetlab_like.hpp"

#include <sstream>

#include "graph/routing.hpp"
#include "topogen/barabasi_albert.hpp"
#include "util/error.hpp"

namespace tomo::topogen {

GeneratedTopology generate_planetlab_like(const PlanetLabParams& params) {
  TOMO_REQUIRE(params.vantage_points >= 2, "need at least two vantage points");
  TOMO_REQUIRE(params.vantage_points <= params.routers,
               "more vantage points than routers");
  TOMO_REQUIRE(params.cluster_size >= 1, "cluster size must be positive");
  Rng rng(mix_seed(params.seed, /*tag=*/0x506c616eULL));  // "Plan"

  const auto edges = waxman_edges(params.routers, params.waxman, rng);
  graph::Graph router_graph =
      to_directed_graph(params.routers, edges, "r");

  std::vector<double> weights(router_graph.link_count());
  for (double& w : weights) {
    w = 1.0 + 0.05 * rng.uniform();
  }
  const std::vector<std::size_t> vantage_idx = rng.sample_without_replacement(
      params.routers, params.vantage_points);
  std::vector<graph::NodeId> vantages(vantage_idx.begin(),
                                      vantage_idx.end());
  std::vector<graph::Path> raw_paths =
      graph::mesh_paths(router_graph, vantages, weights);
  TOMO_REQUIRE(!raw_paths.empty(), "mesh produced no paths");

  PrunedSystem pruned = prune_to_covered(router_graph, raw_paths);

  GeneratedTopology out;
  out.graph = std::move(pruned.graph);
  out.paths = std::move(pruned.paths);
  out.partition = fabric_site_clusters(out.graph, params.cluster_size,
                                       params.fabric_prob, rng);

  std::ostringstream desc;
  desc << "planetlab-like(routers=" << params.routers << ", vantage="
       << params.vantage_points << "): " << out.graph.link_count()
       << " links, " << out.paths.size() << " paths, "
       << out.partition.size() << " correlation sets";
  out.description = desc.str();
  return out;
}

}  // namespace tomo::topogen
