#include "topogen/flat_mesh.hpp"

#include <sstream>

#include "graph/routing.hpp"
#include "topogen/barabasi_albert.hpp"
#include "util/error.hpp"

namespace tomo::topogen {

GeneratedTopology generate_flat_mesh(const FlatMeshParams& params) {
  TOMO_REQUIRE(params.vantage_points >= 2, "need at least two vantage points");
  TOMO_REQUIRE(params.vantage_points <= params.nodes,
               "more vantage points than nodes");
  TOMO_REQUIRE(params.cluster_size >= 1, "cluster size must be positive");
  Rng rng(mix_seed(params.seed, /*tag=*/0x466c6174ULL));  // "Flat"

  const bool waxman = params.model == FlatMeshParams::EdgeModel::kWaxman;
  const auto edges =
      waxman ? waxman_edges(params.nodes, params.waxman, rng)
             : barabasi_albert_edges(params.nodes, params.ba_edges_per_node,
                                     rng);
  graph::Graph base_graph =
      to_directed_graph(params.nodes, edges, waxman ? "w" : "ba");

  std::vector<double> weights(base_graph.link_count());
  for (double& w : weights) {
    w = 1.0 + 0.05 * rng.uniform();
  }
  const std::vector<std::size_t> vantage_idx = rng.sample_without_replacement(
      params.nodes, params.vantage_points);
  std::vector<graph::NodeId> vantages(vantage_idx.begin(), vantage_idx.end());
  std::vector<graph::Path> raw_paths =
      graph::mesh_paths(base_graph, vantages, weights);
  TOMO_REQUIRE(!raw_paths.empty(), "mesh produced no paths");

  PrunedSystem pruned = prune_to_covered(base_graph, raw_paths);

  GeneratedTopology out;
  out.graph = std::move(pruned.graph);
  out.paths = std::move(pruned.paths);
  out.partition = fabric_site_clusters(out.graph, params.cluster_size,
                                       params.fabric_prob, rng);

  std::ostringstream desc;
  desc << (waxman ? "waxman-mesh" : "ba-mesh") << "(nodes=" << params.nodes
       << ", vantage=" << params.vantage_points << "): "
       << out.graph.link_count() << " links, " << out.paths.size()
       << " paths, " << out.partition.size() << " correlation sets";
  out.description = desc.str();
  return out;
}

}  // namespace tomo::topogen
