// Traceroute ingestion (stands in for the paper's PlanetLab tomographer).
//
// Parses a simple text dump of traceroute-discovered paths and an optional
// router->AS mapping, and builds a measured system whose correlation sets
// group links by administrative domain — the paper's "all links in the same
// AS are correlated" deployment mode (§5, Ongoing Work).
//
// Input format, line oriented, '#' comments:
//   trace <hop> <hop> <hop> ...     # one traceroute, >= 2 hops
//   asn <hop> <as-number>           # router-to-AS assignment
//
// Hops are arbitrary tokens (hostnames or addresses). Consecutive distinct
// hops become directed links. Traces with repeated hops (routing loops) are
// rejected. A link is assigned to AS a's correlation set when *both* of its
// endpoints map to AS a; links crossing domains (or with unmapped ends)
// become singleton sets.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/serialize.hpp"

namespace tomo::topogen {

/// Parses the traceroute dump into a measured system. Duplicate traces
/// (identical hop sequences) are collapsed into one path. Throws
/// tomo::Error with line numbers on malformed input.
graph::MeasuredSystem parse_traceroutes(std::istream& is);

/// File convenience wrapper.
graph::MeasuredSystem load_traceroutes(const std::string& filename);

}  // namespace tomo::topogen
