#include "topogen/generated.hpp"

#include "util/error.hpp"

namespace tomo::topogen {

graph::LinkPartition fabric_site_clusters(const graph::Graph& g,
                                          std::size_t target,
                                          double fabric_prob, Rng& rng) {
  std::vector<std::vector<graph::LinkId>> owned(g.node_count());
  graph::LinkPartition partition;
  for (graph::LinkId e = 0; e < g.link_count(); ++e) {
    const graph::Link& link = g.link(e);
    if (rng.bernoulli(fabric_prob)) {
      owned[rng.bernoulli(0.5) ? link.src : link.dst].push_back(e);
    } else {
      partition.push_back({e});  // dedicated bottleneck: singleton
    }
  }
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::vector<graph::LinkId> pending;
    for (graph::LinkId e : owned[v]) {
      pending.push_back(e);
      if (pending.size() == target) {
        partition.push_back(std::move(pending));
        pending.clear();
      }
    }
    if (!pending.empty()) {
      partition.push_back(std::move(pending));
    }
  }
  return partition;
}

PrunedSystem prune_to_covered(const graph::Graph& g,
                              const std::vector<graph::Path>& paths) {
  std::vector<bool> used(g.link_count(), false);
  for (const graph::Path& p : paths) {
    for (graph::LinkId e : p.links()) {
      used[e] = true;
    }
  }
  PrunedSystem out;
  out.link_map.assign(g.link_count(), PrunedSystem::npos);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    out.graph.add_node(g.node_name(v));
  }
  for (graph::LinkId e = 0; e < g.link_count(); ++e) {
    if (!used[e]) continue;
    out.link_map[e] = out.graph.add_link(g.link(e).src, g.link(e).dst);
  }
  out.paths.reserve(paths.size());
  for (const graph::Path& p : paths) {
    std::vector<graph::LinkId> links;
    links.reserve(p.length());
    for (graph::LinkId e : p.links()) {
      TOMO_ASSERT(out.link_map[e] != PrunedSystem::npos);
      links.push_back(out.link_map[e]);
    }
    out.paths.emplace_back(out.graph, std::move(links));
  }
  return out;
}

}  // namespace tomo::topogen
