#include "topogen/generated.hpp"

#include "util/error.hpp"

namespace tomo::topogen {

PrunedSystem prune_to_covered(const graph::Graph& g,
                              const std::vector<graph::Path>& paths) {
  std::vector<bool> used(g.link_count(), false);
  for (const graph::Path& p : paths) {
    for (graph::LinkId e : p.links()) {
      used[e] = true;
    }
  }
  PrunedSystem out;
  out.link_map.assign(g.link_count(), PrunedSystem::npos);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    out.graph.add_node(g.node_name(v));
  }
  for (graph::LinkId e = 0; e < g.link_count(); ++e) {
    if (!used[e]) continue;
    out.link_map[e] = out.graph.add_link(g.link(e).src, g.link(e).dst);
  }
  out.paths.reserve(paths.size());
  for (const graph::Path& p : paths) {
    std::vector<graph::LinkId> links;
    links.reserve(p.length());
    for (graph::LinkId e : p.links()) {
      TOMO_ASSERT(out.link_map[e] != PrunedSystem::npos);
      links.push_back(out.link_map[e]);
    }
    out.paths.emplace_back(out.graph, std::move(links));
  }
  return out;
}

}  // namespace tomo::topogen
