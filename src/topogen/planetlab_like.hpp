// PlanetLab-substitute topology generator.
//
// The paper's PlanetLab topologies were built by tracerouting between
// PlanetLab nodes and assigning links to correlation sets formed by
// contiguous clusters of links. We reproduce the same structure
// synthetically: vantage hosts on a Waxman router-level graph, a full mesh
// of shortest-path "traceroutes", pruning to observed links, and
// correlation sets grown as contiguous link clusters.
#pragma once

#include <cstdint>

#include "topogen/generated.hpp"
#include "topogen/waxman.hpp"

namespace tomo::topogen {

struct PlanetLabParams {
  std::size_t routers = 150;
  std::size_t vantage_points = 14;
  std::size_t cluster_size = 5;  // target correlation-set size
  /// Probability that a link's bottleneck lies on a shared site fabric
  /// (otherwise the link is its own singleton correlation set).
  double fabric_prob = 0.5;
  WaxmanParams waxman;
  std::uint64_t seed = 1;
};

GeneratedTopology generate_planetlab_like(const PlanetLabParams& params);

}  // namespace tomo::topogen
