#include "topogen/hierarchical.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "graph/routing.hpp"
#include "topogen/barabasi_albert.hpp"
#include "util/error.hpp"

namespace tomo::topogen {

GeneratedTopology generate_hierarchical(const HierarchicalParams& params) {
  TOMO_REQUIRE(params.endpoints >= 2, "need at least two vantage ASes");
  TOMO_REQUIRE(params.endpoints <= params.as_nodes,
               "more vantage ASes than ASes");
  TOMO_REQUIRE(params.borders_per_as >= 1, "need at least one border per AS");
  TOMO_REQUIRE(params.max_corrset_size >= 2,
               "correlation sets of size < 2 carry no correlation");
  Rng rng(mix_seed(params.seed, /*tag=*/0x42726974ULL));  // "Brit"

  // 1. AS-level graph.
  const auto edges =
      barabasi_albert_edges(params.as_nodes, params.ba_edges_per_node, rng);
  graph::Graph as_graph = to_directed_graph(params.as_nodes, edges, "as");

  // 2. Measurement mesh between vantage ASes over jittered shortest paths
  //    (the jitter diversifies routes the way hot-potato quirks would).
  std::vector<double> weights(as_graph.link_count());
  for (double& w : weights) {
    w = 1.0 + 0.05 * rng.uniform();
  }
  const std::vector<std::size_t> vantage_idx =
      rng.sample_without_replacement(params.as_nodes, params.endpoints);
  std::vector<graph::NodeId> vantages(vantage_idx.begin(), vantage_idx.end());
  std::vector<graph::Path> raw_paths =
      graph::mesh_paths(as_graph, vantages, weights);
  TOMO_REQUIRE(!raw_paths.empty(), "mesh produced no paths");

  // 3. Keep only covered links.
  PrunedSystem pruned = prune_to_covered(as_graph, raw_paths);

  GeneratedTopology out;
  out.graph = std::move(pruned.graph);
  out.paths = std::move(pruned.paths);

  // 4. Router-level substrate. Each AS owns a set of internal "fabric"
  //    router links (switch fabrics / core segments, the gray elements of
  //    the paper's Figure 2). A measured link crosses the fabric of one of
  //    its two endpoint ASes (whichever side the bottleneck segment
  //    happens to sit on), joining a fabric chunk there; chunks are capped
  //    at max_corrset_size. All measured links of one chunk share that
  //    router link — including *consecutive* links of a path traversing
  //    the AS, which is what correlates links along paths, not just across
  //    them.
  std::size_t next_router_link = 0;
  // Per-AS fabric bookkeeping, indexed directly by chunk id. (This used to
  // be two std::maps keyed by (as, chunk): at 2k-10k AS nodes the
  // per-link tree walks and node allocations turned the fabric assignment
  // superlinear. Chunk ids grow in steps of borders_per_as from a base
  // below it, so a plain per-node vector addresses them exactly; shared
  // router-link ids are handed out at first touch, in the same order as
  // the historical map insertion — output is byte-identical.)
  constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();
  struct FabricChunk {
    std::size_t fill = 0;
    std::size_t shared = kUnassigned;
  };
  std::vector<std::vector<FabricChunk>> fabric(out.graph.node_count());
  out.underlying.resize(out.graph.link_count());
  for (graph::LinkId e = 0; e < out.graph.link_count(); ++e) {
    const graph::Link& link = out.graph.link(e);
    if (rng.bernoulli(params.fabric_prob)) {
      const graph::NodeId side = rng.bernoulli(0.5) ? link.src : link.dst;
      // Spread the AS's links over borders_per_as parallel fabric groups,
      // then cap each group chunk at max_corrset_size.
      const std::size_t base_group = rng.below(params.borders_per_as);
      std::vector<FabricChunk>& chunks = fabric[side];
      for (std::size_t chunk = base_group;; chunk += params.borders_per_as) {
        if (chunk >= chunks.size()) chunks.resize(chunk + 1);
        FabricChunk& fc = chunks[chunk];
        if (fc.fill < params.max_corrset_size) {
          ++fc.fill;
          if (fc.shared == kUnassigned) fc.shared = next_router_link++;
          out.underlying[e].push_back(fc.shared);
          break;
        }
      }
    } else {
      // Dedicated bottleneck segment: correlated with nothing.
      out.underlying[e].push_back(next_router_link++);
    }
    // Dedicated inter-AS and far-side router links.
    out.underlying[e].push_back(next_router_link++);
    out.underlying[e].push_back(next_router_link++);
  }
  out.router_link_count = next_router_link;

  // 5. Correlation sets = connected components of the sharing graph. With
  //    one shared underlying link per measured link, components are
  //    precisely the fabric chunks. Bottleneck router-link ids are handed
  //    out in increasing order above, so a vector indexed by id replaces
  //    the historical ordered map (cells emitted in the same ascending-id
  //    order; slots of purely dedicated ids stay empty and are skipped).
  std::vector<std::vector<graph::LinkId>> groups(next_router_link);
  for (graph::LinkId e = 0; e < out.graph.link_count(); ++e) {
    groups[out.underlying[e][0]].push_back(e);
  }
  for (std::vector<graph::LinkId>& members : groups) {
    if (!members.empty()) out.partition.push_back(std::move(members));
  }

  std::ostringstream desc;
  desc << "hierarchical(as=" << params.as_nodes << ", vantage="
       << params.endpoints << "): " << out.graph.link_count() << " links, "
       << out.paths.size() << " paths, " << out.partition.size()
       << " correlation sets, " << out.router_link_count << " router links";
  out.description = desc.str();
  return out;
}

}  // namespace tomo::topogen
