// Common result type of the topology generators, plus the prune utility.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "graph/transform.hpp"
#include "util/rng.hpp"

namespace tomo::topogen {

/// A generated measured system: graph, measured paths, correlation sets,
/// and (for hierarchical generators) the router-level substrate that
/// explains the correlation.
struct GeneratedTopology {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  graph::LinkPartition partition;

  /// Router-level link ids underlying each measured link (empty when the
  /// generator has no two-level structure).
  std::vector<std::vector<std::size_t>> underlying;
  std::size_t router_link_count = 0;

  std::string description;
};

/// Partitions links into "site" clusters of at most `target` links. Each
/// link is owned by one of its two endpoint nodes (chosen at random — the
/// side whose hidden switch fabric carries its bottleneck segment, the LAN
/// picture of the paper's Figure 2(a)); a node's owned links are chunked
/// into clusters of the target size. A cluster therefore mixes links
/// entering and leaving one site: correlated links can be parallel
/// (fan-in/fan-out) or consecutive along a path crossing the site. Links
/// that miss the fabric_prob draw get dedicated (singleton) sets.
graph::LinkPartition fabric_site_clusters(const graph::Graph& g,
                                          std::size_t target,
                                          double fabric_prob, Rng& rng);

/// Restricts a graph to the links covered by `paths` (the paper requires
/// every link to participate in a path; generators route first and then
/// drop dark links). Returns the new graph, rewritten paths, and the map
/// old-link -> new-link (size = old link count, npos for dropped links).
struct PrunedSystem {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  std::vector<std::size_t> link_map;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};
PrunedSystem prune_to_covered(const graph::Graph& g,
                              const std::vector<graph::Path>& paths);

}  // namespace tomo::topogen
