// Flat (single-level) measured topologies over the raw random-graph
// generators.
//
// The hierarchical (Brite-substitute) and PlanetLab-like generators wrap
// the Waxman and Barabási-Albert edge models in fixed measurement
// structure. This generator exposes the raw models directly as measured
// graphs: vantage hosts are sampled from the nodes, probes routed along
// jittered shortest paths in a full mesh, dark links pruned, and
// correlation sets grown as site clusters — so scenarios can vary the
// geometric density (Waxman alpha/beta), the degree distribution (BA
// attachment count), and the vantage-point density independently of the
// two paper topologies.
#pragma once

#include <cstdint>

#include "topogen/generated.hpp"
#include "topogen/waxman.hpp"

namespace tomo::topogen {

struct FlatMeshParams {
  enum class EdgeModel {
    kWaxman,          // random-geometric (router-level picture)
    kBarabasiAlbert,  // preferential attachment (AS-level picture)
  };
  EdgeModel model = EdgeModel::kWaxman;
  std::size_t nodes = 150;
  std::size_t vantage_points = 14;
  std::size_t cluster_size = 5;  // target correlation-set size
  /// Probability that a link's bottleneck lies on a shared site fabric
  /// (otherwise the link is its own singleton correlation set).
  double fabric_prob = 0.5;
  WaxmanParams waxman;                 // kWaxman only
  std::size_t ba_edges_per_node = 2;   // kBarabasiAlbert only
  std::uint64_t seed = 1;
};

GeneratedTopology generate_flat_mesh(const FlatMeshParams& params);

}  // namespace tomo::topogen
