#include "topogen/barabasi_albert.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::topogen {

std::vector<std::pair<std::size_t, std::size_t>> barabasi_albert_edges(
    std::size_t nodes, std::size_t edges_per_node, Rng& rng) {
  TOMO_REQUIRE(edges_per_node >= 1, "BA needs at least one edge per node");
  TOMO_REQUIRE(nodes > edges_per_node,
               "BA needs more nodes than edges per node");

  std::vector<std::pair<std::size_t, std::size_t>> edges;
  // Repeated-endpoint list: sampling a uniform element of `targets` is
  // degree-proportional sampling.
  std::vector<std::size_t> targets;

  // Seed clique over the first edges_per_node + 1 nodes. Edge and target
  // counts are known exactly up front; reserving keeps the 10k-node
  // generation free of reallocation copies of the O(n) target list.
  const std::size_t seed = edges_per_node + 1;
  const std::size_t total_edges =
      seed * (seed - 1) / 2 + (nodes - seed) * edges_per_node;
  edges.reserve(total_edges);
  targets.reserve(2 * total_edges);
  for (std::size_t i = 0; i < seed; ++i) {
    for (std::size_t j = i + 1; j < seed; ++j) {
      edges.emplace_back(i, j);
      targets.push_back(i);
      targets.push_back(j);
    }
  }

  std::vector<std::size_t> chosen;
  for (std::size_t v = seed; v < nodes; ++v) {
    chosen.clear();
    while (chosen.size() < edges_per_node) {
      const std::size_t candidate = targets[rng.below(targets.size())];
      if (std::find(chosen.begin(), chosen.end(), candidate) ==
          chosen.end()) {
        chosen.push_back(candidate);
      }
    }
    for (std::size_t u : chosen) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return edges;
}

graph::Graph to_directed_graph(
    std::size_t nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    const std::string& name_prefix) {
  graph::Graph g;
  for (std::size_t v = 0; v < nodes; ++v) {
    g.add_node(name_prefix + std::to_string(v));
  }
  for (const auto& [u, v] : edges) {
    g.add_link(u, v);
    g.add_link(v, u);
  }
  return g;
}

}  // namespace tomo::topogen
