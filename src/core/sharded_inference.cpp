#include "core/sharded_inference.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>

#include "corr/identifiability.hpp"
#include "sim/measurement.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace tomo::core {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Seed tag for the per-shard bootstrap sub-streams.
constexpr std::uint64_t kShardSeedTag = 0x5a4d00;

/// Plain union-find with path halving (the partitioner's only data
/// structure; no ranks needed at these sizes).
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ShardPlan plan_shards(const std::vector<graph::Path>& paths,
                      const graph::CoverageIndex& coverage,
                      const corr::CorrelationSets& sets,
                      std::size_t max_shard_paths) {
  TOMO_REQUIRE(coverage.path_count() == paths.size(),
               "plan_shards: coverage and paths disagree on path count");
  TOMO_REQUIRE(coverage.link_count() == sets.link_count(),
               "plan_shards: coverage and sets disagree on link count");
  const std::size_t link_count = coverage.link_count();
  const std::size_t path_count = coverage.path_count();

  // Stage 1: vantage-point clusters — all paths sharing a source node, in
  // first-appearance (hence path-id) order.
  std::vector<std::vector<graph::PathId>> clusters;
  {
    std::unordered_map<graph::NodeId, std::size_t> index;
    for (graph::PathId p = 0; p < path_count; ++p) {
      auto [it, fresh] = index.emplace(paths[p].source(), clusters.size());
      if (fresh) clusters.emplace_back();
      clusters[it->second].push_back(p);
    }
  }

  // Stage 2: merge clusters into link-disjoint, correlation-closed
  // components. Two links are tied when a path traverses both or a
  // correlation set holds both; a cluster joins the component of every
  // link tie-class its paths touch.
  DisjointSet links(link_count);
  for (graph::PathId p = 0; p < path_count; ++p) {
    const auto& pl = coverage.links_of(p);
    for (std::size_t i = 1; i < pl.size(); ++i) links.unite(pl[0], pl[i]);
  }
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    const auto& cell = sets.set(s);
    for (std::size_t i = 1; i < cell.size(); ++i)
      links.unite(cell[0], cell[i]);
  }
  DisjointSet cluster_uf(clusters.size());
  {
    std::vector<std::size_t> owner(link_count, kNone);
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      for (graph::PathId p : clusters[c]) {
        const std::size_t root = links.find(coverage.links_of(p).front());
        if (owner[root] == kNone) {
          owner[root] = c;
        } else {
          cluster_uf.unite(owner[root], c);
        }
      }
    }
  }
  std::vector<std::vector<std::size_t>> components;
  {
    std::vector<std::size_t> comp_of_root(clusters.size(), kNone);
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const std::size_t root = cluster_uf.find(c);
      if (comp_of_root[root] == kNone) {
        comp_of_root[root] = components.size();
        components.emplace_back();
      }
      components[comp_of_root[root]].push_back(c);
    }
  }

  // Stage 3: one shard per component, unless a component exceeds the cap —
  // then its clusters are re-packed greedily by link overlap with the
  // growing shard (the greedy min-cut: affine clusters share links, so
  // packing them together keeps those links off the cut).
  ShardPlan plan;
  std::vector<graph::LinkId> cluster_link_scratch;
  std::vector<std::uint8_t> in_shard(link_count, 0);
  const auto cluster_links = [&](std::size_t c) {
    cluster_link_scratch.clear();
    for (graph::PathId p : clusters[c]) {
      const auto& pl = coverage.links_of(p);
      cluster_link_scratch.insert(cluster_link_scratch.end(), pl.begin(),
                                  pl.end());
    }
    std::sort(cluster_link_scratch.begin(), cluster_link_scratch.end());
    cluster_link_scratch.erase(std::unique(cluster_link_scratch.begin(),
                                           cluster_link_scratch.end()),
                               cluster_link_scratch.end());
    return std::cref(cluster_link_scratch);
  };
  const auto emit_shard = [&](const std::vector<std::size_t>& members) {
    Shard shard;
    for (std::size_t c : members) {
      shard.paths.insert(shard.paths.end(), clusters[c].begin(),
                         clusters[c].end());
    }
    std::sort(shard.paths.begin(), shard.paths.end());
    for (graph::PathId p : shard.paths) {
      const auto& pl = coverage.links_of(p);
      shard.links.insert(shard.links.end(), pl.begin(), pl.end());
    }
    std::sort(shard.links.begin(), shard.links.end());
    shard.links.erase(std::unique(shard.links.begin(), shard.links.end()),
                      shard.links.end());
    plan.shards.push_back(std::move(shard));
  };

  for (const std::vector<std::size_t>& comp : components) {
    std::size_t total = 0;
    for (std::size_t c : comp) total += clusters[c].size();
    if (max_shard_paths == 0 || total <= max_shard_paths) {
      emit_shard(comp);
      continue;
    }
    std::vector<std::uint8_t> used(comp.size(), 0);
    std::size_t remaining = comp.size();
    while (remaining > 0) {
      std::vector<std::size_t> members;
      std::size_t shard_paths = 0;
      // Seed with the lowest-index unused cluster (always taken, even if
      // it alone exceeds the cap — clusters are the atomic unit).
      for (std::size_t i = 0; i < comp.size(); ++i) {
        if (used[i]) continue;
        members.push_back(comp[i]);
        shard_paths = clusters[comp[i]].size();
        used[i] = 1;
        --remaining;
        for (graph::LinkId e : cluster_links(comp[i]).get()) in_shard[e] = 1;
        break;
      }
      // Grow: among clusters that still fit, take the one overlapping the
      // shard's links the most (ties break to the lowest index).
      while (remaining > 0) {
        std::size_t best = kNone;
        std::size_t best_overlap = 0;
        for (std::size_t i = 0; i < comp.size(); ++i) {
          if (used[i]) continue;
          if (shard_paths + clusters[comp[i]].size() > max_shard_paths)
            continue;
          std::size_t overlap = 0;
          for (graph::LinkId e : cluster_links(comp[i]).get()) {
            overlap += in_shard[e];
          }
          if (best == kNone || overlap > best_overlap) {
            best = i;
            best_overlap = overlap;
          }
        }
        if (best == kNone) break;
        members.push_back(comp[best]);
        shard_paths += clusters[comp[best]].size();
        used[best] = 1;
        --remaining;
        for (graph::LinkId e : cluster_links(comp[best]).get()) {
          in_shard[e] = 1;
        }
      }
      for (std::size_t c : members) {
        for (graph::PathId p : clusters[c]) {
          for (graph::LinkId e : coverage.links_of(p)) in_shard[e] = 0;
        }
      }
      emit_shard(members);
    }
  }

  plan.shards_of_link.assign(link_count, {});
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    for (graph::LinkId e : plan.shards[s].links) {
      plan.shards_of_link[e].push_back(s);
    }
  }
  for (graph::LinkId e = 0; e < link_count; ++e) {
    if (plan.shards_of_link[e].size() > 1) ++plan.shared_links;
  }
  return plan;
}

namespace {

/// Everything a shard's worker leaves behind for the merge step.
struct ShardRun {
  std::vector<double> log_good;        // local link ids
  EquationSystem system;               // local link ids (joint re-solve)
  std::vector<double> interval_width;  // local; empty without precision
  ShardTelemetry telemetry;
};

}  // namespace

ShardedInferenceResult infer_sharded(const graph::Graph& g,
                                     const std::vector<graph::Path>& paths,
                                     const graph::CoverageIndex& coverage,
                                     const corr::CorrelationSets& sets,
                                     const sim::MeasurementBlock& block,
                                     const ShardedOptions& options) {
  TOMO_REQUIRE(block.path_count == paths.size(),
               "infer_sharded: block and paths disagree on path count");
  TOMO_REQUIRE(coverage.link_count() == sets.link_count(),
               "infer_sharded: coverage and sets disagree on link count");
  TOMO_REQUIRE(coverage.all_links_covered(),
               "infer_sharded: every link must be covered by a path");
  const std::size_t link_count = coverage.link_count();

  ShardedInferenceResult result;

  // The Assumption-4 structural refinement is hoisted to the full system:
  // the criterion consults a node's complete ingress/egress link lists, so
  // running it per shard (where those lists are restricted to shard links)
  // would demote links the monolithic pipeline does not.
  corr::CorrelationSets refined = sets;
  InferenceOptions shard_opts = options.inference;
  if (options.inference.refine_unidentifiable) {
    result.refined_links =
        corr::structurally_unidentifiable_links(g, paths, sets);
    if (!result.refined_links.empty()) {
      refined = demote_to_singletons(sets, result.refined_links);
    }
    shard_opts.refine_unidentifiable = false;
  }

  result.plan =
      plan_shards(paths, coverage, refined, options.max_shard_paths);
  const ShardPlan& plan = result.plan;
  result.shard_of.assign(link_count, 0);
  for (graph::LinkId e = 0; e < link_count; ++e) {
    result.shard_of[e] = plan.shards_of_link[e].front();
  }
  result.reconciled.assign(link_count, 0);
  result.residual_gap.assign(link_count, 0.0);

  if (plan.shards.size() == 1) {
    // Degenerate plan: run the monolithic pipeline verbatim (bit-identical
    // to infer_congestion — the differential suite's anchor case).
    const sim::EmpiricalMeasurement measurement(block);
    InferenceResult mono = infer_congestion(g, paths, coverage, sets,
                                            measurement, options.inference);
    result.congestion_prob = std::move(mono.congestion_prob);
    result.log_good = std::move(mono.log_good);
    result.refined_links = std::move(mono.refined_links);
    result.solve_seconds = mono.solve_seconds;
    result.shards.push_back(ShardTelemetry{
        paths.size(), link_count, mono.system.equations.size(),
        result.refined_links.size(), mono.solve_seconds, false});
    return result;
  }

  // Per-shard pipeline, fanned across the pool. Every shard derives its
  // own seeds and writes only its slot, so the merge below — and hence the
  // whole result — is bit-identical for any jobs value.
  const bool want_precision =
      options.precision_replicates > 0 && plan.shared_links > 0;
  std::vector<ShardRun> runs(plan.shards.size());
  util::parallel_for(
      options.jobs, plan.shards.size(), [&](std::size_t s) {
        const Shard& shard = plan.shards[s];
        ShardRun& run = runs[s];
        run.telemetry.paths = shard.paths.size();
        run.telemetry.links = shard.links.size();

        // Local re-indexing: same node ids, shard links renumbered in
        // ascending global order (so local sort order equals global sort
        // order everywhere downstream). Re-indexing is what keeps the
        // per-shard Gram system |E_s| x |E_s| instead of |E| x |E| — the
        // whole point of sharding.
        graph::Graph lg;
        for (graph::NodeId n = 0; n < g.node_count(); ++n) lg.add_node();
        std::vector<std::size_t> local_of(link_count, kNone);
        for (std::size_t i = 0; i < shard.links.size(); ++i) {
          const graph::Link& lk = g.link(shard.links[i]);
          lg.add_link(lk.src, lk.dst);
          local_of[shard.links[i]] = i;
        }
        std::vector<graph::Path> lpaths;
        lpaths.reserve(shard.paths.size());
        for (graph::PathId p : shard.paths) {
          std::vector<graph::LinkId> ll;
          ll.reserve(coverage.links_of(p).size());
          for (graph::LinkId e : coverage.links_of(p)) {
            ll.push_back(local_of[e]);
          }
          lpaths.emplace_back(lg, std::move(ll));
        }
        const graph::CoverageIndex lcov(lg, lpaths);
        graph::LinkPartition lpart;
        {
          std::vector<std::size_t> cell_of(refined.set_count(), kNone);
          for (std::size_t i = 0; i < shard.links.size(); ++i) {
            const std::size_t gs = refined.set_of(shard.links[i]);
            if (cell_of[gs] == kNone) {
              cell_of[gs] = lpart.size();
              lpart.emplace_back();
            }
            lpart[cell_of[gs]].push_back(i);
          }
        }
        const corr::CorrelationSets lsets(shard.links.size(),
                                          std::move(lpart));
        const sim::MeasurementBlock lblock = block.select_paths(shard.paths);

        try {
          const sim::EmpiricalMeasurement measurement(lblock);
          InferenceResult inf = infer_congestion(lg, lpaths, lcov, lsets,
                                                 measurement, shard_opts);
          run.log_good = std::move(inf.log_good);
          run.system = std::move(inf.system);
          run.telemetry.equations = run.system.equations.size();
          run.telemetry.refined_links = inf.refined_links.size();
          run.telemetry.solve_seconds = inf.solve_seconds;
        } catch (const Error&) {
          // No usable equation in this shard: its links are unconstrained,
          // which the monolithic solver models as log_good = 0.
          run.telemetry.failed = true;
          run.log_good.assign(shard.links.size(), 0.0);
        }

        // Precision pass: only shards whose links someone else also covers
        // need bootstrap weights for the log-space average.
        bool covers_shared = false;
        for (graph::LinkId e : shard.links) {
          if (plan.shards_of_link[e].size() > 1) {
            covers_shared = true;
            break;
          }
        }
        if (want_precision && covers_shared && !run.telemetry.failed) {
          BootstrapOptions bo;
          bo.replicates = options.precision_replicates;
          bo.seed = mix_seed(options.seed, kShardSeedTag + s);
          bo.jobs = 1;  // the shard fan-out already owns the pool
          bo.inference = shard_opts;
          try {
            const BootstrapResult bs =
                bootstrap_congestion(lg, lpaths, lcov, lsets, lblock, bo);
            run.interval_width.resize(shard.links.size());
            for (std::size_t i = 0; i < shard.links.size(); ++i) {
              run.interval_width[i] = bs.upper[i] - bs.lower[i];
            }
          } catch (const Error&) {
            run.interval_width.clear();  // unweighted fallback
          }
        }
      });

  for (const ShardRun& run : runs) {
    result.shards.push_back(run.telemetry);
    result.solve_seconds += run.telemetry.solve_seconds;
  }

  const auto local_index = [&plan](std::size_t s, graph::LinkId e) {
    const auto& links = plan.shards[s].links;
    return static_cast<std::size_t>(
        std::lower_bound(links.begin(), links.end(), e) - links.begin());
  };

  // Merge + reconciliation. Exclusive links copy their shard's estimate;
  // shared links average in log space with bootstrap-precision weights
  // when the shards agree, and queue for a joint re-solve when they don't.
  result.log_good.assign(link_count, 0.0);
  std::vector<graph::LinkId> disputed;
  for (graph::LinkId e = 0; e < link_count; ++e) {
    const auto& cover = plan.shards_of_link[e];
    if (cover.size() == 1) {
      result.log_good[e] = runs[cover[0]].log_good[local_index(cover[0], e)];
      continue;
    }
    result.reconciled[e] = 1;
    double lo = 0.0, hi = 0.0, weighted = 0.0, weight_sum = 0.0;
    for (std::size_t k = 0; k < cover.size(); ++k) {
      const std::size_t s = cover[k];
      const std::size_t i = local_index(s, e);
      const double x = runs[s].log_good[i];
      if (k == 0) {
        lo = hi = x;
      } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      // Tighter bootstrap intervals count more; an unweighted shard (no
      // precision pass, or a degenerate zero-width interval) contributes
      // at the reference weight 1.
      double w = 1.0;
      if (!runs[s].interval_width.empty()) {
        const double width = runs[s].interval_width[i];
        if (width > 0.0) w = std::min(1.0 / (width * width), 1e12);
      }
      weighted += w * x;
      weight_sum += w;
    }
    result.residual_gap[e] = hi - lo;
    result.log_good[e] = weighted / weight_sum;
    if (result.residual_gap[e] <= options.disagreement_tol) {
      ++result.averaged_links;
    } else {
      disputed.push_back(e);
    }
  }

  if (!disputed.empty()) {
    // Group disputed links that share a shard: their equations may overlap,
    // so they must be re-solved jointly. Links in different groups never
    // co-occur in an equation (every equation lives inside one shard).
    std::vector<std::size_t> index_of(link_count, kNone);
    for (std::size_t i = 0; i < disputed.size(); ++i) {
      index_of[disputed[i]] = i;
    }
    DisjointSet groups_uf(disputed.size());
    for (std::size_t s = 0; s < plan.shards.size(); ++s) {
      std::size_t first = kNone;
      for (graph::LinkId e : plan.shards[s].links) {
        if (index_of[e] == kNone) continue;
        if (first == kNone) {
          first = index_of[e];
        } else {
          groups_uf.unite(first, index_of[e]);
        }
      }
    }
    std::vector<std::vector<graph::LinkId>> groups;
    {
      std::vector<std::size_t> group_of_root(disputed.size(), kNone);
      for (std::size_t i = 0; i < disputed.size(); ++i) {
        const std::size_t root = groups_uf.find(i);
        if (group_of_root[root] == kNone) {
          group_of_root[root] = groups.size();
          groups.emplace_back();
        }
        groups[group_of_root[root]].push_back(disputed[i]);
      }
    }

    for (const std::vector<graph::LinkId>& group : groups) {
      // Union subsystem: every harvested equation (from any covering
      // shard) that touches a group link, with the settled links'
      // contributions moved to the right-hand side.
      std::vector<std::size_t> col_of(link_count, kNone);
      for (std::size_t i = 0; i < group.size(); ++i) col_of[group[i]] = i;
      std::vector<std::size_t> involved;
      for (graph::LinkId e : group) {
        involved.insert(involved.end(), plan.shards_of_link[e].begin(),
                        plan.shards_of_link[e].end());
      }
      std::sort(involved.begin(), involved.end());
      involved.erase(std::unique(involved.begin(), involved.end()),
                     involved.end());

      std::vector<std::vector<std::size_t>> supports;
      linalg::SparseSystemView view;
      view.cols = group.size();
      for (std::size_t s : involved) {
        const auto& links = plan.shards[s].links;
        for (const Equation& eq : runs[s].system.equations) {
          std::vector<std::size_t> support;
          double y = eq.y;
          for (graph::LinkId local : eq.links) {
            const graph::LinkId e = links[local];
            if (col_of[e] != kNone) {
              support.push_back(col_of[e]);
            } else {
              y -= result.log_good[e];
            }
          }
          if (support.empty()) continue;
          supports.push_back(std::move(support));
          linalg::SparseRow row;
          row.support_size = supports.back().size();
          row.y = std::min(y, 0.0);
          view.rows.push_back(row);
        }
      }
      // supports is stable now; wire the borrowed pointers.
      for (std::size_t r = 0; r < view.rows.size(); ++r) {
        view.rows[r].support = supports[r].data();
      }

      if (view.rows.empty()) {
        // Nothing left to re-solve against: the averaged estimate stands.
        result.averaged_links += group.size();
        continue;
      }
      linalg::SolverOptions so = options.inference.solver;
      so.warm_start.clear();
      so.nnls_warm_factor = nullptr;
      so.jobs = 1;  // tiny system; keep it inline and deterministic
      const Stopwatch joint_timer;
      const linalg::LogSystemSolution solution =
          linalg::solve_log_system(view, so);
      result.solve_seconds += joint_timer.seconds();
      for (std::size_t i = 0; i < group.size(); ++i) {
        result.log_good[group[i]] = solution.x[i];
      }
      result.resolved_links += group.size();
      ++result.joint_solves;
    }
  }

  result.congestion_prob.resize(link_count);
  for (graph::LinkId e = 0; e < link_count; ++e) {
    result.congestion_prob[e] =
        std::clamp(1.0 - std::exp(result.log_good[e]), 0.0, 1.0);
  }
  return result;
}

}  // namespace tomo::core
