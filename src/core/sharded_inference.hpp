// Sharded inference: internet-scale tomography by partitioning the path
// mesh (the ROADMAP's "Internet-scale topologies via sharded inference").
//
// The monolithic pipeline hits a wall long before 10k routers: the
// incremental NNLS engine's Gram system is dense |E| x |E|, so a 20k-link
// mesh wants gigabytes for a matrix that is, in coverage terms, almost
// block-diagonal — distinct vantage clusters rarely share links. This
// module exploits exactly that structure:
//
//   1. plan_shards partitions the paths by vantage-point cluster (all
//      paths sharing a source node), merges clusters that share a link or
//      a correlation set into link-disjoint components (a zero-cut
//      partition of the path-link incidence), and — when a component
//      exceeds the configured shard size — splits it back into clusters
//      packed greedily by link overlap, a greedy min-cut that keeps the
//      number of cross-shard (shared) links small.
//   2. infer_sharded hoists the Assumption-4 structural refinement to the
//      full system (the node-local criterion consults a node's complete
//      ingress/egress lists, so running it on a link-restricted shard
//      subgraph would flag nodes the monolithic run does not), then runs
//      the existing harvest→demote→NNLS pipeline per shard on re-indexed
//      local subsystems, fanned across the thread pool. Each shard derives
//      its seeds from (seed, shard index), so the result is bit-identical
//      for any `jobs`.
//   3. Links covered by several shards are reconciled: agreeing shards
//      average in log space, weighted by per-shard bootstrap precision
//      (PR-8's batched Gram-skeleton engine); disagreeing shards fall back
//      to a joint re-solve of the union subsystem — every harvested
//      equation touching a disputed link, with the settled links'
//      contributions substituted into the right-hand side. Per-link
//      provenance (shard_of / reconciled / residual_gap) is recorded.
//
// Exactness contract: pair-equation candidates always share a link, so a
// link-disjoint shard contains precisely the monolithic harvest's
// equations that live inside it. When the pair budget does not bind
// (redundant mode accepts every usable correlation-free candidate, making
// acceptance order-independent), an uncapped plan therefore reproduces the
// monolithic solution up to Gram-summation rounding — the differential
// suite (test_sharded_fast) pins this at 1e-8 across the registry.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bootstrap.hpp"
#include "core/correlation_algorithm.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement_block.hpp"

namespace tomo::core {

struct ShardedOptions {
  /// Upper bound on paths per shard. 0 = unbounded: shards are exactly the
  /// link-disjoint components (no shared links, reconciliation idle) —
  /// the configuration the differential suite compares against the
  /// monolithic pipeline. Positive values split oversized components and
  /// accept shared links in exchange for smaller per-shard Gram systems.
  std::size_t max_shard_paths = 0;
  /// Shard fan-out width (1 = inline on the caller, 0 = all hardware
  /// cores). The result is bit-identical for any value.
  std::size_t jobs = 1;
  /// Base seed for the per-shard sub-streams (bootstrap precision runs).
  std::uint64_t seed = 1;
  /// Bootstrap replicates per shared-link shard backing the precision
  /// weights of the log-space average; 0 = unweighted mean. Only shards
  /// that cover a shared link pay for this.
  std::size_t precision_replicates = 16;
  /// Largest |Δ log P(link good)| between two shards' estimates of a
  /// shared link that still counts as agreement; past it the link joins a
  /// joint re-solve instead of being averaged.
  double disagreement_tol = 1e-6;
  InferenceOptions inference;
};

/// One shard of the plan: a subset of the paths plus every link they
/// traverse, both sorted ascending by global id.
struct Shard {
  std::vector<graph::PathId> paths;
  std::vector<graph::LinkId> links;
};

struct ShardPlan {
  std::vector<Shard> shards;  // paths partitioned, links possibly shared
  /// Global link -> indices of the shards covering it (ascending).
  std::vector<std::vector<std::size_t>> shards_of_link;
  std::size_t shared_links = 0;  // links covered by more than one shard
};

/// Partitions the measured system. `sets` should be the correlation
/// structure the per-shard harvest will run under (refined, if refinement
/// is enabled): clusters sharing a correlation set are merged so no set
/// ever straddles a component boundary.
ShardPlan plan_shards(const std::vector<graph::Path>& paths,
                      const graph::CoverageIndex& coverage,
                      const corr::CorrelationSets& sets,
                      std::size_t max_shard_paths);

/// Per-shard telemetry surfaced on the result (and by tomo_scenarios
/// --sharded as JSON annotations).
struct ShardTelemetry {
  std::size_t paths = 0;
  std::size_t links = 0;
  std::size_t equations = 0;
  std::size_t refined_links = 0;  // demoted by the shard's fallback rounds
  double solve_seconds = 0.0;
  /// The shard's resample lost every usable equation: its links fall back
  /// to log_good = 0 (exactly what the monolithic solver leaves for
  /// unconstrained columns).
  bool failed = false;
};

struct ShardedInferenceResult {
  std::vector<double> congestion_prob;  // P(X_k = 1) per global link
  std::vector<double> log_good;         // log P(X_k = 0) per global link
  ShardPlan plan;
  /// Links demoted to singletons by the hoisted global refinement.
  std::vector<graph::LinkId> refined_links;
  /// Per link: the first shard covering it (its owner for provenance).
  std::vector<std::size_t> shard_of;
  /// Per link: 1 iff more than one shard contributed an estimate.
  std::vector<std::uint8_t> reconciled;
  /// Per link: max spread between shard estimates of log P(good) before
  /// the merge (0 for links owned by a single shard).
  std::vector<double> residual_gap;
  std::size_t averaged_links = 0;  // shared links settled by averaging
  std::size_t resolved_links = 0;  // shared links settled by joint re-solve
  std::size_t joint_solves = 0;    // joint subsystems solved
  double solve_seconds = 0.0;      // summed over shards + joint re-solves
  std::vector<ShardTelemetry> shards;
};

/// The sharded pipeline. With a single-shard plan this degenerates to (and
/// is bit-identical with) infer_congestion on the full system.
ShardedInferenceResult infer_sharded(const graph::Graph& g,
                                     const std::vector<graph::Path>& paths,
                                     const graph::CoverageIndex& coverage,
                                     const corr::CorrelationSets& sets,
                                     const sim::MeasurementBlock& block,
                                     const ShardedOptions& options = {});

}  // namespace tomo::core
