#include "core/independence_algorithm.hpp"

namespace tomo::core {

InferenceResult infer_congestion_independent(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const graph::CoverageIndex& coverage,
    const sim::MeasurementProvider& measurement,
    const InferenceOptions& options) {
  const corr::CorrelationSets singles =
      corr::CorrelationSets::singletons(coverage.link_count());
  InferenceOptions opts = options;
  // With singleton sets nothing is unidentifiable by the structural
  // criterion in the correlated sense; skip the refinement pass.
  opts.refine_unidentifiable = false;
  return infer_congestion(g, paths, coverage, singles, measurement, opts);
}

}  // namespace tomo::core
