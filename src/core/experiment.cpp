#include "core/experiment.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/independence_algorithm.hpp"
#include "sim/measurement.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace tomo::core {

std::vector<double> ExperimentResult::correlation_errors() const {
  return metrics::absolute_errors(truth, correlation.congestion_prob,
                                  potentially_congested);
}

std::vector<double> ExperimentResult::independence_errors() const {
  return metrics::absolute_errors(truth, independence.congestion_prob,
                                  potentially_congested);
}

std::vector<std::size_t> potentially_congested_links(
    const std::vector<graph::Path>& paths,
    const sim::MeasurementProvider& measurement) {
  // Potentially congested links: on >= 1 path that was ever congested.
  std::unordered_set<std::size_t> flagged;
  for (graph::PathId p = 0; p < paths.size(); ++p) {
    if (measurement.good_prob(p) < 1.0) {
      for (graph::LinkId e : paths[p].links()) {
        flagged.insert(e);
      }
    }
  }
  std::vector<std::size_t> links(flagged.begin(), flagged.end());
  std::sort(links.begin(), links.end());
  return links;
}

ExperimentResult run_experiment(const ScenarioInstance& scenario,
                                const ExperimentConfig& config) {
  TOMO_REQUIRE(scenario.truth != nullptr, "scenario has no truth model");

  const graph::CoverageIndex coverage(scenario.graph, scenario.paths);
  const Stopwatch sim_timer;
  sim::SimulationResult sim_result = sim::simulate(
      scenario.graph, scenario.paths, *scenario.truth, config.sim);
  // The simulator's good-bit block is adopted as-is — no re-packing.
  const sim::EmpiricalMeasurement measurement(
      std::move(sim_result.measurement));
  const double sim_seconds = sim_timer.seconds();

  ExperimentResult result;
  result.truth = scenario.true_marginals;
  result.sim_seconds = sim_seconds;

  result.potentially_congested =
      potentially_congested_links(scenario.paths, measurement);

  result.correlation =
      infer_congestion(scenario.graph, scenario.paths, coverage,
                       scenario.declared_sets, measurement, config.inference);
  result.independence = infer_congestion_independent(
      scenario.graph, scenario.paths, coverage, measurement,
      config.inference);
  return result;
}

}  // namespace tomo::core
