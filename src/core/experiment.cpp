#include "core/experiment.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/independence_algorithm.hpp"
#include "sim/measurement.hpp"
#include "util/error.hpp"

namespace tomo::core {

std::vector<double> ExperimentResult::correlation_errors() const {
  return metrics::absolute_errors(truth, correlation.congestion_prob,
                                  potentially_congested);
}

std::vector<double> ExperimentResult::independence_errors() const {
  return metrics::absolute_errors(truth, independence.congestion_prob,
                                  potentially_congested);
}

ExperimentResult run_experiment(const ScenarioInstance& scenario,
                                const ExperimentConfig& config) {
  TOMO_REQUIRE(scenario.truth != nullptr, "scenario has no truth model");

  const graph::CoverageIndex coverage(scenario.graph, scenario.paths);
  const sim::SimulationResult sim_result =
      sim::simulate(scenario.graph, scenario.paths, *scenario.truth,
                    config.sim);
  const sim::EmpiricalMeasurement measurement(sim_result.observations);

  ExperimentResult result;
  result.truth = scenario.true_marginals;

  // Potentially congested links: on >= 1 path that was ever congested.
  std::unordered_set<std::size_t> flagged;
  for (graph::PathId p = 0; p < scenario.paths.size(); ++p) {
    if (sim_result.observations.good_count(p) <
        sim_result.observations.snapshot_count()) {
      for (graph::LinkId e : scenario.paths[p].links()) {
        flagged.insert(e);
      }
    }
  }
  result.potentially_congested.assign(flagged.begin(), flagged.end());
  std::sort(result.potentially_congested.begin(),
            result.potentially_congested.end());

  result.correlation =
      infer_congestion(scenario.graph, scenario.paths, coverage,
                       scenario.declared_sets, measurement, config.inference);
  result.independence = infer_congestion_independent(
      scenario.graph, scenario.paths, coverage, measurement,
      config.inference);
  return result;
}

}  // namespace tomo::core
