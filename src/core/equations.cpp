#include "core/equations.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <optional>

#include "linalg/rank_tracker.hpp"
#include "sim/estimator.hpp"
#include "util/bitops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace tomo::core {

namespace {

/// sorted_union into a reused buffer (keeps its capacity across candidates;
/// a manual merge into pre-sized storage skips back_inserter's per-element
/// capacity checks on the hot path).
void sorted_union_into(const std::vector<graph::LinkId>& a,
                       const std::vector<graph::LinkId>& b,
                       std::vector<graph::LinkId>& out) {
  out.resize(a.size() + b.size());
  graph::LinkId* dst = out.data();
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      *dst++ = a[i++];
    } else if (b[j] < a[i]) {
      *dst++ = b[j++];
    } else {
      *dst++ = a[i++];
      ++j;
    }
  }
  while (i < a.size()) *dst++ = a[i++];
  while (j < b.size()) *dst++ = b[j++];
  out.resize(static_cast<std::size_t>(dst - out.data()));
}

/// True iff `link` is the lowest link shared by the two sorted link lists —
/// the "lowest-touch-link" ownership rule that deduplicates pair candidates
/// without a global seen-set: a pair is emitted only from the per-link scan
/// of its lowest shared link, which is also where the historical seen-set
/// first encountered it, so the candidate order is unchanged. `link` must
/// be present in both lists.
bool owns_pair(graph::LinkId link, const std::vector<graph::LinkId>& a,
               const std::vector<graph::LinkId>& b) {
  std::size_t i = 0, j = 0;
  while (a[i] < link && b[j] < link) {
    if (a[i] == b[j]) return false;  // an earlier shared link owns the pair
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

/// Number of links shared by two sorted link lists.
std::size_t count_common(const std::vector<graph::LinkId>& a,
                         const std::vector<graph::LinkId>& b) {
  std::size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return common;
}

/// Per-path correlation-set signatures: one bit per correlation set,
/// path-major. Built only for pair-eligible paths (usable and individually
/// correlation-free), which is what makes the pair precheck exact: an
/// eligible path touches each correlation set at most once, so the union of
/// two eligible paths is correlation-free iff every set they share is
/// reached through a shared link — i.e. iff the number of shared signature
/// bits equals the number of shared links.
class SetSignatures {
 public:
  SetSignatures(const corr::CorrelationSets& sets,
                const graph::CoverageIndex& coverage,
                const std::vector<std::uint8_t>& eligible)
      : words_((sets.set_count() + 63) / 64),
        bits_(coverage.path_count() * words_, 0) {
    for (graph::PathId p = 0; p < coverage.path_count(); ++p) {
      if (!eligible[p]) continue;
      std::uint64_t* row = bits_.data() + p * words_;
      for (graph::LinkId e : coverage.sorted_links_of(p)) {
        const std::size_t s = sets.set_of(e);
        row[s / 64] |= std::uint64_t{1} << (s % 64);
      }
    }
  }

  /// Number of correlation sets touched by both paths.
  std::size_t shared_sets(graph::PathId p, graph::PathId q) const {
    return util::bitops::active().and_popcount(
        bits_.data() + p * words_, bits_.data() + q * words_, words_);
  }

 private:
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

/// Precomputed verdict for one pair candidate: everything the sequential
/// merge needs, produced by (possibly parallel) pure evaluation.
struct CandidateEval {
  bool corr_free = false;
  sim::LogProbEstimate est;          // valid only when corr_free
  std::vector<graph::LinkId> links;  // sorted union, only when corr_free
};

}  // namespace

EquationSystem build_equations(const graph::CoverageIndex& coverage,
                               const corr::CorrelationSets& sets,
                               const sim::MeasurementProvider& measurement,
                               const EquationBuildOptions& options) {
  TOMO_REQUIRE(coverage.link_count() == sets.link_count(),
               "coverage and correlation sets disagree on link count");
  TOMO_REQUIRE(coverage.path_count() == measurement.path_count(),
               "coverage and measurement disagree on path count");

  const Stopwatch build_timer;
  const std::size_t link_count = coverage.link_count();
  const std::size_t path_count = coverage.path_count();

  EquationSystem sys;
  sys.link_count = link_count;
  // Upper bounds: every path can yield a single, and pair acceptance is
  // capped by the pair budget — one per link unless redundant mode raises
  // it via max_pair_equations (non-redundant mode keeps at most |E| rows).
  sys.equations.reserve(
      path_count + std::max(link_count, options.include_redundant
                                            ? options.max_pair_equations
                                            : std::size_t{0}));
  linalg::RankTracker tracker(link_count);

  // Per-path sorted link lists live on the coverage index, computed once
  // per experiment rather than once per build.
  const auto plinks = [&coverage](graph::PathId p) -> const auto& {
    return coverage.sorted_links_of(p);
  };

  // Singleton structures cannot reject any candidate (every set holds one
  // link and paths never repeat a link), so the correlation checks
  // short-circuit to "correlation-free" — the independence run skips the
  // per-path set scans entirely.
  const bool all_singletons = sets.set_count() == sets.link_count();

  // Phase 1: single-path equations (paper Eq. 9).
  std::vector<std::uint8_t> eligible(path_count, 0);
  for (graph::PathId p = 0; p < path_count; ++p) {
    if (!all_singletons && !sets.correlation_free(plinks(p))) {
      ++sys.dropped_correlated;
      continue;
    }
    const sim::LogProbEstimate est =
        sim::log_estimate(measurement.good_prob(p), measurement.sample_count(),
                          options.min_good_snapshots);
    if (!est.usable) {
      ++sys.dropped_unusable;
      continue;
    }
    eligible[p] = 1;  // usable & correlation-free: a pair-phase citizen
    const bool independent = tracker.try_add_ones(plinks(p));
    if (!independent && !options.include_redundant) {
      ++sys.dropped_dependent;
      continue;
    }
    sys.equations.push_back(Equation{plinks(p), {p}, est.log_prob});
    ++sys.n1;
  }

  // Phase 2: pair equations (paper Eq. 10). Only pairs sharing at least
  // one link can increase rank, so candidates are generated from the
  // per-link path lists; the lowest shared link of a pair "owns" it, which
  // deduplicates candidates without a global seen-set while preserving the
  // historical first-encounter order.
  const std::size_t pair_budget =
      options.include_redundant
          ? (options.max_pair_equations != 0 ? options.max_pair_equations
                                             : link_count)
          : link_count;
  const bool want_pairs =
      options.use_pairs &&
      (options.include_redundant || !tracker.full_rank());
  if (want_pairs) {
    std::vector<std::pair<graph::PathId, graph::PathId>> candidates;
    for (graph::LinkId e = 0; e < link_count; ++e) {
      const auto& through = coverage.paths_through(e);
      for (std::size_t i = 0; i < through.size(); ++i) {
        if (!eligible[through[i]]) continue;
        for (std::size_t j = i + 1; j < through.size(); ++j) {
          if (!eligible[through[j]]) continue;
          if (owns_pair(e, plinks(through[i]), plinks(through[j]))) {
            candidates.emplace_back(through[i], through[j]);
          }
        }
      }
    }
    Rng rng(options.shuffle_seed);
    rng.shuffle(candidates);

    // Only built when the precheck will actually consult it: singleton
    // structures short-circuit and the reference path scans the union.
    std::optional<SetSignatures> signatures;
    if (options.use_signature_precheck && !all_singletons) {
      signatures.emplace(sets, coverage, eligible);
    }

    // Pure per-candidate evaluation; safe to run on any worker. Slots are
    // reused across batches (links keeps its capacity), so rejected
    // candidates allocate nothing after warm-up.
    const auto evaluate = [&](std::size_t idx, CandidateEval& ev) {
      const auto& [p, q] = candidates[idx];
      if (options.use_signature_precheck) {
        ev.corr_free =
            all_singletons ||
            signatures->shared_sets(p, q) ==
                count_common(plinks(p), plinks(q));
        if (ev.corr_free) {
          sorted_union_into(plinks(p), plinks(q), ev.links);
        }
      } else {
        // Reference path: materialize the union, scan it against the sets.
        sorted_union_into(plinks(p), plinks(q), ev.links);
        ev.corr_free = sets.correlation_free(ev.links);
      }
      if (ev.corr_free) {
        ev.est = sim::log_estimate(measurement.pair_good_prob(p, q),
                                   measurement.sample_count(),
                                   options.min_good_snapshots);
      }
    };

    // Candidates are evaluated in fixed batches (parallel when jobs > 1)
    // and merged strictly in candidate order, replaying the sequential
    // loop's budget/rank/cap control flow — so counters, accepted
    // equations, and their order are byte-identical for any jobs value.
    // Work past the merge's break point is at most one batch of waste.
    constexpr std::size_t kBatch = 128;
    const std::size_t jobs =
        candidates.size() > kBatch ? util::resolve_jobs(options.jobs) : 1;
    std::unique_ptr<util::ThreadPool> pool;
    if (jobs > 1) pool = std::make_unique<util::ThreadPool>(jobs);

    std::vector<CandidateEval> evals(std::min(kBatch, candidates.size()));
    bool stop = false;
    for (std::size_t start = 0; start < candidates.size() && !stop;
         start += kBatch) {
      const std::size_t end = std::min(start + kBatch, candidates.size());
      const std::size_t batch = end - start;
      if (pool) {
        const std::size_t chunk = (batch + jobs - 1) / jobs;
        std::vector<std::future<void>> done;
        for (std::size_t cs = 0; cs < batch; cs += chunk) {
          const std::size_t ce = std::min(cs + chunk, batch);
          done.push_back(pool->submit([&, cs, ce] {
            for (std::size_t k = cs; k < ce; ++k) {
              evaluate(start + k, evals[k]);
            }
          }));
        }
        for (auto& f : done) f.get();
      } else {
        for (std::size_t k = 0; k < batch; ++k) {
          evaluate(start + k, evals[k]);
        }
      }

      for (std::size_t k = 0; k < batch; ++k) {
        const bool budget_reached =
            options.include_redundant && sys.n2 >= pair_budget;
        if (tracker.full_rank() && (!options.include_redundant ||
                                    budget_reached)) {
          stop = true;
          break;
        }
        if (options.max_pair_candidates != 0 &&
            sys.pair_candidates_tried >= options.max_pair_candidates) {
          stop = true;
          break;
        }
        ++sys.pair_candidates_tried;
        CandidateEval& ev = evals[k];
        if (!ev.corr_free) {
          ++sys.dropped_correlated;
          continue;
        }
        if (!ev.est.usable) {
          ++sys.dropped_unusable;
          continue;
        }
        // Once full rank is reached, redundant-mode acceptance no longer
        // needs the (expensive) elimination sweep.
        const bool independent =
            tracker.full_rank() ? false : tracker.try_add_ones(ev.links);
        if (!independent && (!options.include_redundant || budget_reached)) {
          // Past the budget, only rank-increasing pairs are still worth
          // taking (the hunt for missing columns continues).
          ++sys.dropped_dependent;
          continue;
        }
        const auto& [p, q] = candidates[start + k];
        sys.equations.push_back(
            Equation{std::move(ev.links), {p, q}, ev.est.log_prob});
        ++sys.n2;
      }
    }
  }

  sys.rank = tracker.rank();
  TOMO_ASSERT(options.include_redundant || sys.rank == sys.n1 + sys.n2);

  sys.build_seconds = build_timer.seconds();
  return sys;
}

void EquationSystem::ensure_dense() const {
  if (dense_ready_) return;
  a_ = linalg::Matrix(equations.size(), link_count);
  y_.resize(equations.size());
  for (std::size_t i = 0; i < equations.size(); ++i) {
    for (graph::LinkId e : equations[i].links) {
      a_(i, e) = 1.0;
    }
    y_[i] = equations[i].y;
  }
  dense_ready_ = true;
}

}  // namespace tomo::core

namespace tomo::core {

namespace {

/// Inverse standard deviation of a log-probability estimate over
/// `samples` snapshots (delta method). p is in (0, 1]: unusable
/// zero-probability equations never enter the system. The p == 1 case
/// (zero variance) is guarded with one pseudo-count.
double variance_weight(double log_prob, double samples) {
  const double p = std::exp(log_prob);
  const double variance =
      std::max((1.0 - p) / (p * samples), 1.0 / (samples * samples));
  return 1.0 / std::sqrt(variance);
}

}  // namespace

void apply_variance_weights(EquationSystem& system, std::size_t samples) {
  if (samples == 0) return;
  const double n = static_cast<double>(samples);
  for (std::size_t i = 0; i < system.equations.size(); ++i) {
    const double weight = variance_weight(system.equations[i].y, n);
    // Only the equation's support columns carry the row's 1-entries; the
    // structural zeros must stay untouched rather than being multiplied
    // across the whole dense row.
    for (graph::LinkId e : system.equations[i].links) {
      system.matrix()(i, e) *= weight;
    }
    system.rhs()[i] *= weight;
  }
}

linalg::SparseSystemView sparse_view(const EquationSystem& system,
                                     std::size_t weight_samples) {
  linalg::SparseSystemView view;
  view.cols = system.link_count;
  view.rows.reserve(system.equations.size());
  const double n = static_cast<double>(weight_samples);
  for (const Equation& eq : system.equations) {
    linalg::SparseRow row;
    row.support = eq.links.data();
    row.support_size = eq.links.size();
    if (weight_samples > 0) {
      // Same doubles apply_variance_weights writes into the dense system:
      // weight * 1.0 entries and a weight-scaled rhs.
      row.value = variance_weight(eq.y, n);
      row.y = row.value * eq.y;
    } else {
      row.y = eq.y;
    }
    view.rows.push_back(row);
  }
  return view;
}

linalg::SparseSystemView sparse_view_with_rhs(const EquationSystem& system,
                                              const std::vector<double>& ys,
                                              std::size_t weight_samples) {
  TOMO_REQUIRE(ys.size() == system.equations.size(),
               "sparse_view_with_rhs: rhs count does not match the system");
  linalg::SparseSystemView view;
  view.cols = system.link_count;
  view.rows.reserve(system.equations.size());
  const double n = static_cast<double>(weight_samples);
  for (std::size_t i = 0; i < system.equations.size(); ++i) {
    const Equation& eq = system.equations[i];
    linalg::SparseRow row;
    row.support = eq.links.data();
    row.support_size = eq.links.size();
    if (weight_samples > 0) {
      row.value = variance_weight(ys[i], n);
      row.y = row.value * ys[i];
    } else {
      row.y = ys[i];
    }
    view.rows.push_back(row);
  }
  return view;
}

}  // namespace tomo::core
