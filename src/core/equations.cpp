#include "core/equations.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "linalg/rank_tracker.hpp"
#include "sim/estimator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo::core {

namespace {

std::vector<graph::LinkId> sorted_links(const std::vector<graph::LinkId>& in) {
  std::vector<graph::LinkId> out = in;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<graph::LinkId> sorted_union(const std::vector<graph::LinkId>& a,
                                        const std::vector<graph::LinkId>& b) {
  std::vector<graph::LinkId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

EquationSystem build_equations(const graph::CoverageIndex& coverage,
                               const corr::CorrelationSets& sets,
                               const sim::MeasurementProvider& measurement,
                               const EquationBuildOptions& options) {
  TOMO_REQUIRE(coverage.link_count() == sets.link_count(),
               "coverage and correlation sets disagree on link count");
  TOMO_REQUIRE(coverage.path_count() == measurement.path_count(),
               "coverage and measurement disagree on path count");

  const std::size_t link_count = coverage.link_count();
  const std::size_t path_count = coverage.path_count();

  EquationSystem sys;
  sys.link_count = link_count;
  linalg::RankTracker tracker(link_count);

  // Per-path sorted link lists, reused throughout.
  std::vector<std::vector<graph::LinkId>> plinks(path_count);
  for (graph::PathId p = 0; p < path_count; ++p) {
    plinks[p] = sorted_links(coverage.links_of(p));
  }

  // Phase 1: single-path equations (paper Eq. 9).
  std::vector<std::uint8_t> eligible(path_count, 0);
  for (graph::PathId p = 0; p < path_count; ++p) {
    if (!sets.correlation_free(plinks[p])) {
      ++sys.dropped_correlated;
      continue;
    }
    const sim::LogProbEstimate est =
        sim::log_estimate(measurement.good_prob(p), measurement.sample_count(),
                          options.min_good_snapshots);
    if (!est.usable) {
      ++sys.dropped_unusable;
      continue;
    }
    eligible[p] = 1;  // usable & correlation-free: a pair-phase citizen
    const bool independent = tracker.try_add_ones(plinks[p]);
    if (!independent && !options.include_redundant) {
      ++sys.dropped_dependent;
      continue;
    }
    sys.equations.push_back(Equation{plinks[p], {p}, est.log_prob});
    ++sys.n1;
  }

  // Phase 2: pair equations (paper Eq. 10). Only pairs sharing at least
  // one link can increase rank, so candidates are generated from the
  // per-link path lists.
  const std::size_t pair_budget =
      options.include_redundant
          ? (options.max_pair_equations != 0 ? options.max_pair_equations
                                             : link_count)
          : link_count;
  const bool want_pairs =
      options.use_pairs &&
      (options.include_redundant || !tracker.full_rank());
  if (want_pairs) {
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::pair<graph::PathId, graph::PathId>> candidates;
    for (graph::LinkId e = 0; e < link_count; ++e) {
      const auto& through = coverage.paths_through(e);
      for (std::size_t i = 0; i < through.size(); ++i) {
        if (!eligible[through[i]]) continue;
        for (std::size_t j = i + 1; j < through.size(); ++j) {
          if (!eligible[through[j]]) continue;
          const std::uint64_t key =
              static_cast<std::uint64_t>(through[i]) * path_count +
              through[j];
          if (seen.insert(key).second) {
            candidates.emplace_back(through[i], through[j]);
          }
        }
      }
    }
    Rng rng(options.shuffle_seed);
    rng.shuffle(candidates);
    for (const auto& [p, q] : candidates) {
      const bool budget_reached =
          options.include_redundant && sys.n2 >= pair_budget;
      if (tracker.full_rank() && (!options.include_redundant ||
                                  budget_reached)) {
        break;
      }
      if (options.max_pair_candidates != 0 &&
          sys.pair_candidates_tried >= options.max_pair_candidates) {
        break;
      }
      ++sys.pair_candidates_tried;
      std::vector<graph::LinkId> links = sorted_union(plinks[p], plinks[q]);
      if (!sets.correlation_free(links)) {
        ++sys.dropped_correlated;
        continue;
      }
      const sim::LogProbEstimate est = sim::log_estimate(
          measurement.pair_good_prob(p, q), measurement.sample_count(),
          options.min_good_snapshots);
      if (!est.usable) {
        ++sys.dropped_unusable;
        continue;
      }
      // Once full rank is reached, redundant-mode acceptance no longer
      // needs the (expensive) elimination sweep.
      const bool independent =
          tracker.full_rank() ? false : tracker.try_add_ones(links);
      if (!independent && (!options.include_redundant || budget_reached)) {
        // Past the budget, only rank-increasing pairs are still worth
        // taking (the hunt for missing columns continues).
        ++sys.dropped_dependent;
        continue;
      }
      sys.equations.push_back(Equation{std::move(links), {p, q}, est.log_prob});
      ++sys.n2;
    }
  }

  sys.rank = tracker.rank();
  TOMO_ASSERT(options.include_redundant || sys.rank == sys.n1 + sys.n2);

  sys.a = linalg::Matrix(sys.equations.size(), link_count);
  sys.y.resize(sys.equations.size());
  for (std::size_t i = 0; i < sys.equations.size(); ++i) {
    for (graph::LinkId e : sys.equations[i].links) {
      sys.a(i, e) = 1.0;
    }
    sys.y[i] = sys.equations[i].y;
  }
  return sys;
}

}  // namespace tomo::core

namespace tomo::core {

void apply_variance_weights(EquationSystem& system, std::size_t samples) {
  if (samples == 0) return;
  const double n = static_cast<double>(samples);
  for (std::size_t i = 0; i < system.equations.size(); ++i) {
    const double p = std::exp(system.equations[i].y);
    // p is in (0, 1]: unusable zero-probability equations never enter the
    // system. Guard the p == 1 case (zero variance) with one pseudo-count.
    const double variance = std::max((1.0 - p) / (p * n), 1.0 / (n * n));
    const double weight = 1.0 / std::sqrt(variance);
    for (std::size_t c = 0; c < system.a.cols(); ++c) {
      system.a(i, c) *= weight;
    }
    system.y[i] *= weight;
  }
}

}  // namespace tomo::core
