// Named scenario registry: the single place where evaluation workloads are
// defined.
//
// The paper's evaluation crosses two topologies with a handful of
// correlation settings; the registry generalizes that into named,
// composable ScenarioConfig entries covering every generator and
// congestion model in the library (hierarchical Brite substitute,
// PlanetLab-like traceroute mesh, flat Waxman and Barabási-Albert meshes;
// memoryless and bursty shocks; unidentifiability and hidden-worm
// mutations) at varied vantage-point densities and correlation-set sizes.
// Bench binaries resolve entries through the shared --scenario flag and
// tomo_scenarios lists/runs them directly; the golden-metrics and property
// suites pin their behaviour. Every entry must have a row in
// docs/SCENARIOS.md (CI enforces this).
#pragma once

#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "util/json.hpp"

namespace tomo::core {

struct CatalogEntry {
  std::string name;     // registry key, e.g. "brite-high"
  std::string figure;   // paper lineage, e.g. "Fig. 3(a-c)"
  std::string summary;  // one line: what the scenario stresses
  ScenarioConfig config;  // base config; callers set/override the seed
};

/// Immutable process-wide registry of named scenarios.
class ScenarioCatalog {
 public:
  static const ScenarioCatalog& instance();

  const std::vector<CatalogEntry>& entries() const { return entries_; }

  /// nullptr when `name` is not registered.
  const CatalogEntry* find(const std::string& name) const;

  /// Throws tomo::Error listing the known names when `name` is missing.
  const CatalogEntry& at(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  ScenarioCatalog();

  std::vector<CatalogEntry> entries_;
};

/// Shrinks a config to test/CI scale (roughly half-size topology, same
/// correlation structure). The golden-metrics and property suites run
/// every registry scenario through this so the full catalog stays testable
/// in seconds.
ScenarioConfig shrink_for_tests(ScenarioConfig config);

/// Serializes a resolved config (bench telemetry "scenario" descriptor).
util::Json scenario_json(const ScenarioConfig& config);

}  // namespace tomo::core
