// Named scenario registry: the single place where evaluation workloads are
// defined.
//
// The paper's evaluation crosses two topologies with a handful of
// correlation settings; the registry generalizes that into named,
// composable ScenarioConfig entries covering every generator and
// congestion model in the library (hierarchical Brite substitute,
// PlanetLab-like traceroute mesh, flat Waxman and Barabási-Albert meshes;
// memoryless and bursty shocks; unidentifiability and hidden-worm
// mutations) at varied vantage-point densities and correlation-set sizes.
// Bench binaries resolve entries through the shared --scenario flag and
// tomo_scenarios lists/runs them directly; the golden-metrics and property
// suites pin their behaviour. Every entry must have a row in
// docs/SCENARIOS.md (CI enforces this).
#pragma once

#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "util/json.hpp"

namespace tomo::core {

struct CatalogEntry {
  std::string name;     // registry key, e.g. "brite-high"
  std::string figure;   // paper lineage, e.g. "Fig. 3(a-c)"
  std::string summary;  // one line: what the scenario stresses
  ScenarioConfig config;  // base config; callers set/override the seed
};

/// Process-wide registry of named scenarios. `instance()` returns the
/// fully-populated built-in registry; a default-constructed catalog is
/// empty (tests exercise registration invariants on their own instances).
class ScenarioCatalog {
 public:
  ScenarioCatalog() = default;

  static const ScenarioCatalog& instance();

  /// Registers an entry. Throws tomo::Error when an entry with the same
  /// name is already present — a duplicate registration would make
  /// --scenario silently resolve to whichever entry happened to be first.
  void add_entry(CatalogEntry entry);

  const std::vector<CatalogEntry>& entries() const { return entries_; }

  /// nullptr when `name` is not registered.
  const CatalogEntry* find(const std::string& name) const;

  /// Throws tomo::Error when `name` is missing; the message leads with
  /// near-miss suggestions (see scenario_suggestions) and then lists every
  /// known name.
  const CatalogEntry& at(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  static ScenarioCatalog built_in();

  std::vector<CatalogEntry> entries_;
};

/// Known names that look like plausible intentions behind a mistyped
/// `name`: substring matches (either direction, e.g. "hier" -> hier-2k)
/// and names within Levenshtein distance 2, in registry order.
std::vector<std::string> scenario_suggestions(
    const std::string& name, const std::vector<std::string>& known);

/// Shrinks a config to test/CI scale (roughly half-size topology, same
/// correlation structure). The golden-metrics and property suites run
/// every registry scenario through this so the full catalog stays testable
/// in seconds.
ScenarioConfig shrink_for_tests(ScenarioConfig config);

/// Serializes a resolved config (bench telemetry "scenario" descriptor).
util::Json scenario_json(const ScenarioConfig& config);

}  // namespace tomo::core
