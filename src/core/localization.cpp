#include "core/localization.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tomo::core {

LocalizationDomain build_domain(const graph::CoverageIndex& coverage,
                                const CongestedPaths& congested) {
  LocalizationDomain domain;
  domain.forced_good.assign(coverage.link_count(), 0);
  std::vector<std::uint8_t> is_congested_path(coverage.path_count(), 0);
  for (graph::PathId p : congested) {
    TOMO_REQUIRE(p < coverage.path_count(),
                 "congested path id out of range");
    is_congested_path[p] = 1;
  }
  // Assumption 2: a good path certifies all its links good.
  for (graph::PathId p = 0; p < coverage.path_count(); ++p) {
    if (is_congested_path[p]) continue;
    for (graph::LinkId e : coverage.links_of(p)) {
      domain.forced_good[e] = 1;
    }
  }
  domain.candidates.reserve(congested.size());
  for (graph::PathId p : congested) {
    std::vector<graph::LinkId> cand;
    for (graph::LinkId e : coverage.links_of(p)) {
      if (!domain.forced_good[e]) {
        cand.push_back(e);
      }
    }
    domain.candidates.push_back(std::move(cand));
  }
  return domain;
}

namespace {

/// Greedy cover over the congested paths. `gain(link)` must be positive
/// for links worth blaming; ties are broken toward more covered paths.
template <typename GainFn>
LocalizationResult greedy_cover(const graph::CoverageIndex& coverage,
                                const CongestedPaths& congested,
                                GainFn gain) {
  const LocalizationDomain domain = build_domain(coverage, congested);
  LocalizationResult result;

  std::vector<std::uint8_t> uncovered(congested.size(), 1);
  std::size_t remaining = congested.size();
  // Candidate links (union over paths), deduplicated.
  std::vector<graph::LinkId> pool;
  for (const auto& cand : domain.candidates) {
    pool.insert(pool.end(), cand.begin(), cand.end());
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // Map congested path -> dense index.
  std::vector<std::size_t> dense_of(coverage.path_count(),
                                    static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < congested.size(); ++i) {
    dense_of[congested[i]] = i;
  }
  auto covered_count = [&](graph::LinkId e) {
    std::size_t count = 0;
    for (graph::PathId p : coverage.paths_through(e)) {
      const std::size_t i = dense_of[p];
      if (i != static_cast<std::size_t>(-1) && uncovered[i]) {
        ++count;
      }
    }
    return count;
  };

  while (remaining > 0) {
    graph::LinkId best = coverage.link_count();
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_covers = 0;
    for (graph::LinkId e : pool) {
      const std::size_t covers = covered_count(e);
      if (covers == 0) continue;
      const double score = gain(e, covers);
      if (score > best_score ||
          (score == best_score && covers > best_covers)) {
        best_score = score;
        best = e;
        best_covers = covers;
      }
    }
    if (best == coverage.link_count()) {
      // Some congested path has no blameable link: infeasible observation
      // (can happen with packet noise flagging a path whose links are all
      // certified good by other paths).
      result.feasible = false;
      break;
    }
    result.congested_links.push_back(best);
    for (graph::PathId p : coverage.paths_through(best)) {
      const std::size_t i = dense_of[p];
      if (i != static_cast<std::size_t>(-1) && uncovered[i]) {
        uncovered[i] = 0;
        --remaining;
      }
    }
  }
  std::sort(result.congested_links.begin(), result.congested_links.end());
  return result;
}

}  // namespace

LocalizationResult localize_smallest_set(
    const graph::CoverageIndex& coverage, const CongestedPaths& congested) {
  // Classic greedy set cover: maximize newly covered paths per link.
  return greedy_cover(coverage, congested,
                      [](graph::LinkId, std::size_t covers) {
                        return static_cast<double>(covers);
                      });
}

LocalizationResult localize_greedy_map(
    const graph::CoverageIndex& coverage, const CongestedPaths& congested,
    const std::vector<double>& congestion_prob) {
  TOMO_REQUIRE(congestion_prob.size() == coverage.link_count(),
               "one congestion probability per link required");
  // Greedy maximization of the independence-form MAP objective
  //   sum over flagged links of log(p/(1-p))  s.t. the flags cover all
  // congested paths. Links with p > 1/2 have positive log-odds, so the MAP
  // includes every such candidate unconditionally; the remaining uncovered
  // paths are then explained by weighted greedy set cover with link cost
  // -log(p/(1-p)) > 0 (minimize cost per newly covered path). This is the
  // paper's "most likely feasible solution" in greedy form — and where the
  // correlation algorithm's probabilities pay off: links that congest as a
  // correlated group carry honest (high) probabilities instead of the
  // baseline's biased ones.
  const LocalizationDomain domain = build_domain(coverage, congested);
  LocalizationResult result;

  std::vector<std::uint8_t> uncovered(congested.size(), 1);
  std::size_t remaining = congested.size();
  std::vector<std::size_t> dense_of(coverage.path_count(),
                                    static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < congested.size(); ++i) {
    dense_of[congested[i]] = i;
  }
  auto mark_covered = [&](graph::LinkId e) {
    for (graph::PathId p : coverage.paths_through(e)) {
      const std::size_t i = dense_of[p];
      if (i != static_cast<std::size_t>(-1) && uncovered[i]) {
        uncovered[i] = 0;
        --remaining;
      }
    }
  };
  auto covered_count = [&](graph::LinkId e) {
    std::size_t count = 0;
    for (graph::PathId p : coverage.paths_through(e)) {
      const std::size_t i = dense_of[p];
      if (i != static_cast<std::size_t>(-1) && uncovered[i]) ++count;
    }
    return count;
  };
  auto log_odds = [&](graph::LinkId e) {
    const double p = std::clamp(congestion_prob[e], 1e-4, 1.0 - 1e-4);
    return std::log(p / (1.0 - p));
  };

  std::vector<graph::LinkId> pool;
  for (const auto& cand : domain.candidates) {
    pool.insert(pool.end(), cand.begin(), cand.end());
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // Phase 1: positive-log-odds candidates always improve the objective.
  for (graph::LinkId e : pool) {
    if (log_odds(e) > 0.0) {
      result.congested_links.push_back(e);
      mark_covered(e);
    }
  }

  // Phase 2: weighted greedy set cover over the rest.
  while (remaining > 0) {
    graph::LinkId best = coverage.link_count();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (graph::LinkId e : pool) {
      const std::size_t covers = covered_count(e);
      if (covers == 0) continue;
      const double cost = -log_odds(e);  // > 0 here
      const double ratio = cost / static_cast<double>(covers);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = e;
      }
    }
    if (best == coverage.link_count()) {
      result.feasible = false;
      break;
    }
    result.congested_links.push_back(best);
    mark_covered(best);
  }
  std::sort(result.congested_links.begin(), result.congested_links.end());
  return result;
}

LocalizationResult localize_exact_map(const graph::CoverageIndex& coverage,
                                      const corr::CorrelationSets& sets,
                                      const TheoremResult& probabilities,
                                      const CongestedPaths& congested,
                                      std::size_t max_links) {
  TOMO_REQUIRE(sets.link_count() == coverage.link_count(),
               "correlation sets and coverage disagree on link count");
  TOMO_REQUIRE(sets.link_count() <= max_links,
               "localize_exact_map: too many links for state enumeration");
  const LocalizationDomain domain = build_domain(coverage, congested);

  // Admissible per-set states: no forced-good link congested, no good path
  // covered. Track per state which congested paths it covers.
  struct SetState {
    double log_prob;
    graph::PathIdSet covered;  // subset of `congested`
    std::vector<graph::LinkId> links;
  };
  std::vector<std::vector<SetState>> admissible(sets.set_count());
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    const auto& members = sets.set(s);
    const std::size_t total = std::size_t{1} << members.size();
    for (std::size_t mask = 0; mask < total; ++mask) {
      std::vector<graph::LinkId> links;
      bool ok = true;
      for (std::size_t bit = 0; bit < members.size() && ok; ++bit) {
        if (mask & (std::size_t{1} << bit)) {
          if (domain.forced_good[members[bit]]) {
            ok = false;
          } else {
            links.push_back(members[bit]);
          }
        }
      }
      if (!ok) continue;
      const double prob = probabilities.state_prob[s][mask];
      if (prob <= 0.0) continue;
      graph::PathIdSet covered = coverage.covered_paths(links);
      // Covered paths must all be congested (good paths would contradict
      // the observation) — guaranteed by the forced_good filter, since a
      // link of a good path is forced good. So `covered` ⊆ congested.
      admissible[s].push_back(
          SetState{std::log(prob), std::move(covered), std::move(links)});
    }
  }

  // DFS over per-set states maximizing total log probability subject to
  // covering every congested path.
  LocalizationResult result;
  double best = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> choice(sets.set_count(), 0);
  std::vector<std::size_t> best_choice;
  auto dfs = [&](auto&& self, std::size_t s, double log_prob,
                 const graph::PathIdSet& covered) -> void {
    if (log_prob <= best) {
      // Even with probability-1 states ahead, log_prob can only decrease.
      return;
    }
    if (s == sets.set_count()) {
      if (covered.size() == congested.size()) {  // covered ⊆ congested
        best = log_prob;
        best_choice = choice;
      }
      return;
    }
    for (std::size_t i = 0; i < admissible[s].size(); ++i) {
      choice[s] = i;
      self(self, s + 1, log_prob + admissible[s][i].log_prob,
           graph::path_set_union(covered, admissible[s][i].covered));
    }
  };
  dfs(dfs, 0, 0.0, {});

  if (best_choice.empty()) {
    if (!congested.empty()) {
      result.feasible = false;
    }
    return result;
  }
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    const auto& links = admissible[s][best_choice[s]].links;
    result.congested_links.insert(result.congested_links.end(),
                                  links.begin(), links.end());
  }
  std::sort(result.congested_links.begin(), result.congested_links.end());
  return result;
}

double LocalizationScore::detection_rate() const {
  const std::size_t positives = true_positives + false_negatives;
  if (positives == 0) return 1.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(positives);
}

double LocalizationScore::false_positive_rate() const {
  const std::size_t reported = true_positives + false_positives;
  if (reported == 0) return 0.0;
  return static_cast<double>(false_positives) /
         static_cast<double>(reported);
}

LocalizationScore score_localization(
    const std::vector<std::uint8_t>& true_state,
    const std::vector<graph::LinkId>& reported) {
  LocalizationScore score;
  std::vector<std::uint8_t> flagged(true_state.size(), 0);
  for (graph::LinkId e : reported) {
    TOMO_REQUIRE(e < true_state.size(), "reported link out of range");
    flagged[e] = 1;
  }
  for (graph::LinkId e = 0; e < true_state.size(); ++e) {
    if (true_state[e] && flagged[e]) ++score.true_positives;
    if (!true_state[e] && flagged[e]) ++score.false_positives;
    if (true_state[e] && !flagged[e]) ++score.false_negatives;
  }
  return score;
}

}  // namespace tomo::core
