// The paper's practical algorithm (§4): infer per-link congestion
// probabilities from end-to-end measurements in the presence of correlated
// links, with computation polynomial in the number of links.
#pragma once

#include <string>
#include <vector>

#include "core/equations.hpp"
#include "linalg/solvers.hpp"

namespace tomo::core {

struct InferenceOptions {
  /// End-to-end solver configuration — kind, NNLS engine (incremental
  /// Gram/Cholesky vs reference QR), Gram-build jobs, tolerances —
  /// threaded down to linalg::solve_log_system. The solve runs on the
  /// equation system's sparse view: the dense incidence matrix is never
  /// materialized on this path.
  linalg::SolverOptions solver;
  EquationBuildOptions equations;
  /// Apply the paper's §3.3 fallback: links flagged unidentifiable by the
  /// structural Assumption-4 check are treated as uncorrelated (moved to
  /// singleton sets) before equations are formed.
  bool refine_unidentifiable = true;
  /// Second stage of the same fallback: links that end up in *no* usable
  /// equation (every path through them also crosses a same-set link) are
  /// effectively unidentifiable under the declared structure; treat them
  /// as uncorrelated and rebuild, so the previously correlated paths
  /// become usable. Their own estimates inherit the independence
  /// algorithm's bias, but every other link keeps its clean equations —
  /// exactly the trade-off the paper describes.
  bool demote_uncovered = true;
  std::size_t max_demotion_rounds = 3;
  /// Weight each equation by the inverse standard deviation of its
  /// estimate (delta method) before solving, so thinly supported
  /// measurements count less. No effect with oracle measurements.
  bool weight_by_variance = false;
};

struct InferenceResult {
  std::vector<double> congestion_prob;  // P(X_k = 1) per link
  std::vector<double> log_good;         // x_k = log P(X_k = 0)
  EquationSystem system;                // the solved system (diagnostics)
  std::string solver_detail;
  /// Converged NNLS support (links with non-zero estimate), sorted; filled
  /// by the incremental engine only. The streaming driver feeds it back as
  /// the next window's warm start.
  std::vector<std::size_t> active_set;
  /// Wall seconds spent inside the solver (telemetry; never printed on
  /// stdout — the *_solve_seconds JSON mirror of system.build_seconds).
  double solve_seconds = 0.0;
  std::vector<graph::LinkId> refined_links;  // demoted to singletons
};

/// The structure-determination phase of the correlation algorithm,
/// factored out so the batch and streaming drivers run literally the same
/// code: Assumption-4 refinement, the pair-equation harvest, and the §3.3
/// demotion rounds.
struct RefinedHarvest {
  EquationSystem system;  // harvest under the refined structure
  std::vector<graph::LinkId> refined_links;  // demoted to singletons
  /// Path sets of the intermediate demotion rounds' equations (harvests a
  /// later round replaced). Everything else in the refine→harvest→demote
  /// chain is measurement-independent, so a caller re-running the chain on
  /// a *weaker* measurement (the bootstrap's resamples: good snapshots can
  /// only be lost, never invented) replays it identically iff these path
  /// sets and the final system's equations all stay usable — the batched
  /// bootstrap's support-stability certificate.
  std::vector<std::vector<graph::PathId>> witness_paths;
};

/// Runs refinement + harvest + demotion on the measurements seen so far.
/// Unlike infer_congestion this may return an *empty* system — the
/// streaming warm-up case where no usable good path has been observed yet;
/// batch callers reject that downstream.
RefinedHarvest harvest_refined_system(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const graph::CoverageIndex& coverage, const corr::CorrelationSets& sets,
    const sim::MeasurementProvider& measurement,
    const InferenceOptions& options);

/// Converts a solved log-domain system into the probability-domain fields
/// of an InferenceResult (log_good, clamped congestion_prob, active set,
/// solver detail). Shared by the batch and streaming drivers.
void apply_solution(InferenceResult& result,
                    linalg::LogSystemSolution solution);

/// The correlation algorithm. `sets` is the operator's declared correlation
/// structure; measurements come from `measurement`.
InferenceResult infer_congestion(const graph::Graph& g,
                                 const std::vector<graph::Path>& paths,
                                 const graph::CoverageIndex& coverage,
                                 const corr::CorrelationSets& sets,
                                 const sim::MeasurementProvider& measurement,
                                 const InferenceOptions& options = {});

/// Moves every link in `links` out of its correlation set into a singleton
/// set (empty source sets disappear). Exposed for tests and scenarios.
corr::CorrelationSets demote_to_singletons(
    const corr::CorrelationSets& sets,
    const std::vector<graph::LinkId>& links);

}  // namespace tomo::core
