// Evaluation scenarios (paper §5): topology + correlation structure +
// ground-truth congestion model for each figure's workload.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corr/correlation.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace tomo::core {

enum class TopologyKind {
  kBrite,           // hierarchical AS+router substitute (Fig. 3-5 "Brite")
  kPlanetLab,       // synthetic traceroute mesh (Fig. 4-5 "PlanetLab")
  kWaxman,          // flat random-geometric mesh (BRITE router-level mode)
  kBarabasiAlbert,  // flat preferential-attachment mesh (BRITE AS-level mode)
};

/// Human-readable name of a topology kind (for descriptors and docs).
const char* to_string(TopologyKind kind);

enum class CorrelationLevel {
  kHigh,   // > 2 congested links per correlation set (Fig. 3 a-c)
  kLoose,  // <= 2 congested links per correlation set (Fig. 3 d)
};

struct ScenarioConfig {
  TopologyKind topology = TopologyKind::kBrite;

  // Scale knobs (defaults give a minutes-long full suite; the benches'
  // --full flag raises them to paper scale).
  std::size_t as_nodes = 60;       // kBrite
  std::size_t as_endpoints = 16;   // kBrite
  std::size_t routers = 150;       // node count for all flat topologies
  std::size_t vantage_points = 14;  // flat topologies
  std::size_t cluster_size = 6;  // max correlation-set size (all topologies)
  /// Probability that a link's bottleneck sits on a shared fabric segment
  /// (higher = more links correlated).
  double fabric_prob = 0.65;

  // Flat-mesh shape knobs: Waxman geometric density (kWaxman) and BA
  // attachment count (kBarabasiAlbert).
  double waxman_alpha = 0.15;
  double waxman_beta = 0.2;
  std::size_t ba_edges_per_node = 2;

  double congested_fraction = 0.10;
  CorrelationLevel level = CorrelationLevel::kHigh;
  double correlation_strength = 0.95;
  double marginal_lo = 0.10;  // congested links draw their true congestion
  double marginal_hi = 0.60;  // probability around a per-set base in range

  /// Mean congestion-episode length in snapshots. > 1 drives every set's
  /// shock through a Gilbert chain (same per-snapshot marginal law, so
  /// Assumption 3 still holds); 1 keeps the memoryless common shock.
  double burst_length = 1.0;

  /// Target fraction of congested links made unidentifiable by mutating
  /// the correlation structure around intermediate nodes (Fig. 4).
  double unidentifiable_fraction = 0.0;

  /// Target fraction of congested links secretly correlated by a worm the
  /// declared structure knows nothing about (Fig. 5).
  double mislabeled_fraction = 0.0;
  double worm_rho = 0.5;

  std::uint64_t seed = 1;
};

struct ScenarioInstance {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  corr::CorrelationSets declared_sets;  // what the algorithms are told
  std::unique_ptr<corr::CongestionModel> truth;  // what actually happens
  std::vector<graph::LinkId> congested_links;    // links with p > 0
  std::vector<graph::LinkId> mislabeled_links;   // worm targets
  std::vector<graph::LinkId> unidentifiable_congested;
  std::vector<double> true_marginals;  // truth->marginals(), cached
  std::string description;
};

/// Materializes a scenario. Deterministic in config.seed.
ScenarioInstance build_scenario(const ScenarioConfig& config);

}  // namespace tomo::core
