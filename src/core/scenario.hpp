// Evaluation scenarios (paper §5): topology + correlation structure +
// ground-truth congestion model for each figure's workload.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corr/correlation.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"

namespace tomo::core {

enum class TopologyKind {
  kBrite,      // hierarchical AS+router substitute (Fig. 3-5 "Brite")
  kPlanetLab,  // synthetic traceroute mesh (Fig. 4-5 "PlanetLab")
};

enum class CorrelationLevel {
  kHigh,   // > 2 congested links per correlation set (Fig. 3 a-c)
  kLoose,  // <= 2 congested links per correlation set (Fig. 3 d)
};

struct ScenarioConfig {
  TopologyKind topology = TopologyKind::kBrite;

  // Scale knobs (defaults give a minutes-long full suite; the benches'
  // --full flag raises them to paper scale).
  std::size_t as_nodes = 60;
  std::size_t as_endpoints = 16;
  std::size_t routers = 150;
  std::size_t vantage_points = 14;
  std::size_t cluster_size = 6;  // max correlation-set size (both topologies)
  /// Probability that a link's bottleneck sits on a shared fabric segment
  /// (higher = more links correlated).
  double fabric_prob = 0.65;

  double congested_fraction = 0.10;
  CorrelationLevel level = CorrelationLevel::kHigh;
  double correlation_strength = 0.95;
  double marginal_lo = 0.10;  // congested links draw their true congestion
  double marginal_hi = 0.60;  // probability around a per-set base in range

  /// Target fraction of congested links made unidentifiable by mutating
  /// the correlation structure around intermediate nodes (Fig. 4).
  double unidentifiable_fraction = 0.0;

  /// Target fraction of congested links secretly correlated by a worm the
  /// declared structure knows nothing about (Fig. 5).
  double mislabeled_fraction = 0.0;
  double worm_rho = 0.5;

  std::uint64_t seed = 1;
};

struct ScenarioInstance {
  graph::Graph graph;
  std::vector<graph::Path> paths;
  corr::CorrelationSets declared_sets;  // what the algorithms are told
  std::unique_ptr<corr::CongestionModel> truth;  // what actually happens
  std::vector<graph::LinkId> congested_links;    // links with p > 0
  std::vector<graph::LinkId> mislabeled_links;   // worm targets
  std::vector<graph::LinkId> unidentifiable_congested;
  std::vector<double> true_marginals;  // truth->marginals(), cached
  std::string description;
};

/// Materializes a scenario. Deterministic in config.seed.
ScenarioInstance build_scenario(const ScenarioConfig& config);

}  // namespace tomo::core
