#include "core/scenario_catalog.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace tomo::core {

void ScenarioCatalog::add_entry(CatalogEntry entry) {
  TOMO_REQUIRE(find(entry.name) == nullptr,
               "duplicate scenario registration '" + entry.name + "'");
  entries_.push_back(std::move(entry));
}

ScenarioCatalog ScenarioCatalog::built_in() {
  ScenarioCatalog catalog;
  // Registration helper. Keep the literal name as the first argument on
  // its own call — CI greps `add("<name>"` to enforce docs/SCENARIOS.md
  // coverage.
  const auto add = [&catalog](std::string name, std::string figure,
                              std::string summary, ScenarioConfig config) {
    catalog.add_entry(CatalogEntry{std::move(name), std::move(figure),
                                   std::move(summary), std::move(config)});
  };

  {
    ScenarioConfig c;  // defaults: Brite, high correlation, 10% congested
    add("brite-high", "Fig. 3(a-c)",
        "Brite hierarchical topology, > 2 congested links per set", c);
  }
  {
    ScenarioConfig c;
    c.level = CorrelationLevel::kLoose;
    add("brite-loose", "Fig. 3(d)",
        "Brite topology, at most 2 congested links per set", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kPlanetLab;
    add("planetlab-high", "Fig. 4(c,d) baseline",
        "PlanetLab-like traceroute mesh, high correlation", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kPlanetLab;
    c.level = CorrelationLevel::kLoose;
    add("planetlab-loose", "Fig. 3(d) on PlanetLab",
        "PlanetLab-like mesh, at most 2 congested links per set", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kWaxman;
    c.burst_length = 16.0;
    c.cluster_size = 5;
    add("waxman-bursty", "§2.2 Assumption 3 stress",
        "flat Waxman mesh, Gilbert shocks with 16-snapshot bursts", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kWaxman;
    // Uncapped since the streaming equation harvest (PR 4): 40 vantage
    // points = 1560 ordered-pair paths on the dense mesh. The harvest is
    // no longer the bottleneck; see docs/SCENARIOS.md for runtimes.
    c.vantage_points = 40;
    c.waxman_alpha = 0.20;
    c.cluster_size = 4;
    add("waxman-dense-vps", "new workload",
        "dense Waxman mesh, 40 vantage points, small correlation sets", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kWaxman;
    // The ROADMAP's full-scale measured mesh: ~870 ordered-pair paths over
    // a large sparse Waxman graph, previously hours per trial.
    c.routers = 280;
    c.vantage_points = 30;
    add("waxman-full", "§5 scale stress",
        "large Waxman mesh, 30 vantage points, ~870 measured paths", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kBarabasiAlbert;
    c.vantage_points = 8;
    add("ba-sparse-vps", "new workload",
        "scale-free BA mesh measured from only 8 vantage points", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kBarabasiAlbert;
    c.ba_edges_per_node = 3;
    c.vantage_points = 20;
    c.cluster_size = 8;
    c.congested_fraction = 0.15;
    add("ba-hub-stress", "new workload",
        "denser BA mesh: hub fabrics form large correlation sets", c);
  }
  {
    ScenarioConfig c;
    c.unidentifiable_fraction = 0.25;
    add("unidentifiable-25", "Fig. 4(a)",
        "Brite topology, 25% of congested links unidentifiable", c);
  }
  {
    ScenarioConfig c;
    c.unidentifiable_fraction = 0.50;
    add("unidentifiable-50", "Fig. 4(b)",
        "Brite topology, 50% of congested links unidentifiable", c);
  }
  {
    ScenarioConfig c;
    c.mislabeled_fraction = 0.50;
    c.worm_rho = 0.4;
    add("worm-mislabeled", "Fig. 5(b)",
        "Brite topology, worm secretly correlates 50% of congested links",
        c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kPlanetLab;
    c.mislabeled_fraction = 0.25;
    c.worm_rho = 0.4;
    add("worm-planetlab", "Fig. 5(c)",
        "PlanetLab-like mesh, worm correlates 25% of congested links", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kPlanetLab;
    c.burst_length = 8.0;
    add("planetlab-bursty", "§2.2 Assumption 3 stress",
        "PlanetLab-like mesh, Gilbert shocks with 8-snapshot bursts", c);
  }
  {
    ScenarioConfig c;
    c.topology = TopologyKind::kWaxman;
    c.burst_length = 4.0;
    c.mislabeled_fraction = 0.25;
    c.worm_rho = 0.5;
    add("waxman-worm-bursty", "Fig. 5 x Assumption 3",
        "bursty Waxman mesh with a hidden worm across sets", c);
  }
  {
    // Internet-scale hierarchical entries for the sharded inference path
    // (docs/ARCHITECTURE.md "The sharded inference path"). The expensive
    // unidentifiability injection stays off: these entries measure scale,
    // not Fig. 4 robustness, and injection is O(nodes x identifiability
    // checks). shrink_for_tests caps them to catalog-suite scale, so the
    // property suites still cover them cheaply.
    ScenarioConfig c;
    c.as_nodes = 2000;
    c.as_endpoints = 48;
    add("hier-2k", "§5 scale stress",
        "2k-AS hierarchical topology, 48 vantage ASes (~2.2k paths)", c);
  }
  {
    ScenarioConfig c;
    c.as_nodes = 10000;
    c.as_endpoints = 104;
    add("hier-10k", "§5 scale stress",
        "10k-AS hierarchical topology, 104 vantage ASes (~10.7k paths)", c);
  }
  return catalog;
}

const ScenarioCatalog& ScenarioCatalog::instance() {
  static const ScenarioCatalog catalog = built_in();
  return catalog;
}

const CatalogEntry* ScenarioCatalog::find(const std::string& name) const {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const CatalogEntry& e) { return e.name == name; });
  return it == entries_.end() ? nullptr : &*it;
}

const CatalogEntry& ScenarioCatalog::at(const std::string& name) const {
  const CatalogEntry* entry = find(name);
  if (entry == nullptr) {
    std::string message = "unknown scenario '" + name + "'";
    const std::vector<std::string> close =
        scenario_suggestions(name, names());
    if (!close.empty()) {
      message += "; did you mean: ";
      for (std::size_t i = 0; i < close.size(); ++i) {
        message += (i == 0 ? "" : ", ") + close[i];
      }
      message += "?";
    } else {
      message += ";";
    }
    std::string known;
    for (const CatalogEntry& e : entries_) {
      known += known.empty() ? e.name : ", " + e.name;
    }
    TOMO_REQUIRE(false, message + " known: " + known);
  }
  return *entry;
}

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

std::vector<std::string> scenario_suggestions(
    const std::string& name, const std::vector<std::string>& known) {
  std::vector<std::string> out;
  if (name.empty()) {
    return out;
  }
  for (const std::string& candidate : known) {
    const bool substring = candidate.find(name) != std::string::npos ||
                           name.find(candidate) != std::string::npos;
    if (substring || edit_distance(name, candidate) <= 2) {
      out.push_back(candidate);
    }
  }
  return out;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const CatalogEntry& e : entries_) {
    out.push_back(e.name);
  }
  return out;
}

ScenarioConfig shrink_for_tests(ScenarioConfig config) {
  config.as_nodes = std::min<std::size_t>(config.as_nodes, 40);
  config.as_endpoints = std::min<std::size_t>(config.as_endpoints, 10);
  config.routers = std::min<std::size_t>(config.routers, 80);
  config.vantage_points =
      std::max<std::size_t>(4, config.vantage_points / 2);
  return config;
}

util::Json scenario_json(const ScenarioConfig& c) {
  return util::Json::object()
      .set("topology", to_string(c.topology))
      .set("as_nodes", c.as_nodes)
      .set("as_endpoints", c.as_endpoints)
      .set("routers", c.routers)
      .set("vantage_points", c.vantage_points)
      .set("cluster_size", c.cluster_size)
      .set("fabric_prob", c.fabric_prob)
      .set("waxman_alpha", c.waxman_alpha)
      .set("waxman_beta", c.waxman_beta)
      .set("ba_edges_per_node", c.ba_edges_per_node)
      .set("congested_fraction", c.congested_fraction)
      .set("level",
           c.level == CorrelationLevel::kHigh ? "high" : "loose")
      .set("correlation_strength", c.correlation_strength)
      .set("marginal_lo", c.marginal_lo)
      .set("marginal_hi", c.marginal_hi)
      .set("burst_length", c.burst_length)
      .set("unidentifiable_fraction", c.unidentifiable_fraction)
      .set("mislabeled_fraction", c.mislabeled_fraction)
      .set("worm_rho", c.worm_rho);
}

}  // namespace tomo::core
