#include "core/correlation_algorithm.hpp"

#include <algorithm>
#include <cmath>

#include "corr/identifiability.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace tomo::core {

corr::CorrelationSets demote_to_singletons(
    const corr::CorrelationSets& sets,
    const std::vector<graph::LinkId>& links) {
  std::vector<std::uint8_t> demote(sets.link_count(), 0);
  for (graph::LinkId e : links) {
    TOMO_REQUIRE(e < sets.link_count(), "demoted link out of range");
    demote[e] = 1;
  }
  graph::LinkPartition partition;
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    std::vector<graph::LinkId> keep;
    for (graph::LinkId e : sets.set(s)) {
      if (!demote[e]) keep.push_back(e);
    }
    if (!keep.empty()) partition.push_back(std::move(keep));
  }
  for (graph::LinkId e = 0; e < sets.link_count(); ++e) {
    if (demote[e]) partition.push_back({e});
  }
  return corr::CorrelationSets(sets.link_count(), std::move(partition));
}

RefinedHarvest harvest_refined_system(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const graph::CoverageIndex& coverage, const corr::CorrelationSets& sets,
    const sim::MeasurementProvider& measurement,
    const InferenceOptions& options) {
  RefinedHarvest harvest;

  corr::CorrelationSets refined = sets;
  if (options.refine_unidentifiable) {
    harvest.refined_links =
        corr::structurally_unidentifiable_links(g, paths, sets);
    if (!harvest.refined_links.empty()) {
      refined = demote_to_singletons(sets, harvest.refined_links);
    }
  }

  harvest.system =
      build_equations(coverage, refined, measurement, options.equations);

  // Fallback rounds: links untouched by any usable equation are
  // unidentifiable under the declared structure — act as if they were
  // uncorrelated (paper §3.3) and rebuild.
  for (std::size_t round = 0;
       options.demote_uncovered && round < options.max_demotion_rounds;
       ++round) {
    std::vector<std::uint8_t> covered(coverage.link_count(), 0);
    for (const Equation& eq : harvest.system.equations) {
      for (graph::LinkId e : eq.links) covered[e] = 1;
    }
    std::vector<graph::LinkId> uncovered;
    for (graph::LinkId e = 0; e < coverage.link_count(); ++e) {
      if (!covered[e]) uncovered.push_back(e);
    }
    if (uncovered.empty()) break;
    bool progress = false;
    for (graph::LinkId e : uncovered) {
      if (refined.set(refined.set_of(e)).size() > 1) progress = true;
    }
    if (!progress) break;  // already singletons; nothing left to relax
    // This round's harvest is about to be replaced: record its equation
    // path sets so bootstrap replicates can certify the demotion decision
    // replays (see RefinedHarvest::witness_paths).
    for (const Equation& eq : harvest.system.equations) {
      harvest.witness_paths.push_back(eq.paths);
    }
    refined = demote_to_singletons(refined, uncovered);
    harvest.refined_links.insert(harvest.refined_links.end(),
                                 uncovered.begin(), uncovered.end());
    harvest.system =
        build_equations(coverage, refined, measurement, options.equations);
  }
  return harvest;
}

void apply_solution(InferenceResult& result,
                    linalg::LogSystemSolution solution) {
  result.log_good = std::move(solution.x);
  result.solver_detail = std::move(solution.detail);
  result.active_set = std::move(solution.active_set);
  result.congestion_prob.resize(result.log_good.size());
  for (std::size_t k = 0; k < result.log_good.size(); ++k) {
    result.congestion_prob[k] = 1.0 - std::exp(result.log_good[k]);
    // Clamp residual numerical noise.
    result.congestion_prob[k] =
        std::clamp(result.congestion_prob[k], 0.0, 1.0);
  }
}

InferenceResult infer_congestion(const graph::Graph& g,
                                 const std::vector<graph::Path>& paths,
                                 const graph::CoverageIndex& coverage,
                                 const corr::CorrelationSets& sets,
                                 const sim::MeasurementProvider& measurement,
                                 const InferenceOptions& options) {
  InferenceResult result;

  RefinedHarvest harvest = harvest_refined_system(g, paths, coverage, sets,
                                                  measurement, options);
  result.system = std::move(harvest.system);
  result.refined_links = std::move(harvest.refined_links);
  TOMO_REQUIRE(!result.system.equations.empty(),
               "no usable equations: the measurements never observed a "
               "usable good path");

  // Solve on the harvest's sparse view: the variance weights (when
  // requested) are applied row-by-row inside the view, and the incremental
  // NNLS path builds its Gram products straight from the per-equation
  // support — the dense incidence matrix never materializes here.
  const std::size_t weight_samples =
      options.weight_by_variance ? measurement.sample_count() : 0;
  const Stopwatch solve_timer;
  linalg::LogSystemSolution solution = linalg::solve_log_system(
      sparse_view(result.system, weight_samples), options.solver);
  result.solve_seconds = solve_timer.seconds();
  apply_solution(result, std::move(solution));
  return result;
}

}  // namespace tomo::core
