// The resolved per-trial experiment specification.
//
// Historically every figure binary re-assembled the same three config
// fragments by hand — a ScenarioConfig (topology + correlation), a
// SimulatorConfig (snapshots/packets/tl), and InferenceOptions — each with
// its own copy of the seed plumbing. TrialSpec collapses them into one
// struct resolved once per run: the scenario is the single source of truth,
// and per-trial seeds are derived through the TrialContext tag convention
// (seed(tag) = mix_seed(base_seed, tag + trial)), so trials stay
// bit-reproducible and jobs-invariant under run_trials.
#pragma once

#include <cstdint>

#include "core/bootstrap.hpp"
#include "core/experiment.hpp"
#include "core/run_trials.hpp"
#include "core/scenario.hpp"

namespace tomo::core {

struct TrialSpec {
  /// Base scenario (seed field ignored; overwritten per trial).
  ScenarioConfig scenario;
  /// Simulator knobs (seed field ignored; overwritten per trial).
  sim::SimulatorConfig sim;
  InferenceOptions inference;
  /// Bootstrap knobs for binaries that wrap trials in replicate intervals
  /// (seed/inference fields ignored; overwritten by bootstrap_for).
  BootstrapOptions bootstrap;

  /// Seed-derivation tags. The defaults match the benches' long-standing
  /// convention; binaries with historical tags (fig3a's 0x3a00, the
  /// registry's per-entry tags) override scenario_tag to keep their trial
  /// streams byte-identical to earlier releases.
  std::uint64_t scenario_tag = 0x5ce0;
  std::uint64_t sim_tag = 0x51000;
  std::uint64_t bootstrap_tag = 0x1b00;

  /// The scenario of one trial: base config with the trial's topology seed.
  ScenarioConfig scenario_for(const TrialContext& ctx) const;

  /// The experiment config of one trial: sim knobs with the trial's
  /// simulator seed, plus the shared inference options.
  ExperimentConfig experiment_for(const TrialContext& ctx) const;

  /// The bootstrap options of one trial: the spec's bootstrap knobs with
  /// the trial's replicate seed and the shared inference options.
  BootstrapOptions bootstrap_for(const TrialContext& ctx) const;

  struct TrialRun {
    ScenarioInstance instance;
    ExperimentResult result;
  };

  /// One full trial: build the scenario, run the experiment.
  TrialRun run(const TrialContext& ctx) const;
};

}  // namespace tomo::core
