// The "theorem algorithm": the constructive procedure inside the proof of
// Theorem 1 (paper §3, Appendix A).
//
// It measures P(ψ(S) = ψ(A)) — the probability that the paths covered by
// correlation subset A are *exactly* the congested paths — for every
// A ∈ C-tilde, orders subsets by |ψ(A)|, and solves Eq. 18
//
//   P(ψ(S)=ψ(A)) / P(ψ(S)=∅)  =  α_A Γ_A + Γ_Ā
//
// for the congestion factors α_A = P(S^p=A)/P(S^p=∅), each of which
// depends only on already-computed factors (Lemmas 1-2). Lemma 3 then
// recovers every per-set state probability and hence every joint and
// marginal congestion probability.
//
// The cost is exponential in correlation-set size and in the state
// enumeration, which is precisely why the paper develops the practical §4
// algorithm; this implementation exists as the exact reference for small
// systems and as executable documentation of the proof.
#pragma once

#include <cstdint>
#include <vector>

#include "corr/correlation.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"

namespace tomo::core {

struct TheoremOptions {
  std::size_t max_set_size = 16;  // per-set mask enumeration guard
  std::size_t max_links = 24;     // total-state enumeration guard
};

struct TheoremResult {
  /// Congestion factors per correlation set, indexed by member mask
  /// (bit i = i-th link of the sorted member list); alpha[s][0] == 1.
  std::vector<std::vector<double>> alpha;
  /// P(S^p = A) per correlation set and member mask.
  std::vector<std::vector<double>> state_prob;
  /// Marginal P(X_k = 1) per link.
  std::vector<double> congestion_prob;
};

/// Runs the theorem algorithm. Throws tomo::Error if Assumption 4 is
/// violated (a congestion factor would be needed before it is computable)
/// or if the guards are exceeded.
TheoremResult run_theorem_algorithm(const graph::CoverageIndex& coverage,
                                    const corr::CorrelationSets& sets,
                                    const sim::MeasurementProvider& m,
                                    const TheoremOptions& options = {});

/// P(all links in `links` congested) from a theorem result: product over
/// correlation sets of the within-set superset sums (Theorem 1 delivers
/// the probability of any set of links being congested).
double joint_congested_prob(const TheoremResult& result,
                            const corr::CorrelationSets& sets,
                            const std::vector<graph::LinkId>& links);

}  // namespace tomo::core
