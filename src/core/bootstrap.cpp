#include "core/bootstrap.hpp"

#include <algorithm>

#include "sim/measurement.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace tomo::core {

sim::PathObservations resample_snapshots(const sim::PathObservations& obs,
                                         Rng& rng) {
  const std::size_t n = obs.snapshot_count();
  sim::PathObservations out(obs.path_count(), n);
  std::vector<std::size_t> picks(n);
  for (std::size_t i = 0; i < n; ++i) {
    picks[i] = static_cast<std::size_t>(rng.below(n));
  }
  for (sim::PathId p = 0; p < obs.path_count(); ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      if (obs.congested(p, picks[i])) {
        out.set_congested(p, i);
      }
    }
  }
  return out;
}

BootstrapResult bootstrap_congestion(const graph::Graph& g,
                                     const std::vector<graph::Path>& paths,
                                     const graph::CoverageIndex& coverage,
                                     const corr::CorrelationSets& sets,
                                     const sim::PathObservations& obs,
                                     const BootstrapOptions& options) {
  TOMO_REQUIRE(options.replicates >= 2, "bootstrap needs >= 2 replicates");
  TOMO_REQUIRE(options.confidence > 0.0 && options.confidence < 1.0,
               "confidence must be in (0,1)");

  BootstrapResult result;
  {
    const sim::EmpiricalMeasurement full(obs);
    result.point = infer_congestion(g, paths, coverage, sets, full,
                                    options.inference)
                       .congestion_prob;
  }

  std::vector<std::vector<double>> samples(g.link_count());
  Rng rng(mix_seed(options.seed, 0xb007ULL));
  for (std::size_t r = 0; r < options.replicates; ++r) {
    const sim::PathObservations replicate = resample_snapshots(obs, rng);
    const sim::EmpiricalMeasurement measurement(replicate);
    std::vector<double> estimate;
    try {
      estimate = infer_congestion(g, paths, coverage, sets, measurement,
                                  options.inference)
                     .congestion_prob;
    } catch (const Error&) {
      // A replicate can lose all usable equations (every good snapshot of
      // some path resampled away); skip it rather than abort the interval.
      continue;
    }
    for (graph::LinkId e = 0; e < g.link_count(); ++e) {
      samples[e].push_back(estimate[e]);
    }
    ++result.replicates;
  }
  TOMO_REQUIRE(result.replicates >= 2,
               "bootstrap: too few usable replicates");

  const double tail = (1.0 - options.confidence) / 2.0;
  result.lower.resize(g.link_count());
  result.upper.resize(g.link_count());
  for (graph::LinkId e = 0; e < g.link_count(); ++e) {
    result.lower[e] = percentile(samples[e], 100.0 * tail);
    result.upper[e] = percentile(samples[e], 100.0 * (1.0 - tail));
  }
  return result;
}

}  // namespace tomo::core
