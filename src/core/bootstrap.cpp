#include "core/bootstrap.hpp"

#include <cstdio>
#include <future>
#include <utility>

#include "sim/estimator.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace tomo::core {
namespace {

/// Seed-stream tag; replicate_rng(seed, r) = Rng(mix_seed(seed, tag + r)).
constexpr std::uint64_t kReplicateTag = 0xb007ULL;

}  // namespace

BootstrapMode bootstrap_mode_from_string(const std::string& name) {
  if (name == "batched") return BootstrapMode::kBatched;
  if (name == "reference") return BootstrapMode::kReference;
  throw Error("unknown bootstrap mode: " + name +
              " (expected batched|reference)");
}

std::string to_string(BootstrapMode mode) {
  return mode == BootstrapMode::kBatched ? "batched" : "reference";
}

Rng replicate_rng(std::uint64_t seed, std::size_t replicate) {
  return Rng(mix_seed(seed, kReplicateTag + replicate));
}

std::vector<std::uint32_t> draw_picks(std::size_t snapshot_count, Rng& rng) {
  std::vector<std::uint32_t> picks;
  draw_picks_into(snapshot_count, rng, picks);
  return picks;
}

void draw_picks_into(std::size_t snapshot_count, Rng& rng,
                     std::vector<std::uint32_t>& picks) {
  picks.resize(snapshot_count);
  for (std::size_t i = 0; i < snapshot_count; ++i) {
    picks[i] = static_cast<std::uint32_t>(rng.below(snapshot_count));
  }
}

sim::PathObservations resample_snapshots(const sim::PathObservations& obs,
                                         Rng& rng) {
  const std::size_t n = obs.snapshot_count();
  sim::PathObservations out(obs.path_count(), n);
  std::vector<std::size_t> picks(n);
  for (std::size_t i = 0; i < n; ++i) {
    picks[i] = static_cast<std::size_t>(rng.below(n));
  }
  for (sim::PathId p = 0; p < obs.path_count(); ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      if (obs.congested(p, picks[i])) {
        out.set_congested(p, i);
      }
    }
  }
  return out;
}

BootstrapResult bootstrap_congestion(const graph::Graph& g,
                                     const std::vector<graph::Path>& paths,
                                     const graph::CoverageIndex& coverage,
                                     const corr::CorrelationSets& sets,
                                     const sim::MeasurementBlock& block,
                                     const BootstrapOptions& options) {
  TOMO_REQUIRE(options.replicates >= 2, "bootstrap needs >= 2 replicates");
  TOMO_REQUIRE(options.confidence > 0.0 && options.confidence < 1.0,
               "confidence must be in (0,1)");
  TOMO_REQUIRE(!block.empty(), "bootstrap needs a non-empty measurement");

  const std::size_t links = g.link_count();
  const std::size_t n = block.snapshot_count;
  BootstrapResult result;

  // Point estimate — run the structure phase once and keep the harvest:
  // the batched engine reuses its equation supports (and the Gram products
  // built from them) across every replicate whose support survives.
  const sim::EmpiricalMeasurement full{sim::MeasurementBlock(block)};
  const RefinedHarvest harvest = harvest_refined_system(
      g, paths, coverage, sets, full, options.inference);
  TOMO_REQUIRE(!harvest.system.equations.empty(),
               "no usable equations: the measurements never observed a "
               "usable good path");
  const std::size_t weight_samples =
      options.inference.weight_by_variance ? full.sample_count() : 0;
  const linalg::SparseSystemView point_view =
      sparse_view(harvest.system, weight_samples);
  const bool incremental =
      options.inference.solver.kind == linalg::SolverKind::kNnls &&
      options.inference.solver.nnls_mode == linalg::NnlsMode::kIncremental;

  linalg::GramSystem skeleton;
  linalg::LogSystemSolution point_solution;
  if (incremental) {
    // accumulate_gram over the whole view is bitwise equal to the batch
    // build inside solve_log_system, so this point estimate matches the
    // reference engine's exactly.
    linalg::accumulate_gram(skeleton, point_view,
                            options.inference.solver.jobs);
    point_solution = linalg::solve_log_system(point_view, skeleton,
                                              options.inference.solver);
  } else {
    point_solution =
        linalg::solve_log_system(point_view, options.inference.solver);
  }
  InferenceResult point;
  apply_solution(point, std::move(point_solution));
  result.point = point.congestion_prob;

  // Per-replicate estimates, indexed by replicate (empty = skipped) so the
  // reduction below is independent of which worker produced what.
  std::vector<std::vector<double>> estimates(options.replicates);
  std::vector<std::uint8_t> fell_back(options.replicates, 0);

  if (options.mode == BootstrapMode::kReference) {
    // Historical serial baseline: per-bit resample, full re-inference.
    const sim::PathObservations obs = block.to_observations();
    for (std::size_t r = 0; r < options.replicates; ++r) {
      Rng rng = replicate_rng(options.seed, r);
      Stopwatch resample_watch;
      const sim::PathObservations replicate = resample_snapshots(obs, rng);
      const sim::EmpiricalMeasurement measurement(replicate);
      result.resample_seconds += resample_watch.seconds();
      try {
        estimates[r] = infer_congestion(g, paths, coverage, sets,
                                        measurement, options.inference)
                           .congestion_prob;
      } catch (const Error&) {
        // Replicate lost every usable equation; counted as skipped below.
      }
    }
  } else {
    // Batched engine. The Gram-skeleton fast path is valid only when a
    // replicate provably re-harvests the exact same system, which needs:
    //  - every accepted equation still usable on the replicate (checked
    //    per replicate below) — a resample can only *lose* good
    //    snapshots, never invent them, so with min_good <= 1 no dropped
    //    candidate can become usable;
    //  - include_redundant, so every eligible single is an accepted
    //    equation (in non-redundant mode an eligible-but-dependent single
    //    feeds pair candidates without appearing in the system, and its
    //    usability flip would go undetected). The rank tracker absorbs
    //    only independent — hence accepted — rows, so a *dependent*
    //    candidate losing usability shifts a diagnostic counter but never
    //    the harvested equations;
    //  - the demotion chain replays: structural refinement is
    //    measurement-independent, and each demotion round's decision is a
    //    function of that round's harvest, so checking the intermediate
    //    rounds' witness_paths (plus the final system, checked by the y
    //    loop) per replicate certifies the whole chain.
    // Anything outside that envelope falls back to a full re-harvest,
    // which is the reference computation verbatim.
    const EquationBuildOptions& eq = options.inference.equations;
    const bool support_reusable =
        incremental && eq.include_redundant && eq.min_good_snapshots <= 1;

    InferenceOptions replicate_inference = options.inference;
    // Parallelism lives at the replicate level; inner jobs stay inline.
    replicate_inference.solver.jobs = 1;
    replicate_inference.equations.jobs = 1;
    // Fast-path solves share the skeleton's Gram matrix, so the warm
    // seed's Cholesky factor is measurement-independent: factor it once
    // here and let every replicate copy it (fast_solver). The fallback
    // path harvests its own system — different Gram — so it only gets the
    // plain warm_start list (re-admitted against its own matrix), and the
    // variance-weighted path rebuilds the Gram per replicate, which
    // invalidates the factor the same way.
    linalg::SolverOptions fast_solver = replicate_inference.solver;
    linalg::NnlsWarmFactor warm_factor;
    if (options.warm_start && incremental) {
      replicate_inference.solver.warm_start = point.active_set;
      fast_solver.warm_start = point.active_set;
      if (weight_samples == 0) {
        warm_factor = linalg::seed_warm_factor(skeleton, point.active_set);
        fast_solver.nnls_warm_factor = &warm_factor;
      }
    }

    const auto run_replicate = [&](std::size_t r, linalg::GramSystem& scratch,
                                   std::vector<double>& ys,
                                   sim::ResampleScratch& resample_scratch,
                                   std::vector<std::uint32_t>& picks,
                                   double& resample_seconds) {
      Rng rng = replicate_rng(options.seed, r);
      draw_picks_into(n, rng, picks);
      Stopwatch resample_watch;
      const sim::EmpiricalMeasurement measurement(
          block.resample(picks, resample_scratch));
      resample_seconds += resample_watch.seconds();
      if (support_reusable) {
        bool supports_hold = true;
        // Intermediate demotion rounds first: if any of their equations
        // lost usability the demotion decisions may diverge.
        for (const std::vector<graph::PathId>& wp : harvest.witness_paths) {
          const double prob = wp.size() == 1
                                  ? measurement.good_prob(wp[0])
                                  : measurement.pair_good_prob(wp[0], wp[1]);
          if (!sim::log_estimate(prob, n, eq.min_good_snapshots).usable) {
            supports_hold = false;
            break;
          }
        }
        for (std::size_t i = 0;
             supports_hold && i < harvest.system.equations.size(); ++i) {
          const Equation& e = harvest.system.equations[i];
          const double prob =
              e.paths.size() == 1
                  ? measurement.good_prob(e.paths[0])
                  : measurement.pair_good_prob(e.paths[0], e.paths[1]);
          const sim::LogProbEstimate est =
              sim::log_estimate(prob, n, eq.min_good_snapshots);
          if (!est.usable) {
            supports_hold = false;
            break;
          }
          ys[i] = est.log_prob;
        }
        if (supports_hold) {
          const linalg::SparseSystemView view =
              sparse_view_with_rhs(harvest.system, ys, weight_samples);
          linalg::LogSystemSolution solution;
          if (weight_samples == 0) {
            solution =
                linalg::solve_log_system_reuse(view, scratch, fast_solver);
          } else {
            // Variance weights scale every row by its replicate estimate,
            // so the Gram matrix itself changes; rebuild it — the harvest
            // skip still amortizes the expensive part.
            linalg::GramSystem gs;
            linalg::accumulate_gram(gs, view, 1);
            solution = linalg::solve_log_system(view, gs,
                                                replicate_inference.solver);
          }
          InferenceResult replicate;
          apply_solution(replicate, std::move(solution));
          estimates[r] = std::move(replicate.congestion_prob);
          return;
        }
      }
      // Support changed (or the configuration cannot prove it stable):
      // the reference computation verbatim.
      fell_back[r] = 1;
      try {
        estimates[r] = infer_congestion(g, paths, coverage, sets,
                                        measurement, replicate_inference)
                           .congestion_prob;
      } catch (const Error&) {
        // Replicate lost every usable equation; counted as skipped below.
      }
    };

    const auto run_stripe = [&](std::size_t first, std::size_t stride,
                                double& resample_seconds) {
      // One skeleton copy per worker: refresh_gram_rhs rewrites only the
      // rhs products in place, so G is shared by the whole stripe. The
      // resample scratch and pick buffer are likewise hoisted here — the
      // source transpose is built once per worker and every replicate in
      // the stripe reuses the same gather buffer, allocation-free after
      // the first replicate.
      linalg::GramSystem scratch = skeleton;
      std::vector<double> ys(harvest.system.equations.size());
      sim::ResampleScratch resample_scratch;
      std::vector<std::uint32_t> picks;
      for (std::size_t r = first; r < options.replicates; r += stride) {
        run_replicate(r, scratch, ys, resample_scratch, picks,
                      resample_seconds);
      }
    };

    const std::size_t workers =
        std::min(util::resolve_jobs(options.jobs), options.replicates);
    std::vector<double> stripe_resample_seconds(std::max<std::size_t>(
        workers, 1));
    if (workers <= 1) {
      run_stripe(0, 1, stripe_resample_seconds[0]);
    } else {
      util::ThreadPool pool(workers);
      std::vector<std::future<void>> done;
      done.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        done.push_back(pool.submit(
            [&, w] { run_stripe(w, workers, stripe_resample_seconds[w]); }));
      }
      for (auto& f : done) f.get();
    }
    for (const double s : stripe_resample_seconds) {
      result.resample_seconds += s;
    }
  }

  // Reduction in replicate order — worker-count independent by design.
  std::vector<std::vector<double>> samples(links);
  for (std::size_t r = 0; r < options.replicates; ++r) {
    if (fell_back[r]) ++result.reharvested;
    if (estimates[r].empty()) {
      ++result.skipped;
      continue;
    }
    for (graph::LinkId e = 0; e < links; ++e) {
      samples[e].push_back(estimates[r][e]);
    }
    ++result.replicates;
  }
  TOMO_REQUIRE(result.replicates >= 2,
               "bootstrap: too few usable replicates");
  if (result.skipped * 10 > options.replicates) {
    std::fprintf(stderr,
                 "[bootstrap] warning: %zu of %zu replicates lost all "
                 "usable equations and were dropped; intervals rest on "
                 "%zu replicates\n",
                 result.skipped, options.replicates, result.replicates);
  }

  const double tail = (1.0 - options.confidence) / 2.0;
  result.lower.resize(links);
  result.upper.resize(links);
  for (graph::LinkId e = 0; e < links; ++e) {
    const Interval interval =
        percentile_pair(samples[e], 100.0 * tail, 100.0 * (1.0 - tail));
    result.lower[e] = interval.lo;
    result.upper[e] = interval.hi;
  }
  return result;
}

BootstrapResult bootstrap_congestion(const graph::Graph& g,
                                     const std::vector<graph::Path>& paths,
                                     const graph::CoverageIndex& coverage,
                                     const corr::CorrelationSets& sets,
                                     const sim::PathObservations& obs,
                                     const BootstrapOptions& options) {
  return bootstrap_congestion(g, paths, coverage, sets,
                              sim::MeasurementBlock::from_observations(obs),
                              options);
}

}  // namespace tomo::core
