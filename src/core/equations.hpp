// The §4 equation builder.
//
// In the log domain, a "correlation-free" set of links (no two links from
// the same correlation set) factorizes: log P(all good) = Σ_k x_k. The
// builder therefore harvests two candidate families:
//   singles — paths whose links are correlation-free (Eq. 9), and
//   pairs   — path pairs whose *union* of links is correlation-free
//             (Eq. 10); only intersecting pairs can add rank, since the
//             union row of two disjoint basis rows is their sum.
// Candidates stream through an incremental rank tracker; only rank-
// increasing equations with usable measurements (non-zero empirical
// probability) are kept. The result is N1 + N2 <= |E| independent
// equations, exactly the system the paper solves.
//
// The pair harvest is the hot path at dense-mesh scale and is built as a
// streaming generator: per-link candidate emission deduplicated by
// lowest-touch-link ownership (no global seen-set), an exact
// correlation-set-signature precheck that decides correlation_free(union)
// without materializing the union, and batched candidate evaluation fanned
// across a worker pool with a deterministic candidate-order merge — the
// accepted system is byte-identical to the historical sequential build for
// any jobs value, which the differential suite (test_equations_fast)
// enforces against the reference paths.
#pragma once

#include <cstdint>
#include <vector>

#include "corr/correlation.hpp"
#include "graph/coverage.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solvers.hpp"
#include "sim/measurement.hpp"

namespace tomo::core {

struct Equation {
  std::vector<graph::LinkId> links;  // sorted union, the 0/1 row support
  std::vector<graph::PathId> paths;  // 1 (single) or 2 (pair)
  double y;                          // log P(all paths good)
};

struct EquationSystem {
  std::vector<Equation> equations;  // the harvest's sparse product
  std::size_t link_count = 0;
  std::size_t n1 = 0;             // accepted single-path equations
  std::size_t n2 = 0;             // accepted pair equations
  std::size_t rank = 0;           // == n1 + n2
  std::size_t dropped_correlated = 0;  // candidates with correlated links
  std::size_t dropped_unusable = 0;    // zero/low empirical probability
  std::size_t dropped_dependent = 0;   // linearly dependent candidates
  std::size_t pair_candidates_tried = 0;
  /// Wall seconds spent inside build_equations (harvest telemetry; not a
  /// metric — never printed on stdout).
  double build_seconds = 0.0;

  bool full_rank() const { return rank == link_count; }

  /// Dense solver-facing views of the harvest: the |equations| x |links|
  /// 0/1 incidence matrix and the right-hand sides. Materialized from
  /// `equations` on first access and cached — the harvest itself never
  /// pays for megabytes of structural zeros, and discarded intermediate
  /// systems (demotion rounds) never materialize at all. The mutable
  /// overloads exist for in-place reweighting (apply_variance_weights);
  /// they materialize first, so weighted entries are never rebuilt over.
  /// NOTE: first access mutates the cache without synchronization, so the
  /// const overloads are not safe to call concurrently on a shared system
  /// — materialize once (or give each thread its own copy) before fanning
  /// out.
  const linalg::Matrix& matrix() const { ensure_dense(); return a_; }
  const linalg::Vector& rhs() const { ensure_dense(); return y_; }
  linalg::Matrix& matrix() { ensure_dense(); return a_; }
  linalg::Vector& rhs() { ensure_dense(); return y_; }

 private:
  void ensure_dense() const;

  mutable bool dense_ready_ = false;
  mutable linalg::Matrix a_;
  mutable linalg::Vector y_;
};

struct EquationBuildOptions {
  bool use_pairs = true;
  /// Upper bound on pair candidates examined (each may cost an elimination
  /// sweep); 0 means no bound.
  std::size_t max_pair_candidates = 0;
  /// Minimum good-snapshot support for an empirical estimate to be usable.
  std::size_t min_good_snapshots = 1;
  /// Shuffles the pair-candidate order (deterministic); spreads accepted
  /// pairs across the topology instead of clustering near low link ids.
  std::uint64_t shuffle_seed = 7;
  /// When true (default), every usable equation the correlation structure
  /// admits is kept, including linearly dependent ones — the solver then
  /// fits all available measurements (what [12] effectively does). When
  /// false, only rank-increasing equations are kept: the minimal
  /// N1 + N2 <= |E| system of the paper's §4 presentation.
  bool include_redundant = true;
  /// Cap on accepted pair equations in redundant mode (0 = one per link,
  /// i.e. |E|). Ignored when include_redundant is false.
  std::size_t max_pair_equations = 0;
  /// Worker threads for the batched pair-candidate evaluation (1 = inline
  /// on the caller, 0 = all hardware cores). Candidates are precomputed in
  /// fixed batches and merged in candidate order, so the built system —
  /// and therefore stdout — is byte-identical for any value. Keep 1 when
  /// trials already fan out across a pool (nested pools oversubscribe).
  std::size_t jobs = 1;
  /// When true (default), correlation_free(union) for a pair candidate is
  /// decided from per-path correlation-set signatures (exact for phase-2
  /// candidates, whose paths are individually correlation-free) without
  /// materializing the union. When false, the scalar reference path —
  /// materialize the sorted union, scan it against the declared sets — is
  /// used instead; differential tests pin the two against each other.
  bool use_signature_precheck = true;
};

/// Builds the equation system for the given correlation structure. Pass
/// CorrelationSets::singletons() to obtain the independence baseline's
/// system.
EquationSystem build_equations(const graph::CoverageIndex& coverage,
                               const corr::CorrelationSets& sets,
                               const sim::MeasurementProvider& measurement,
                               const EquationBuildOptions& options = {});

/// Scales each equation by the inverse standard deviation of its estimate:
/// by the delta method, Var(log p-hat) ~= (1 - p) / (p * N) for a binomial
/// proportion over N snapshots. Well-supported equations then count more
/// in the (least-squares-family) solve. No-op when `samples` == 0 (oracle
/// measurements are exact).
void apply_variance_weights(EquationSystem& system, std::size_t samples);

/// Solver-facing sparse view of the harvest: one row per equation,
/// borrowing the equations' link storage (the view must not outlive
/// `system`). With `weight_samples` > 0 each row carries the same
/// inverse-stddev variance weight apply_variance_weights would install —
/// but applied inside the view, so the dense matrix never materializes.
linalg::SparseSystemView sparse_view(const EquationSystem& system,
                                     std::size_t weight_samples = 0);

/// Sparse view of `system` with replacement right-hand sides — the bootstrap
/// fast path, where a resampled replicate keeps the harvest's supports but
/// re-estimates every log-probability. ys[i] is equation i's new y; weights
/// (when `weight_samples` > 0) are recomputed from the new values, exactly
/// what a fresh harvest of the replicate would install. Same borrowing rule
/// as sparse_view: the view must not outlive `system`.
linalg::SparseSystemView sparse_view_with_rhs(const EquationSystem& system,
                                              const std::vector<double>& ys,
                                              std::size_t weight_samples = 0);

}  // namespace tomo::core
