// End-to-end experiment runner: simulate a scenario, run both algorithms,
// and evaluate against ground truth — one call per figure data point.
#pragma once

#include <vector>

#include "core/correlation_algorithm.hpp"
#include "core/scenario.hpp"
#include "metrics/error_metrics.hpp"
#include "sim/simulator.hpp"

namespace tomo::core {

struct ExperimentConfig {
  sim::SimulatorConfig sim;
  InferenceOptions inference;  // shared by both algorithms
};

struct ExperimentResult {
  std::vector<double> truth;  // true P(X_k = 1)
  /// Links participating in at least one path observed congested — the
  /// population every paper metric is computed over.
  std::vector<std::size_t> potentially_congested;
  InferenceResult correlation;    // the paper's algorithm
  InferenceResult independence;   // the [12] baseline
  /// Wall seconds of the snapshot simulation plus the measurement adoption
  /// (telemetry only — never printed to stdout, mirrored into the bench
  /// JSON as *_sim_seconds).
  double sim_seconds = 0.0;

  std::vector<double> correlation_errors() const;
  std::vector<double> independence_errors() const;
};

ExperimentResult run_experiment(const ScenarioInstance& scenario,
                                const ExperimentConfig& config);

/// Links on at least one path with a congested observation, sorted — the
/// paper's metric population, computable from any measurement provider
/// (the streaming daemon re-derives it per window).
std::vector<std::size_t> potentially_congested_links(
    const std::vector<graph::Path>& paths,
    const sim::MeasurementProvider& measurement);

}  // namespace tomo::core
