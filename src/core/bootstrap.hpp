// Bootstrap confidence intervals for inferred congestion probabilities.
//
// The paper reports point estimates; an operator acting on them (e.g.,
// confronting a peer about an SLA) needs to know how much snapshot noise
// they carry. This module resamples the snapshot axis with replacement,
// re-runs inference per replicate, and reports per-link percentile
// intervals. Stationarity (Assumption 3) is exactly the property that
// makes snapshot resampling sound; for bursty (Gilbert-type) congestion
// the i.i.d. bootstrap narrows intervals somewhat, which is the usual
// caveat and is documented here rather than hidden.
//
// Two engines share the API:
//
//  - kBatched (default) amortizes everything replicates share. Picks are
//    gathered word-level into bit-packed MeasurementBlock columns, the
//    equation harvest runs once on the point estimate, and each replicate
//    that keeps the harvest's support alive re-estimates only the
//    right-hand sides and solves on the shared Gram skeleton
//    (linalg::solve_log_system_reuse + NNLS warm start), falling back to
//    a full re-harvest only when support actually changes. Replicates fan
//    across the thread pool on per-replicate seed streams, so intervals
//    are bit-identical for any `jobs`.
//  - kReference is the historical serial path — per-bit resample, full
//    re-inference per replicate — kept as the differential baseline. At
//    matched seeds the batched engine with warm_start off is bitwise
//    equal to it; with warm_start on both reach the same optimum.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "core/correlation_algorithm.hpp"
#include "sim/measurement.hpp"
#include "sim/measurement_block.hpp"
#include "sim/snapshot.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tomo::core {

enum class BootstrapMode {
  kBatched,    // shared-skeleton engine (default)
  kReference,  // serial full re-inference, the differential baseline
};

/// Parses "batched" | "reference"; throws tomo::Error otherwise.
BootstrapMode bootstrap_mode_from_string(const std::string& name);
std::string to_string(BootstrapMode mode);

struct BootstrapOptions {
  /// Raised from the historical 30 now that replicates are ~free on the
  /// batched engine.
  std::size_t replicates = 200;
  double confidence = 0.90;  // central interval mass
  std::uint64_t seed = 1;
  BootstrapMode mode = BootstrapMode::kBatched;
  /// Replicate fan-out width for the batched engine (1 = inline on the
  /// caller, 0 = all hardware cores). Intervals are bit-identical for any
  /// value; the reference engine is deliberately serial.
  std::size_t jobs = 1;
  /// Warm-start every replicate's NNLS from the point estimate's active
  /// set (batched engine, incremental NNLS only). Off, the batched engine
  /// is bitwise equal to the reference engine at matched seeds.
  bool warm_start = true;
  InferenceOptions inference;
};

struct BootstrapResult {
  std::vector<double> point;  // estimate on the full sample
  std::vector<double> lower;  // per-link interval bounds
  std::vector<double> upper;
  /// Usable replicates actually backing the intervals.
  std::size_t replicates = 0;
  /// Replicates dropped because the resample lost every usable equation.
  /// Always surfaced (and warned about past 10%) — a silently shrunken
  /// sample used to masquerade as the requested replicate count.
  std::size_t skipped = 0;
  /// Batched engine only: replicates whose equation support changed (or
  /// could not be proven stable), forcing a full re-harvest instead of
  /// the Gram-skeleton fast path. Includes the skipped ones.
  std::size_t reharvested = 0;
  /// Wall-clock seconds spent materializing replicate measurements
  /// (MeasurementBlock::resample for the batched engine,
  /// resample_snapshots for the reference engine), summed across workers —
  /// on a multi-worker run this exceeds the elapsed resample time.
  /// Telemetry only (reported in BENCH_*.json); never printed to stdout.
  double resample_seconds = 0.0;
};

/// Resamples snapshots of `obs` with replacement (same count). The scalar
/// per-bit path, kept as the differential reference for
/// sim::MeasurementBlock::resample; consumes exactly one rng.below(n) per
/// output snapshot, the shared pick-stream contract of both engines.
sim::PathObservations resample_snapshots(const sim::PathObservations& obs,
                                         Rng& rng);

/// The per-replicate seed stream: replicate r of a run with base `seed`
/// always draws from this rng, independent of the fan-out width and of
/// which engine runs it — that is what makes jobs-invariance and
/// matched-seed engine comparison possible.
Rng replicate_rng(std::uint64_t seed, std::size_t replicate);

/// Draws `snapshot_count` resample picks (with replacement, each below
/// `snapshot_count`) — the same stream resample_snapshots consumes.
std::vector<std::uint32_t> draw_picks(std::size_t snapshot_count, Rng& rng);

/// draw_picks into a caller-owned buffer (resized to `snapshot_count`):
/// replicate loops reuse one buffer instead of allocating per replicate.
void draw_picks_into(std::size_t snapshot_count, Rng& rng,
                     std::vector<std::uint32_t>& picks);

/// Full-pipeline bootstrap of the correlation algorithm. The block
/// overload is the native one; the observation overload packs once and
/// delegates.
BootstrapResult bootstrap_congestion(const graph::Graph& g,
                                     const std::vector<graph::Path>& paths,
                                     const graph::CoverageIndex& coverage,
                                     const corr::CorrelationSets& sets,
                                     const sim::MeasurementBlock& block,
                                     const BootstrapOptions& options = {});

BootstrapResult bootstrap_congestion(const graph::Graph& g,
                                     const std::vector<graph::Path>& paths,
                                     const graph::CoverageIndex& coverage,
                                     const corr::CorrelationSets& sets,
                                     const sim::PathObservations& obs,
                                     const BootstrapOptions& options = {});

/// Generic batched resample sweep for callers that bootstrap something
/// other than the correlation algorithm (fig1_tables' theorem-algorithm
/// alphas, ablation statistics): fans `replicates` word-level resamples of
/// `block` across up to `jobs` workers and applies `body` to each
/// replicate's measurement. Outcome r is std::nullopt when the body threw
/// tomo::Error (that replicate lost the data it needed) — callers count
/// those as skipped. Replicate r always draws from replicate_rng(seed, r),
/// so results are identical for any `jobs`.
template <typename Body>
auto resample_sweep(const sim::MeasurementBlock& block,
                    std::size_t replicates, std::uint64_t seed,
                    std::size_t jobs, Body&& body)
    -> std::vector<std::optional<std::decay_t<
        std::invoke_result_t<Body&, const sim::EmpiricalMeasurement&>>>> {
  using R = std::decay_t<
      std::invoke_result_t<Body&, const sim::EmpiricalMeasurement&>>;
  std::vector<std::optional<R>> out(replicates);
  util::parallel_for(jobs, replicates, [&](std::size_t r) {
    Rng rng = replicate_rng(seed, r);
    const std::vector<std::uint32_t> picks =
        draw_picks(block.snapshot_count, rng);
    const sim::EmpiricalMeasurement measurement(block.resample(picks));
    try {
      out[r] = body(measurement);
    } catch (const Error&) {
      // Replicate skipped; surfaced to the caller as nullopt.
    }
  });
  return out;
}

}  // namespace tomo::core
