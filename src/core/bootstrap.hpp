// Bootstrap confidence intervals for inferred congestion probabilities.
//
// The paper reports point estimates; an operator acting on them (e.g.,
// confronting a peer about an SLA) needs to know how much snapshot noise
// they carry. This module resamples the snapshot axis with replacement,
// re-runs the full inference per replicate, and reports per-link
// percentile intervals. Stationarity (Assumption 3) is exactly the
// property that makes snapshot resampling sound; for bursty (Gilbert-type)
// congestion the i.i.d. bootstrap narrows intervals somewhat, which is the
// usual caveat and is documented here rather than hidden.
#pragma once

#include <cstdint>
#include <vector>

#include "core/correlation_algorithm.hpp"
#include "sim/snapshot.hpp"

namespace tomo::core {

struct BootstrapOptions {
  std::size_t replicates = 30;
  double confidence = 0.90;  // central interval mass
  std::uint64_t seed = 1;
  InferenceOptions inference;
};

struct BootstrapResult {
  std::vector<double> point;  // estimate on the full sample
  std::vector<double> lower;  // per-link interval bounds
  std::vector<double> upper;
  std::size_t replicates = 0;
};

/// Resamples snapshots of `obs` with replacement (same count).
sim::PathObservations resample_snapshots(const sim::PathObservations& obs,
                                         Rng& rng);

/// Full-pipeline bootstrap of the correlation algorithm.
BootstrapResult bootstrap_congestion(const graph::Graph& g,
                                     const std::vector<graph::Path>& paths,
                                     const graph::CoverageIndex& coverage,
                                     const corr::CorrelationSets& sets,
                                     const sim::PathObservations& obs,
                                     const BootstrapOptions& options = {});

}  // namespace tomo::core
