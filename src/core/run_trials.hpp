// Parallel multi-trial experiment engine.
//
// Every figure binary averages independent Monte-Carlo trials; each trial
// is an isolated simulate → infer → score pipeline whose only input is a
// seed. run_trials fans those trials across a worker pool and returns the
// results in trial order, so callers reduce serially and get bit-identical
// output regardless of the worker count. Determinism rests on per-trial
// seed derivation: TrialContext::seed(tag) mixes (base seed, tag + trial)
// through mix_seed, giving every trial — and every component inside it —
// its own RNG stream with no shared mutable state.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace tomo::core {

/// Handed to each trial body: the trial index plus deterministic seed
/// derivation. `tag` namespaces independent consumers within one trial
/// (scenario vs. simulator vs. bootstrap), matching the benches'
/// long-standing mix_seed(seed, tag + trial) convention.
struct TrialContext {
  std::size_t trial = 0;
  std::uint64_t base_seed = 0;

  std::uint64_t seed(std::uint64_t tag) const {
    return mix_seed(base_seed, tag + trial);
  }
};

/// One trial's result plus its wall time (measured on the worker, so
/// parallel runs still report honest per-trial cost).
template <typename R>
struct Trial {
  std::size_t index = 0;
  double seconds = 0.0;
  R value{};
};

/// Runs body(ctx) for trials 0..trials-1 on up to `jobs` workers
/// (0 = all hardware cores) and returns the outcomes in trial order.
/// The body must draw all randomness from ctx.seed(...); under that
/// contract the returned values are independent of `jobs`. Exceptions
/// propagate (lowest trial index wins) after all trials settle.
template <typename Body>
auto run_trials(std::size_t trials, std::size_t jobs, std::uint64_t base_seed,
                Body&& body)
    -> std::vector<Trial<decltype(body(std::declval<const TrialContext&>()))>> {
  using R = decltype(body(std::declval<const TrialContext&>()));
  std::vector<Trial<R>> out(trials);
  util::parallel_for(jobs, trials, [&](std::size_t i) {
    const TrialContext ctx{i, base_seed};
    const Stopwatch stopwatch;
    out[i].value = body(ctx);
    out[i].seconds = stopwatch.seconds();
    out[i].index = i;
  });
  return out;
}

}  // namespace tomo::core
