#include "core/theorem_algorithm.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tomo::core {

namespace {

struct SubsetRef {
  std::size_t set;
  std::uint32_t mask;
  std::size_t covered_count;
};

}  // namespace

TheoremResult run_theorem_algorithm(const graph::CoverageIndex& coverage,
                                    const corr::CorrelationSets& sets,
                                    const sim::MeasurementProvider& m,
                                    const TheoremOptions& options) {
  TOMO_REQUIRE(coverage.link_count() == sets.link_count(),
               "coverage and correlation sets disagree on link count");
  TOMO_REQUIRE(sets.link_count() <= options.max_links,
               "theorem algorithm: too many links for state enumeration");

  const std::size_t set_count = sets.set_count();

  // Per set, per member mask: the covered path set ψ(A).
  std::vector<std::vector<graph::PathIdSet>> covered(set_count);
  for (std::size_t s = 0; s < set_count; ++s) {
    const auto& members = sets.set(s);
    TOMO_REQUIRE(members.size() <= options.max_set_size,
                 "theorem algorithm: correlation set too large");
    const std::size_t total = std::size_t{1} << members.size();
    covered[s].resize(total);
    for (std::size_t mask = 1; mask < total; ++mask) {
      std::vector<graph::LinkId> links;
      for (std::size_t bit = 0; bit < members.size(); ++bit) {
        if (mask & (std::size_t{1} << bit)) {
          links.push_back(members[bit]);
        }
      }
      covered[s][mask] = coverage.covered_paths(links);
    }
  }

  // Order C-tilde by |ψ(A)| ascending (the partial order T of Eq. 12).
  std::vector<SubsetRef> order;
  for (std::size_t s = 0; s < set_count; ++s) {
    for (std::size_t mask = 1; mask < covered[s].size(); ++mask) {
      order.push_back({s, static_cast<std::uint32_t>(mask),
                       covered[s][mask].size()});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const SubsetRef& a, const SubsetRef& b) {
              return a.covered_count < b.covered_count;
            });

  const double p_empty = m.exact_pattern_prob({});
  TOMO_REQUIRE(p_empty > 0.0,
               "theorem algorithm: the all-paths-good event was never "
               "observed, so no congestion factor is measurable");

  TheoremResult result;
  result.alpha.resize(set_count);
  std::vector<std::vector<std::uint8_t>> known(set_count);
  for (std::size_t s = 0; s < set_count; ++s) {
    result.alpha[s].assign(covered[s].size(), 0.0);
    known[s].assign(covered[s].size(), 0);
    result.alpha[s][0] = 1.0;  // α_∅ = 1 by definition
    known[s][0] = 1;
  }

  for (const SubsetRef& target : order) {
    const graph::PathIdSet& psi = covered[target.set][target.mask];

    // Admissible per-set states: masks whose covered paths are inside ψ(A).
    std::vector<std::vector<std::uint32_t>> admissible(set_count);
    for (std::size_t s = 0; s < set_count; ++s) {
      for (std::size_t mask = 0; mask < covered[s].size(); ++mask) {
        if (mask == 0 ||
            std::includes(psi.begin(), psi.end(), covered[s][mask].begin(),
                          covered[s][mask].end())) {
          admissible[s].push_back(static_cast<std::uint32_t>(mask));
        }
      }
    }

    // Enumerate network states with ψ(S_n) = ψ(A); accumulate Γ_A (states
    // with S^q_n = A, product over p != q) and Γ_Ā (states with
    // S^q_n != A, full product).
    double gamma_a = 0.0;
    double gamma_abar = 0.0;
    auto dfs = [&](auto&& self, std::size_t s, double product,
                   const graph::PathIdSet& covered_so_far,
                   bool q_is_target) -> void {
      if (s == set_count) {
        if (covered_so_far != psi) return;
        if (q_is_target) {
          gamma_a += product;
        } else {
          gamma_abar += product;
        }
        return;
      }
      for (std::uint32_t mask : admissible[s]) {
        const bool is_target = (s == target.set && mask == target.mask);
        double factor = 1.0;
        if (!is_target) {
          if (!known[s][mask]) {
            // A factor of equal |ψ| would be required before it is
            // computable: Assumption 4 is violated.
            throw Error(
                "theorem algorithm: Assumption 4 (identifiability) is "
                "violated — two correlation subsets cover the same paths");
          }
          factor = result.alpha[s][mask];
          if (factor == 0.0 && mask != 0) {
            // Zero factors cannot contribute; skip early.
            continue;
          }
        }
        self(self, s + 1, product * factor,
             mask == 0 ? covered_so_far
                       : graph::path_set_union(covered_so_far,
                                               covered[s][mask]),
             q_is_target || is_target);
      }
    };
    dfs(dfs, 0, 1.0, {}, false);
    TOMO_ASSERT(gamma_a > 0.0);  // the state S_n = A always qualifies

    const double ratio = m.exact_pattern_prob(psi) / p_empty;
    const double alpha = (ratio - gamma_abar) / gamma_a;
    result.alpha[target.set][target.mask] = std::max(0.0, alpha);
    known[target.set][target.mask] = 1;
  }

  // Lemma 3: state probabilities and marginals.
  result.state_prob.resize(set_count);
  result.congestion_prob.assign(sets.link_count(), 0.0);
  for (std::size_t s = 0; s < set_count; ++s) {
    const auto& members = sets.set(s);
    double denom = 0.0;
    for (double a : result.alpha[s]) denom += a;
    TOMO_ASSERT(denom >= 1.0);
    const double p_set_empty = 1.0 / denom;
    result.state_prob[s].resize(result.alpha[s].size());
    for (std::size_t mask = 0; mask < result.alpha[s].size(); ++mask) {
      result.state_prob[s][mask] = result.alpha[s][mask] * p_set_empty;
      for (std::size_t bit = 0; bit < members.size(); ++bit) {
        if (mask & (std::size_t{1} << bit)) {
          result.congestion_prob[members[bit]] +=
              result.state_prob[s][mask];
        }
      }
    }
  }
  return result;
}

double joint_congested_prob(const TheoremResult& result,
                            const corr::CorrelationSets& sets,
                            const std::vector<graph::LinkId>& links) {
  // Group queried links per set, build the within-set requirement mask, and
  // sum state probabilities over supersets; multiply across sets.
  std::vector<std::uint32_t> required(sets.set_count(), 0);
  for (graph::LinkId link : links) {
    const std::size_t s = sets.set_of(link);
    const auto& members = sets.set(s);
    const auto it =
        std::lower_bound(members.begin(), members.end(), link);
    TOMO_ASSERT(it != members.end() && *it == link);
    required[s] |= std::uint32_t{1}
                   << static_cast<std::uint32_t>(it - members.begin());
  }
  double prob = 1.0;
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    if (required[s] == 0) continue;
    double sum = 0.0;
    for (std::size_t mask = 0; mask < result.state_prob[s].size(); ++mask) {
      if ((mask & required[s]) == required[s]) {
        sum += result.state_prob[s][mask];
      }
    }
    prob *= sum;
  }
  return prob;
}

}  // namespace tomo::core
