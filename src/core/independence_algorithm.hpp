// The independence baseline (Nguyen & Thiran [12]).
//
// Identical machinery to the correlation algorithm, but the correlation
// structure is replaced by all-singleton sets: every path and every pair of
// paths yields an equation whose joint probability is assumed to factorize
// over links. When links actually are correlated, the pair equations are
// biased — the modelling error the paper quantifies in §5.
#pragma once

#include "core/correlation_algorithm.hpp"

namespace tomo::core {

InferenceResult infer_congestion_independent(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const graph::CoverageIndex& coverage,
    const sim::MeasurementProvider& measurement,
    const InferenceOptions& options = {});

}  // namespace tomo::core
