#include "core/trial_spec.hpp"

namespace tomo::core {

ScenarioConfig TrialSpec::scenario_for(const TrialContext& ctx) const {
  ScenarioConfig config = scenario;
  config.seed = ctx.seed(scenario_tag);
  return config;
}

ExperimentConfig TrialSpec::experiment_for(const TrialContext& ctx) const {
  ExperimentConfig config;
  config.sim = sim;
  config.sim.seed = ctx.seed(sim_tag);
  config.inference = inference;
  return config;
}

BootstrapOptions TrialSpec::bootstrap_for(const TrialContext& ctx) const {
  BootstrapOptions options = bootstrap;
  options.seed = ctx.seed(bootstrap_tag);
  options.inference = inference;
  return options;
}

TrialSpec::TrialRun TrialSpec::run(const TrialContext& ctx) const {
  TrialRun out{build_scenario(scenario_for(ctx)), {}};
  out.result = run_experiment(out.instance, experiment_for(ctx));
  return out;
}

}  // namespace tomo::core
