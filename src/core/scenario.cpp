#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "corr/identifiability.hpp"
#include "corr/model_factory.hpp"
#include "topogen/flat_mesh.hpp"
#include "topogen/hierarchical.hpp"
#include "topogen/planetlab_like.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tomo::core {

namespace {

/// Picks the congested links according to the clustering level: kHigh fills
/// >= 3 congested links into each touched set (where the set is large
/// enough), kLoose caps every set at 2.
std::vector<graph::LinkId> pick_congested(
    const corr::CorrelationSets& sets, const graph::CoverageIndex& coverage,
    std::size_t target, CorrelationLevel level, Rng& rng) {
  std::vector<std::size_t> order(sets.set_count());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  rng.shuffle(order);
  if (level == CorrelationLevel::kHigh) {
    // Visit large, heavily traversed sets first: shared fabrics on busy
    // aggregation points are where real congestion clusters, and the
    // >2-per-set requirement needs large sets anyway.
    std::vector<double> weight(sets.set_count(), 0.0);
    for (std::size_t s = 0; s < sets.set_count(); ++s) {
      if (sets.set(s).size() < 2) continue;
      for (graph::LinkId e : sets.set(s)) {
        weight[s] += static_cast<double>(coverage.paths_through(e).size());
      }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return weight[a] > weight[b];
                     });
  }

  std::vector<graph::LinkId> congested;
  for (std::size_t s : order) {
    if (congested.size() >= target) break;
    const auto& members = sets.set(s);
    std::size_t take;
    if (level == CorrelationLevel::kHigh) {
      take = std::min(members.size(), target - congested.size());
    } else {
      take = std::min<std::size_t>(2, members.size());
      take = std::min(take, target - congested.size());
    }
    if (take == 0) continue;
    const auto chosen = rng.sample_without_replacement(members.size(), take);
    for (std::size_t idx : chosen) {
      congested.push_back(members[idx]);
    }
  }
  std::sort(congested.begin(), congested.end());
  return congested;
}

/// Mutates the partition until at least `target` of the congested links are
/// structurally unidentifiable: repeatedly picks an intermediate node
/// adjacent to a congested link and fuses all its in/out links into one
/// correlation set.
graph::LinkPartition inject_unidentifiability(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    graph::LinkPartition partition,
    const std::vector<graph::LinkId>& congested, std::size_t target,
    Rng& rng) {
  if (target == 0) return partition;
  std::unordered_set<graph::LinkId> congested_set(congested.begin(),
                                                  congested.end());
  std::unordered_set<graph::NodeId> endpoints;
  for (const auto& p : paths) {
    endpoints.insert(p.source());
    endpoints.insert(p.destination());
  }
  std::vector<graph::NodeId> nodes(g.node_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) nodes[v] = v;
  rng.shuffle(nodes);

  auto unident_congested_count = [&](const graph::LinkPartition& part) {
    corr::CorrelationSets sets(g.link_count(), part);
    std::size_t count = 0;
    for (graph::LinkId e :
         corr::structurally_unidentifiable_links(g, paths, sets)) {
      if (congested_set.count(e)) ++count;
    }
    return count;
  };

  for (graph::NodeId v : nodes) {
    if (unident_congested_count(partition) >= target) break;
    if (endpoints.count(v)) continue;
    const auto& in = g.in_links(v);
    const auto& out = g.out_links(v);
    if (in.empty() || out.empty()) continue;
    bool touches_congested = false;
    for (graph::LinkId e : in) touches_congested |= congested_set.count(e) > 0;
    for (graph::LinkId e : out) touches_congested |= congested_set.count(e) > 0;
    if (!touches_congested) continue;
    // Fuse: remove v's links from their sets, add them as one new set.
    std::unordered_set<graph::LinkId> fused(in.begin(), in.end());
    fused.insert(out.begin(), out.end());
    graph::LinkPartition next;
    for (auto& cell : partition) {
      std::vector<graph::LinkId> keep;
      for (graph::LinkId e : cell) {
        if (!fused.count(e)) keep.push_back(e);
      }
      if (!keep.empty()) next.push_back(std::move(keep));
    }
    std::vector<graph::LinkId> fused_cell(fused.begin(), fused.end());
    std::sort(fused_cell.begin(), fused_cell.end());
    next.push_back(std::move(fused_cell));
    partition = std::move(next);
  }
  return partition;
}

/// Picks worm targets: congested links drawn from pairwise-distinct
/// correlation sets ("otherwise uncorrelated" links).
std::vector<graph::LinkId> pick_worm_targets(
    const corr::CorrelationSets& sets,
    const std::vector<graph::LinkId>& congested, std::size_t target,
    Rng& rng) {
  std::vector<graph::LinkId> shuffled = congested;
  rng.shuffle(shuffled);
  std::unordered_set<std::size_t> used_sets;
  std::vector<graph::LinkId> targets;
  for (graph::LinkId e : shuffled) {
    if (targets.size() >= target) break;
    if (used_sets.insert(sets.set_of(e)).second) {
      targets.push_back(e);
    }
  }
  // If distinct sets run out (tiny topologies), fall back to any congested
  // links so the requested fraction is honoured.
  for (graph::LinkId e : shuffled) {
    if (targets.size() >= target) break;
    if (std::find(targets.begin(), targets.end(), e) == targets.end()) {
      targets.push_back(e);
    }
  }
  std::sort(targets.begin(), targets.end());
  return targets;
}

}  // namespace

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kBrite:
      return "brite";
    case TopologyKind::kPlanetLab:
      return "planetlab";
    case TopologyKind::kWaxman:
      return "waxman";
    case TopologyKind::kBarabasiAlbert:
      return "barabasi-albert";
  }
  return "unknown";
}

ScenarioInstance build_scenario(const ScenarioConfig& config) {
  TOMO_REQUIRE(config.congested_fraction > 0.0 &&
                   config.congested_fraction <= 1.0,
               "congested fraction must be in (0,1]");
  TOMO_REQUIRE(config.marginal_lo > 0.0 &&
                   config.marginal_lo <= config.marginal_hi &&
                   config.marginal_hi < 1.0,
               "marginal range must satisfy 0 < lo <= hi < 1");
  TOMO_REQUIRE(config.burst_length >= 1.0,
               "burst length must be >= 1 snapshot");
  Rng rng(mix_seed(config.seed, /*tag=*/0x5363656eULL));  // "Scen"

  ScenarioInstance inst;
  graph::LinkPartition partition;
  if (config.topology == TopologyKind::kBrite) {
    topogen::HierarchicalParams params;
    params.as_nodes = config.as_nodes;
    params.endpoints = config.as_endpoints;
    params.max_corrset_size = std::max<std::size_t>(2, config.cluster_size);
    params.fabric_prob = config.fabric_prob;
    params.seed = rng();
    auto topo = topogen::generate_hierarchical(params);
    inst.graph = std::move(topo.graph);
    inst.paths = std::move(topo.paths);
    partition = std::move(topo.partition);
    inst.description = topo.description;
  } else if (config.topology == TopologyKind::kPlanetLab) {
    topogen::PlanetLabParams params;
    params.routers = config.routers;
    params.vantage_points = config.vantage_points;
    params.cluster_size = config.cluster_size;
    params.fabric_prob = config.fabric_prob;
    params.seed = rng();
    auto topo = topogen::generate_planetlab_like(params);
    inst.graph = std::move(topo.graph);
    inst.paths = std::move(topo.paths);
    partition = std::move(topo.partition);
    inst.description = topo.description;
  } else {
    topogen::FlatMeshParams params;
    params.model = config.topology == TopologyKind::kWaxman
                       ? topogen::FlatMeshParams::EdgeModel::kWaxman
                       : topogen::FlatMeshParams::EdgeModel::kBarabasiAlbert;
    params.nodes = config.routers;
    params.vantage_points = config.vantage_points;
    params.cluster_size = config.cluster_size;
    params.fabric_prob = config.fabric_prob;
    params.waxman.alpha = config.waxman_alpha;
    params.waxman.beta = config.waxman_beta;
    params.ba_edges_per_node = config.ba_edges_per_node;
    params.seed = rng();
    auto topo = topogen::generate_flat_mesh(params);
    inst.graph = std::move(topo.graph);
    inst.paths = std::move(topo.paths);
    partition = std::move(topo.partition);
    inst.description = topo.description;
  }

  const std::size_t link_count = inst.graph.link_count();
  const std::size_t congested_target = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config.congested_fraction *
                          static_cast<double>(link_count))));

  // Congested links are chosen against the pre-mutation correlation sets.
  corr::CorrelationSets base_sets(link_count, partition);
  const graph::CoverageIndex coverage(inst.graph, inst.paths);
  inst.congested_links = pick_congested(base_sets, coverage,
                                        congested_target, config.level, rng);

  // Fig. 4: break identifiability around congested links.
  if (config.unidentifiable_fraction > 0.0) {
    const std::size_t unident_target = static_cast<std::size_t>(
        std::llround(config.unidentifiable_fraction *
                     static_cast<double>(inst.congested_links.size())));
    partition = inject_unidentifiability(inst.graph, inst.paths, partition,
                                         inst.congested_links,
                                         unident_target, rng);
  }
  inst.declared_sets = corr::CorrelationSets(link_count, partition);

  // Ground-truth marginals for the congested links. Links in the same
  // correlation set draw around a common set-level base: the congestion of
  // a shared resource dominates each member's marginal, which is what a
  // shared physical link or switch fabric produces (and what makes the
  // common shock strong rather than capped by one outlier-low marginal).
  std::vector<double> set_base(inst.declared_sets.set_count(), 0.0);
  for (double& b : set_base) {
    b = rng.uniform(config.marginal_lo, config.marginal_hi);
  }
  std::vector<double> marginals(inst.congested_links.size());
  for (std::size_t i = 0; i < marginals.size(); ++i) {
    const double base =
        set_base[inst.declared_sets.set_of(inst.congested_links[i])];
    marginals[i] = std::clamp(base * rng.uniform(0.95, 1.05),
                              config.marginal_lo * 0.5, 0.95);
  }
  std::unique_ptr<corr::CongestionModel> truth;
  if (config.burst_length > 1.0) {
    truth = corr::make_clustered_gilbert_model(
        inst.declared_sets, inst.congested_links, marginals,
        config.correlation_strength, config.burst_length);
  } else {
    truth = corr::make_clustered_shock_model(inst.declared_sets,
                                             inst.congested_links, marginals,
                                             config.correlation_strength);
  }

  // Fig. 5: hidden worm correlation across sets.
  if (config.mislabeled_fraction > 0.0) {
    const std::size_t worm_target = static_cast<std::size_t>(
        std::llround(config.mislabeled_fraction *
                     static_cast<double>(inst.congested_links.size())));
    inst.mislabeled_links = pick_worm_targets(
        inst.declared_sets, inst.congested_links, worm_target, rng);
    truth = corr::make_worm_model(std::move(truth), inst.mislabeled_links,
                                  config.worm_rho);
  }
  inst.truth = std::move(truth);
  inst.true_marginals = inst.truth->marginals();

  // Diagnostics: which congested links ended up unidentifiable.
  const auto unident = corr::structurally_unidentifiable_links(
      inst.graph, inst.paths, inst.declared_sets);
  std::unordered_set<graph::LinkId> unident_set(unident.begin(),
                                                unident.end());
  for (graph::LinkId e : inst.congested_links) {
    if (unident_set.count(e)) {
      inst.unidentifiable_congested.push_back(e);
    }
  }
  return inst;
}

}  // namespace tomo::core
