// Inference on the merge-transformed topology (paper §3.3).
//
// When Assumption 4 fails because indistinguishable correlation subsets
// occur consecutively, the paper's transformation removes the offending
// intermediate nodes and fuses their links into merged links; tomography
// then characterizes the *merged* links exactly, at coarser granularity.
// This module packages the full pipeline: transform, re-map the path
// observations (paths keep their identity, only their link composition
// changes), infer on the transformed system, and report results both per
// merged link and projected back onto the original links (each original
// link inherits its merged link's probability as an upper bound on what is
// knowable).
#pragma once

#include <vector>

#include "core/correlation_algorithm.hpp"
#include "graph/transform.hpp"

namespace tomo::core {

struct MergedInferenceResult {
  graph::MergeResult transform;      // the §3.3 transformation
  InferenceResult inference;         // on the transformed system
  /// For each original link: the congestion probability of the merged
  /// link containing it (identical for all links merged together).
  std::vector<double> original_link_prob;
  /// Original link -> merged link id.
  std::vector<graph::LinkId> merged_of;
};

/// Applies merge_indistinguishable and runs the correlation algorithm on
/// the result. `paths` and the observation stream keep their order, so
/// `measurement` (built from the original observations) remains valid —
/// path congestion status is unchanged by re-describing the links beneath.
MergedInferenceResult infer_on_merged(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const corr::CorrelationSets& sets,
    const sim::MeasurementProvider& measurement,
    const InferenceOptions& options = {});

}  // namespace tomo::core
