// Per-snapshot congested-link localization.
//
// The paper (§3.3, "Can our result help determine whether a link was
// congested or not?") observes that identifying congestion *probabilities*
// is the first step toward solving the classic ill-posed inverse problem:
// given the set of congested paths in one snapshot, which links were
// congested? Its future work proposes explicitly computing the most likely
// feasible solution using those probabilities — which is what this module
// implements, in three variants:
//
//  * localize_smallest_set  — the [13]-style heuristic: explain the
//    congested paths with as few congested links as possible (greedy set
//    cover), no probabilities needed. The classical baseline.
//  * localize_greedy_map    — greedy weighted cover using per-link
//    congestion probabilities (from either algorithm): each candidate link
//    is scored by log(p/(1-p)) per newly covered path; correlation-aware
//    when fed the correlation algorithm's probabilities.
//  * localize_exact_map     — exact MAP over per-correlation-set states
//    (probabilities from the theorem algorithm), enumerating feasible
//    network states; exponential, for small systems and as the reference.
//
// Feasibility constraints (Assumption 2): every link on a good path is
// good; every congested path contains at least one congested link.
#pragma once

#include <vector>

#include "core/theorem_algorithm.hpp"
#include "corr/correlation.hpp"
#include "graph/coverage.hpp"

namespace tomo::core {

/// The observation for one snapshot: which paths were congested.
using CongestedPaths = graph::PathIdSet;  // sorted path ids

struct LocalizationResult {
  std::vector<graph::LinkId> congested_links;  // sorted
  bool feasible = true;  // false if no link set can explain the observation
};

/// Links that cannot be congested (they lie on a good path), plus the
/// candidate links per congested path. Shared plumbing, exposed for tests.
struct LocalizationDomain {
  std::vector<std::uint8_t> forced_good;          // per link
  std::vector<std::vector<graph::LinkId>> candidates;  // per congested path
};
LocalizationDomain build_domain(const graph::CoverageIndex& coverage,
                                const CongestedPaths& congested);

/// Greedy smallest-explanation heuristic (no probabilities).
LocalizationResult localize_smallest_set(
    const graph::CoverageIndex& coverage, const CongestedPaths& congested);

/// Greedy MAP with per-link congestion probabilities; probabilities are
/// clamped away from {0,1} so links with estimate 0 can still be blamed
/// when nothing else explains a path.
LocalizationResult localize_greedy_map(
    const graph::CoverageIndex& coverage, const CongestedPaths& congested,
    const std::vector<double>& congestion_prob);

/// Exact MAP over per-set states from a theorem-algorithm result.
/// Exponential in correlation-set sizes; guarded by max_links.
LocalizationResult localize_exact_map(const graph::CoverageIndex& coverage,
                                      const corr::CorrelationSets& sets,
                                      const TheoremResult& probabilities,
                                      const CongestedPaths& congested,
                                      std::size_t max_links = 24);

/// Detection quality of a localization against the true link state.
struct LocalizationScore {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double detection_rate() const;      // TP / (TP + FN); 1 if no positives
  double false_positive_rate() const; // FP / (FP + TP); 0 if none reported
};
LocalizationScore score_localization(
    const std::vector<std::uint8_t>& true_state,
    const std::vector<graph::LinkId>& reported);

}  // namespace tomo::core
