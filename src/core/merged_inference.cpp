#include "core/merged_inference.hpp"

#include "util/error.hpp"

namespace tomo::core {

MergedInferenceResult infer_on_merged(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const corr::CorrelationSets& sets,
    const sim::MeasurementProvider& measurement,
    const InferenceOptions& options) {
  MergedInferenceResult result;
  result.transform =
      graph::merge_indistinguishable(g, paths, sets.partition());
  TOMO_REQUIRE(result.transform.paths.size() == paths.size(),
               "merge transformation must preserve the path set");

  const graph::CoverageIndex coverage(result.transform.graph,
                                      result.transform.paths);
  const corr::CorrelationSets merged_sets(
      result.transform.graph.link_count(), result.transform.partition);
  result.inference =
      infer_congestion(result.transform.graph, result.transform.paths,
                       coverage, merged_sets, measurement, options);

  // Project back: original link -> containing merged link.
  constexpr graph::LinkId npos = static_cast<graph::LinkId>(-1);
  result.merged_of.assign(g.link_count(), npos);
  result.original_link_prob.assign(g.link_count(), 0.0);
  for (graph::LinkId merged = 0;
       merged < result.transform.graph.link_count(); ++merged) {
    for (graph::LinkId original : result.transform.composition[merged]) {
      TOMO_REQUIRE(original < g.link_count(),
                   "merge composition references unknown link");
      // A link may appear in several merged links (it was traversed by
      // paths merging differently); keep the smallest estimate — the
      // tightest upper bound on the original link's own probability.
      if (result.merged_of[original] == npos ||
          result.inference.congestion_prob[merged] <
              result.original_link_prob[original]) {
        result.merged_of[original] = merged;
        result.original_link_prob[original] =
            result.inference.congestion_prob[merged];
      }
    }
  }
  return result;
}

}  // namespace tomo::core
