#include "stream/window_ring.hpp"

#include "util/error.hpp"

namespace tomo::stream {

WindowRing::WindowRing(std::size_t capacity) : slots_(capacity) {
  TOMO_REQUIRE(capacity > 0, "window ring needs at least one slot");
}

bool WindowRing::push(sim::MeasurementBlock window) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock,
                 [&] { return closed_ || count_ < slots_.size(); });
  if (closed_) return false;
  slots_[(head_ + count_) % slots_.size()] = std::move(window);
  ++count_;
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::optional<sim::MeasurementBlock> WindowRing::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || count_ > 0; });
  if (count_ == 0) return std::nullopt;  // closed and drained
  sim::MeasurementBlock window = std::move(slots_[head_]);
  head_ = (head_ + 1) % slots_.size();
  --count_;
  lock.unlock();
  not_full_.notify_one();
  return window;
}

void WindowRing::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t WindowRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

}  // namespace tomo::stream
