// The daemon's event loop: tail an observation stream, re-estimate per
// window, emit one JSON line each.
//
// Two threads around a WindowRing (the engine/queue split): the producer
// tails the input — a growing `tomo-obs-stream` file/pipe or a complete
// classic observation file, which it re-slices into the configured window
// schedule — and the consumer (the caller's thread) runs
// StreamingInference and prints. The JSON protocol is deliberately free of
// timings and other nondeterminism, so two runs over the same input are
// byte-identical for any --jobs; latency telemetry lives in the returned
// ServeReport instead.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "corr/correlation.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "stream/streaming_inference.hpp"

namespace tomo::stream {

struct ServeOptions {
  StreamingOptions streaming;
  /// Window schedule when the input is a complete classic observation
  /// file (stream-format inputs carry their own window boundaries).
  std::size_t window_snapshots = 256;
  std::size_t ring_capacity = 8;
  /// Tail mode: when > 0 and the input hits EOF without a close marker,
  /// retry every poll_ms milliseconds instead of stopping.
  long poll_ms = 0;
  /// Stop after this many windows (0 = until the stream closes).
  std::size_t max_windows = 0;
  /// Optional per-link true marginals: adds a "mean_err" field per window
  /// (mean absolute error over the potentially congested links so far).
  const std::vector<double>* truth = nullptr;
  /// Tail-mode truncation probe, consulted before each poll retry: returns
  /// the input's current byte size, or -1 when unknown. When the reported
  /// size shrinks, the file was truncated or rewritten in place under the
  /// tail (logrotate copytruncate, a recorder restarting) — the producer
  /// emits a stderr diagnostic and reopens from the start instead of
  /// silently tailing a stale offset. Unset (the default) disables the
  /// check, e.g. for pipes.
  std::function<long long()> input_size;
};

struct ServeReport {
  std::size_t windows = 0;         // windows ingested
  std::size_t usable_windows = 0;  // windows with a solved estimate
  std::size_t snapshots = 0;       // cumulative snapshots ingested
  double total_seconds = 0.0;      // sum of per-window update times
  double max_window_seconds = 0.0;
  double last_mean_err = -1.0;     // final window's mean_err (-1 = n/a)
  /// The consumer closed the output (EPIPE / stream failure) and the loop
  /// stopped early. Callers ignoring SIGPIPE see this instead of dying —
  /// `head -n 3` on the daemon's stdout is a clean shutdown, not a crash.
  bool output_closed = false;
  /// Times the producer detected a shrunken input and reopened from the
  /// start (see ServeOptions::input_size).
  std::size_t truncations = 0;
};

/// One line of the daemon's stdout protocol (no trailing newline).
/// `mean_err` < 0 omits the field. Doubles print with %.17g, so equal bits
/// give equal bytes — the cross-jobs identity contract.
std::string window_json(const WindowEstimate& estimate, double mean_err);

/// Runs the loop until the stream closes (or max_windows). Reader errors
/// and inference errors propagate as tomo::Error.
ServeReport serve(std::istream& input, std::ostream& output,
                  const graph::Graph& g,
                  const std::vector<graph::Path>& paths,
                  const corr::CorrelationSets& declared,
                  const ServeOptions& options);

}  // namespace tomo::stream
