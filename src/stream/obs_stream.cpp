#include "stream/obs_stream.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace tomo::stream {

ObsStreamWriter::ObsStreamWriter(std::ostream& os, std::size_t path_count)
    : os_(os), path_count_(path_count) {
  TOMO_REQUIRE(path_count > 0, "obs stream needs at least one path");
  os_ << "tomo-obs-stream v1\n";
  os_ << "paths " << path_count << '\n';
  os_.flush();
}

void ObsStreamWriter::write_window(const sim::MeasurementBlock& window) {
  TOMO_REQUIRE(!closed_, "obs stream already closed");
  TOMO_REQUIRE(window.path_count == path_count_,
               "window path count does not match the stream header");
  os_ << "window " << window.snapshot_count << '\n';
  for (sim::PathId p = 0; p < window.path_count; ++p) {
    const std::uint64_t* good = window.good_row(p);
    bool any = false;
    for (std::size_t n = 0; n < window.snapshot_count; ++n) {
      if ((good[n / 64] >> (n % 64)) & 1) continue;
      if (!any) {
        os_ << "congested " << p;
        any = true;
      }
      os_ << ' ' << n;
    }
    if (any) os_ << '\n';
  }
  os_ << "end\n";
  os_.flush();
}

void ObsStreamWriter::close() {
  if (closed_) return;
  closed_ = true;
  os_ << "close\n";
  os_.flush();
}

ObsStreamReader::ObsStreamReader(std::istream& is) : is_(is) {}

void ObsStreamReader::fail(const std::string& what) const {
  throw Error("obs-stream line " + std::to_string(line_no_) + ": " + what);
}

bool ObsStreamReader::parse_line(std::string line) {
  ++line_no_;
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  std::istringstream ls(line);
  std::string tag;
  if (!(ls >> tag)) return false;

  if (!have_header_) {
    std::string version;
    const bool known =
        tag == "tomo-obs-stream" || tag == "tomo-observations";
    if (!known || !(ls >> version) || version != "v1") {
      fail("expected 'tomo-obs-stream v1' or 'tomo-observations v1'");
    }
    batch_ = tag == "tomo-observations";
    have_header_ = true;
    return false;
  }
  if (closed_) fail("content after the close marker");

  if (tag == "paths") {
    if (paths_ != 0) fail("duplicate dimension line");
    if (batch_) {
      std::size_t snapshots = 0;
      std::string snap_tag;
      if (!(ls >> paths_ >> snap_tag >> snapshots) ||
          snap_tag != "snapshots") {
        fail("malformed dimension line");
      }
      if (paths_ == 0 || snapshots == 0) fail("empty observation matrix");
      pending_ = sim::MeasurementBlock::all_good(paths_, snapshots);
    } else {
      if (!(ls >> paths_) || paths_ == 0) fail("malformed paths line");
    }
    return false;
  }
  if (tag == "window") {
    if (batch_) fail("window marker in a batch observation file");
    if (paths_ == 0) fail("window before the paths line");
    if (pending_.has_value()) fail("nested window");
    std::size_t count = 0;
    if (!(ls >> count) || count == 0) fail("malformed window line");
    pending_ = sim::MeasurementBlock::all_good(paths_, count);
    return false;
  }
  if (tag == "congested") {
    if (!pending_.has_value()) {
      fail(batch_ ? "congested line before dimensions"
                  : "congested line outside a window");
    }
    std::size_t p = 0;
    if (!(ls >> p)) fail("malformed congested line");
    if (p >= paths_) fail("path id out of range");
    std::uint64_t* row = pending_->good_row(p);
    std::size_t n = 0;
    while (ls >> n) {
      if (n >= pending_->snapshot_count) fail("snapshot id out of range");
      row[n / 64] &= ~(std::uint64_t{1} << (n % 64));
    }
    return false;
  }
  if (tag == "end") {
    if (batch_) fail("end marker in a batch observation file");
    if (!pending_.has_value()) fail("end without a window");
    pending_->recount();
    return true;
  }
  if (tag == "close") {
    if (batch_) fail("close marker in a batch observation file");
    if (pending_.has_value()) fail("close inside a window");
    closed_ = true;
    return false;
  }
  fail("unknown tag '" + tag + "'");
}

std::optional<sim::MeasurementBlock> ObsStreamReader::next() {
  if (closed_) return std::nullopt;
  std::string line;
  while (std::getline(is_, line)) {
    if (is_.eof()) {
      if (batch_) {
        // A complete classic file whose last line lacks a newline: parse
        // it, then fall through to the single-window finalization.
        if (!carry_.empty()) {
          line = carry_ + line;
          carry_.clear();
        }
        parse_line(std::move(line));
        break;
      }
      // The trailing line has no terminator yet — it may still be mid-
      // write by the producer. Buffer it; a retry after clear() resumes.
      carry_ += line;
      return std::nullopt;
    }
    if (!carry_.empty()) {
      line = carry_ + line;
      carry_.clear();
    }
    if (parse_line(std::move(line))) {
      sim::MeasurementBlock window = std::move(*pending_);
      pending_.reset();
      return window;
    }
  }
  if (batch_ && pending_.has_value()) {
    // Classic complete file: EOF is the delimiter of its single window.
    pending_->recount();
    closed_ = true;
    sim::MeasurementBlock block = std::move(*pending_);
    pending_.reset();
    return block;
  }
  return std::nullopt;
}

}  // namespace tomo::stream
