#include "stream/streaming_measurement.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::stream {

StreamingMeasurement::StreamingMeasurement(std::size_t path_count)
    : path_count_(path_count) {
  TOMO_REQUIRE(path_count > 0,
               "streaming measurement needs at least one path");
}

void StreamingMeasurement::append(const sim::MeasurementBlock& window) {
  TOMO_REQUIRE(window.path_count == path_count_,
               "appended window has a different path count");
  block_.append(window);
  view_ = std::make_unique<sim::EmpiricalMeasurement>(
      sim::MeasurementBlock(block_));
  ++windows_;
}

const sim::EmpiricalMeasurement& StreamingMeasurement::view() const {
  TOMO_REQUIRE(view_ != nullptr,
               "streaming measurement queried before any window arrived");
  return *view_;
}

double StreamingMeasurement::all_good_prob(
    std::span<const sim::PathId> paths) const {
  return view().all_good_prob(paths);
}

double StreamingMeasurement::exact_pattern_prob(
    const sim::PathIdSet& pattern) const {
  return view().exact_pattern_prob(pattern);
}

std::size_t StreamingMeasurement::sample_count() const {
  return view().sample_count();
}

double StreamingMeasurement::good_prob(sim::PathId p) const {
  return view().good_prob(p);
}

double StreamingMeasurement::pair_good_prob(sim::PathId a,
                                            sim::PathId b) const {
  return view().pair_good_prob(a, b);
}

std::vector<sim::MeasurementBlock> split_windows(
    const sim::MeasurementBlock& block, std::size_t window_snapshots) {
  TOMO_REQUIRE(window_snapshots > 0, "window size must be positive");
  TOMO_REQUIRE(!block.empty(), "cannot split an empty block");
  std::vector<sim::MeasurementBlock> windows;
  for (std::size_t first = 0; first < block.snapshot_count;
       first += window_snapshots) {
    const std::size_t count =
        std::min(window_snapshots, block.snapshot_count - first);
    windows.push_back(block.slice(first, count));
  }
  return windows;
}

}  // namespace tomo::stream
