// The resolved per-trial *streaming* specification — TrialSpec's twin.
//
// A StreamSpec wraps a TrialSpec (scenario + simulator + inference, with
// the same seed-tag derivation, so the simulated snapshots are bit-equal
// to the batch trial's) and adds the streaming schedule: the full snapshot
// block is sliced into `window_snapshots`-sized windows (ragged tail
// included) and replayed through StreamingInference, yielding one estimate
// per window. The final window's estimate therefore targets exactly the
// batch TrialSpec::run answer — the equivalence the test tier pins.
#pragma once

#include <cstddef>
#include <vector>

#include "core/trial_spec.hpp"
#include "stream/streaming_inference.hpp"

namespace tomo::stream {

struct StreamSpec {
  /// The underlying batch trial (scenario, sim knobs, inference, seed
  /// tags). Streaming never perturbs its seed derivation.
  core::TrialSpec trial;
  /// Snapshots per window; the final window takes the remainder.
  std::size_t window_snapshots = 256;
  bool warm_start = true;
  bool reuse_gram = true;

  struct StreamRun {
    core::ScenarioInstance instance;
    /// One estimate per window, in arrival order (estimates[k] covers the
    /// first (k+1) windows' snapshots).
    std::vector<WindowEstimate> estimates;
    /// Metric population over the full trace (for error scoring).
    std::vector<std::size_t> potentially_congested;
    double sim_seconds = 0.0;
  };

  /// One full streamed trial: build the scenario, simulate every
  /// snapshot, then replay the block window by window.
  StreamRun run(const core::TrialContext& ctx) const;
};

}  // namespace tomo::stream
