// The measurement provider that grows as windows arrive.
//
// StreamingMeasurement splices each arriving snapshot window onto a
// cumulative MeasurementBlock (bit-exact append, ragged offsets included)
// and answers every MeasurementProvider query over *all* data seen so far
// by delegating to a refreshed EmpiricalMeasurement — literally the batch
// provider over the cumulative block. Because the cumulative block after k
// appends is bit-identical to the batch block over the same snapshots, a
// harvest run against this provider is byte-identical to the batch harvest
// at every window boundary; that is the streamed-vs-batch equivalence
// contract tests/test_streaming_fast.cpp pins.
#pragma once

#include <memory>

#include "sim/measurement.hpp"
#include "sim/measurement_block.hpp"

namespace tomo::stream {

class StreamingMeasurement final : public sim::MeasurementProvider {
 public:
  explicit StreamingMeasurement(std::size_t path_count);

  /// Splices `window` onto the cumulative block. Every query afterwards
  /// covers the extended snapshot range.
  void append(const sim::MeasurementBlock& window);

  std::size_t window_count() const { return windows_; }

  /// The cumulative block (empty before the first append).
  const sim::MeasurementBlock& block() const { return block_; }

  using sim::MeasurementProvider::all_good_prob;

  // MeasurementProvider over the snapshots ingested so far. Queries
  // require at least one appended window.
  std::size_t path_count() const override { return path_count_; }
  double all_good_prob(std::span<const sim::PathId> paths) const override;
  double exact_pattern_prob(const sim::PathIdSet& pattern) const override;
  std::size_t sample_count() const override;
  double good_prob(sim::PathId p) const override;
  double pair_good_prob(sim::PathId a, sim::PathId b) const override;

 private:
  const sim::EmpiricalMeasurement& view() const;

  std::size_t path_count_;
  std::size_t windows_ = 0;
  sim::MeasurementBlock block_;
  // Rebuilt on append from a copy of the cumulative block, so queries run
  // the exact batch-provider code path (no second AND/popcount
  // implementation to drift).
  std::unique_ptr<sim::EmpiricalMeasurement> view_;
};

/// Splits a complete block into consecutive windows of `window_snapshots`
/// snapshots (final window ragged). Appending the result in order
/// reconstructs `block` bit-for-bit — the replay path of the daemon and
/// the equivalence tests.
std::vector<sim::MeasurementBlock> split_windows(
    const sim::MeasurementBlock& block, std::size_t window_snapshots);

}  // namespace tomo::stream
