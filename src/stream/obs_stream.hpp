// Wire format of the streaming daemon: windowed path observations.
//
// A tail-able, line-oriented extension of the classic obs-IO format
// (sim/obs_io.hpp): observations arrive as self-delimited windows, so a
// consumer can act on each window the moment its `end` marker lands while
// the producer keeps appending. '#' comments allowed anywhere.
//
//   tomo-obs-stream v1
//   paths <P>
//   window <N>                       # N snapshots follow
//   congested <path-id> <snap-id>...   # snap ids relative to the window
//   end
//   window <N> ...                   # any number of windows
//   close                            # optional: no more windows, ever
//
// ObsStreamReader also accepts a complete classic `tomo-observations v1`
// file and yields it as one big window — the replay path: the daemon
// re-slices it into its own window schedule. EOF without `close` is not an
// error, merely "nothing more yet": the reader keeps partial lines
// buffered, so a caller tailing a growing file can clear() the stream and
// call next() again after more bytes arrive.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/measurement_block.hpp"

namespace tomo::stream {

class ObsStreamWriter {
 public:
  /// Writes the stream header immediately.
  ObsStreamWriter(std::ostream& os, std::size_t path_count);

  /// Appends one window (flushes, so a tailing consumer sees it whole).
  void write_window(const sim::MeasurementBlock& window);

  /// Appends the `close` marker. No windows may follow.
  void close();

 private:
  std::ostream& os_;
  std::size_t path_count_;
  bool closed_ = false;
};

class ObsStreamReader {
 public:
  explicit ObsStreamReader(std::istream& is);

  /// The next complete window, in stream order; nullopt when the stream
  /// has no complete window buffered (EOF mid-stream — retryable — or
  /// after `close`/a delivered batch file).
  std::optional<sim::MeasurementBlock> next();

  /// True once no further window can ever arrive (`close` marker seen, or
  /// the single window of a classic batch file was delivered).
  bool finished() const { return closed_; }

  /// True when the header identified a classic complete observation file
  /// (meaningful once a header line has been consumed).
  bool batch_format() const { return batch_; }

  /// 0 until the dimension line has been parsed.
  std::size_t path_count() const { return paths_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;
  bool parse_line(std::string line);  // true when a window just completed

  std::istream& is_;
  std::size_t line_no_ = 0;
  std::string carry_;  // partial (unterminated) trailing line, tail mode
  bool have_header_ = false;
  bool batch_ = false;
  bool closed_ = false;
  std::size_t paths_ = 0;

  // Window under construction (stream mode) or the whole file (batch).
  std::optional<sim::MeasurementBlock> pending_;
  bool pending_ready_ = false;
};

}  // namespace tomo::stream
