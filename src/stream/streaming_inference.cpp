#include "stream/streaming_inference.hpp"

#include <utility>

#include "core/equations.hpp"
#include "util/stopwatch.hpp"

namespace tomo::stream {

StreamingInference::StreamingInference(const graph::Graph& g,
                                       const std::vector<graph::Path>& paths,
                                       const corr::CorrelationSets& declared,
                                       StreamingOptions options)
    : graph_(g),
      paths_(paths),
      declared_(declared),
      options_(std::move(options)),
      coverage_(g, paths),
      measurement_(paths.size()) {}

bool StreamingInference::incremental_solver() const {
  const linalg::SolverOptions& solver = options_.inference.solver;
  return solver.kind == linalg::SolverKind::kNnls &&
         solver.nnls_mode == linalg::NnlsMode::kIncremental;
}

bool StreamingInference::support_unchanged(
    const core::EquationSystem& system) const {
  if (system.link_count != gram_.gram.cols()) return false;
  if (system.equations.size() != gram_support_.size()) return false;
  for (std::size_t i = 0; i < gram_support_.size(); ++i) {
    if (system.equations[i].links != gram_support_[i]) return false;
  }
  return true;
}

void StreamingInference::remember_support(
    const core::EquationSystem& system) {
  gram_support_.clear();
  gram_support_.reserve(system.equations.size());
  for (const core::Equation& eq : system.equations) {
    gram_support_.push_back(eq.links);
  }
}

WindowEstimate StreamingInference::push_window(
    const sim::MeasurementBlock& window) {
  const Stopwatch timer;
  WindowEstimate out;
  out.window = measurement_.window_count();
  measurement_.append(window);
  out.snapshots = measurement_.block().snapshot_count;

  core::RefinedHarvest harvest = core::harvest_refined_system(
      graph_, paths_, coverage_, declared_, measurement_, options_.inference);
  if (harvest.system.equations.empty()) {
    // Nothing solvable yet; drop the caches so the next window starts
    // clean, and report the window as not yet usable.
    gram_valid_ = false;
    gram_support_.clear();
    prev_active_.clear();
    out.seconds = timer.seconds();
    return out;
  }

  const std::size_t weight_samples =
      options_.inference.weight_by_variance ? measurement_.sample_count()
                                            : 0;
  const linalg::SparseSystemView view =
      core::sparse_view(harvest.system, weight_samples);

  linalg::SolverOptions solver = options_.inference.solver;
  if (options_.warm_start && incremental_solver()) {
    solver.warm_start = prev_active_;
  }

  const Stopwatch solve_timer;
  linalg::LogSystemSolution solution;
  if (incremental_solver()) {
    const bool reuse = options_.reuse_gram && weight_samples == 0 &&
                       gram_valid_ && support_unchanged(harvest.system);
    if (reuse) {
      // Same equations, new measurements: G = AᵀA is exactly the batch
      // matrix already; only the rhs products depend on the y values.
      linalg::refresh_gram_rhs(gram_, view, solver.jobs);
      out.gram_reused = true;
    } else {
      gram_ = linalg::GramSystem{};
      linalg::accumulate_gram(gram_, view, solver.jobs);
      gram_valid_ = weight_samples == 0;
      if (gram_valid_) {
        remember_support(harvest.system);
      } else {
        gram_support_.clear();
      }
    }
    solution = linalg::solve_log_system(view, gram_, solver);
  } else {
    // Non-incremental solvers have no caches to exploit; plain re-solve.
    solution = linalg::solve_log_system(view, solver);
  }
  out.warm_started = !solver.warm_start.empty();
  out.inference.solve_seconds = solve_timer.seconds();
  out.inference.system = std::move(harvest.system);
  out.inference.refined_links = std::move(harvest.refined_links);
  prev_active_ = solution.active_set;
  core::apply_solution(out.inference, std::move(solution));
  out.usable = true;
  out.seconds = timer.seconds();
  return out;
}

}  // namespace tomo::stream
