#include "stream/serve.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "core/experiment.hpp"
#include "metrics/error_metrics.hpp"
#include "stream/obs_stream.hpp"
#include "stream/window_ring.hpp"
#include "util/error.hpp"

namespace tomo::stream {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string window_json(const WindowEstimate& estimate, double mean_err) {
  std::string out = "{\"window\":" + std::to_string(estimate.window);
  out += ",\"snapshots\":" + std::to_string(estimate.snapshots);
  out += ",\"usable\":";
  out += estimate.usable ? "true" : "false";
  if (estimate.usable) {
    const core::InferenceResult& inf = estimate.inference;
    out += ",\"equations\":" + std::to_string(inf.system.equations.size());
    out += ",\"rank\":" + std::to_string(inf.system.rank);
    out += ",\"active\":" + std::to_string(inf.active_set.size());
    out += ",\"refined\":" + std::to_string(inf.refined_links.size());
    out += ",\"gram_reused\":";
    out += estimate.gram_reused ? "true" : "false";
    out += ",\"warm_started\":";
    out += estimate.warm_started ? "true" : "false";
    out += ",\"solver\":\"" + inf.solver_detail + "\"";
    if (mean_err >= 0.0) {
      out += ",\"mean_err\":";
      append_double(out, mean_err);
    }
    out += ",\"estimate\":[";
    for (std::size_t k = 0; k < inf.congestion_prob.size(); ++k) {
      if (k) out += ',';
      append_double(out, inf.congestion_prob[k]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

ServeReport serve(std::istream& input, std::ostream& output,
                  const graph::Graph& g,
                  const std::vector<graph::Path>& paths,
                  const corr::CorrelationSets& declared,
                  const ServeOptions& options) {
  WindowRing ring(options.ring_capacity);
  std::exception_ptr producer_error;
  std::size_t truncations = 0;  // producer-owned until the join below

  // Producer: tail the input and feed the ring. The reader is touched by
  // this thread only.
  std::thread producer([&] {
    try {
      std::optional<ObsStreamReader> reader;
      reader.emplace(input);
      long long last_size = -1;
      for (;;) {
        std::optional<sim::MeasurementBlock> window = reader->next();
        if (window.has_value()) {
          if (reader->batch_format()) {
            // A complete classic file: re-slice it into our schedule.
            for (sim::MeasurementBlock& slice :
                 split_windows(*window, options.window_snapshots)) {
              if (!ring.push(std::move(slice))) break;
            }
            break;
          }
          if (!ring.push(std::move(*window))) break;
          continue;
        }
        if (reader->finished()) break;
        if (options.poll_ms <= 0) break;
        input.clear();
        if (options.input_size) {
          const long long size = options.input_size();
          if (size >= 0) {
            if (last_size >= 0 && size < last_size) {
              // The file shrank under the tail: it was truncated or
              // rewritten in place. Our offset points into data that no
              // longer exists — start over on the new contents.
              std::fprintf(stderr,
                           "tomo_daemon: input shrank %lld -> %lld bytes "
                           "(truncated or rewritten); reopening from "
                           "start\n",
                           last_size, size);
              ++truncations;
              input.clear();
              input.seekg(0);
              reader.emplace(input);
            }
            last_size = size;
          }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.poll_ms));
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    ring.close();
  });

  ServeReport report;
  StreamingInference inference(g, paths, declared, options.streaming);
  while (std::optional<sim::MeasurementBlock> window = ring.pop()) {
    const WindowEstimate estimate = inference.push_window(*window);
    ++report.windows;
    report.snapshots = estimate.snapshots;
    report.total_seconds += estimate.seconds;
    report.max_window_seconds =
        std::max(report.max_window_seconds, estimate.seconds);

    double mean_err = -1.0;
    if (estimate.usable) {
      ++report.usable_windows;
      if (options.truth != nullptr) {
        const std::vector<std::size_t> population =
            core::potentially_congested_links(paths,
                                              inference.measurement());
        const std::vector<double> errors = metrics::absolute_errors(
            *options.truth, estimate.inference.congestion_prob, population);
        if (!errors.empty()) {
          double sum = 0.0;
          for (double e : errors) sum += e;
          mean_err = sum / static_cast<double>(errors.size());
        }
      }
    }
    report.last_mean_err = mean_err;
    output << window_json(estimate, mean_err) << '\n';
    output.flush();
    if (!output.good()) {
      // Downstream hung up (EPIPE with SIGPIPE ignored, or any other
      // stream failure). Further windows have no reader: stop cleanly and
      // let the caller report it instead of crashing mid-write.
      report.output_closed = true;
      break;
    }
    if (options.max_windows != 0 && report.windows >= options.max_windows) {
      break;
    }
  }
  ring.close();  // unblocks a producer stuck in push after max_windows
  producer.join();
  report.truncations = truncations;  // join() ordered the producer's writes
  if (producer_error) std::rethrow_exception(producer_error);
  return report;
}

}  // namespace tomo::stream
