// Bounded handoff between the daemon's reader and the inference loop.
//
// The streaming daemon splits ingestion (tailing an observation file or
// pipe) from inference (harvest + solve per window) across two threads;
// WindowRing is the fixed-capacity ring buffer between them. push blocks
// while the ring is full — natural back-pressure when inference lags the
// producer — and pop blocks while it is empty. close() wakes everyone:
// pending windows still drain, then pop returns nullopt and further
// pushes are refused.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/measurement_block.hpp"

namespace tomo::stream {

class WindowRing {
 public:
  explicit WindowRing(std::size_t capacity = 8);

  /// Blocks until a slot frees up; false when the ring was closed before
  /// the window could be queued (the window is dropped).
  bool push(sim::MeasurementBlock window);

  /// Blocks for the next window, in arrival order; nullopt once the ring
  /// is closed and drained.
  std::optional<sim::MeasurementBlock> pop();

  /// Idempotent; queued windows remain poppable.
  void close();

  std::size_t capacity() const { return slots_.size(); }

  /// Windows currently queued (snapshot; racy by nature, for telemetry).
  std::size_t size() const;

 private:
  std::vector<sim::MeasurementBlock> slots_;
  std::size_t head_ = 0;   // next slot to pop
  std::size_t count_ = 0;  // occupied slots
  bool closed_ = false;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

}  // namespace tomo::stream
