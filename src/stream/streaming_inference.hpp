// The streaming/online inference driver — the batch algorithm, one
// arriving window at a time.
//
// Each push_window splices the window into the cumulative
// StreamingMeasurement, re-runs the *same* structure-determination code as
// the batch path (core::harvest_refined_system: Assumption-4 refinement,
// pair-equation harvest, §3.3 demotion rounds — always from the original
// declared sets, so window k's structure equals a batch run over the first
// k windows), and re-solves with two incremental accelerations:
//
//   - Gram reuse: when the harvested equation support is unchanged from
//     the previous window (the steady state once the structure stabilizes)
//     only the right-hand-side products are re-accumulated; G = AᵀA is
//     reused. When the support changed, G is rebuilt from scratch — in
//     either case bitwise what the batch build produces (additive,
//     row-ordered accumulation; see linalg::accumulate_gram).
//   - NNLS warm start: the solve is seeded from the previous window's
//     converged active set via the UpdatableCholesky-backed engine, so the
//     steady-state cost per window is a handful of O(k²) factor edits
//     instead of a cold active-set climb.
//
// Convergence contract: the estimate after window k equals a one-shot
// batch infer_congestion over the same snapshots — identical equation
// system and Gram bits, same NNLS optimum (bit-identical when the solve is
// cold, equal active set and solution to solver tolerance when
// warm-started). Output is bit-identical for any jobs value.
#pragma once

#include <cstddef>
#include <vector>

#include "core/correlation_algorithm.hpp"
#include "graph/coverage.hpp"
#include "stream/streaming_measurement.hpp"

namespace tomo::stream {

struct StreamingOptions {
  /// Shared with the batch path (solver, harvest, refinement knobs).
  core::InferenceOptions inference;
  /// Seed each window's NNLS from the previous window's converged active
  /// set (incremental engine only; the first window is always cold).
  bool warm_start = true;
  /// Reuse the cached G = AᵀA when the harvested support is unchanged
  /// (unweighted solves only — variance weights change every row value).
  bool reuse_gram = true;
};

struct WindowEstimate {
  std::size_t window = 0;     // 0-based arrival index
  std::size_t snapshots = 0;  // cumulative snapshots ingested
  /// False while the measurements admit no usable equation yet (possible
  /// in the first windows of a heavily congested trace); `inference` is
  /// then empty and the next window retries from scratch.
  bool usable = false;
  /// The estimate over *all* snapshots so far (same fields as the batch
  /// result, including the solved system diagnostics).
  core::InferenceResult inference;
  bool gram_reused = false;
  bool warm_started = false;
  double seconds = 0.0;  // wall time of this window's append+harvest+solve
};

class StreamingInference {
 public:
  /// `g` and `paths` must outlive the driver (as with CoverageIndex).
  StreamingInference(const graph::Graph& g,
                     const std::vector<graph::Path>& paths,
                     const corr::CorrelationSets& declared,
                     StreamingOptions options = {});

  /// Ingests one window and re-estimates over everything seen so far.
  WindowEstimate push_window(const sim::MeasurementBlock& window);

  const StreamingMeasurement& measurement() const { return measurement_; }
  std::size_t window_count() const { return measurement_.window_count(); }

 private:
  bool incremental_solver() const;
  bool support_unchanged(const core::EquationSystem& system) const;
  void remember_support(const core::EquationSystem& system);

  const graph::Graph& graph_;
  const std::vector<graph::Path>& paths_;
  const corr::CorrelationSets declared_;
  const StreamingOptions options_;
  graph::CoverageIndex coverage_;
  StreamingMeasurement measurement_;

  // Inter-window caches (incremental NNLS only).
  linalg::GramSystem gram_;
  bool gram_valid_ = false;
  std::vector<std::vector<graph::LinkId>> gram_support_;
  std::vector<std::size_t> prev_active_;
};

}  // namespace tomo::stream
