#include "stream/stream_spec.hpp"

#include <utility>

#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"

namespace tomo::stream {

StreamSpec::StreamRun StreamSpec::run(const core::TrialContext& ctx) const {
  StreamRun out;
  out.instance = core::build_scenario(trial.scenario_for(ctx));

  const core::ExperimentConfig config = trial.experiment_for(ctx);
  const Stopwatch sim_timer;
  sim::SimulationResult sim_result =
      sim::simulate(out.instance.graph, out.instance.paths,
                    *out.instance.truth, config.sim);
  out.sim_seconds = sim_timer.seconds();

  StreamingOptions options;
  options.inference = config.inference;
  options.warm_start = warm_start;
  options.reuse_gram = reuse_gram;
  StreamingInference inference(out.instance.graph, out.instance.paths,
                               out.instance.declared_sets, options);
  for (const sim::MeasurementBlock& window :
       split_windows(sim_result.measurement, window_snapshots)) {
    out.estimates.push_back(inference.push_window(window));
  }
  out.potentially_congested = core::potentially_congested_links(
      out.instance.paths, inference.measurement());
  return out;
}

}  // namespace tomo::stream
