#include "sim/oracle.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::sim {

OracleMeasurement::OracleMeasurement(const corr::CongestionModel& model,
                                     const graph::CoverageIndex& coverage,
                                     std::size_t max_total_links)
    : model_(model), coverage_(coverage), max_total_links_(max_total_links) {
  TOMO_REQUIRE(model.link_count() == coverage.link_count(),
               "oracle: model and coverage disagree on link count");
}

double OracleMeasurement::all_good_prob(
    std::span<const PathId> paths) const {
  std::vector<graph::LinkId> links;
  for (PathId p : paths) {
    const auto& pl = coverage_.links_of(p);
    links.insert(links.end(), pl.begin(), pl.end());
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return model_.prob_all_good(links);
}

double OracleMeasurement::exact_pattern_prob(const PathIdSet& pattern) const {
  // Enumerate network states as products of per-correlation-set states.
  // Correct for models that honour their declared partition; for models
  // with hidden cross-set dependence (CrossSetShockModel) this marginalizes
  // per set, which matches what the theorem algorithm assumes anyway.
  const corr::CorrelationSets& sets = model_.sets();
  TOMO_REQUIRE(sets.link_count() <= max_total_links_,
               "exact_pattern_prob: too many links for state enumeration");

  struct SetState {
    double prob;
    PathIdSet covered;
  };
  std::vector<std::vector<SetState>> admissible(sets.set_count());
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    const auto& members = sets.set(s);
    const std::size_t total = std::size_t{1} << members.size();
    for (std::size_t mask = 0; mask < total; ++mask) {
      std::vector<graph::LinkId> subset;
      for (std::size_t bit = 0; bit < members.size(); ++bit) {
        if (mask & (std::size_t{1} << bit)) {
          subset.push_back(members[bit]);
        }
      }
      const double prob = model_.set_state_prob(s, subset);
      if (prob <= 0.0) continue;
      PathIdSet covered = coverage_.covered_paths(subset);
      // Prune states that congest a path outside the target pattern.
      if (!std::includes(pattern.begin(), pattern.end(), covered.begin(),
                         covered.end())) {
        continue;
      }
      admissible[s].push_back(SetState{prob, std::move(covered)});
    }
  }

  // DFS over the per-set admissible states, accumulating probability of
  // exactly covering `pattern`.
  double total_prob = 0.0;
  PathIdSet current;
  auto dfs = [&](auto&& self, std::size_t s, double prob,
                 const PathIdSet& covered) -> void {
    if (s == admissible.size()) {
      if (covered == pattern) {
        total_prob += prob;
      }
      return;
    }
    for (const SetState& state : admissible[s]) {
      self(self, s + 1, prob * state.prob,
           graph::path_set_union(covered, state.covered));
    }
  };
  dfs(dfs, 0, 1.0, current);
  return total_prob;
}

}  // namespace tomo::sim
