// Bit-packed per-snapshot path observations.
//
// An experiment yields, for each path, one congested/good bit per snapshot.
// PathObservations packs these row-per-path so that joint statistics —
// P(two paths simultaneously good), exact congested-path patterns — reduce
// to word-wise AND/OR plus popcount, which is what makes pair-equation
// estimation cheap at paper scale (1500 paths => ~1.1M pairs).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coverage.hpp"
#include "graph/path.hpp"

namespace tomo::sim {

using graph::PathId;
using graph::PathIdSet;

class PathObservations {
 public:
  PathObservations(std::size_t path_count, std::size_t snapshot_count);

  std::size_t path_count() const { return path_count_; }
  std::size_t snapshot_count() const { return snapshot_count_; }

  /// Marks path `p` congested in snapshot `n` (bits start out good).
  void set_congested(PathId p, std::size_t n);

  /// Overwrites path `p`'s congested-bit row from `words` (words_per_path()
  /// of them). Bits beyond snapshot_count() must already be zero.
  void assign_congested_row(PathId p, const std::uint64_t* words);

  bool congested(PathId p, std::size_t n) const;

  /// Number of snapshots in which the path was good.
  std::size_t good_count(PathId p) const;

  /// Number of snapshots in which both paths were good simultaneously.
  std::size_t both_good_count(PathId a, PathId b) const;

  /// Number of snapshots in which every path in `paths` was good.
  std::size_t all_good_count(const std::vector<PathId>& paths) const;

  /// Number of snapshots whose congested-path set is exactly `pattern`
  /// (sorted PathIdSet). This is the measurement the theorem algorithm
  /// needs: the empirical P(ψ(S) = ψ(A)).
  std::size_t exact_pattern_count(const PathIdSet& pattern) const;

  /// Number of 64-bit words backing each path's snapshot row.
  std::size_t words_per_path() const { return (snapshot_count_ + 63) / 64; }

  /// Raw congested-bit words of one path (words_per_path() of them, bit n =
  /// snapshot n congested; tail bits beyond snapshot_count() are zero).
  /// Lets callers derive cached views (e.g. per-path good-snapshot masks)
  /// without re-walking set_congested history.
  const std::uint64_t* congested_words(PathId p) const { return row(p); }

 private:
  const std::uint64_t* row(PathId p) const;
  std::uint64_t* row(PathId p);

  std::size_t path_count_;
  std::size_t snapshot_count_;
  std::vector<std::uint64_t> bits_;  // 1 = congested
};

}  // namespace tomo::sim
