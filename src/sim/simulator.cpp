#include "sim/simulator.hpp"

#include "util/error.hpp"

namespace tomo::sim {

SimulationResult simulate(const graph::Graph& g,
                          const std::vector<graph::Path>& paths,
                          const corr::CongestionModel& model,
                          const SimulatorConfig& config) {
  TOMO_REQUIRE(!paths.empty(), "simulate: no paths");
  TOMO_REQUIRE(model.link_count() == g.link_count(),
               "simulate: model link count does not match the graph");
  TOMO_REQUIRE(config.snapshots > 0, "simulate: need at least one snapshot");
  TOMO_REQUIRE(config.packets_per_path > 0 ||
                   config.mode == PacketMode::kExact,
               "simulate: need at least one packet per path");

  LossModel loss_model(config.tl);
  Rng rng(config.seed);

  SimulationResult result{
      PathObservations(paths.size(), config.snapshots),
      std::vector<std::size_t>(g.link_count(), 0),
      config.snapshots,
  };

  // Precompute per-path thresholds.
  std::vector<double> tp(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    tp[p] = loss_model.path_threshold(paths[p].length());
  }

  std::vector<double> loss(g.link_count(), 0.0);
  for (std::size_t n = 0; n < config.snapshots; ++n) {
    const std::vector<std::uint8_t> state = model.sample(rng);
    TOMO_ASSERT(state.size() == g.link_count());
    for (graph::LinkId k = 0; k < g.link_count(); ++k) {
      result.link_congested_count[k] += state[k];
    }

    if (config.mode == PacketMode::kExact) {
      for (std::size_t p = 0; p < paths.size(); ++p) {
        for (graph::LinkId k : paths[p].links()) {
          if (state[k]) {
            result.observations.set_congested(p, n);
            break;
          }
        }
      }
      continue;
    }

    for (graph::LinkId k = 0; k < g.link_count(); ++k) {
      loss[k] = loss_model.sample_loss_rate(rng, state[k] != 0);
    }

    for (std::size_t p = 0; p < paths.size(); ++p) {
      const std::size_t sent = config.packets_per_path;
      std::size_t delivered = 0;
      if (config.mode == PacketMode::kBinomial) {
        double survival = 1.0;
        for (graph::LinkId k : paths[p].links()) {
          survival *= 1.0 - loss[k];
        }
        delivered = static_cast<std::size_t>(rng.binomial(sent, survival));
      } else {  // kPerPacket
        for (std::size_t packet = 0; packet < sent; ++packet) {
          bool alive = true;
          for (graph::LinkId k : paths[p].links()) {
            if (rng.bernoulli(loss[k])) {
              alive = false;
              break;
            }
          }
          delivered += alive ? 1 : 0;
        }
      }
      const double measured_loss =
          1.0 - static_cast<double>(delivered) / static_cast<double>(sent);
      if (measured_loss > tp[p]) {
        result.observations.set_congested(p, n);
      }
    }
  }
  return result;
}

}  // namespace tomo::sim
