#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tomo::sim {

namespace {

/// Seed-tag base for per-block RNG streams: block b draws from
/// mix_seed(config.seed, kBlockSeedTag + b), so the stream depends only on
/// (seed, block index) — never on which worker ran the block.
constexpr std::uint64_t kBlockSeedTag = 0xb10c0000ULL;

/// Snapshots per batch: one 64-bit good word per path per block, so every
/// block writes disjoint words of the MeasurementBlock.
constexpr std::size_t kBlockSnapshots = 64;

/// Smallest delivered-packet count that still counts as "good":
/// congested iff measured_loss > tp iff delivered < n*(1-tp).
inline double good_threshold(std::size_t packets, double tp) {
  return std::ceil(static_cast<double>(packets) * (1.0 - tp));
}

/// Deterministic-fate shortcut: with delivered ~ Binomial(n, survival), the
/// verdict is certain (to ~8 sigma, P(flip) < 1e-15) when the mean sits
/// more than 8 standard deviations past the threshold. Returns +1
/// (certainly good), -1 (certainly congested), or 0 (borderline — draw).
/// Both binomial block engines use this, so their RNG streams stay aligned.
inline int classify_fate(double packets, double survival, double threshold) {
  const double mean = packets * survival;
  const double variance = mean * (1.0 - survival);
  const double diff = mean - threshold;
  const double slack = (diff >= 0.0 ? diff : -diff) - 1.0;
  if (slack > 0.0 && slack * slack > 64.0 * variance) {
    return diff >= 0.0 ? 1 : -1;
  }
  return 0;
}

std::vector<double> path_thresholds(const LossModel& loss_model,
                                    const std::vector<graph::Path>& paths) {
  std::vector<double> tp(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    tp[p] = loss_model.path_threshold(paths[p].length());
  }
  return tp;
}

/// The block-batched engine. Blocks are the parallel unit: each derives its
/// own RNG stream, samples its snapshots' link states in one sample_block
/// call, and writes one good word per path — disjoint from every other
/// block — so util::parallel_for scheduling cannot affect the output.
SimulationResult simulate_batched(const graph::Graph& g,
                                  const std::vector<graph::Path>& paths,
                                  const corr::CongestionModel& model,
                                  const SimulatorConfig& config) {
  const std::size_t links = g.link_count();
  const std::size_t blocks =
      (config.snapshots + kBlockSnapshots - 1) / kBlockSnapshots;

  LossModel loss_model(config.tl);
  const std::vector<double> tp = path_thresholds(loss_model, paths);
  std::vector<double> threshold(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    threshold[p] = good_threshold(config.packets_per_path, tp[p]);
  }

  // Flatten path->links into CSR so the survival product walks one
  // contiguous array instead of chasing per-path vectors.
  std::vector<std::size_t> offsets(paths.size() + 1, 0);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    offsets[p + 1] = offsets[p] + paths[p].links().size();
  }
  std::vector<graph::LinkId> path_links(offsets.back());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    std::copy(paths[p].links().begin(), paths[p].links().end(),
              path_links.begin() + offsets[p]);
  }

  SimulationResult result;
  result.snapshots = config.snapshots;
  result.link_congested_count.assign(links, 0);
  result.measurement.path_count = paths.size();
  result.measurement.snapshot_count = config.snapshots;
  result.measurement.good_bits.assign(
      paths.size() * result.measurement.words_per_path(), 0);

  // Per-block link congestion tallies, merged serially in block order after
  // the fan-out (jobs-invariant by construction; see SimulationResult).
  std::vector<std::uint32_t> block_counts(blocks * links, 0);

  const double packets = static_cast<double>(config.packets_per_path);
  util::parallel_for(config.jobs, blocks, [&](std::size_t b) {
    const std::size_t first = b * kBlockSnapshots;
    const std::size_t count =
        std::min(kBlockSnapshots, config.snapshots - first);
    Rng rng(mix_seed(config.seed, kBlockSeedTag + b));

    std::vector<std::uint8_t> states(count * links);
    model.sample_block(rng, count, states.data());

    std::vector<double> keep(links);  // 1 - loss per link
    std::vector<std::uint64_t> good_words(paths.size(), 0);
    std::uint32_t* counts = block_counts.data() + b * links;

    for (std::size_t i = 0; i < count; ++i) {
      const std::uint8_t* state = states.data() + i * links;
      for (std::size_t k = 0; k < links; ++k) {
        counts[k] += state[k];
      }
      for (std::size_t k = 0; k < links; ++k) {
        keep[k] = 1.0 - loss_model.sample_loss_rate(rng, state[k] != 0);
      }
      for (std::size_t p = 0; p < paths.size(); ++p) {
        double survival = 1.0;
        for (std::size_t idx = offsets[p]; idx < offsets[p + 1]; ++idx) {
          survival *= keep[path_links[idx]];
        }
        bool good;
        const int fate = classify_fate(packets, survival, threshold[p]);
        if (fate != 0) {
          good = fate > 0;
        } else {
          const double delivered = static_cast<double>(
              rng.binomial(config.packets_per_path, survival));
          good = delivered >= threshold[p];
        }
        if (good) {
          good_words[p] |= std::uint64_t{1} << i;
        }
      }
    }
    for (std::size_t p = 0; p < paths.size(); ++p) {
      result.measurement.good_row(p)[b] = good_words[p];
    }
  });

  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint32_t* counts = block_counts.data() + b * links;
    for (std::size_t k = 0; k < links; ++k) {
      result.link_congested_count[k] += counts[k];
    }
  }
  result.measurement.recount();
  return result;
}

/// Differential reference for the batched engine: identical block and RNG
/// semantics, executed as deliberately plain scalar code — serial block
/// loop, per-path link-vector walk, PathObservations congested-bit writes,
/// complement conversion at the end. Shares only the RNG, the loss model,
/// and classify_fate with simulate_batched, so a bit-exact match between
/// the two cross-checks the CSR flattening, the direct good-word packing,
/// and the parallel merge.
SimulationResult simulate_batched_reference(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const corr::CongestionModel& model, const SimulatorConfig& config) {
  const std::size_t links = g.link_count();
  const std::size_t blocks =
      (config.snapshots + kBlockSnapshots - 1) / kBlockSnapshots;

  LossModel loss_model(config.tl);
  const std::vector<double> tp = path_thresholds(loss_model, paths);

  SimulationResult result;
  result.snapshots = config.snapshots;
  result.link_congested_count.assign(links, 0);
  PathObservations obs(paths.size(), config.snapshots);

  const double packets = static_cast<double>(config.packets_per_path);
  std::vector<std::uint8_t> states;
  std::vector<double> loss(links);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t first = b * kBlockSnapshots;
    const std::size_t count =
        std::min(kBlockSnapshots, config.snapshots - first);
    Rng rng(mix_seed(config.seed, kBlockSeedTag + b));
    states.assign(count * links, 0);
    model.sample_block(rng, count, states.data());
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint8_t* state = states.data() + i * links;
      for (std::size_t k = 0; k < links; ++k) {
        result.link_congested_count[k] += state[k];
      }
      for (std::size_t k = 0; k < links; ++k) {
        loss[k] = loss_model.sample_loss_rate(rng, state[k] != 0);
      }
      for (std::size_t p = 0; p < paths.size(); ++p) {
        double survival = 1.0;
        for (graph::LinkId k : paths[p].links()) {
          survival *= 1.0 - loss[k];
        }
        const double threshold = good_threshold(config.packets_per_path, tp[p]);
        bool good;
        const int fate = classify_fate(packets, survival, threshold);
        if (fate != 0) {
          good = fate > 0;
        } else {
          const double delivered = static_cast<double>(
              rng.binomial(config.packets_per_path, survival));
          good = delivered >= threshold;
        }
        if (!good) {
          obs.set_congested(p, first + i);
        }
      }
    }
  }
  result.measurement = MeasurementBlock::from_observations(obs);
  return result;
}

/// The pre-batching engines, preserved verbatim: one RNG stream advanced
/// across all snapshots (golden baselines pin kBinomial to this stream).
SimulationResult simulate_legacy(const graph::Graph& g,
                                 const std::vector<graph::Path>& paths,
                                 const corr::CongestionModel& model,
                                 const SimulatorConfig& config) {
  LossModel loss_model(config.tl);
  Rng rng(config.seed);

  SimulationResult result;
  result.snapshots = config.snapshots;
  result.link_congested_count.assign(g.link_count(), 0);
  PathObservations observations(paths.size(), config.snapshots);

  const std::vector<double> tp = path_thresholds(loss_model, paths);

  std::vector<double> loss(g.link_count(), 0.0);
  for (std::size_t n = 0; n < config.snapshots; ++n) {
    const std::vector<std::uint8_t> state = model.sample(rng);
    TOMO_ASSERT(state.size() == g.link_count());
    for (graph::LinkId k = 0; k < g.link_count(); ++k) {
      result.link_congested_count[k] += state[k];
    }

    if (config.mode == PacketMode::kExact) {
      for (std::size_t p = 0; p < paths.size(); ++p) {
        for (graph::LinkId k : paths[p].links()) {
          if (state[k]) {
            observations.set_congested(p, n);
            break;
          }
        }
      }
      continue;
    }

    for (graph::LinkId k = 0; k < g.link_count(); ++k) {
      loss[k] = loss_model.sample_loss_rate(rng, state[k] != 0);
    }

    for (std::size_t p = 0; p < paths.size(); ++p) {
      const std::size_t sent = config.packets_per_path;
      std::size_t delivered = 0;
      if (config.mode == PacketMode::kBinomial) {
        double survival = 1.0;
        for (graph::LinkId k : paths[p].links()) {
          survival *= 1.0 - loss[k];
        }
        delivered = static_cast<std::size_t>(rng.binomial(sent, survival));
      } else {  // kPerPacket
        for (std::size_t packet = 0; packet < sent; ++packet) {
          bool alive = true;
          for (graph::LinkId k : paths[p].links()) {
            if (rng.bernoulli(loss[k])) {
              alive = false;
              break;
            }
          }
          delivered += alive ? 1 : 0;
        }
      }
      const double measured_loss =
          1.0 - static_cast<double>(delivered) / static_cast<double>(sent);
      if (measured_loss > tp[p]) {
        observations.set_congested(p, n);
      }
    }
  }
  result.measurement = MeasurementBlock::from_observations(observations);
  return result;
}

}  // namespace

std::string to_string(PacketMode mode) {
  switch (mode) {
    case PacketMode::kBatched:
      return "batched";
    case PacketMode::kBinomial:
      return "binomial";
    case PacketMode::kPerPacket:
      return "per-packet";
    case PacketMode::kExact:
      return "exact";
    case PacketMode::kBatchedReference:
      return "batched-ref";
  }
  TOMO_REQUIRE(false, "unknown packet mode");
}

PacketMode parse_packet_mode(const std::string& name) {
  if (name == "batched") return PacketMode::kBatched;
  if (name == "binomial") return PacketMode::kBinomial;
  if (name == "per-packet") return PacketMode::kPerPacket;
  if (name == "exact") return PacketMode::kExact;
  if (name == "batched-ref") return PacketMode::kBatchedReference;
  TOMO_REQUIRE(false, "unknown packet mode '" + name +
                          "' (batched|binomial|per-packet|exact|batched-ref)");
}

SimulationResult simulate(const graph::Graph& g,
                          const std::vector<graph::Path>& paths,
                          const corr::CongestionModel& model,
                          const SimulatorConfig& config) {
  TOMO_REQUIRE(!paths.empty(), "simulate: no paths");
  TOMO_REQUIRE(model.link_count() == g.link_count(),
               "simulate: model link count does not match the graph");
  TOMO_REQUIRE(config.snapshots > 0, "simulate: need at least one snapshot");
  TOMO_REQUIRE(config.packets_per_path > 0 ||
                   config.mode == PacketMode::kExact,
               "simulate: need at least one packet per path");

  switch (config.mode) {
    case PacketMode::kBatched:
      return simulate_batched(g, paths, model, config);
    case PacketMode::kBatchedReference:
      return simulate_batched_reference(g, paths, model, config);
    case PacketMode::kBinomial:
    case PacketMode::kPerPacket:
    case PacketMode::kExact:
      return simulate_legacy(g, paths, model, config);
  }
  TOMO_REQUIRE(false, "unknown packet mode");
}

}  // namespace tomo::sim
