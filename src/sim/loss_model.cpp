#include "sim/loss_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tomo::sim {

LossModel::LossModel(double tl) : tl_(tl) {
  TOMO_REQUIRE(tl > 0.0 && tl < 1.0, "link threshold tl must be in (0,1)");
}

double LossModel::sample_loss_rate(Rng& rng, bool congested) const {
  if (congested) {
    return rng.uniform(tl_, 1.0);
  }
  return rng.uniform(0.0, tl_);
}

double LossModel::path_threshold(std::size_t length) const {
  TOMO_REQUIRE(length > 0, "path threshold of an empty path");
  return 1.0 - std::pow(1.0 - tl_, static_cast<double>(length));
}

}  // namespace tomo::sim
