// Measurement providers: the algorithms' only window onto the network.
//
// Both tomography algorithms consume probabilities of path-set goodness;
// the theorem algorithm additionally consumes exact congested-path-pattern
// probabilities. MeasurementProvider abstracts over where those numbers
// come from: empirical snapshot counts (EmpiricalMeasurement) or the exact
// ground-truth model (OracleMeasurement in oracle.hpp), which isolates
// algorithmic error from sampling error in tests and ablations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "graph/coverage.hpp"
#include "sim/measurement_block.hpp"
#include "sim/snapshot.hpp"

namespace tomo::sim {

class MeasurementProvider {
 public:
  virtual ~MeasurementProvider() = default;

  virtual std::size_t path_count() const = 0;

  /// P(every path in `paths` is good); 1 for the empty set. The span is the
  /// one virtual entry point — callers with a vector or a braced list go
  /// through the forwarding overloads below, so no query ever materializes
  /// a temporary vector on the provider side.
  virtual double all_good_prob(std::span<const PathId> paths) const = 0;

  double all_good_prob(const std::vector<PathId>& paths) const {
    return all_good_prob(std::span<const PathId>(paths));
  }
  double all_good_prob(std::initializer_list<PathId> paths) const {
    return all_good_prob(std::span<const PathId>(paths.begin(), paths.size()));
  }

  /// P(the congested-path set is exactly `pattern`).
  virtual double exact_pattern_prob(const PathIdSet& pattern) const = 0;

  /// Number of snapshots backing the estimates (0 = exact oracle).
  virtual std::size_t sample_count() const = 0;

  /// P(path `p` good) and P(both paths good). These are the equation
  /// harvest's two hot queries; providers with a cheaper route than the
  /// general set query (EmpiricalMeasurement's bitmask rows) override them.
  /// The defaults stage the query on the stack — no heap traffic.
  virtual double good_prob(PathId p) const {
    const PathId one[1] = {p};
    return all_good_prob(std::span<const PathId>(one, 1));
  }
  virtual double pair_good_prob(PathId a, PathId b) const {
    const PathId two[2] = {a, b};
    return all_good_prob(std::span<const PathId>(two, 2));
  }
};

/// Estimates from path-major good-snapshot bitmasks.
///
/// The canonical constructor adopts the simulator's MeasurementBlock as-is —
/// no re-packing, no reference to keep alive — so the harvest's
/// pair_good_prob(p, q) is a word-wise AND + popcount over the two rows.
/// Observation-based constructors pack the complement rows once and own the
/// result. The scalar-reference constructor instead copies the observations
/// and answers every query by re-scanning them: an independent
/// implementation of the same counts, kept for differential tests.
class EmpiricalMeasurement final : public MeasurementProvider {
 public:
  /// Adopts the simulator's block directly (zero-copy hand-off).
  explicit EmpiricalMeasurement(MeasurementBlock block);

  /// Packs `obs` into an owned bitmask block; `obs` may die afterwards.
  explicit EmpiricalMeasurement(const PathObservations& obs);

  /// `use_bitset_cache = false` selects the scalar reference implementation
  /// (owned copy of `obs`, per-query scans); `true` is the packing ctor.
  EmpiricalMeasurement(const PathObservations& obs, bool use_bitset_cache);

  using MeasurementProvider::all_good_prob;

  std::size_t path_count() const override;
  double all_good_prob(std::span<const PathId> paths) const override;
  double exact_pattern_prob(const PathIdSet& pattern) const override;
  std::size_t sample_count() const override;

  double good_prob(PathId p) const override;
  double pair_good_prob(PathId a, PathId b) const override;

  /// Number of snapshots in which path `p` was good (exact count, not a
  /// ratio — used by callers that compare against sample_count()).
  std::size_t good_count(PathId p) const;

  bool uses_bitset_cache() const { return scalar_obs_ == nullptr; }

  /// The underlying block (empty in scalar-reference mode).
  const MeasurementBlock& block() const { return block_; }

 private:
  MeasurementBlock block_;
  // Scalar reference mode only: owned observation copy; all queries scan it.
  std::unique_ptr<PathObservations> scalar_obs_;
};

}  // namespace tomo::sim
