// Measurement providers: the algorithms' only window onto the network.
//
// Both tomography algorithms consume probabilities of path-set goodness;
// the theorem algorithm additionally consumes exact congested-path-pattern
// probabilities. MeasurementProvider abstracts over where those numbers
// come from: empirical snapshot counts (EmpiricalMeasurement) or the exact
// ground-truth model (OracleMeasurement in oracle.hpp), which isolates
// algorithmic error from sampling error in tests and ablations.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/coverage.hpp"
#include "sim/snapshot.hpp"

namespace tomo::sim {

class MeasurementProvider {
 public:
  virtual ~MeasurementProvider() = default;

  virtual std::size_t path_count() const = 0;

  /// P(every path in `paths` is good); 1 for the empty set.
  virtual double all_good_prob(const std::vector<PathId>& paths) const = 0;

  /// P(the congested-path set is exactly `pattern`).
  virtual double exact_pattern_prob(const PathIdSet& pattern) const = 0;

  /// Number of snapshots backing the estimates (0 = exact oracle).
  virtual std::size_t sample_count() const = 0;

  double good_prob(PathId p) const { return all_good_prob({p}); }
  double pair_good_prob(PathId a, PathId b) const {
    return all_good_prob({a, b});
  }
};

/// Estimates from bit-packed snapshot observations.
class EmpiricalMeasurement final : public MeasurementProvider {
 public:
  /// Keeps a reference; `obs` must outlive the measurement.
  explicit EmpiricalMeasurement(const PathObservations& obs);

  std::size_t path_count() const override { return obs_.path_count(); }
  double all_good_prob(const std::vector<PathId>& paths) const override;
  double exact_pattern_prob(const PathIdSet& pattern) const override;
  std::size_t sample_count() const override { return obs_.snapshot_count(); }

 private:
  const PathObservations& obs_;
};

}  // namespace tomo::sim
