// Measurement providers: the algorithms' only window onto the network.
//
// Both tomography algorithms consume probabilities of path-set goodness;
// the theorem algorithm additionally consumes exact congested-path-pattern
// probabilities. MeasurementProvider abstracts over where those numbers
// come from: empirical snapshot counts (EmpiricalMeasurement) or the exact
// ground-truth model (OracleMeasurement in oracle.hpp), which isolates
// algorithmic error from sampling error in tests and ablations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/coverage.hpp"
#include "sim/snapshot.hpp"

namespace tomo::sim {

class MeasurementProvider {
 public:
  virtual ~MeasurementProvider() = default;

  virtual std::size_t path_count() const = 0;

  /// P(every path in `paths` is good); 1 for the empty set.
  virtual double all_good_prob(const std::vector<PathId>& paths) const = 0;

  /// P(the congested-path set is exactly `pattern`).
  virtual double exact_pattern_prob(const PathIdSet& pattern) const = 0;

  /// Number of snapshots backing the estimates (0 = exact oracle).
  virtual std::size_t sample_count() const = 0;

  /// P(path `p` good) and P(both paths good). These are the equation
  /// harvest's two hot queries; providers with a cheaper route than the
  /// general set query (EmpiricalMeasurement's bitset cache) override them.
  virtual double good_prob(PathId p) const { return all_good_prob({p}); }
  virtual double pair_good_prob(PathId a, PathId b) const {
    return all_good_prob({a, b});
  }
};

/// Estimates from bit-packed snapshot observations.
///
/// Construction snapshots one good-mask bitset per path (the complement of
/// the congested row, tail bits cleared) plus its popcount, so the harvest's
/// pair_good_prob(p, q) is a word-wise AND + popcount over the two cached
/// masks — no per-query re-scan of the observation history and no temporary
/// path vectors. The cache is an exact view of the same bits, so every
/// count (and therefore every downstream metric) is identical to the scalar
/// path, which `use_bitset_cache = false` keeps available as a reference
/// implementation for differential tests.
class EmpiricalMeasurement final : public MeasurementProvider {
 public:
  /// Keeps a reference; `obs` must outlive the measurement.
  explicit EmpiricalMeasurement(const PathObservations& obs,
                                bool use_bitset_cache = true);

  std::size_t path_count() const override { return obs_.path_count(); }
  double all_good_prob(const std::vector<PathId>& paths) const override;
  double exact_pattern_prob(const PathIdSet& pattern) const override;
  std::size_t sample_count() const override { return obs_.snapshot_count(); }

  double good_prob(PathId p) const override;
  double pair_good_prob(PathId a, PathId b) const override;

  bool uses_bitset_cache() const { return !good_bits_.empty(); }

 private:
  const std::uint64_t* good_row(PathId p) const {
    return good_bits_.data() + p * obs_.words_per_path();
  }

  const PathObservations& obs_;
  // Good-snapshot bitmask per path (bit n = path good in snapshot n),
  // path-major; empty when the scalar reference path is requested.
  std::vector<std::uint64_t> good_bits_;
  std::vector<std::size_t> good_counts_;  // popcount(good_row(p)) per path
};

}  // namespace tomo::sim
