// Packet-loss model (paper §5, following Padmanabhan et al. [13]).
//
// Good links draw a per-snapshot loss rate uniformly from (0, tl]; congested
// links from (tl, 1]. A path of d links is flagged congested when its
// measured loss rate exceeds tp = 1 - (1 - tl)^d (paper §2.1), with
// tl = 0.01 by default as proposed by Duffield [10].
#pragma once

#include <cstddef>

#include "util/rng.hpp"

namespace tomo::sim {

class LossModel {
 public:
  explicit LossModel(double tl = 0.01);

  double tl() const { return tl_; }

  /// Per-snapshot loss rate of a link with the given congestion status.
  double sample_loss_rate(Rng& rng, bool congested) const;

  /// Path congestion threshold tp for a path of `length` links.
  double path_threshold(std::size_t length) const;

 private:
  double tl_;
};

}  // namespace tomo::sim
