// Text serialization of path observations.
//
// Lets a deployment decouple measurement from inference: the prober
// records one congested/good bit per (path, snapshot) and ships the file;
// `tomo_cli infer` consumes it later. Format (line oriented, '#'
// comments):
//
//   tomo-observations v1
//   paths <P> snapshots <N>
//   congested <path-id> <snapshot-id>...   # one line per path with >=1
//                                          # congested snapshot
#pragma once

#include <iosfwd>
#include <string>

#include "sim/snapshot.hpp"

namespace tomo::sim {

void write_observations(std::ostream& os, const PathObservations& obs);
PathObservations read_observations(std::istream& is);

void save_observations(const std::string& filename,
                       const PathObservations& obs);
PathObservations load_observations(const std::string& filename);

}  // namespace tomo::sim
