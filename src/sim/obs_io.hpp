// Text serialization of path observations.
//
// Lets a deployment decouple measurement from inference: the prober
// records one congested/good bit per (path, snapshot) and ships the file;
// `tomo_cli infer` consumes it later. Format (line oriented, '#'
// comments):
//
//   tomo-observations v1
//   paths <P> snapshots <N>
//   congested <path-id> <snapshot-id>...   # one line per path with >=1
//                                          # congested snapshot
#pragma once

#include <iosfwd>
#include <string>

#include "sim/measurement_block.hpp"
#include "sim/snapshot.hpp"

namespace tomo::sim {

void write_observations(std::ostream& os, const PathObservations& obs);
PathObservations read_observations(std::istream& is);

void save_observations(const std::string& filename,
                       const PathObservations& obs);
PathObservations load_observations(const std::string& filename);

/// MeasurementBlock overloads: byte-identical file output to the
/// PathObservations writer on the equivalent data (observations are the
/// exact bit complement of the good-bit rows, ragged tails included), so
/// simulator output and daemon replay inputs round-trip bit-for-bit.
void write_observations(std::ostream& os, const MeasurementBlock& block);
MeasurementBlock read_observation_block(std::istream& is);

void save_observations(const std::string& filename,
                       const MeasurementBlock& block);
MeasurementBlock load_observation_block(const std::string& filename);

}  // namespace tomo::sim
