#include "sim/obs_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "util/error.hpp"

namespace tomo::sim {

void write_observations(std::ostream& os, const PathObservations& obs) {
  os << "tomo-observations v1\n";
  os << "paths " << obs.path_count() << " snapshots "
     << obs.snapshot_count() << '\n';
  for (PathId p = 0; p < obs.path_count(); ++p) {
    bool any = false;
    for (std::size_t n = 0; n < obs.snapshot_count(); ++n) {
      if (obs.congested(p, n)) {
        if (!any) {
          os << "congested " << p;
          any = true;
        }
        os << ' ' << n;
      }
    }
    if (any) os << '\n';
  }
}

PathObservations read_observations(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) -> void {
    throw Error("observations line " + std::to_string(line_no) + ": " +
                what);
  };

  bool have_header = false;
  std::optional<PathObservations> obs;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (!have_header) {
      std::string version;
      if (tag != "tomo-observations" || !(ls >> version) ||
          version != "v1") {
        fail("expected header 'tomo-observations v1'");
      }
      have_header = true;
      continue;
    }
    if (tag == "paths") {
      std::size_t paths = 0, snapshots = 0;
      std::string snap_tag;
      if (!(ls >> paths >> snap_tag >> snapshots) ||
          snap_tag != "snapshots") {
        fail("malformed dimension line");
      }
      if (obs.has_value()) fail("duplicate dimension line");
      if (paths == 0 || snapshots == 0) fail("empty observation matrix");
      obs.emplace(paths, snapshots);
    } else if (tag == "congested") {
      if (!obs.has_value()) fail("congested line before dimensions");
      std::size_t p;
      if (!(ls >> p)) fail("malformed congested line");
      if (p >= obs->path_count()) fail("path id out of range");
      std::size_t n;
      while (ls >> n) {
        if (n >= obs->snapshot_count()) fail("snapshot id out of range");
        obs->set_congested(p, n);
      }
    } else {
      fail("unknown tag '" + tag + "'");
    }
  }
  TOMO_REQUIRE(have_header, "observation file is empty or missing header");
  TOMO_REQUIRE(obs.has_value(), "observation file has no dimension line");
  return *std::move(obs);
}

void write_observations(std::ostream& os, const MeasurementBlock& block) {
  TOMO_REQUIRE(!block.empty(), "cannot serialize an empty measurement block");
  os << "tomo-observations v1\n";
  os << "paths " << block.path_count << " snapshots " << block.snapshot_count
     << '\n';
  for (PathId p = 0; p < block.path_count; ++p) {
    const std::uint64_t* good = block.good_row(p);
    bool any = false;
    for (std::size_t n = 0; n < block.snapshot_count; ++n) {
      // Congested = the good bit is clear (exact complement of the rows).
      if ((good[n / 64] >> (n % 64)) & 1) continue;
      if (!any) {
        os << "congested " << p;
        any = true;
      }
      os << ' ' << n;
    }
    if (any) os << '\n';
  }
}

MeasurementBlock read_observation_block(std::istream& is) {
  return MeasurementBlock::from_observations(read_observations(is));
}

void save_observations(const std::string& filename,
                       const PathObservations& obs) {
  std::ofstream os(filename);
  TOMO_REQUIRE(os.good(), "cannot open " + filename + " for writing");
  write_observations(os, obs);
  TOMO_REQUIRE(os.good(), "failed writing " + filename);
}

void save_observations(const std::string& filename,
                       const MeasurementBlock& block) {
  std::ofstream os(filename);
  TOMO_REQUIRE(os.good(), "cannot open " + filename + " for writing");
  write_observations(os, block);
  TOMO_REQUIRE(os.good(), "failed writing " + filename);
}

MeasurementBlock load_observation_block(const std::string& filename) {
  std::ifstream is(filename);
  TOMO_REQUIRE(is.good(), "cannot open " + filename);
  return read_observation_block(is);
}

PathObservations load_observations(const std::string& filename) {
  std::ifstream is(filename);
  TOMO_REQUIRE(is.good(), "cannot open " + filename);
  return read_observations(is);
}

}  // namespace tomo::sim
