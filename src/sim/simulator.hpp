// The snapshot simulator (paper §5, "Simulator").
//
// Each round: (1) draw the congested-link set from the ground-truth
// CongestionModel, (2) assign each link a loss rate from the LossModel,
// (3) send packets along every path and measure its loss rate, (4) flag the
// path congested when the measured rate exceeds tp.
//
// Packet transmission modes:
//   kBinomial  — per path, delivered ~ Binomial(n, Π(1-loss_k)); exactly
//                equivalent to independent per-packet fates, and fast.
//   kPerPacket — literal per-packet Bernoulli walk along the links; used in
//                tests to validate kBinomial, and for small studies.
//   kExact     — no packet noise: a path is congested iff one of its links
//                is (separability applied directly); isolates estimation
//                error from packet-sampling error.
#pragma once

#include <cstdint>
#include <vector>

#include "corr/correlation.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "sim/loss_model.hpp"
#include "sim/snapshot.hpp"
#include "util/rng.hpp"

namespace tomo::sim {

enum class PacketMode { kBinomial, kPerPacket, kExact };

struct SimulatorConfig {
  std::size_t snapshots = 1000;
  std::size_t packets_per_path = 1000;
  PacketMode mode = PacketMode::kBinomial;
  double tl = 0.01;
  std::uint64_t seed = 1;
};

struct SimulationResult {
  PathObservations observations;
  // Empirical per-link congestion counts (ground truth bookkeeping, used
  // for diagnostics and tests; the algorithms never see it).
  std::vector<std::size_t> link_congested_count;
  std::size_t snapshots = 0;
};

/// Runs the experiment and returns per-path congestion observations.
SimulationResult simulate(const graph::Graph& g,
                          const std::vector<graph::Path>& paths,
                          const corr::CongestionModel& model,
                          const SimulatorConfig& config);

}  // namespace tomo::sim
