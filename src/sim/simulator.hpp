// The snapshot simulator (paper §5, "Simulator").
//
// Each round: (1) draw the congested-link set from the ground-truth
// CongestionModel, (2) assign each link a loss rate from the LossModel,
// (3) send packets along every path and measure its loss rate, (4) flag the
// path congested when the measured rate exceeds tp.
//
// Packet transmission modes:
//   kBatched   — default. Snapshots are generated in independent 64-snapshot
//                blocks (one good-bit word per path per block): each block
//                derives its own RNG stream from mix_seed(seed, tag + block)
//                and writes disjoint words of the MeasurementBlock, so
//                blocks run in parallel across `jobs` workers with output
//                bit-identical for any job count. Per-path delivery is
//                binomial, with an 8-sigma deterministic-fate shortcut that
//                skips the draw when the verdict is certain. Bursty models
//                restart their chains per block (see
//                CongestionModel::sample_block).
//   kBatchedReference — the same block semantics executed by an
//                independent scalar per-snapshot implementation (serial,
//                PathObservations writes, no CSR flattening); the batched
//                engine must match it bit for bit — the differential anchor.
//   kBinomial  — legacy per-snapshot single-stream engine: per path,
//                delivered ~ Binomial(n, Π(1-loss_k)); exactly equivalent
//                to independent per-packet fates. Golden baselines pin it.
//   kPerPacket — literal per-packet Bernoulli walk along the links; used in
//                tests to validate the binomial engines, and for small
//                studies.
//   kExact     — no packet noise: a path is congested iff one of its links
//                is (separability applied directly); isolates estimation
//                error from packet-sampling error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corr/correlation.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "sim/loss_model.hpp"
#include "sim/measurement_block.hpp"
#include "sim/snapshot.hpp"
#include "util/rng.hpp"

namespace tomo::sim {

enum class PacketMode {
  kBatched,
  kBinomial,
  kPerPacket,
  kExact,
  kBatchedReference,
};

/// "batched", "binomial", "per-packet", "exact", "batched-ref".
std::string to_string(PacketMode mode);

/// Inverse of to_string; throws tomo::Error on unknown names.
PacketMode parse_packet_mode(const std::string& name);

struct SimulatorConfig {
  std::size_t snapshots = 1000;
  std::size_t packets_per_path = 1000;
  PacketMode mode = PacketMode::kBatched;
  double tl = 0.01;
  std::uint64_t seed = 1;
  /// Worker threads for the batched engine's block fan-out (0 = all
  /// hardware cores). Output is bit-identical for any value. Defaults to 1
  /// so nested parallelism (trial-level fan-out) stays oversubscription-free
  /// unless a caller explicitly hands the sim its own workers.
  std::size_t jobs = 1;
};

struct SimulationResult {
  /// Path-major good-snapshot bitmasks, produced directly by the simulator;
  /// EmpiricalMeasurement adopts it without re-packing.
  MeasurementBlock measurement;
  // Empirical per-link congestion counts (ground truth bookkeeping, used
  // for diagnostics and tests; the algorithms never see it). Accumulated by
  // a serial per-block merge in block order, so it is jobs-invariant.
  std::vector<std::size_t> link_congested_count;
  std::size_t snapshots = 0;

  /// Congested-bit view for serialization / bootstrap resampling.
  /// Materializes a copy — hot paths should consume `measurement` directly.
  PathObservations observations() const { return measurement.to_observations(); }
};

/// Runs the experiment and returns per-path congestion observations.
SimulationResult simulate(const graph::Graph& g,
                          const std::vector<graph::Path>& paths,
                          const corr::CongestionModel& model,
                          const SimulatorConfig& config);

}  // namespace tomo::sim
