// Oracle measurement: exact probabilities straight from the ground-truth
// model, under the separability assumption (a path is good iff all its
// links are). Removes both packet-sampling and snapshot-sampling noise, so
// tests can check algorithms against exact identities and ablations can
// separate estimation error from inference error.
#pragma once

#include <vector>

#include "corr/correlation.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"

namespace tomo::sim {

class OracleMeasurement final : public MeasurementProvider {
 public:
  /// Keeps references; both must outlive the oracle. `max_total_links`
  /// guards exact_pattern_prob(), whose state enumeration is exponential in
  /// the number of links.
  OracleMeasurement(const corr::CongestionModel& model,
                    const graph::CoverageIndex& coverage,
                    std::size_t max_total_links = 24);

  using MeasurementProvider::all_good_prob;

  std::size_t path_count() const override { return coverage_.path_count(); }
  double all_good_prob(std::span<const PathId> paths) const override;
  double exact_pattern_prob(const PathIdSet& pattern) const override;
  std::size_t sample_count() const override { return 0; }

 private:
  const corr::CongestionModel& model_;
  const graph::CoverageIndex& coverage_;
  std::size_t max_total_links_;
};

}  // namespace tomo::sim
