#include "sim/snapshot.hpp"

#include <bit>

#include "util/error.hpp"

namespace tomo::sim {

PathObservations::PathObservations(std::size_t path_count,
                                   std::size_t snapshot_count)
    : path_count_(path_count), snapshot_count_(snapshot_count) {
  TOMO_REQUIRE(path_count > 0, "observations need at least one path");
  TOMO_REQUIRE(snapshot_count > 0, "observations need at least one snapshot");
  bits_.assign(path_count * words_per_path(), 0);
}

const std::uint64_t* PathObservations::row(PathId p) const {
  TOMO_REQUIRE(p < path_count_, "path id out of range");
  return bits_.data() + p * words_per_path();
}

std::uint64_t* PathObservations::row(PathId p) {
  TOMO_REQUIRE(p < path_count_, "path id out of range");
  return bits_.data() + p * words_per_path();
}

void PathObservations::set_congested(PathId p, std::size_t n) {
  TOMO_REQUIRE(n < snapshot_count_, "snapshot index out of range");
  row(p)[n / 64] |= std::uint64_t{1} << (n % 64);
}

void PathObservations::assign_congested_row(PathId p,
                                            const std::uint64_t* words) {
  const std::size_t count = words_per_path();
  const std::size_t tail = snapshot_count_ % 64;
  if (tail != 0) {
    TOMO_REQUIRE((words[count - 1] & ~((std::uint64_t{1} << tail) - 1)) == 0,
                 "congested row has bits beyond snapshot_count");
  }
  std::uint64_t* r = row(p);
  for (std::size_t w = 0; w < count; ++w) r[w] = words[w];
}

bool PathObservations::congested(PathId p, std::size_t n) const {
  TOMO_REQUIRE(n < snapshot_count_, "snapshot index out of range");
  return (row(p)[n / 64] >> (n % 64)) & 1;
}

std::size_t PathObservations::good_count(PathId p) const {
  const std::uint64_t* r = row(p);
  std::size_t congested = 0;
  for (std::size_t w = 0; w < words_per_path(); ++w) {
    congested += static_cast<std::size_t>(std::popcount(r[w]));
  }
  return snapshot_count_ - congested;
}

std::size_t PathObservations::both_good_count(PathId a, PathId b) const {
  const std::uint64_t* ra = row(a);
  const std::uint64_t* rb = row(b);
  std::size_t either = 0;
  for (std::size_t w = 0; w < words_per_path(); ++w) {
    either += static_cast<std::size_t>(std::popcount(ra[w] | rb[w]));
  }
  return snapshot_count_ - either;
}

std::size_t PathObservations::all_good_count(
    const std::vector<PathId>& paths) const {
  if (paths.empty()) return snapshot_count_;
  std::vector<std::uint64_t> acc(row(paths[0]),
                                 row(paths[0]) + words_per_path());
  for (std::size_t i = 1; i < paths.size(); ++i) {
    const std::uint64_t* r = row(paths[i]);
    for (std::size_t w = 0; w < acc.size(); ++w) {
      acc[w] |= r[w];
    }
  }
  std::size_t congested_any = 0;
  for (std::uint64_t word : acc) {
    congested_any += static_cast<std::size_t>(std::popcount(word));
  }
  return snapshot_count_ - congested_any;
}

std::size_t PathObservations::exact_pattern_count(
    const PathIdSet& pattern) const {
  // A snapshot matches iff every path in `pattern` is congested and every
  // other path is good: AND over pattern rows of congested bits, AND over
  // complement rows of good bits. Accumulate word-wise.
  const std::size_t words = words_per_path();
  std::vector<std::uint64_t> match(words, ~std::uint64_t{0});
  std::vector<std::uint8_t> in_pattern(path_count_, 0);
  for (PathId p : pattern) {
    TOMO_REQUIRE(p < path_count_, "pattern path id out of range");
    in_pattern[p] = 1;
  }
  for (PathId p = 0; p < path_count_; ++p) {
    const std::uint64_t* r = row(p);
    if (in_pattern[p]) {
      for (std::size_t w = 0; w < words; ++w) match[w] &= r[w];
    } else {
      for (std::size_t w = 0; w < words; ++w) match[w] &= ~r[w];
    }
  }
  // Mask the tail bits beyond snapshot_count_ (they are zero in rows, hence
  // complement rows set them; clear explicitly).
  const std::size_t tail = snapshot_count_ % 64;
  if (tail != 0) {
    match[words - 1] &= (std::uint64_t{1} << tail) - 1;
  }
  std::size_t count = 0;
  for (std::uint64_t word : match) {
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

}  // namespace tomo::sim
