// The simulator → measurement hand-off: path-major good-snapshot bitmasks.
//
// The equation harvest only ever consumes snapshot observations as per-path
// good-bit words (AND + popcount over pairs). MeasurementBlock is exactly
// that representation — one bitmask row per path (bit n = path good in
// snapshot n, tail bits beyond snapshot_count cleared) plus the per-path
// popcounts — produced directly by the batched simulator and adopted by
// EmpiricalMeasurement without any re-packing. PathObservations (the
// congested-bit view used by serialization and bootstrap resampling) is
// derivable in either direction; conversions are exact bit complements, so
// every downstream count is identical whichever side produced the data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/path.hpp"
#include "sim/snapshot.hpp"

namespace tomo::sim {

/// Reusable scratch for MeasurementBlock::resample. Holds the
/// snapshot-major bit transpose of the source block — rebuilt only when
/// the source changes, so a bootstrap replicate loop pays the transpose
/// once — plus the snapshot-major gather buffer, so repeat calls allocate
/// nothing after warm-up. A scratch may be reused across source blocks
/// (it re-keys on the source's data pointer and shape) but must not be
/// shared across threads.
struct ResampleScratch {
  std::vector<std::uint64_t> snap_major;  // cached source transpose
  std::vector<std::uint64_t> gathered;    // per-call snapshot-major output
  const std::uint64_t* cached_src = nullptr;
  std::size_t cached_paths = 0;
  std::size_t cached_snapshots = 0;
};

struct MeasurementBlock {
  std::size_t path_count = 0;
  std::size_t snapshot_count = 0;
  /// Path-major good-bit words: row p occupies words_per_path() entries
  /// starting at p * words_per_path(); tail bits are zero.
  std::vector<std::uint64_t> good_bits;
  /// popcount of row p (number of snapshots in which path p was good).
  std::vector<std::size_t> good_counts;

  bool empty() const { return path_count == 0; }

  std::size_t words_per_path() const { return (snapshot_count + 63) / 64; }

  const std::uint64_t* good_row(PathId p) const {
    return good_bits.data() + p * words_per_path();
  }
  std::uint64_t* good_row(PathId p) {
    return good_bits.data() + p * words_per_path();
  }

  /// All-good rows, tail bits cleared, counts = snapshot_count.
  static MeasurementBlock all_good(std::size_t path_count,
                                   std::size_t snapshot_count);

  /// Word whose bits cover snapshots [64*word_index, ...) — all-ones except
  /// for the final word of a row, where bits beyond snapshot_count clear.
  std::uint64_t word_mask(std::size_t word_index) const;

  /// Recomputes good_counts from good_bits (after direct bit writes).
  void recount();

  /// Splices `window` onto the end of this block (same path set; snapshot
  /// n of the window becomes snapshot snapshot_count + n here). Appending
  /// to an empty block copies the window. Bit-exact for any split: a block
  /// rebuilt by appending its own slices in order is identical, words,
  /// tail bits and counts included — the streaming ingestion contract.
  void append(const MeasurementBlock& window);

  /// Extracts snapshots [first, first + count) as a standalone block
  /// (tail bits cleared, counts recomputed).
  MeasurementBlock slice(std::size_t first, std::size_t count) const;

  /// Row selection: path i of the result is path `paths[i]` of this block
  /// (words copied verbatim — snapshot axis untouched, counts carried
  /// over). The sharded-inference hand-off: each shard's measurement is
  /// exactly the monolithic rows of its member paths, so per-path counts
  /// and pair AND+popcounts are bitwise identical to the full block's.
  MeasurementBlock select_paths(std::span<const PathId> paths) const;

  /// Bootstrap resample: snapshot i of the result is snapshot picks[i] of
  /// this block (picks drawn with replacement; every pick < snapshot_count).
  /// Runs bit-transposed: the block is transposed once into snapshot-major
  /// 64x64 tiles (cached in `scratch` across replicates), each pick then
  /// gathers a whole word row instead of one bit per path, and the result
  /// transposes back to path-major — every step a util::bitops kernel, so
  /// the bootstrap never goes through per-bit PathObservations writes and
  /// the output is bitwise identical across the scalar and SIMD tables.
  MeasurementBlock resample(std::span<const std::uint32_t> picks,
                            ResampleScratch& scratch) const;

  /// Convenience overload owning a throwaway scratch (one-off resamples;
  /// replicate loops should hoist a ResampleScratch instead).
  MeasurementBlock resample(std::span<const std::uint32_t> picks) const;

  /// Exact complement conversions (tail handling included).
  static MeasurementBlock from_observations(const PathObservations& obs);
  PathObservations to_observations() const;
};

}  // namespace tomo::sim
