#include "sim/estimator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tomo::sim {

LogProbEstimate log_estimate(double prob, std::size_t samples,
                             std::size_t min_good) {
  TOMO_REQUIRE(prob >= 0.0 && prob <= 1.0 + 1e-12,
               "probability estimate outside [0,1]");
  LogProbEstimate out;
  out.prob = prob;
  if (prob <= 0.0) {
    return out;  // unusable: log undefined
  }
  if (samples > 0) {
    const double good = prob * static_cast<double>(samples);
    if (good + 1e-9 < static_cast<double>(min_good)) {
      return out;  // unusable: too few supporting snapshots
    }
  }
  out.log_prob = std::log(prob);
  out.usable = true;
  return out;
}

}  // namespace tomo::sim
