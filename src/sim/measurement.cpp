#include "sim/measurement.hpp"

#include <bit>

#include "util/error.hpp"

namespace tomo::sim {

EmpiricalMeasurement::EmpiricalMeasurement(const PathObservations& obs,
                                           bool use_bitset_cache)
    : obs_(obs) {
  if (!use_bitset_cache) return;
  const std::size_t words = obs_.words_per_path();
  const std::size_t tail = obs_.snapshot_count() % 64;
  const std::uint64_t tail_mask =
      tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;
  good_bits_.resize(obs_.path_count() * words);
  good_counts_.resize(obs_.path_count());
  for (PathId p = 0; p < obs_.path_count(); ++p) {
    const std::uint64_t* congested = obs_.congested_words(p);
    std::uint64_t* good = good_bits_.data() + p * words;
    std::size_t count = 0;
    for (std::size_t w = 0; w < words; ++w) {
      good[w] = ~congested[w];
      if (w == words - 1) good[w] &= tail_mask;
      count += static_cast<std::size_t>(std::popcount(good[w]));
    }
    good_counts_[p] = count;
  }
}

double EmpiricalMeasurement::all_good_prob(
    const std::vector<PathId>& paths) const {
  if (paths.empty()) return 1.0;
  std::size_t count;
  if (paths.size() == 1) {
    return good_prob(paths[0]);
  } else if (paths.size() == 2) {
    return pair_good_prob(paths[0], paths[1]);
  } else {
    count = obs_.all_good_count(paths);
  }
  return static_cast<double>(count) /
         static_cast<double>(obs_.snapshot_count());
}

double EmpiricalMeasurement::good_prob(PathId p) const {
  TOMO_REQUIRE(p < obs_.path_count(), "path id out of range");
  const std::size_t count =
      uses_bitset_cache() ? good_counts_[p] : obs_.good_count(p);
  return static_cast<double>(count) /
         static_cast<double>(obs_.snapshot_count());
}

double EmpiricalMeasurement::pair_good_prob(PathId a, PathId b) const {
  TOMO_REQUIRE(a < obs_.path_count() && b < obs_.path_count(),
               "path id out of range");
  if (!uses_bitset_cache()) {
    return static_cast<double>(obs_.both_good_count(a, b)) /
           static_cast<double>(obs_.snapshot_count());
  }
  const std::uint64_t* ra = good_row(a);
  const std::uint64_t* rb = good_row(b);
  const std::size_t words = obs_.words_per_path();
  std::size_t both = 0;
  for (std::size_t w = 0; w < words; ++w) {
    both += static_cast<std::size_t>(std::popcount(ra[w] & rb[w]));
  }
  return static_cast<double>(both) /
         static_cast<double>(obs_.snapshot_count());
}

double EmpiricalMeasurement::exact_pattern_prob(
    const PathIdSet& pattern) const {
  return static_cast<double>(obs_.exact_pattern_count(pattern)) /
         static_cast<double>(obs_.snapshot_count());
}

}  // namespace tomo::sim
