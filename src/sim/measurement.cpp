#include "sim/measurement.hpp"

namespace tomo::sim {

EmpiricalMeasurement::EmpiricalMeasurement(const PathObservations& obs)
    : obs_(obs) {}

double EmpiricalMeasurement::all_good_prob(
    const std::vector<PathId>& paths) const {
  if (paths.empty()) return 1.0;
  std::size_t count;
  if (paths.size() == 1) {
    count = obs_.good_count(paths[0]);
  } else if (paths.size() == 2) {
    count = obs_.both_good_count(paths[0], paths[1]);
  } else {
    count = obs_.all_good_count(paths);
  }
  return static_cast<double>(count) /
         static_cast<double>(obs_.snapshot_count());
}

double EmpiricalMeasurement::exact_pattern_prob(
    const PathIdSet& pattern) const {
  return static_cast<double>(obs_.exact_pattern_count(pattern)) /
         static_cast<double>(obs_.snapshot_count());
}

}  // namespace tomo::sim
