#include "sim/measurement.hpp"

#include <bit>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace tomo::sim {

EmpiricalMeasurement::EmpiricalMeasurement(MeasurementBlock block)
    : block_(std::move(block)) {
  TOMO_REQUIRE(!block_.empty(), "empirical measurement needs observations");
  TOMO_REQUIRE(block_.good_counts.size() == block_.path_count,
               "measurement block is missing its popcounts");
}

EmpiricalMeasurement::EmpiricalMeasurement(const PathObservations& obs)
    : block_(MeasurementBlock::from_observations(obs)) {}

EmpiricalMeasurement::EmpiricalMeasurement(const PathObservations& obs,
                                           bool use_bitset_cache) {
  if (use_bitset_cache) {
    block_ = MeasurementBlock::from_observations(obs);
  } else {
    scalar_obs_ = std::make_unique<PathObservations>(obs);
  }
}

std::size_t EmpiricalMeasurement::path_count() const {
  return scalar_obs_ ? scalar_obs_->path_count() : block_.path_count;
}

std::size_t EmpiricalMeasurement::sample_count() const {
  return scalar_obs_ ? scalar_obs_->snapshot_count() : block_.snapshot_count;
}

std::size_t EmpiricalMeasurement::good_count(PathId p) const {
  TOMO_REQUIRE(p < path_count(), "path id out of range");
  return scalar_obs_ ? scalar_obs_->good_count(p) : block_.good_counts[p];
}

double EmpiricalMeasurement::all_good_prob(
    std::span<const PathId> paths) const {
  if (paths.empty()) return 1.0;
  if (paths.size() == 1) return good_prob(paths[0]);
  if (paths.size() == 2) return pair_good_prob(paths[0], paths[1]);
  if (scalar_obs_) {
    const std::vector<PathId> ids(paths.begin(), paths.end());
    return static_cast<double>(scalar_obs_->all_good_count(ids)) /
           static_cast<double>(scalar_obs_->snapshot_count());
  }
  // Multi-way AND+popcount through the kernel table; the row pointers
  // live on the stack for the typical small path sets.
  const std::uint64_t* stack_rows[16];
  std::vector<const std::uint64_t*> heap_rows;
  const std::uint64_t** rows = stack_rows;
  if (paths.size() > 16) {
    heap_rows.resize(paths.size());
    rows = heap_rows.data();
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    TOMO_REQUIRE(paths[i] < block_.path_count, "path id out of range");
    rows[i] = block_.good_row(paths[i]);
  }
  const std::size_t all = util::bitops::active().and_popcount_multi(
      rows, paths.size(), block_.words_per_path());
  return static_cast<double>(all) /
         static_cast<double>(block_.snapshot_count);
}

double EmpiricalMeasurement::good_prob(PathId p) const {
  return static_cast<double>(good_count(p)) /
         static_cast<double>(sample_count());
}

double EmpiricalMeasurement::pair_good_prob(PathId a, PathId b) const {
  TOMO_REQUIRE(a < path_count() && b < path_count(), "path id out of range");
  if (scalar_obs_) {
    return static_cast<double>(scalar_obs_->both_good_count(a, b)) /
           static_cast<double>(scalar_obs_->snapshot_count());
  }
  const std::size_t both = util::bitops::active().and_popcount(
      block_.good_row(a), block_.good_row(b), block_.words_per_path());
  return static_cast<double>(both) /
         static_cast<double>(block_.snapshot_count);
}

double EmpiricalMeasurement::exact_pattern_prob(
    const PathIdSet& pattern) const {
  if (scalar_obs_) {
    return static_cast<double>(scalar_obs_->exact_pattern_count(pattern)) /
           static_cast<double>(scalar_obs_->snapshot_count());
  }
  // A snapshot matches iff every pattern path is congested (~good) and
  // every other path is good: AND-accumulate over all rows.
  std::vector<std::uint8_t> in_pattern(block_.path_count, 0);
  for (PathId p : pattern) {
    TOMO_REQUIRE(p < block_.path_count, "pattern path id out of range");
    in_pattern[p] = 1;
  }
  const std::size_t words = block_.words_per_path();
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t match = block_.word_mask(w);
    for (PathId p = 0; p < block_.path_count; ++p) {
      const std::uint64_t good = block_.good_row(p)[w];
      match &= in_pattern[p] ? ~good : good;
    }
    count += static_cast<std::size_t>(std::popcount(match));
  }
  return static_cast<double>(count) /
         static_cast<double>(block_.snapshot_count);
}

}  // namespace tomo::sim
