// Log-probability estimates for the equation right-hand sides.
//
// The §4 algorithm works with y = log P(paths good). An empirical
// probability of zero (the paths were never simultaneously good during the
// experiment) has no usable logarithm; such equations are flagged unusable
// and dropped by the equation builder, as are estimates backed by too few
// good snapshots to be trustworthy.
#pragma once

#include <cstddef>

#include "util/stats.hpp"

namespace tomo::sim {

struct LogProbEstimate {
  double log_prob = 0.0;   // log of the estimated probability
  double prob = 0.0;       // the estimated probability itself
  bool usable = false;     // false when prob == 0 (or below min_good)
};

/// Converts an estimated probability (and the snapshot count backing it)
/// into a usable log estimate. `min_good` is the minimum number of good
/// snapshots required; estimates from an exact oracle pass `samples = 0`
/// and are usable whenever prob > 0.
LogProbEstimate log_estimate(double prob, std::size_t samples,
                             std::size_t min_good = 1);

}  // namespace tomo::sim
