#include "sim/measurement_block.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/error.hpp"

namespace tomo::sim {

namespace {

using util::bitops::Kernels;

/// Words per snapshot-major row (one bit per path).
std::size_t path_words_of(std::size_t path_count) {
  return (path_count + 63) / 64;
}

/// Transposes the path-major block into snapshot-major rows of
/// `path_words` words, 64x64 tile by tile, zero-padding ragged path and
/// snapshot tiles. `out` is sized to a whole number of snapshot tiles so
/// every tile transpose reads and writes full rows; the padded snapshot
/// rows start zero (path-major tail bits are clear by contract) and the
/// padded path bits are staged through a zeroed tile buffer.
void transpose_to_snapshot_major(const MeasurementBlock& block,
                                 const Kernels& k,
                                 std::vector<std::uint64_t>& out) {
  const std::size_t path_words = path_words_of(block.path_count);
  const std::size_t snap_words = block.words_per_path();
  out.assign(snap_words * 64 * path_words, 0);
  std::uint64_t tile[64];
  for (std::size_t pt = 0; pt < path_words; ++pt) {
    const std::size_t first_path = pt * 64;
    const std::size_t rows =
        std::min<std::size_t>(64, block.path_count - first_path);
    for (std::size_t st = 0; st < snap_words; ++st) {
      std::uint64_t* dst = out.data() + st * 64 * path_words + pt;
      if (rows == 64) {
        k.transpose64x64(
            block.good_bits.data() + first_path * snap_words + st,
            snap_words, dst, path_words);
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          tile[r] = block.good_bits[(first_path + r) * snap_words + st];
        }
        std::fill(tile + rows, tile + 64, 0);
        k.transpose64x64(tile, 1, dst, path_words);
      }
    }
  }
}

}  // namespace

MeasurementBlock MeasurementBlock::all_good(std::size_t path_count,
                                            std::size_t snapshot_count) {
  TOMO_REQUIRE(path_count > 0, "measurement block needs at least one path");
  TOMO_REQUIRE(snapshot_count > 0,
               "measurement block needs at least one snapshot");
  MeasurementBlock block;
  block.path_count = path_count;
  block.snapshot_count = snapshot_count;
  const std::size_t words = block.words_per_path();
  block.good_bits.assign(path_count * words, ~std::uint64_t{0});
  const std::uint64_t tail = block.word_mask(words - 1);
  for (PathId p = 0; p < path_count; ++p) {
    block.good_row(p)[words - 1] = tail;
  }
  block.good_counts.assign(path_count, snapshot_count);
  return block;
}

std::uint64_t MeasurementBlock::word_mask(std::size_t word_index) const {
  if (word_index + 1 < words_per_path() || snapshot_count % 64 == 0) {
    return ~std::uint64_t{0};
  }
  return (std::uint64_t{1} << (snapshot_count % 64)) - 1;
}

void MeasurementBlock::recount() {
  const util::bitops::Kernels& k = util::bitops::active();
  const std::size_t words = words_per_path();
  good_counts.assign(path_count, 0);
  for (PathId p = 0; p < path_count; ++p) {
    good_counts[p] = k.popcount(good_row(p), words);
  }
}

void MeasurementBlock::append(const MeasurementBlock& window) {
  TOMO_REQUIRE(!window.empty(), "cannot append an empty measurement window");
  if (empty()) {
    *this = window;
    return;
  }
  TOMO_REQUIRE(window.path_count == path_count,
               "appended window has a different path count");

  const util::bitops::Kernels& k = util::bitops::active();
  const std::size_t old_count = snapshot_count;
  const std::size_t old_words = words_per_path();
  const std::size_t window_words = window.words_per_path();
  const std::size_t new_count = old_count + window.snapshot_count;
  const std::size_t new_words = (new_count + 63) / 64;
  const std::size_t base = old_count / 64;
  const unsigned shift = static_cast<unsigned>(old_count % 64);

  std::vector<std::uint64_t> merged(path_count * new_words, 0);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* old_row = good_bits.data() + p * old_words;
    const std::uint64_t* win_row = window.good_row(p);
    std::uint64_t* row = merged.data() + p * new_words;
    k.copy_words(row, old_row, old_words);
    if (shift == 0) {
      // The old block ended on a word boundary: the window's words land
      // verbatim (the destination words are still zero).
      k.copy_words(row + base, win_row, window_words);
    } else {
      k.shift_or(row + base, win_row, window_words, shift);
      // The final word's spill of high bits into the next word; absent
      // when the merged block ends inside the splice's last word.
      if (base + window_words < new_words) {
        row[base + window_words] |=
            win_row[window_words - 1] >> (64 - shift);
      }
    }
    good_counts[p] += window.good_counts[p];
  }
  good_bits = std::move(merged);
  snapshot_count = new_count;
}

MeasurementBlock MeasurementBlock::slice(std::size_t first,
                                         std::size_t count) const {
  TOMO_REQUIRE(count > 0, "cannot slice an empty snapshot range");
  TOMO_REQUIRE(first + count <= snapshot_count,
               "slice range exceeds the block's snapshots");
  const util::bitops::Kernels& k = util::bitops::active();
  MeasurementBlock out;
  out.path_count = path_count;
  out.snapshot_count = count;
  const std::size_t src_words = words_per_path();
  const std::size_t out_words = out.words_per_path();
  const std::size_t base = first / 64;
  const unsigned shift = static_cast<unsigned>(first % 64);
  const bool read_tail = base + out_words < src_words;
  out.good_bits.resize(path_count * out_words);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* src = good_row(p) + base;
    std::uint64_t* dst = out.good_bits.data() + p * out_words;
    if (shift == 0) {
      k.copy_words(dst, src, out_words);
    } else {
      k.shift_extract(dst, src, out_words, shift, read_tail);
    }
    dst[out_words - 1] &= out.word_mask(out_words - 1);
  }
  out.recount();
  return out;
}

MeasurementBlock MeasurementBlock::select_paths(
    std::span<const PathId> paths) const {
  TOMO_REQUIRE(!empty(), "cannot select paths from an empty block");
  TOMO_REQUIRE(!paths.empty(), "path selection needs at least one path");
  const util::bitops::Kernels& k = util::bitops::active();
  MeasurementBlock out;
  out.path_count = paths.size();
  out.snapshot_count = snapshot_count;
  const std::size_t words = words_per_path();
  out.good_bits.resize(paths.size() * words);
  out.good_counts.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    TOMO_REQUIRE(paths[i] < path_count,
                 "path selection index exceeds the block's paths");
    k.copy_words(out.good_bits.data() + i * words, good_row(paths[i]),
                 words);
    out.good_counts[i] = good_counts[paths[i]];
  }
  return out;
}

MeasurementBlock MeasurementBlock::resample(
    std::span<const std::uint32_t> picks, ResampleScratch& scratch) const {
  TOMO_REQUIRE(!empty(), "cannot resample an empty measurement block");
  TOMO_REQUIRE(!picks.empty(), "resample needs at least one pick");
  const util::bitops::Kernels& k = util::bitops::active();
  for (const std::uint32_t pick : picks) {
    TOMO_REQUIRE(pick < snapshot_count,
                 "resample pick exceeds the block's snapshots");
  }

  // Phase 1 — snapshot-major source view, cached across calls: replicate
  // loops re-key on the same block and skip straight to the gather.
  if (scratch.cached_src != good_bits.data() ||
      scratch.cached_paths != path_count ||
      scratch.cached_snapshots != snapshot_count) {
    transpose_to_snapshot_major(*this, k, scratch.snap_major);
    scratch.cached_src = good_bits.data();
    scratch.cached_paths = path_count;
    scratch.cached_snapshots = snapshot_count;
  }

  MeasurementBlock out;
  out.path_count = path_count;
  out.snapshot_count = picks.size();
  const std::size_t path_words = path_words_of(path_count);
  const std::size_t out_words = out.words_per_path();
  const std::size_t padded_rows = out_words * 64;

  // Phase 2 — word gather: output snapshot i is one whole-row copy of
  // snapshot-major row picks[i]. Padding rows (up to the tile boundary)
  // stay zero so the transposed-back tail bits are zero by construction.
  const std::size_t gathered_size = padded_rows * path_words;
  if (scratch.gathered.size() != gathered_size) {
    scratch.gathered.assign(gathered_size, 0);
  } else {
    std::fill(scratch.gathered.begin() +
                  static_cast<std::ptrdiff_t>(picks.size() * path_words),
              scratch.gathered.end(), 0);
  }
  k.gather_rows(scratch.gathered.data(), scratch.snap_major.data(),
                path_words, picks.data(), picks.size());

  // Phase 3 — transpose back to path-major and recount.
  out.good_bits.resize(path_count * out_words);
  out.good_counts.resize(path_count);
  std::uint64_t tile[64];
  for (std::size_t pt = 0; pt < path_words; ++pt) {
    const std::size_t first_path = pt * 64;
    const std::size_t rows =
        std::min<std::size_t>(64, path_count - first_path);
    for (std::size_t st = 0; st < out_words; ++st) {
      const std::uint64_t* src =
          scratch.gathered.data() + st * 64 * path_words + pt;
      if (rows == 64) {
        k.transpose64x64(src, path_words,
                         out.good_bits.data() + first_path * out_words + st,
                         out_words);
      } else {
        k.transpose64x64(src, path_words, tile, 1);
        for (std::size_t r = 0; r < rows; ++r) {
          out.good_bits[(first_path + r) * out_words + st] = tile[r];
        }
      }
    }
  }
  for (PathId p = 0; p < path_count; ++p) {
    out.good_counts[p] =
        k.popcount(out.good_bits.data() + p * out_words, out_words);
  }
  return out;
}

MeasurementBlock MeasurementBlock::resample(
    std::span<const std::uint32_t> picks) const {
  ResampleScratch scratch;
  return resample(picks, scratch);
}

MeasurementBlock MeasurementBlock::from_observations(
    const PathObservations& obs) {
  MeasurementBlock block;
  block.path_count = obs.path_count();
  block.snapshot_count = obs.snapshot_count();
  const std::size_t words = block.words_per_path();
  block.good_bits.resize(block.path_count * words);
  for (PathId p = 0; p < block.path_count; ++p) {
    const std::uint64_t* congested = obs.congested_words(p);
    std::uint64_t* good = block.good_row(p);
    for (std::size_t w = 0; w < words; ++w) {
      good[w] = ~congested[w] & block.word_mask(w);
    }
  }
  block.recount();
  return block;
}

PathObservations MeasurementBlock::to_observations() const {
  TOMO_REQUIRE(!empty(), "cannot convert an empty measurement block");
  PathObservations obs(path_count, snapshot_count);
  const std::size_t words = words_per_path();
  std::vector<std::uint64_t> congested(words);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* good = good_row(p);
    for (std::size_t w = 0; w < words; ++w) {
      congested[w] = ~good[w] & word_mask(w);
    }
    obs.assign_congested_row(p, congested.data());
  }
  return obs;
}

}  // namespace tomo::sim
