#include "sim/measurement_block.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace tomo::sim {

MeasurementBlock MeasurementBlock::all_good(std::size_t path_count,
                                            std::size_t snapshot_count) {
  TOMO_REQUIRE(path_count > 0, "measurement block needs at least one path");
  TOMO_REQUIRE(snapshot_count > 0,
               "measurement block needs at least one snapshot");
  MeasurementBlock block;
  block.path_count = path_count;
  block.snapshot_count = snapshot_count;
  const std::size_t words = block.words_per_path();
  block.good_bits.assign(path_count * words, ~std::uint64_t{0});
  const std::uint64_t tail = block.word_mask(words - 1);
  for (PathId p = 0; p < path_count; ++p) {
    block.good_row(p)[words - 1] = tail;
  }
  block.good_counts.assign(path_count, snapshot_count);
  return block;
}

std::uint64_t MeasurementBlock::word_mask(std::size_t word_index) const {
  if (word_index + 1 < words_per_path() || snapshot_count % 64 == 0) {
    return ~std::uint64_t{0};
  }
  return (std::uint64_t{1} << (snapshot_count % 64)) - 1;
}

void MeasurementBlock::recount() {
  const std::size_t words = words_per_path();
  good_counts.assign(path_count, 0);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* row = good_row(p);
    std::size_t count = 0;
    for (std::size_t w = 0; w < words; ++w) {
      count += static_cast<std::size_t>(std::popcount(row[w]));
    }
    good_counts[p] = count;
  }
}

void MeasurementBlock::append(const MeasurementBlock& window) {
  TOMO_REQUIRE(!window.empty(), "cannot append an empty measurement window");
  if (empty()) {
    *this = window;
    return;
  }
  TOMO_REQUIRE(window.path_count == path_count,
               "appended window has a different path count");

  const std::size_t old_count = snapshot_count;
  const std::size_t old_words = words_per_path();
  const std::size_t window_words = window.words_per_path();
  const std::size_t new_count = old_count + window.snapshot_count;
  const std::size_t new_words = (new_count + 63) / 64;
  const std::size_t base = old_count / 64;
  const unsigned shift = static_cast<unsigned>(old_count % 64);

  std::vector<std::uint64_t> merged(path_count * new_words, 0);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* old_row = good_bits.data() + p * old_words;
    const std::uint64_t* win_row = window.good_row(p);
    std::uint64_t* row = merged.data() + p * new_words;
    for (std::size_t w = 0; w < old_words; ++w) row[w] = old_row[w];
    for (std::size_t w = 0; w < window_words; ++w) {
      const std::uint64_t v = win_row[w];
      row[base + w] |= v << shift;
      // The spill of the high bits into the next word; absent when the old
      // block ended on a word boundary (v >> 64 would be undefined).
      if (shift != 0 && base + w + 1 < new_words) {
        row[base + w + 1] |= v >> (64 - shift);
      }
    }
    good_counts[p] += window.good_counts[p];
  }
  good_bits = std::move(merged);
  snapshot_count = new_count;
}

MeasurementBlock MeasurementBlock::slice(std::size_t first,
                                         std::size_t count) const {
  TOMO_REQUIRE(count > 0, "cannot slice an empty snapshot range");
  TOMO_REQUIRE(first + count <= snapshot_count,
               "slice range exceeds the block's snapshots");
  MeasurementBlock out;
  out.path_count = path_count;
  out.snapshot_count = count;
  const std::size_t src_words = words_per_path();
  const std::size_t out_words = out.words_per_path();
  const std::size_t base = first / 64;
  const unsigned shift = static_cast<unsigned>(first % 64);
  out.good_bits.resize(path_count * out_words);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* src = good_row(p);
    std::uint64_t* dst = out.good_bits.data() + p * out_words;
    for (std::size_t w = 0; w < out_words; ++w) {
      std::uint64_t v = src[base + w] >> shift;
      if (shift != 0 && base + w + 1 < src_words) {
        v |= src[base + w + 1] << (64 - shift);
      }
      dst[w] = v;
    }
    dst[out_words - 1] &= out.word_mask(out_words - 1);
  }
  out.recount();
  return out;
}

MeasurementBlock MeasurementBlock::select_paths(
    std::span<const PathId> paths) const {
  TOMO_REQUIRE(!empty(), "cannot select paths from an empty block");
  TOMO_REQUIRE(!paths.empty(), "path selection needs at least one path");
  MeasurementBlock out;
  out.path_count = paths.size();
  out.snapshot_count = snapshot_count;
  const std::size_t words = words_per_path();
  out.good_bits.resize(paths.size() * words);
  out.good_counts.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    TOMO_REQUIRE(paths[i] < path_count,
                 "path selection index exceeds the block's paths");
    const std::uint64_t* src = good_row(paths[i]);
    std::copy(src, src + words, out.good_bits.data() + i * words);
    out.good_counts[i] = good_counts[paths[i]];
  }
  return out;
}

MeasurementBlock MeasurementBlock::resample(
    std::span<const std::uint32_t> picks) const {
  TOMO_REQUIRE(!empty(), "cannot resample an empty measurement block");
  TOMO_REQUIRE(!picks.empty(), "resample needs at least one pick");
  MeasurementBlock out;
  out.path_count = path_count;
  out.snapshot_count = picks.size();
  const std::size_t out_words = out.words_per_path();
  out.good_bits.assign(path_count * out_words, 0);
  out.good_counts.assign(path_count, 0);

  // Split each pick into (word, bit) once; the picks are shared by every
  // path, so the per-path loop below is a pure gather over packed words.
  std::vector<std::uint32_t> pick_word(picks.size());
  std::vector<std::uint8_t> pick_shift(picks.size());
  for (std::size_t i = 0; i < picks.size(); ++i) {
    TOMO_REQUIRE(picks[i] < snapshot_count,
                 "resample pick exceeds the block's snapshots");
    pick_word[i] = picks[i] >> 6;
    pick_shift[i] = static_cast<std::uint8_t>(picks[i] & 63);
  }

  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* src = good_row(p);
    std::uint64_t* dst = out.good_bits.data() + p * out_words;
    std::size_t count = 0;
    std::size_t i = 0;
    for (std::size_t w = 0; w < out_words; ++w) {
      const std::size_t end = std::min(i + 64, picks.size());
      std::uint64_t word = 0;
      for (unsigned b = 0; i < end; ++i, ++b) {
        word |= ((src[pick_word[i]] >> pick_shift[i]) & std::uint64_t{1})
                << b;
      }
      dst[w] = word;
      count += static_cast<std::size_t>(std::popcount(word));
    }
    out.good_counts[p] = count;
  }
  return out;
}

MeasurementBlock MeasurementBlock::from_observations(
    const PathObservations& obs) {
  MeasurementBlock block;
  block.path_count = obs.path_count();
  block.snapshot_count = obs.snapshot_count();
  const std::size_t words = block.words_per_path();
  block.good_bits.resize(block.path_count * words);
  for (PathId p = 0; p < block.path_count; ++p) {
    const std::uint64_t* congested = obs.congested_words(p);
    std::uint64_t* good = block.good_row(p);
    for (std::size_t w = 0; w < words; ++w) {
      good[w] = ~congested[w] & block.word_mask(w);
    }
  }
  block.recount();
  return block;
}

PathObservations MeasurementBlock::to_observations() const {
  TOMO_REQUIRE(!empty(), "cannot convert an empty measurement block");
  PathObservations obs(path_count, snapshot_count);
  const std::size_t words = words_per_path();
  std::vector<std::uint64_t> congested(words);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* good = good_row(p);
    for (std::size_t w = 0; w < words; ++w) {
      congested[w] = ~good[w] & word_mask(w);
    }
    obs.assign_congested_row(p, congested.data());
  }
  return obs;
}

}  // namespace tomo::sim
