#include "sim/measurement_block.hpp"

#include <bit>

#include "util/error.hpp"

namespace tomo::sim {

MeasurementBlock MeasurementBlock::all_good(std::size_t path_count,
                                            std::size_t snapshot_count) {
  TOMO_REQUIRE(path_count > 0, "measurement block needs at least one path");
  TOMO_REQUIRE(snapshot_count > 0,
               "measurement block needs at least one snapshot");
  MeasurementBlock block;
  block.path_count = path_count;
  block.snapshot_count = snapshot_count;
  const std::size_t words = block.words_per_path();
  block.good_bits.assign(path_count * words, ~std::uint64_t{0});
  const std::uint64_t tail = block.word_mask(words - 1);
  for (PathId p = 0; p < path_count; ++p) {
    block.good_row(p)[words - 1] = tail;
  }
  block.good_counts.assign(path_count, snapshot_count);
  return block;
}

std::uint64_t MeasurementBlock::word_mask(std::size_t word_index) const {
  if (word_index + 1 < words_per_path() || snapshot_count % 64 == 0) {
    return ~std::uint64_t{0};
  }
  return (std::uint64_t{1} << (snapshot_count % 64)) - 1;
}

void MeasurementBlock::recount() {
  const std::size_t words = words_per_path();
  good_counts.assign(path_count, 0);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* row = good_row(p);
    std::size_t count = 0;
    for (std::size_t w = 0; w < words; ++w) {
      count += static_cast<std::size_t>(std::popcount(row[w]));
    }
    good_counts[p] = count;
  }
}

MeasurementBlock MeasurementBlock::from_observations(
    const PathObservations& obs) {
  MeasurementBlock block;
  block.path_count = obs.path_count();
  block.snapshot_count = obs.snapshot_count();
  const std::size_t words = block.words_per_path();
  block.good_bits.resize(block.path_count * words);
  for (PathId p = 0; p < block.path_count; ++p) {
    const std::uint64_t* congested = obs.congested_words(p);
    std::uint64_t* good = block.good_row(p);
    for (std::size_t w = 0; w < words; ++w) {
      good[w] = ~congested[w] & block.word_mask(w);
    }
  }
  block.recount();
  return block;
}

PathObservations MeasurementBlock::to_observations() const {
  TOMO_REQUIRE(!empty(), "cannot convert an empty measurement block");
  PathObservations obs(path_count, snapshot_count);
  const std::size_t words = words_per_path();
  std::vector<std::uint64_t> congested(words);
  for (PathId p = 0; p < path_count; ++p) {
    const std::uint64_t* good = good_row(p);
    for (std::size_t w = 0; w < words; ++w) {
      congested[w] = ~good[w] & word_mask(w);
    }
    obs.assign_congested_row(p, congested.data());
  }
  return obs;
}

}  // namespace tomo::sim
