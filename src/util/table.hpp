// Aligned text tables and CSV emission for the experiment binaries.
//
// Each bench reproduces a paper figure by printing a series table; the same
// Table can be rendered as aligned text (for eyeballing) or CSV (for
// plotting).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tomo {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string fmt(double value, int precision = 4);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Renders as an aligned, pipe-separated text table.
  void print_text(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (fields with commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tomo
