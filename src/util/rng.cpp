#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tomo {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t tag) {
  std::uint64_t s = seed ^ (0x6a09e667f3bcc909ULL + tag);
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  return a ^ rotl(b, 27);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
  // xoshiro must not start from the all-zero state; splitmix64 cannot
  // produce four consecutive zeros, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TOMO_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  TOMO_ASSERT(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = (*this)();
    if (r >= threshold) {
      return r % n;
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TOMO_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Exploit symmetry so the per-trial loop below runs on the smaller tail.
  if (p > 0.5) {
    return n - binomial(n, 1.0 - p);
  }
  if (n <= 64 || static_cast<double>(n) * p < 16.0) {
    // Small n or small mean: inversion by counting geometric gaps.
    if (static_cast<double>(n) * p < 16.0 && n > 64) {
      const double log_q = std::log1p(-p);
      std::uint64_t count = 0;
      double sum = 0.0;
      for (;;) {
        // Geometric gap between successes.
        double g = std::floor(std::log(1.0 - uniform()) / log_q) + 1.0;
        sum += g;
        if (sum > static_cast<double>(n)) {
          return count;
        }
        ++count;
      }
    }
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      count += bernoulli(p) ? 1 : 0;
    }
    return count;
  }
  // Large mean: normal approximation with continuity correction, clamped.
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  // Box-Muller.
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double value = std::round(mean + sd * z);
  if (value < 0.0) value = 0.0;
  if (value > static_cast<double>(n)) value = static_cast<double>(n);
  return static_cast<std::uint64_t>(value);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  TOMO_ASSERT(k <= n);
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: only the first k slots need to be settled.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace tomo
