// Small statistics helpers shared by estimators, metrics, and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace tomo {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& values);

/// Unbiased sample variance; 0 for fewer than two values.
double variance(const std::vector<double>& values);

/// p-th percentile (p in [0,100]) by linear interpolation between order
/// statistics. Throws tomo::Error on empty input.
double percentile(std::vector<double> values, double p);

/// Wilson score interval for a binomial proportion: k successes out of n
/// trials at ~95% confidence (z = 1.96). Returns {lo, hi}; {0, 1} for n=0.
struct Interval {
  double lo;
  double hi;
};

/// Both tails of one sample with a single sort: {percentile(v, p_lo),
/// percentile(v, p_hi)}, bit-identical to the two separate calls. The
/// bootstrap-interval hot path calls this once per link instead of paying
/// the copy+sort twice.
Interval percentile_pair(std::vector<double> values, double p_lo,
                         double p_hi);
Interval wilson_interval(std::size_t k, std::size_t n, double z = 1.96);

}  // namespace tomo
