#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace tomo::util {

std::size_t resolve_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = resolve_jobs(workers);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();  // packaged_task captures exceptions into the future
  }
}

void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = std::min(resolve_jobs(jobs), n);
  if (workers <= 1 || n == 1) {
    // Same exception contract as the pooled path: every item runs, the
    // lowest-index exception is rethrown at the end (sequential order
    // means the first one thrown is the lowest).
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  // Dynamic index claiming: one long-running task per worker, each pulling
  // the next unclaimed index, so expensive items do not serialize behind a
  // static partition. Exceptions are parked per index and the lowest one
  // rethrown after the join, keeping failure behavior independent of
  // scheduling order.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(n);
  {
    ThreadPool pool(workers);
    std::vector<std::future<void>> done;
    done.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      done.push_back(pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            body(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      }));
    }
    for (std::future<void>& f : done) f.get();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace tomo::util
