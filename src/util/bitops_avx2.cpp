// AVX2 implementations of the bit-kernel table. This translation unit is
// the only one compiled with -mavx2 (see src/util/CMakeLists.txt); it is
// reached exclusively through the runtime-dispatched table in bitops.cpp,
// so building it does not raise the binary's baseline ISA.
//
// Popcounts use the vpshufb nibble-LUT + vpsadbw reduction (Mula): each
// 256-bit block contributes four exact 64-bit partial sums, accumulated
// in lanes and folded at the end — integer addition commutes, so the
// result is bitwise the scalar table's on every input.
#include "util/bitops.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace tomo::util::bitops {
namespace {

inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline std::size_t fold_sums(__m256i sums) {
  return static_cast<std::size_t>(_mm256_extract_epi64(sums, 0)) +
         static_cast<std::size_t>(_mm256_extract_epi64(sums, 1)) +
         static_cast<std::size_t>(_mm256_extract_epi64(sums, 2)) +
         static_cast<std::size_t>(_mm256_extract_epi64(sums, 3));
}

std::size_t avx2_popcount(const std::uint64_t* w, std::size_t words) {
  __m256i sums = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w + i));
    sums = _mm256_add_epi64(
        sums, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
  }
  std::size_t count = fold_sums(sums);
  for (; i < words; ++i) {
    count += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return count;
}

std::size_t avx2_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) {
  __m256i sums = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    sums = _mm256_add_epi64(
        sums, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
  }
  std::size_t count = fold_sums(sums);
  for (; i < words; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

std::size_t avx2_and_popcount_multi(const std::uint64_t* const* rows,
                                    std::size_t row_count,
                                    std::size_t words) {
  __m256i sums = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    __m256i acc = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(rows[0] + i));
    for (std::size_t r = 1; r < row_count; ++r) {
      acc = _mm256_and_si256(
          acc,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[r] + i)));
    }
    sums = _mm256_add_epi64(
        sums, _mm256_sad_epu8(popcount_bytes(acc), _mm256_setzero_si256()));
  }
  std::size_t count = fold_sums(sums);
  for (; i < words; ++i) {
    std::uint64_t acc = rows[0][i];
    for (std::size_t r = 1; r < row_count; ++r) {
      acc &= rows[r][i];
    }
    count += static_cast<std::size_t>(std::popcount(acc));
  }
  return count;
}

void avx2_copy_words(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  for (; i < words; ++i) {
    dst[i] = src[i];
  }
}

void avx2_gather_rows(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t row_words, const std::uint32_t* indices,
                      std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    avx2_copy_words(dst + i * row_words, src + indices[i] * row_words,
                    row_words);
  }
}

void avx2_shift_or(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t words, unsigned shift) {
  if (words == 0) return;
  dst[0] |= src[0] << shift;
  std::size_t w = 1;
  if (words < 8) {
    // Below two vector blocks the shift-count setup costs more than it
    // saves; stay scalar (bitwise identical either way).
    for (; w < words; ++w) {
      dst[w] |= (src[w] << shift) | (src[w - 1] >> (64 - shift));
    }
    return;
  }
  const __m128i s = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m128i inv = _mm_cvtsi32_si128(static_cast<int>(64 - shift));
  for (; w + 4 <= words; w += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w - 1));
    const __m256i v = _mm256_or_si256(_mm256_sll_epi64(cur, s),
                                      _mm256_srl_epi64(prev, inv));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(d, v));
  }
  for (; w < words; ++w) {
    dst[w] |= (src[w] << shift) | (src[w - 1] >> (64 - shift));
  }
}

void avx2_shift_extract(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t words, unsigned shift, bool read_tail) {
  if (words == 0) return;
  std::size_t w = 0;
  if (words < 8) {
    for (; w + 1 < words; ++w) {
      dst[w] = (src[w] >> shift) | (src[w + 1] << (64 - shift));
    }
    dst[words - 1] = src[words - 1] >> shift;
    if (read_tail) {
      dst[words - 1] |= src[words] << (64 - shift);
    }
    return;
  }
  const __m128i s = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m128i inv = _mm_cvtsi32_si128(static_cast<int>(64 - shift));
  // The vector loop reads src[w+1 .. w+4], so it stops a word early; the
  // scalar remainder handles the last in-window words and the tail read.
  for (; w + 5 <= words; w += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i next =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w + 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(_mm256_srl_epi64(cur, s),
                                        _mm256_sll_epi64(next, inv)));
  }
  for (; w + 1 < words; ++w) {
    dst[w] = (src[w] >> shift) | (src[w + 1] << (64 - shift));
  }
  dst[words - 1] = src[words - 1] >> shift;
  if (read_tail) {
    dst[words - 1] |= src[words] << (64 - shift);
  }
}

void avx2_transpose64x64(const std::uint64_t* in, std::size_t in_stride,
                         std::uint64_t* out, std::size_t out_stride) {
  alignas(32) std::uint64_t x[64];
  for (unsigned r = 0; r < 64; ++r) {
    x[r] = in[r * in_stride];
  }
  // Same masked-swap passes as the scalar kernel; for j >= 4 the four
  // consecutive low-group rows form one 256-bit lane set, so each swap
  // processes four row pairs at once. The j = 2 and j = 1 passes pair
  // lanes within a vector; they are a small share of the work and stay
  // scalar.
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  unsigned j = 32;
  for (; j >= 4; j >>= 1, m ^= m << j) {
    const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
    const __m128i s = _mm_cvtsi32_si128(static_cast<int>(j));
    for (unsigned k = 0; k < 64; k = (k + j + 4) & ~j) {
      __m256i lo = _mm256_load_si256(reinterpret_cast<__m256i*>(x + k));
      __m256i hi = _mm256_load_si256(reinterpret_cast<__m256i*>(x + k + j));
      const __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srl_epi64(lo, s), hi), vm);
      hi = _mm256_xor_si256(hi, t);
      lo = _mm256_xor_si256(lo, _mm256_sll_epi64(t, s));
      _mm256_store_si256(reinterpret_cast<__m256i*>(x + k), lo);
      _mm256_store_si256(reinterpret_cast<__m256i*>(x + k + j), hi);
    }
  }
  for (; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((x[k] >> j) ^ x[k + j]) & m;
      x[k + j] ^= t;
      x[k] ^= t << j;
    }
  }
  for (unsigned c = 0; c < 64; ++c) {
    out[c * out_stride] = x[c];
  }
}

constexpr Kernels kAvx2 = {
    "avx2",          avx2_popcount,  avx2_and_popcount,
    avx2_and_popcount_multi, avx2_copy_words, avx2_gather_rows,
    avx2_shift_or,   avx2_shift_extract, avx2_transpose64x64,
};

}  // namespace

namespace detail {
const Kernels& avx2_kernels() { return kAvx2; }
}  // namespace detail

}  // namespace tomo::util::bitops

#else
// Built without AVX2 support (TOMO_HAVE_AVX2_TU should not be defined in
// that case); provide nothing — dispatch falls back to scalar.
#endif
