#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace tomo {

Error::Error(std::string message)
    : std::runtime_error("tomo: " + message), message_(std::move(message)) {}

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const char* func) {
  std::fprintf(stderr, "tomo: assertion `%s` failed at %s:%d in %s\n", expr,
               file, line, func);
  std::abort();
}

}  // namespace detail
}  // namespace tomo
