// Worker-thread pool and a deterministic parallel_for on top of it.
//
// The experiment engine fans independent Monte-Carlo trials across cores:
// every work item derives its own RNG stream from (seed, index), writes
// into its own result slot, and the caller reduces in index order — so the
// output is bit-identical no matter how many workers ran. parallel_for
// encodes that contract: indices are claimed dynamically (trials vary in
// cost), results land by index, and the lowest-index exception is rethrown
// after every item has settled.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace tomo::util {

/// Resolves a `--jobs`-style request into a worker count: 0 means "all
/// hardware cores" (at least 1); anything else is used as given.
std::size_t resolve_jobs(std::size_t requested);

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 resolves to all hardware cores).
  explicit ThreadPool(std::size_t workers = 0);

  /// Drains the queue and joins the workers: every submitted task runs
  /// before destruction completes (futures are never broken).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs body(i) for every i in [0, n), on up to `jobs` workers (0 = all
/// hardware cores; jobs <= 1 or n <= 1 runs inline on the caller).
/// Indices are claimed dynamically, so uneven item costs balance across
/// workers; determinism is the *caller's* contract (write only to slot i).
/// If items throw, every remaining item still runs, and the exception from
/// the lowest index is rethrown once all items have settled.
void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace tomo::util
