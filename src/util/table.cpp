#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace tomo {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TOMO_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  TOMO_REQUIRE(row.size() == header_.size(),
               "table row width does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print_text(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) {
      return field;
    }
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace tomo
