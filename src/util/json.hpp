// Minimal JSON document builder for bench telemetry.
//
// The bench binaries serialize their settings, per-trial wall times, and
// result tables to BENCH_<name>.json so runs are machine-comparable across
// commits. Writing JSON needs ~no machinery, so this stays deliberately
// tiny: an ordered value tree (insertion order is preserved, so emitted
// files diff cleanly) with a pretty-printing writer. There is no parser —
// nothing in libtomo consumes JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace tomo::util {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool value);                // NOLINT(runtime/explicit)
  /// Any integer type (int, std::size_t, ...): an exact-match template so
  /// no platform-dependent conversion ranking can make calls ambiguous
  /// (std::size_t is not std::uint64_t everywhere).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T value)                    // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), scalar_(std::to_string(value)) {}
  Json(double value);              // NOLINT(runtime/explicit)
  Json(std::string value);         // NOLINT(runtime/explicit)
  Json(const char* value) : Json(std::string(value)) {}

  static Json object();
  static Json array();

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Appends key/value; requires an object. Returns *this for chaining.
  Json& set(std::string key, Json value);

  /// Appends an element; requires an array. Returns *this for chaining.
  Json& push(Json value);

  /// Convenience: an array of numbers.
  static Json array_of(const std::vector<double>& values);
  static Json array_of(const std::vector<std::string>& values);

  /// Pretty-prints with 2-space indentation and a trailing newline at the
  /// top level.
  void write(std::ostream& os) const;
  std::string str() const;

  /// JSON string escaping (quotes, backslash, control characters).
  static std::string escape(const std::string& raw);

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  void write_indented(std::ostream& os, int depth) const;

  Kind kind_;
  std::string scalar_;  // rendered literal for bool/number, raw for string
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace tomo::util
