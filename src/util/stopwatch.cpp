#include "util/stopwatch.hpp"

namespace tomo {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

void Stopwatch::reset() { start_ = Clock::now(); }

}  // namespace tomo
