#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace tomo::util {

namespace {

std::string render_double(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

}  // namespace

Json::Json(bool value) : kind_(Kind::kBool), scalar_(value ? "true" : "false") {}

Json::Json(double value) : kind_(Kind::kNumber), scalar_(render_double(value)) {}

Json::Json(std::string value) : kind_(Kind::kString), scalar_(std::move(value)) {}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(std::string key, Json value) {
  TOMO_ASSERT(kind_ == Kind::kObject);
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  TOMO_ASSERT(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

Json Json::array_of(const std::vector<double>& values) {
  Json j = array();
  for (const double v : values) j.push(v);
  return j;
}

Json Json::array_of(const std::vector<std::string>& values) {
  Json j = array();
  for (const std::string& v : values) j.push(v);
  return j;
}

std::string Json::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::write(std::ostream& os) const {
  write_indented(os, 0);
  os << "\n";
}

std::string Json::str() const {
  std::ostringstream os;
  write_indented(os, 0);
  return os.str();
}

void Json::write_indented(std::ostream& os, int depth) const {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool:
    case Kind::kNumber: os << scalar_; break;
    case Kind::kString: os << '"' << escape(scalar_) << '"'; break;
    case Kind::kArray: {
      if (elements_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        os << inner;
        elements_[i].write_indented(os, depth + 1);
        os << (i + 1 < elements_.size() ? ",\n" : "\n");
      }
      os << pad << "]";
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        os << inner << '"' << escape(members_[i].first) << "\": ";
        members_[i].second.write_indented(os, depth + 1);
        os << (i + 1 < members_.size() ? ",\n" : "\n");
      }
      os << pad << "}";
      break;
    }
  }
}

}  // namespace tomo::util
