#include "util/bitops.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

namespace tomo::util::bitops {

namespace {

std::size_t scalar_popcount(const std::uint64_t* w, std::size_t words) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < words; ++i) {
    count += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return count;
}

std::size_t scalar_and_popcount(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t words) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < words; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

std::size_t scalar_and_popcount_multi(const std::uint64_t* const* rows,
                                      std::size_t row_count,
                                      std::size_t words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t acc = rows[0][w];
    for (std::size_t r = 1; r < row_count; ++r) {
      acc &= rows[r][w];
    }
    count += static_cast<std::size_t>(std::popcount(acc));
  }
  return count;
}

void scalar_copy_words(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t words) {
  std::memcpy(dst, src, words * sizeof(std::uint64_t));
}

void scalar_gather_rows(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t row_words, const std::uint32_t* indices,
                        std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(dst + i * row_words, src + indices[i] * row_words,
                row_words * sizeof(std::uint64_t));
  }
}

void scalar_shift_or(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t words, unsigned shift) {
  if (words == 0) return;
  dst[0] |= src[0] << shift;
  for (std::size_t w = 1; w < words; ++w) {
    dst[w] |= (src[w] << shift) | (src[w - 1] >> (64 - shift));
  }
}

void scalar_shift_extract(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t words, unsigned shift, bool read_tail) {
  if (words == 0) return;
  for (std::size_t w = 0; w + 1 < words; ++w) {
    dst[w] = (src[w] >> shift) | (src[w + 1] << (64 - shift));
  }
  dst[words - 1] = src[words - 1] >> shift;
  if (read_tail) {
    dst[words - 1] |= src[words] << (64 - shift);
  }
}

/// Hacker's Delight 7-3 adapted to LSB-first columns (bit c of row r is
/// matrix element (r, c)): each pass swaps the high-column block of the
/// low rows with the low-column block of the high rows of every 2j-row
/// group, halving the block size per pass.
void scalar_transpose64x64(const std::uint64_t* in, std::size_t in_stride,
                           std::uint64_t* out, std::size_t out_stride) {
  std::uint64_t x[64];
  for (unsigned r = 0; r < 64; ++r) {
    x[r] = in[r * in_stride];
  }
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((x[k] >> j) ^ x[k + j]) & m;
      x[k + j] ^= t;
      x[k] ^= t << j;
    }
  }
  for (unsigned c = 0; c < 64; ++c) {
    out[c * out_stride] = x[c];
  }
}

constexpr Kernels kScalar = {
    "scalar",          scalar_popcount,  scalar_and_popcount,
    scalar_and_popcount_multi, scalar_copy_words, scalar_gather_rows,
    scalar_shift_or,   scalar_shift_extract, scalar_transpose64x64,
};

bool force_scalar_from_env() {
  const char* env = std::getenv("TOMO_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

#if defined(TOMO_HAVE_AVX2_TU)
namespace detail {
// Defined in bitops_avx2.cpp (compiled with -mavx2).
const Kernels& avx2_kernels();
}  // namespace detail
#endif

const Kernels& scalar_kernels() { return kScalar; }

const Kernels& best_kernels() {
#if defined(TOMO_HAVE_AVX2_TU) && (defined(__GNUC__) || defined(__clang__))
  static const Kernels& best =
      __builtin_cpu_supports("avx2") ? detail::avx2_kernels() : kScalar;
  return best;
#else
  return kScalar;
#endif
}

const Kernels& active() {
  static const Kernels& chosen =
      force_scalar_from_env() ? scalar_kernels() : best_kernels();
  return chosen;
}

bool simd_available() { return &best_kernels() != &scalar_kernels(); }

}  // namespace tomo::util::bitops
