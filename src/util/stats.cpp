#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tomo {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - m) * (v - m);
  return sum / static_cast<double>(values.size() - 1);
}

namespace {

/// Shared interpolation tail of percentile()/percentile_pair(): `values`
/// must already be sorted.
double sorted_percentile(const std::vector<double>& values, double p) {
  TOMO_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

double percentile(std::vector<double> values, double p) {
  TOMO_REQUIRE(!values.empty(), "percentile of an empty sample");
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, p);
}

Interval percentile_pair(std::vector<double> values, double p_lo,
                         double p_hi) {
  TOMO_REQUIRE(!values.empty(), "percentile of an empty sample");
  std::sort(values.begin(), values.end());
  return {sorted_percentile(values, p_lo), sorted_percentile(values, p_hi)};
}

Interval wilson_interval(std::size_t k, std::size_t n, double z) {
  if (n == 0) return {0.0, 1.0};
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(k) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = phat + z2 / (2.0 * nn);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn));
  double lo = (center - margin) / denom;
  double hi = (center + margin) / denom;
  lo = std::max(0.0, lo);
  hi = std::min(1.0, hi);
  return {lo, hi};
}

}  // namespace tomo
