// Deterministic pseudo-random number generation.
//
// Every stochastic component of libtomo takes an explicit 64-bit seed so
// that experiments are reproducible bit-for-bit across runs and machines.
// The engine is xoshiro256** seeded through SplitMix64, which satisfies
// std::uniform_random_bit_generator and therefore composes with the
// standard <random> distributions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace tomo {

/// SplitMix64 step; used for seed expansion and cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Mixes two seeds into one, so components can derive independent
/// sub-streams from (experiment seed, component tag).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t tag);

/// xoshiro256** 1.0 engine (Blackman & Vigna). Small, fast, and with
/// 256-bit state, far more than the simulations here need.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by iterating SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Binomial(n, p) sample. Uses per-trial Bernoulli for small n and the
  /// BTPE-free inversion/normal hybrid otherwise; exact distribution is not
  /// required by callers beyond matching Binomial(n, p).
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Fisher-Yates shuffle of an index container.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in uniformly random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Returns a new Rng seeded from this stream (for spawning sub-streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace tomo
