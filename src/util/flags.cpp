#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace tomo {

Flags::Flags(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

Flags& Flags::add(const std::string& name, Kind kind,
                  std::string default_value, const std::string& help) {
  TOMO_REQUIRE(!flags_.count(name), "duplicate flag --" + name);
  flags_[name] = Flag{kind, help, default_value, default_value};
  order_.push_back(name);
  return *this;
}

Flags& Flags::add_int(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  return add(name, Kind::kInt, std::to_string(default_value), help);
}

Flags& Flags::add_double(const std::string& name, double default_value,
                         const std::string& help) {
  std::ostringstream os;
  os << default_value;
  return add(name, Kind::kDouble, os.str(), help);
}

Flags& Flags::add_bool(const std::string& name, bool default_value,
                       const std::string& help) {
  return add(name, Kind::kBool, default_value ? "true" : "false", help);
}

Flags& Flags::add_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  return add(name, Kind::kString, default_value, help);
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    TOMO_REQUIRE(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    TOMO_REQUIRE(it != flags_.end(), "unknown flag --" + name);
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else {
        TOMO_REQUIRE(i + 1 < argc, "flag --" + name + " needs a value");
        value = argv[++i];
      }
    }
    flag.value = value;
  }
  return true;
}

const Flags::Flag& Flags::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  TOMO_REQUIRE(it != flags_.end(), "flag --" + name + " was never registered");
  TOMO_REQUIRE(it->second.kind == kind,
               "flag --" + name + " accessed with the wrong type");
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name) const {
  const Flag& flag = find(name, Kind::kInt);
  char* end = nullptr;
  std::int64_t v = std::strtoll(flag.value.c_str(), &end, 10);
  TOMO_REQUIRE(end && *end == '\0',
               "flag --" + name + " expects an integer, got " + flag.value);
  return v;
}

double Flags::get_double(const std::string& name) const {
  const Flag& flag = find(name, Kind::kDouble);
  char* end = nullptr;
  double v = std::strtod(flag.value.c_str(), &end);
  TOMO_REQUIRE(end && *end == '\0',
               "flag --" + name + " expects a number, got " + flag.value);
  return v;
}

bool Flags::get_bool(const std::string& name) const {
  const Flag& flag = find(name, Kind::kBool);
  if (flag.value == "true" || flag.value == "1") return true;
  if (flag.value == "false" || flag.value == "0") return false;
  throw Error("flag --" + name + " expects true/false, got " + flag.value);
}

const std::string& Flags::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::string Flags::help() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name << " (default " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace tomo
