// Minimal command-line flag parser for the bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name`. Unknown
// flags raise tomo::Error so typos fail loudly. This deliberately stays
// tiny: the binaries need a handful of numeric knobs, not a CLI framework.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tomo {

class Flags {
 public:
  /// `program` and `summary` are used by help().
  Flags(std::string program, std::string summary);

  Flags& add_int(const std::string& name, std::int64_t default_value,
                 const std::string& help);
  Flags& add_double(const std::string& name, double default_value,
                    const std::string& help);
  Flags& add_bool(const std::string& name, bool default_value,
                  const std::string& help);
  Flags& add_string(const std::string& name, const std::string& default_value,
                    const std::string& help);

  /// Parses argv. Returns false (after printing help) if --help was given.
  /// Throws tomo::Error on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Renders the usage/help text.
  std::string help() const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // textual representation, parsed on get_*
    std::string default_value;
  };

  Flags& add(const std::string& name, Kind kind, std::string default_value,
             const std::string& help);
  const Flag& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace tomo
