// The bit-kernel layer: one vectorized engine for every bitmask hot loop.
//
// Every bitmask hot path in the codebase — the harvest's AND+popcount
// (sim::EmpiricalMeasurement, the correlation-signature precheck in
// core::build_equations), the bootstrap's bit-transposed resample gather
// (sim::MeasurementBlock::resample), and the streaming/sharded block
// splice/select (MeasurementBlock::append/slice/select_paths) — runs
// through the kernel table below instead of hand-written scalar loops.
//
// Two implementations share the table: a portable scalar reference and an
// x86-64 AVX2 path (compiled into its own translation unit with -mavx2
// when the toolchain supports it; see TOMO_ENABLE_SIMD in the root
// CMakeLists). The active table is selected exactly once at startup by
// CPUID runtime dispatch, overridable with the TOMO_FORCE_SCALAR
// environment variable so CI can pin bit-identity between the paths.
//
// The exactness contract: every kernel is pure integer/bit arithmetic
// with a result that does not depend on evaluation order (popcounts sum
// commutatively, AND/OR/shift are word-local), so the scalar and SIMD
// tables are *bitwise identical* on every input — not merely close. That
// is what lets the repo's bit-identity contracts (jobs-invariance,
// batched-vs-reference, streamed-vs-batch, sharded-vs-monolithic) hold
// across machines with different vector units, and it is pinned by the
// BitopsDifferential test suite.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tomo::util::bitops {

/// One implementation of the kernel set. All pointers are non-null.
struct Kernels {
  /// "scalar" or "avx2"; what tests and telemetry report.
  const char* name;

  /// Sum of popcounts over `words` 64-bit words.
  std::size_t (*popcount)(const std::uint64_t* w, std::size_t words);

  /// popcount(a AND b) over `words` words — the pair_good_prob kernel.
  std::size_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words);

  /// popcount of the AND of `row_count` >= 1 rows — the all_good_prob
  /// kernel for path sets beyond a pair.
  std::size_t (*and_popcount_multi)(const std::uint64_t* const* rows,
                                    std::size_t row_count, std::size_t words);

  /// Plain word copy (the block select/gather building block).
  void (*copy_words)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t words);

  /// Row gather: dst row i (of `row_words` words) = src row indices[i].
  /// The bootstrap resample's snapshot-major gather — every pick copies a
  /// whole word row instead of extracting one bit per path.
  void (*gather_rows)(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t row_words, const std::uint32_t* indices,
                      std::size_t count);

  /// OR-splice at a bit offset (the append kernel), shift in [1, 63]:
  ///   dst[w] |= (src[w] << shift) | (w ? src[w-1] >> (64-shift) : 0)
  /// for w in [0, words). The final spill word src[words-1] >> (64-shift)
  /// is the caller's responsibility (it may fall outside the destination).
  void (*shift_or)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t words, unsigned shift);

  /// Windowed extract at a bit offset (the slice kernel), shift in [1, 63]:
  ///   dst[w] = (src[w] >> shift) | (src[w+1] << (64-shift))
  /// for w in [0, words), reading src[words] only when `read_tail` (the
  /// caller knows whether a word past the window exists). Tail masking is
  /// the caller's responsibility.
  void (*shift_extract)(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t words, unsigned shift, bool read_tail);

  /// 64x64 bit-block transpose with strided rows: reads the 64 words
  /// in[r * in_stride], writes out[c * out_stride] such that bit c of
  /// input row r becomes bit r of output row c. Exact involution:
  /// transposing twice (with matching strides) restores the input.
  void (*transpose64x64)(const std::uint64_t* in, std::size_t in_stride,
                         std::uint64_t* out, std::size_t out_stride);
};

/// The portable scalar reference table (always available).
const Kernels& scalar_kernels();

/// The best table this binary + CPU supports, ignoring the env override
/// (equals scalar_kernels() when no SIMD TU was compiled in or the CPU
/// lacks the ISA). Differential tests pin this against scalar_kernels().
const Kernels& best_kernels();

/// The table every consumer dispatches through: best_kernels(), unless
/// TOMO_FORCE_SCALAR is set to anything but "" or "0" in the environment,
/// in which case the scalar reference. Selected once, at first use.
const Kernels& active();

/// True when best_kernels() is a SIMD table (regardless of the override).
bool simd_available();

}  // namespace tomo::util::bitops
