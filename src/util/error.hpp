// Error handling for libtomo.
//
// Recoverable misuse (bad input files, infeasible configurations, empty
// measurements) throws tomo::Error carrying a human-readable message.
// Internal invariant violations use TOMO_ASSERT, which is active in all
// build types: tomography math silently producing garbage is worse than an
// abort.
#pragma once

#include <stdexcept>
#include <string>

namespace tomo {

/// Exception thrown for all recoverable libtomo errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message);

  /// Returns the message without the "tomo: " prefix added by what().
  const std::string& message() const noexcept { return message_; }

 private:
  std::string message_;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* func);
}  // namespace detail

}  // namespace tomo

/// Invariant check that stays on in release builds.
#define TOMO_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::tomo::detail::assert_fail(#expr, __FILE__, __LINE__, __func__);    \
    }                                                                      \
  } while (false)

/// Throws tomo::Error with the given message when `expr` is false.
#define TOMO_REQUIRE(expr, message)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      throw ::tomo::Error(message);                                        \
    }                                                                      \
  } while (false)
