#include "corr/common_shock.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::corr {

CommonShockModel::CommonShockModel(CorrelationSets sets,
                                   std::vector<double> base,
                                   std::vector<Shock> shocks)
    : sets_(std::move(sets)),
      base_(std::move(base)),
      shocks_(std::move(shocks)),
      exposed_(sets_.link_count(), 0) {
  TOMO_REQUIRE(base_.size() == sets_.link_count(),
               "one base probability per link required");
  TOMO_REQUIRE(shocks_.size() == sets_.set_count(),
               "one shock per correlation set required");
  for (double b : base_) {
    TOMO_REQUIRE(b >= 0.0 && b <= 1.0, "base probabilities must be in [0,1]");
  }
  for (std::size_t s = 0; s < shocks_.size(); ++s) {
    Shock& shock = shocks_[s];
    TOMO_REQUIRE(shock.rho >= 0.0 && shock.rho < 1.0,
                 "shock probability must be in [0,1)");
    std::sort(shock.members.begin(), shock.members.end());
    for (LinkId link : shock.members) {
      TOMO_REQUIRE(sets_.set_of(link) == s,
                   "shock member outside its correlation set");
      exposed_[link] = 1;
    }
  }
}

std::vector<std::uint8_t> CommonShockModel::sample(Rng& rng) const {
  std::vector<std::uint8_t> state(sets_.link_count(), 0);
  for (std::size_t k = 0; k < base_.size(); ++k) {
    state[k] = rng.bernoulli(base_[k]) ? 1 : 0;
  }
  for (const Shock& shock : shocks_) {
    if (shock.rho > 0.0 && rng.bernoulli(shock.rho)) {
      for (LinkId link : shock.members) {
        state[link] = 1;
      }
    }
  }
  return state;
}

void CommonShockModel::sample_block(Rng& rng, std::size_t count,
                                    std::uint8_t* out) const {
  // Same draw order as sample(), writing into the caller's buffer.
  const std::size_t links = sets_.link_count();
  for (std::size_t n = 0; n < count; ++n) {
    std::uint8_t* state = out + n * links;
    for (std::size_t k = 0; k < links; ++k) {
      state[k] = rng.bernoulli(base_[k]) ? 1 : 0;
    }
    for (const Shock& shock : shocks_) {
      if (shock.rho > 0.0 && rng.bernoulli(shock.rho)) {
        for (LinkId link : shock.members) {
          state[link] = 1;
        }
      }
    }
  }
}

double CommonShockModel::within_set_all_good(
    std::size_t set_index, const std::vector<LinkId>& links_in_set) const {
  const Shock& shock = shocks_[set_index];
  double prob = 1.0;
  bool touches_shock = false;
  for (LinkId link : links_in_set) {
    TOMO_REQUIRE(sets_.set_of(link) == set_index,
                 "within_set_all_good: link outside the queried set");
    prob *= 1.0 - base_[link];
    touches_shock = touches_shock || exposed_[link];
  }
  if (touches_shock && !links_in_set.empty()) {
    prob *= 1.0 - shock.rho;
  }
  return prob;
}

double CommonShockModel::base_for_marginal(double target, double rho,
                                           bool exposed) {
  TOMO_REQUIRE(target >= 0.0 && target <= 1.0,
               "target marginal must be in [0,1]");
  if (!exposed || rho <= 0.0) {
    return target;
  }
  TOMO_REQUIRE(target >= rho,
               "target marginal below the shock probability is unreachable");
  TOMO_REQUIRE(rho < 1.0, "shock probability must be < 1");
  // 1 - (1-base)(1-rho) = target  =>  base = 1 - (1-target)/(1-rho).
  return 1.0 - (1.0 - target) / (1.0 - rho);
}

}  // namespace tomo::corr
