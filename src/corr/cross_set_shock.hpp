// Cross-set shock: the paper's "unknown correlation pattern" (§5, Fig. 5).
//
// A worm/botnet periodically floods a target set T of links that live in
// *different* correlation sets, making them correlated even though the
// operator's declared partition says they are not. The model wraps an
// inner model and OR-s in a global Bernoulli shock on T:
//
//   X_k = inner_k ∨ (k ∈ T ∧ W),  W ~ Bern(rho) independent of inner.
//
// sets() still reports the *declared* (now wrong) partition — algorithms
// consuming it are deliberately mis-informed, which is the experiment.
// prob_all_good() is overridden with the true joint probability, so oracle
// ground truth stays exact.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "corr/correlation.hpp"

namespace tomo::corr {

class CrossSetShockModel final : public CongestionModel {
 public:
  CrossSetShockModel(std::unique_ptr<CongestionModel> inner,
                     std::vector<LinkId> targets, double rho);

  const CorrelationSets& sets() const override { return inner_->sets(); }
  std::vector<std::uint8_t> sample(Rng& rng) const override;

  /// Delegates to the inner model's block sampler, then ORs the worm shock
  /// into each snapshot (inner block first, then one bernoulli per
  /// snapshot — a fixed order that keeps the block jobs-invariant).
  void sample_block(Rng& rng, std::size_t count,
                    std::uint8_t* out) const override;

  /// True joint: P(all L good) = inner(L) * (1 - rho·[L ∩ T ≠ ∅]).
  double prob_all_good(const std::vector<LinkId>& links) const override;

  /// Within-set marginal of the true joint (the cross-set shock restricted
  /// to one set is still a shock).
  double within_set_all_good(
      std::size_t set_index,
      const std::vector<LinkId>& links_in_set) const override;

  const std::vector<LinkId>& targets() const { return targets_; }
  double rho() const { return rho_; }

 private:
  bool touches_target(const std::vector<LinkId>& links) const;

  std::unique_ptr<CongestionModel> inner_;
  std::vector<LinkId> targets_;
  std::vector<std::uint8_t> is_target_;
  double rho_;
};

}  // namespace tomo::corr
