#include "corr/cross_set_shock.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::corr {

CrossSetShockModel::CrossSetShockModel(std::unique_ptr<CongestionModel> inner,
                                       std::vector<LinkId> targets,
                                       double rho)
    : inner_(std::move(inner)), targets_(std::move(targets)), rho_(rho) {
  TOMO_REQUIRE(inner_ != nullptr, "cross-set shock needs an inner model");
  TOMO_REQUIRE(rho_ >= 0.0 && rho_ < 1.0, "shock probability must be in [0,1)");
  is_target_.assign(inner_->link_count(), 0);
  std::sort(targets_.begin(), targets_.end());
  targets_.erase(std::unique(targets_.begin(), targets_.end()),
                 targets_.end());
  for (LinkId link : targets_) {
    TOMO_REQUIRE(link < is_target_.size(), "shock target out of range");
    is_target_[link] = 1;
  }
}

bool CrossSetShockModel::touches_target(
    const std::vector<LinkId>& links) const {
  return std::any_of(links.begin(), links.end(),
                     [&](LinkId k) { return is_target_[k] != 0; });
}

std::vector<std::uint8_t> CrossSetShockModel::sample(Rng& rng) const {
  std::vector<std::uint8_t> state = inner_->sample(rng);
  if (rho_ > 0.0 && rng.bernoulli(rho_)) {
    for (LinkId link : targets_) {
      state[link] = 1;
    }
  }
  return state;
}

void CrossSetShockModel::sample_block(Rng& rng, std::size_t count,
                                      std::uint8_t* out) const {
  inner_->sample_block(rng, count, out);
  if (rho_ <= 0.0) return;
  const std::size_t links = inner_->link_count();
  for (std::size_t n = 0; n < count; ++n) {
    if (rng.bernoulli(rho_)) {
      std::uint8_t* state = out + n * links;
      for (LinkId link : targets_) {
        state[link] = 1;
      }
    }
  }
}

double CrossSetShockModel::prob_all_good(
    const std::vector<LinkId>& links) const {
  double prob = inner_->prob_all_good(links);
  if (touches_target(links)) {
    prob *= 1.0 - rho_;
  }
  return prob;
}

double CrossSetShockModel::within_set_all_good(
    std::size_t set_index, const std::vector<LinkId>& links_in_set) const {
  double prob = inner_->within_set_all_good(set_index, links_in_set);
  if (touches_target(links_in_set)) {
    prob *= 1.0 - rho_;
  }
  return prob;
}

}  // namespace tomo::corr
