// Gilbert (bursty) congestion model.
//
// Real congestion is bursty: a shared resource that is congested in one
// snapshot tends to stay congested for a while. The paper's Assumption 3
// only requires *stationarity* — the marginal distribution per snapshot
// must not drift — not independence across snapshots, and explicitly
// defers non-stationary behaviour. This model makes that distinction
// testable: each correlation set's shock is driven by a two-state Markov
// chain (classic Gilbert model) with a configurable stationary probability
// and mean burst length, and per-link private congestion stays i.i.d.
//
// The per-snapshot marginal law is identical to CommonShockModel with the
// same parameters (the chain is started from its stationary distribution),
// so all closed-form probability queries carry over; only the temporal
// correlation differs. Estimators therefore remain consistent, just with
// slower convergence — which bench/ablation_burstiness quantifies.
//
// sample() advances the hidden chains: calls must be sequential (one
// experiment timeline per model instance); not thread-safe by design.
#pragma once

#include <cstdint>
#include <vector>

#include "corr/common_shock.hpp"
#include "corr/correlation.hpp"

namespace tomo::corr {

/// Per-set bursty shock: stationary probability `rho` and mean burst
/// length `burst_length` (in snapshots, >= 1). A memoryless Bernoulli(rho)
/// shock corresponds to burst_length = 1/(1-rho); burst_length = 1 means
/// every episode lasts exactly one snapshot.
struct BurstyShock {
  double rho = 0.0;
  double burst_length = 1.0;
  std::vector<LinkId> members;
};

class GilbertShockModel final : public CongestionModel {
 public:
  GilbertShockModel(CorrelationSets sets, std::vector<double> base,
                    std::vector<BurstyShock> shocks);

  const CorrelationSets& sets() const override { return sets_; }

  /// Advances every set's chain by one snapshot and samples link states.
  std::vector<std::uint8_t> sample(Rng& rng) const override;

  /// Block sampling with chains local to the call: every block starts its
  /// chains from the stationary distribution, so the per-snapshot marginal
  /// law is unchanged while bursts truncate at block edges. Unlike
  /// sample(), this neither reads nor advances the instance chain state —
  /// concurrent calls with distinct rng/out are safe.
  void sample_block(Rng& rng, std::size_t count,
                    std::uint8_t* out) const override;

  double within_set_all_good(
      std::size_t set_index,
      const std::vector<LinkId>& links_in_set) const override;

  /// Restarts all chains from the stationary distribution (drawn on the
  /// next sample() call).
  void reset() const;

  /// P(stay congested) for a set's chain; exposed for tests.
  double stay_on_prob(std::size_t set_index) const;
  /// P(become congested | currently not) for a set's chain.
  double off_to_on_prob(std::size_t set_index) const;

 private:
  CorrelationSets sets_;
  std::vector<double> base_;
  std::vector<BurstyShock> shocks_;
  std::vector<std::uint8_t> exposed_;
  // Chain state: 0 = off, 1 = on, 2 = not yet initialized. Mutable because
  // sampling a stateful process advances it; see the header comment.
  mutable std::vector<std::uint8_t> chain_;
};

}  // namespace tomo::corr
