#include "corr/gilbert.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::corr {

GilbertShockModel::GilbertShockModel(CorrelationSets sets,
                                     std::vector<double> base,
                                     std::vector<BurstyShock> shocks)
    : sets_(std::move(sets)),
      base_(std::move(base)),
      shocks_(std::move(shocks)),
      exposed_(sets_.link_count(), 0),
      chain_(shocks_.size(), 2) {
  TOMO_REQUIRE(base_.size() == sets_.link_count(),
               "one base probability per link required");
  TOMO_REQUIRE(shocks_.size() == sets_.set_count(),
               "one bursty shock per correlation set required");
  for (double b : base_) {
    TOMO_REQUIRE(b >= 0.0 && b <= 1.0, "base probabilities must be in [0,1]");
  }
  for (std::size_t s = 0; s < shocks_.size(); ++s) {
    BurstyShock& shock = shocks_[s];
    TOMO_REQUIRE(shock.rho >= 0.0 && shock.rho < 1.0,
                 "shock probability must be in [0,1)");
    TOMO_REQUIRE(shock.burst_length >= 1.0,
                 "mean burst length must be >= 1 snapshot");
    std::sort(shock.members.begin(), shock.members.end());
    for (LinkId link : shock.members) {
      TOMO_REQUIRE(sets_.set_of(link) == s,
                   "shock member outside its correlation set");
      exposed_[link] = 1;
    }
  }
}

double GilbertShockModel::stay_on_prob(std::size_t set_index) const {
  TOMO_REQUIRE(set_index < shocks_.size(), "set index out of range");
  return 1.0 - 1.0 / shocks_[set_index].burst_length;
}

double GilbertShockModel::off_to_on_prob(std::size_t set_index) const {
  TOMO_REQUIRE(set_index < shocks_.size(), "set index out of range");
  const BurstyShock& shock = shocks_[set_index];
  if (shock.rho <= 0.0) return 0.0;
  // Stationarity: rho = q / (q + r) with r = P(on->off) = 1/burst_length,
  // hence q = rho * r / (1 - rho).
  const double r = 1.0 / shock.burst_length;
  return std::min(1.0, shock.rho * r / (1.0 - shock.rho));
}

void GilbertShockModel::reset() const {
  std::fill(chain_.begin(), chain_.end(), 2);
}

std::vector<std::uint8_t> GilbertShockModel::sample(Rng& rng) const {
  std::vector<std::uint8_t> state(sets_.link_count(), 0);
  for (std::size_t k = 0; k < base_.size(); ++k) {
    state[k] = rng.bernoulli(base_[k]) ? 1 : 0;
  }
  for (std::size_t s = 0; s < shocks_.size(); ++s) {
    const BurstyShock& shock = shocks_[s];
    if (shock.rho <= 0.0 || shock.members.empty()) continue;
    std::uint8_t& chain = chain_[s];
    if (chain == 2) {
      // First snapshot: draw from the stationary distribution.
      chain = rng.bernoulli(shock.rho) ? 1 : 0;
    } else if (chain == 1) {
      chain = rng.bernoulli(stay_on_prob(s)) ? 1 : 0;
    } else {
      chain = rng.bernoulli(off_to_on_prob(s)) ? 1 : 0;
    }
    if (chain == 1) {
      for (LinkId link : shock.members) {
        state[link] = 1;
      }
    }
  }
  return state;
}

void GilbertShockModel::sample_block(Rng& rng, std::size_t count,
                                     std::uint8_t* out) const {
  const std::size_t links = sets_.link_count();
  // Chain state lives on this call's stack, never in chain_: the block is
  // its own timeline starting from the stationary distribution.
  std::vector<std::uint8_t> chain(shocks_.size(), 2);
  for (std::size_t n = 0; n < count; ++n) {
    std::uint8_t* state = out + n * links;
    for (std::size_t k = 0; k < links; ++k) {
      state[k] = rng.bernoulli(base_[k]) ? 1 : 0;
    }
    for (std::size_t s = 0; s < shocks_.size(); ++s) {
      const BurstyShock& shock = shocks_[s];
      if (shock.rho <= 0.0 || shock.members.empty()) continue;
      if (chain[s] == 2) {
        chain[s] = rng.bernoulli(shock.rho) ? 1 : 0;
      } else if (chain[s] == 1) {
        chain[s] = rng.bernoulli(stay_on_prob(s)) ? 1 : 0;
      } else {
        chain[s] = rng.bernoulli(off_to_on_prob(s)) ? 1 : 0;
      }
      if (chain[s] == 1) {
        for (LinkId link : shock.members) {
          state[link] = 1;
        }
      }
    }
  }
}

double GilbertShockModel::within_set_all_good(
    std::size_t set_index, const std::vector<LinkId>& links_in_set) const {
  // Per-snapshot marginal law = stationary chain + independent privates:
  // identical to the memoryless common shock.
  const BurstyShock& shock = shocks_[set_index];
  double prob = 1.0;
  bool touches_shock = false;
  for (LinkId link : links_in_set) {
    TOMO_REQUIRE(sets_.set_of(link) == set_index,
                 "within_set_all_good: link outside the queried set");
    prob *= 1.0 - base_[link];
    touches_shock = touches_shock || exposed_[link];
  }
  if (touches_shock && !links_in_set.empty()) {
    prob *= 1.0 - shock.rho;
  }
  return prob;
}

}  // namespace tomo::corr
