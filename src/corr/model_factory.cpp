#include "corr/model_factory.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::corr {

std::unique_ptr<IndependentModel> make_independent(
    std::vector<double> congestion_prob) {
  CorrelationSets sets = CorrelationSets::singletons(congestion_prob.size());
  return std::make_unique<IndependentModel>(std::move(sets),
                                            std::move(congestion_prob));
}

std::unique_ptr<CommonShockModel> make_clustered_shock_model(
    const CorrelationSets& sets, const std::vector<LinkId>& congested_links,
    const std::vector<double>& target_marginal, double correlation_strength) {
  TOMO_REQUIRE(congested_links.size() == target_marginal.size(),
               "one target marginal per congested link required");
  TOMO_REQUIRE(correlation_strength >= 0.0 && correlation_strength < 1.0,
               "correlation strength must be in [0,1)");

  std::vector<double> marginal_of(sets.link_count(), 0.0);
  std::vector<std::vector<LinkId>> per_set(sets.set_count());
  for (std::size_t i = 0; i < congested_links.size(); ++i) {
    const LinkId link = congested_links[i];
    TOMO_REQUIRE(link < sets.link_count(), "congested link out of range");
    TOMO_REQUIRE(marginal_of[link] == 0.0,
                 "congested link listed twice");
    TOMO_REQUIRE(target_marginal[i] > 0.0 && target_marginal[i] < 1.0,
                 "target marginals must be in (0,1)");
    marginal_of[link] = target_marginal[i];
    per_set[sets.set_of(link)].push_back(link);
  }

  std::vector<Shock> shocks(sets.set_count());
  std::vector<double> base(sets.link_count(), 0.0);
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    const auto& members = per_set[s];
    double rho = 0.0;
    if (members.size() >= 2 && correlation_strength > 0.0) {
      double min_marginal = 1.0;
      for (LinkId link : members) {
        min_marginal = std::min(min_marginal, marginal_of[link]);
      }
      rho = correlation_strength * min_marginal;
      shocks[s].rho = rho;
      shocks[s].members = members;
    }
    for (LinkId link : members) {
      base[link] = CommonShockModel::base_for_marginal(
          marginal_of[link], rho, /*exposed=*/shocks[s].rho > 0.0);
    }
  }
  return std::make_unique<CommonShockModel>(sets, std::move(base),
                                            std::move(shocks));
}

std::unique_ptr<CrossSetShockModel> make_worm_model(
    std::unique_ptr<CongestionModel> inner, std::vector<LinkId> targets,
    double rho) {
  return std::make_unique<CrossSetShockModel>(std::move(inner),
                                              std::move(targets), rho);
}

}  // namespace tomo::corr
