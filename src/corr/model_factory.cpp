#include "corr/model_factory.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::corr {

std::unique_ptr<IndependentModel> make_independent(
    std::vector<double> congestion_prob) {
  CorrelationSets sets = CorrelationSets::singletons(congestion_prob.size());
  return std::make_unique<IndependentModel>(std::move(sets),
                                            std::move(congestion_prob));
}

namespace {

/// Shared derivation of the clustered-shock parameterization: per-set
/// shock strength rho_p = strength * min marginal of the set's congested
/// links (0 when fewer than two are congested), and per-link private
/// probabilities chosen so every congested link hits its target marginal.
struct ClusteredShockPlan {
  std::vector<double> base;                     // per link
  std::vector<double> rho;                      // per set
  std::vector<std::vector<LinkId>> members;     // congested links per set
};

ClusteredShockPlan plan_clustered_shocks(
    const CorrelationSets& sets, const std::vector<LinkId>& congested_links,
    const std::vector<double>& target_marginal, double correlation_strength) {
  TOMO_REQUIRE(congested_links.size() == target_marginal.size(),
               "one target marginal per congested link required");
  TOMO_REQUIRE(correlation_strength >= 0.0 && correlation_strength < 1.0,
               "correlation strength must be in [0,1)");

  std::vector<double> marginal_of(sets.link_count(), 0.0);
  ClusteredShockPlan plan;
  plan.base.assign(sets.link_count(), 0.0);
  plan.rho.assign(sets.set_count(), 0.0);
  plan.members.resize(sets.set_count());
  for (std::size_t i = 0; i < congested_links.size(); ++i) {
    const LinkId link = congested_links[i];
    TOMO_REQUIRE(link < sets.link_count(), "congested link out of range");
    TOMO_REQUIRE(marginal_of[link] == 0.0,
                 "congested link listed twice");
    TOMO_REQUIRE(target_marginal[i] > 0.0 && target_marginal[i] < 1.0,
                 "target marginals must be in (0,1)");
    marginal_of[link] = target_marginal[i];
    plan.members[sets.set_of(link)].push_back(link);
  }

  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    const auto& members = plan.members[s];
    if (members.size() >= 2 && correlation_strength > 0.0) {
      double min_marginal = 1.0;
      for (LinkId link : members) {
        min_marginal = std::min(min_marginal, marginal_of[link]);
      }
      plan.rho[s] = correlation_strength * min_marginal;
    }
    for (LinkId link : members) {
      plan.base[link] = CommonShockModel::base_for_marginal(
          marginal_of[link], plan.rho[s], /*exposed=*/plan.rho[s] > 0.0);
    }
  }
  return plan;
}

}  // namespace

std::unique_ptr<CommonShockModel> make_clustered_shock_model(
    const CorrelationSets& sets, const std::vector<LinkId>& congested_links,
    const std::vector<double>& target_marginal, double correlation_strength) {
  ClusteredShockPlan plan = plan_clustered_shocks(
      sets, congested_links, target_marginal, correlation_strength);
  std::vector<Shock> shocks(sets.set_count());
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    if (plan.rho[s] > 0.0) {
      shocks[s].rho = plan.rho[s];
      shocks[s].members = std::move(plan.members[s]);
    }
  }
  return std::make_unique<CommonShockModel>(sets, std::move(plan.base),
                                            std::move(shocks));
}

std::unique_ptr<GilbertShockModel> make_clustered_gilbert_model(
    const CorrelationSets& sets, const std::vector<LinkId>& congested_links,
    const std::vector<double>& target_marginal, double correlation_strength,
    double burst_length) {
  TOMO_REQUIRE(burst_length >= 1.0, "mean burst length must be >= 1");
  ClusteredShockPlan plan = plan_clustered_shocks(
      sets, congested_links, target_marginal, correlation_strength);
  std::vector<BurstyShock> shocks(sets.set_count());
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    if (plan.rho[s] > 0.0) {
      shocks[s].rho = plan.rho[s];
      shocks[s].burst_length = burst_length;
      shocks[s].members = std::move(plan.members[s]);
    }
  }
  return std::make_unique<GilbertShockModel>(sets, std::move(plan.base),
                                             std::move(shocks));
}

std::unique_ptr<CrossSetShockModel> make_worm_model(
    std::unique_ptr<CongestionModel> inner, std::vector<LinkId> targets,
    double rho) {
  return std::make_unique<CrossSetShockModel>(std::move(inner),
                                              std::move(targets), rho);
}

}  // namespace tomo::corr
