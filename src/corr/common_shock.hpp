// Common-shock congestion model.
//
// Each correlation set C_p may carry a Bernoulli "shock" W_p (probability
// rho_p) hitting a designated subset M_p of its members — the shared
// resource failing, in the paper's physical-sharing story. Link k is
// congested iff (k ∈ M_p and W_p = 1) or its private Bernoulli V_k fires:
//
//   X_k = (k ∈ M_p ∧ W_p) ∨ V_k,   V_k ~ Bern(base[k]) independent.
//
// Closed form:  P(all of L ⊆ C_p good)
//             = Π_{k∈L}(1-base[k]) · (1 - rho_p·[L ∩ M_p ≠ ∅]).
//
// The scenario builder uses this model to realize "more than 2 / up to 2
// congested links per correlation set" with controllable correlation
// strength while hitting exact per-link marginals.
#pragma once

#include <cstdint>
#include <vector>

#include "corr/correlation.hpp"

namespace tomo::corr {

/// Per-set shock specification.
struct Shock {
  double rho = 0.0;                // P(shock fires)
  std::vector<LinkId> members;     // M_p, subset of the correlation set
};

class CommonShockModel final : public CongestionModel {
 public:
  /// `base[k]` = P(V_k = 1); one Shock per correlation set (rho may be 0).
  CommonShockModel(CorrelationSets sets, std::vector<double> base,
                   std::vector<Shock> shocks);

  const CorrelationSets& sets() const override { return sets_; }
  std::vector<std::uint8_t> sample(Rng& rng) const override;
  void sample_block(Rng& rng, std::size_t count,
                    std::uint8_t* out) const override;
  double within_set_all_good(
      std::size_t set_index,
      const std::vector<LinkId>& links_in_set) const override;

  /// Chooses base[k] so that the marginal P(X_k=1) equals `target` given
  /// the link's shock exposure: base = 1 - (1-target)/(1-rho) for exposed
  /// links (requires target >= rho), base = target otherwise.
  static double base_for_marginal(double target, double rho, bool exposed);

 private:
  CorrelationSets sets_;
  std::vector<double> base_;
  std::vector<Shock> shocks_;
  std::vector<std::uint8_t> exposed_;  // link -> hit by its set's shock?
};

}  // namespace tomo::corr
