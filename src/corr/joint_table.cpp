#include "corr/joint_table.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tomo::corr {

JointTableModel::JointTableModel(CorrelationSets sets,
                                 std::vector<SetDistribution> distributions)
    : sets_(std::move(sets)), dist_(std::move(distributions)) {
  TOMO_REQUIRE(dist_.size() == sets_.set_count(),
               "one distribution per correlation set required");
  cdf_.resize(dist_.size());
  for (std::size_t s = 0; s < dist_.size(); ++s) {
    const std::size_t size = sets_.set(s).size();
    TOMO_REQUIRE(size <= 20, "correlation set too large for a joint table");
    TOMO_REQUIRE(dist_[s].prob.size() == (std::size_t{1} << size),
                 "joint table size must be 2^|set|");
    double sum = 0.0;
    for (double p : dist_[s].prob) {
      TOMO_REQUIRE(p >= -1e-12, "joint table probabilities must be >= 0");
      sum += p;
    }
    TOMO_REQUIRE(std::abs(sum - 1.0) < 1e-6,
                 "joint table probabilities must sum to 1");
    cdf_[s].resize(dist_[s].prob.size());
    double acc = 0.0;
    for (std::size_t m = 0; m < dist_[s].prob.size(); ++m) {
      acc += std::max(0.0, dist_[s].prob[m]);
      cdf_[s][m] = acc;
    }
    cdf_[s].back() = 1.0;  // guard against rounding
  }
}

std::vector<std::uint8_t> JointTableModel::sample(Rng& rng) const {
  std::vector<std::uint8_t> state(sets_.link_count(), 0);
  for (std::size_t s = 0; s < dist_.size(); ++s) {
    const double u = rng.uniform();
    const auto& cdf = cdf_[s];
    const std::size_t mask = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const auto& members = sets_.set(s);
    for (std::size_t bit = 0; bit < members.size(); ++bit) {
      if (mask & (std::size_t{1} << bit)) {
        state[members[bit]] = 1;
      }
    }
  }
  return state;
}

std::uint32_t JointTableModel::mask_of(
    std::size_t set_index, const std::vector<LinkId>& links) const {
  const auto& members = sets_.set(set_index);
  std::uint32_t mask = 0;
  for (LinkId link : links) {
    auto it = std::lower_bound(members.begin(), members.end(), link);
    TOMO_REQUIRE(it != members.end() && *it == link,
                 "link is not a member of the queried correlation set");
    mask |= std::uint32_t{1}
            << static_cast<std::uint32_t>(it - members.begin());
  }
  return mask;
}

double JointTableModel::within_set_all_good(
    std::size_t set_index, const std::vector<LinkId>& links_in_set) const {
  const std::uint32_t query = mask_of(set_index, links_in_set);
  const auto& prob = dist_[set_index].prob;
  double sum = 0.0;
  for (std::size_t mask = 0; mask < prob.size(); ++mask) {
    if ((mask & query) == 0) {
      sum += prob[mask];
    }
  }
  return sum;
}

double JointTableModel::state_prob(std::size_t set_index,
                                   std::uint32_t mask) const {
  TOMO_REQUIRE(set_index < dist_.size(), "set index out of range");
  TOMO_REQUIRE(mask < dist_[set_index].prob.size(),
               "state mask out of range");
  return dist_[set_index].prob[mask];
}

JointTableModel JointTableModel::from_model(const CongestionModel& model) {
  const CorrelationSets& sets = model.sets();
  std::vector<SetDistribution> dists(sets.set_count());
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    const auto& members = sets.set(s);
    TOMO_REQUIRE(members.size() <= 20,
                 "correlation set too large to tabulate");
    const std::size_t total = std::size_t{1} << members.size();
    dists[s].prob.resize(total);
    double sum = 0.0;
    for (std::size_t mask = 0; mask < total; ++mask) {
      std::vector<LinkId> subset;
      for (std::size_t bit = 0; bit < members.size(); ++bit) {
        if (mask & (std::size_t{1} << bit)) {
          subset.push_back(members[bit]);
        }
      }
      dists[s].prob[mask] = model.set_state_prob(s, subset);
      sum += dists[s].prob[mask];
    }
    TOMO_REQUIRE(std::abs(sum - 1.0) < 1e-6,
                 "model state probabilities do not sum to 1 over a set");
  }
  return JointTableModel(sets, std::move(dists));
}

}  // namespace tomo::corr
