#include "corr/correlation.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::corr {

CorrelationSets::CorrelationSets(std::size_t link_count,
                                 LinkPartition partition)
    : partition_(std::move(partition)), set_of_(link_count, link_count) {
  for (std::size_t s = 0; s < partition_.size(); ++s) {
    TOMO_REQUIRE(!partition_[s].empty(), "empty correlation set");
    for (LinkId link : partition_[s]) {
      TOMO_REQUIRE(link < link_count, "correlation set has unknown link");
      TOMO_REQUIRE(set_of_[link] == link_count,
                   "link assigned to two correlation sets");
      set_of_[link] = s;
    }
    std::sort(partition_[s].begin(), partition_[s].end());
  }
  for (LinkId link = 0; link < link_count; ++link) {
    TOMO_REQUIRE(set_of_[link] != link_count,
                 "link " + std::to_string(link) + " is in no correlation set");
  }
}

CorrelationSets CorrelationSets::singletons(std::size_t link_count) {
  LinkPartition partition(link_count);
  for (LinkId link = 0; link < link_count; ++link) {
    partition[link] = {link};
  }
  return CorrelationSets(link_count, std::move(partition));
}

const std::vector<LinkId>& CorrelationSets::set(std::size_t index) const {
  TOMO_REQUIRE(index < partition_.size(), "correlation set index out of range");
  return partition_[index];
}

std::size_t CorrelationSets::set_of(LinkId link) const {
  TOMO_REQUIRE(link < set_of_.size(), "link id out of range");
  return set_of_[link];
}

bool CorrelationSets::may_be_correlated(LinkId a, LinkId b) const {
  return set_of(a) == set_of(b);
}

bool CorrelationSets::correlation_free(
    const std::vector<LinkId>& links) const {
  // Typical inputs are short (a path or a pair of paths), so a small
  // scratch array beats a hash set; stay on the stack for the common case
  // (the equation harvest calls this once per path per build).
  constexpr std::size_t kStack = 64;
  std::size_t stack_seen[kStack];
  std::vector<std::size_t> heap_seen;
  std::size_t* seen = stack_seen;
  if (links.size() > kStack) {
    heap_seen.resize(links.size());
    seen = heap_seen.data();
  }
  std::size_t count = 0;
  for (LinkId link : links) {
    const std::size_t s = set_of(link);
    if (std::find(seen, seen + count, s) != seen + count) {
      return false;
    }
    seen[count++] = s;
  }
  return true;
}

std::vector<CorrelationSubset> enumerate_correlation_subsets(
    const CorrelationSets& sets, std::size_t max_set_size) {
  std::vector<CorrelationSubset> subsets;
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    const auto& members = sets.set(s);
    TOMO_REQUIRE(members.size() <= max_set_size,
                 "correlation set of size " + std::to_string(members.size()) +
                     " exceeds the enumeration limit");
    const std::size_t total = std::size_t{1} << members.size();
    for (std::size_t mask = 1; mask < total; ++mask) {
      CorrelationSubset subset;
      subset.set_index = s;
      for (std::size_t bit = 0; bit < members.size(); ++bit) {
        if (mask & (std::size_t{1} << bit)) {
          subset.links.push_back(members[bit]);
        }
      }
      subsets.push_back(std::move(subset));
    }
  }
  return subsets;
}

double CongestionModel::prob_all_good(
    const std::vector<LinkId>& links) const {
  // Group the queried links by correlation set, then use independence
  // across sets.
  const CorrelationSets& cs = sets();
  std::vector<std::vector<LinkId>> by_set;
  std::vector<std::size_t> set_ids;
  for (LinkId link : links) {
    const std::size_t s = cs.set_of(link);
    auto it = std::find(set_ids.begin(), set_ids.end(), s);
    std::size_t pos;
    if (it == set_ids.end()) {
      set_ids.push_back(s);
      by_set.emplace_back();
      pos = set_ids.size() - 1;
    } else {
      pos = static_cast<std::size_t>(it - set_ids.begin());
    }
    by_set[pos].push_back(link);
  }
  double prob = 1.0;
  for (std::size_t i = 0; i < set_ids.size(); ++i) {
    prob *= within_set_all_good(set_ids[i], by_set[i]);
  }
  return prob;
}

void CongestionModel::sample_block(Rng& rng, std::size_t count,
                                   std::uint8_t* out) const {
  const std::size_t links = link_count();
  for (std::size_t n = 0; n < count; ++n) {
    const std::vector<std::uint8_t> state = sample(rng);
    std::copy(state.begin(), state.end(), out + n * links);
  }
}

double CongestionModel::marginal(LinkId link) const {
  return 1.0 - prob_all_good({link});
}

std::vector<double> CongestionModel::marginals() const {
  std::vector<double> out(link_count());
  for (LinkId link = 0; link < out.size(); ++link) {
    out[link] = marginal(link);
  }
  return out;
}

double CongestionModel::set_state_prob(
    std::size_t set_index, const std::vector<LinkId>& subset) const {
  // P(exactly `subset` congested within C_p)
  //   = sum_{B subseteq subset} (-1)^|B| P(all of (C_p \ subset) ∪ B good).
  const auto& members = sets().set(set_index);
  std::vector<LinkId> complement;
  for (LinkId link : members) {
    if (std::find(subset.begin(), subset.end(), link) == subset.end()) {
      complement.push_back(link);
    }
  }
  TOMO_REQUIRE(complement.size() + subset.size() == members.size(),
               "set_state_prob: subset has links outside the set");
  TOMO_REQUIRE(subset.size() <= 25, "set_state_prob: subset too large");
  const std::size_t total = std::size_t{1} << subset.size();
  double prob = 0.0;
  for (std::size_t mask = 0; mask < total; ++mask) {
    std::vector<LinkId> query = complement;
    int sign = 1;
    for (std::size_t bit = 0; bit < subset.size(); ++bit) {
      if (mask & (std::size_t{1} << bit)) {
        query.push_back(subset[bit]);
        sign = -sign;
      }
    }
    prob += sign * prob_all_good(query);
  }
  // Inclusion-exclusion can produce tiny negative values numerically.
  return std::max(0.0, prob);
}

IndependentModel::IndependentModel(CorrelationSets sets,
                                   std::vector<double> congestion_prob)
    : sets_(std::move(sets)), p_(std::move(congestion_prob)) {
  TOMO_REQUIRE(p_.size() == sets_.link_count(),
               "one congestion probability per link required");
  for (double v : p_) {
    TOMO_REQUIRE(v >= 0.0 && v <= 1.0,
                 "congestion probabilities must lie in [0,1]");
  }
}

std::vector<std::uint8_t> IndependentModel::sample(Rng& rng) const {
  std::vector<std::uint8_t> state(p_.size());
  for (std::size_t k = 0; k < p_.size(); ++k) {
    state[k] = rng.bernoulli(p_[k]) ? 1 : 0;
  }
  return state;
}

void IndependentModel::sample_block(Rng& rng, std::size_t count,
                                    std::uint8_t* out) const {
  const std::size_t links = p_.size();
  for (std::size_t n = 0; n < count; ++n) {
    std::uint8_t* state = out + n * links;
    for (std::size_t k = 0; k < links; ++k) {
      state[k] = rng.bernoulli(p_[k]) ? 1 : 0;
    }
  }
}

double IndependentModel::within_set_all_good(
    std::size_t set_index, const std::vector<LinkId>& links_in_set) const {
  double prob = 1.0;
  for (LinkId link : links_in_set) {
    TOMO_REQUIRE(sets_.set_of(link) == set_index,
                 "within_set_all_good: link outside the queried set");
    prob *= 1.0 - p_[link];
  }
  return prob;
}

}  // namespace tomo::corr
