// Convenience constructors for the congestion models used by the
// evaluation scenarios.
#pragma once

#include <memory>
#include <vector>

#include "corr/common_shock.hpp"
#include "corr/correlation.hpp"
#include "corr/cross_set_shock.hpp"
#include "corr/gilbert.hpp"

namespace tomo::corr {

/// Independent links with the given marginals, declared as singletons.
std::unique_ptr<IndependentModel> make_independent(
    std::vector<double> congestion_prob);

/// Builds a CommonShockModel in which exactly the links of
/// `congested_links` have the marginals in `target_marginal` (all other
/// links are permanently good), and the congested links of each correlation
/// set are positively correlated via a per-set shock.
///
/// `correlation_strength` in [0,1) scales the shock: rho_p =
/// strength * min marginal of the set's congested links (0 when the set has
/// fewer than two congested links, since there is nothing to correlate).
std::unique_ptr<CommonShockModel> make_clustered_shock_model(
    const CorrelationSets& sets, const std::vector<LinkId>& congested_links,
    const std::vector<double>& target_marginal, double correlation_strength);

/// The bursty (Gilbert) variant of make_clustered_shock_model: identical
/// per-snapshot marginal law and per-set shock strength, but each set's
/// shock is driven by a two-state Markov chain with mean episode length
/// `burst_length` snapshots (>= 1; 1/(1-rho) reproduces the memoryless
/// shock). Snapshots become temporally dependent while Assumption 3
/// (stationarity) still holds.
std::unique_ptr<GilbertShockModel> make_clustered_gilbert_model(
    const CorrelationSets& sets, const std::vector<LinkId>& congested_links,
    const std::vector<double>& target_marginal, double correlation_strength,
    double burst_length);

/// Wraps `inner` with the worm shock of the Fig. 5 scenario.
std::unique_ptr<CrossSetShockModel> make_worm_model(
    std::unique_ptr<CongestionModel> inner, std::vector<LinkId> targets,
    double rho);

}  // namespace tomo::corr
