#include "corr/identifiability.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "util/error.hpp"

namespace tomo::corr {

IdentifiabilityReport check_identifiability(
    const graph::CoverageIndex& coverage, const CorrelationSets& sets,
    std::size_t max_set_size, std::size_t max_collisions) {
  TOMO_REQUIRE(coverage.link_count() == sets.link_count(),
               "coverage index and correlation sets disagree on link count");
  std::vector<CorrelationSubset> subsets =
      enumerate_correlation_subsets(sets, max_set_size);

  // Group subsets by their covered-path set; any bucket with two or more
  // members is a violation of Assumption 4.
  std::map<graph::PathIdSet, std::vector<std::size_t>> buckets;
  std::vector<graph::PathIdSet> covered(subsets.size());
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    covered[i] = coverage.covered_paths(subsets[i].links);
    buckets[covered[i]].push_back(i);
  }

  IdentifiabilityReport report;
  std::unordered_set<LinkId> bad_links;
  for (const auto& [paths, members] : buckets) {
    if (members.size() < 2) continue;
    report.holds = false;
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (LinkId link : subsets[members[i]].links) {
        bad_links.insert(link);
      }
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (report.collisions.size() < max_collisions) {
          report.collisions.push_back(
              {subsets[members[i]], subsets[members[j]]});
        }
      }
    }
  }
  report.unidentifiable_links.assign(bad_links.begin(), bad_links.end());
  std::sort(report.unidentifiable_links.begin(),
            report.unidentifiable_links.end());
  return report;
}

std::vector<graph::NodeId> structurally_violating_nodes(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const CorrelationSets& sets) {
  std::unordered_set<graph::NodeId> endpoints;
  for (const graph::Path& p : paths) {
    endpoints.insert(p.source());
    endpoints.insert(p.destination());
  }
  std::vector<graph::NodeId> out;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (endpoints.count(v)) continue;
    const auto& in = g.in_links(v);
    const auto& eg = g.out_links(v);
    if (in.empty() || eg.empty()) continue;
    bool uniform = true;
    for (graph::LinkId id : in) {
      uniform &= (sets.set_of(id) == sets.set_of(in[0]));
    }
    for (graph::LinkId id : eg) {
      uniform &= (sets.set_of(id) == sets.set_of(eg[0]));
    }
    if (uniform) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<LinkId> structurally_unidentifiable_links(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const CorrelationSets& sets) {
  std::unordered_set<LinkId> bad;
  for (graph::NodeId v : structurally_violating_nodes(g, paths, sets)) {
    for (graph::LinkId id : g.in_links(v)) bad.insert(id);
    for (graph::LinkId id : g.out_links(v)) bad.insert(id);
  }
  std::vector<LinkId> out(bad.begin(), bad.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tomo::corr
