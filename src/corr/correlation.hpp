// Correlation sets and the congestion-model interface (paper §2.1).
//
// Links are partitioned into correlation sets: links within a set may be
// arbitrarily correlated, links in different sets are independent. A
// CongestionModel is the ground truth of an experiment: it samples the
// congested-link indicator per snapshot and can answer exact probability
// queries (used by the oracle estimator and the theorem algorithm's
// reference values).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "graph/transform.hpp"
#include "util/rng.hpp"

namespace tomo::corr {

using graph::LinkId;
using graph::LinkPartition;

/// The known partition of links into correlation sets.
class CorrelationSets {
 public:
  /// Empty structure (no links); placeholder until a real one is assigned.
  CorrelationSets() = default;

  /// `partition` must cover links 0..link_count-1 exactly once.
  CorrelationSets(std::size_t link_count, LinkPartition partition);

  /// Every link alone: the classic uncorrelated-links assumption.
  static CorrelationSets singletons(std::size_t link_count);

  std::size_t link_count() const { return set_of_.size(); }
  std::size_t set_count() const { return partition_.size(); }

  const std::vector<LinkId>& set(std::size_t index) const;
  std::size_t set_of(LinkId link) const;

  /// True iff the two links may be correlated (same set; a link is
  /// trivially correlated with itself).
  bool may_be_correlated(LinkId a, LinkId b) const;

  /// True iff no two distinct links in `links` share a correlation set —
  /// the precondition for a §4 equation to introduce no joint unknowns.
  bool correlation_free(const std::vector<LinkId>& links) const;

  const LinkPartition& partition() const { return partition_; }

 private:
  LinkPartition partition_;
  std::vector<std::size_t> set_of_;
};

/// A non-empty subset of one correlation set (an element of C-tilde).
struct CorrelationSubset {
  std::size_t set_index;
  std::vector<LinkId> links;  // sorted ascending
};

/// Enumerates C-tilde, the set of all correlation subsets. Throws
/// tomo::Error if any correlation set exceeds `max_set_size` (the count is
/// exponential in the set size).
std::vector<CorrelationSubset> enumerate_correlation_subsets(
    const CorrelationSets& sets, std::size_t max_set_size = 20);

/// Ground-truth congestion behaviour of all links during an experiment.
class CongestionModel {
 public:
  virtual ~CongestionModel() = default;

  /// The correlation structure this model declares. (CrossSetShockModel
  /// deliberately *violates* its declared structure — that is the paper's
  /// "unknown correlation pattern" scenario.)
  virtual const CorrelationSets& sets() const = 0;

  std::size_t link_count() const { return sets().link_count(); }

  /// Samples the congestion indicator of every link for one snapshot.
  virtual std::vector<std::uint8_t> sample(Rng& rng) const = 0;

  /// Samples `count` consecutive snapshots into `out`, snapshot-major
  /// (snapshot n occupies out[n*link_count() .. (n+1)*link_count())). The
  /// batched simulator's unit of work: calls must be self-contained — no
  /// mutable member state read or advanced — so concurrent calls with
  /// distinct `rng`/`out` are safe. Models with cross-snapshot state
  /// (Gilbert chains) restart it from the stationary distribution at every
  /// block boundary: the per-snapshot marginal law is unchanged, temporal
  /// correlation truncates at block edges. The default loops sample();
  /// stateful models MUST override (the default would advance their state).
  virtual void sample_block(Rng& rng, std::size_t count,
                            std::uint8_t* out) const;

  /// Exact P(all links in `links` good). Links may span correlation sets.
  /// The default factorizes across correlation sets via
  /// within_set_all_good(); models with cross-set dependence override it.
  virtual double prob_all_good(const std::vector<LinkId>& links) const;

  /// Exact P(all links in `links_in_set` good) for links inside the given
  /// correlation set.
  virtual double within_set_all_good(
      std::size_t set_index, const std::vector<LinkId>& links_in_set) const = 0;

  /// Marginal congestion probability P(X_e = 1).
  double marginal(LinkId link) const;

  /// All marginals as a vector (the quantity the algorithms estimate).
  std::vector<double> marginals() const;

  /// Exact P(S^p = A): the links in `subset` are the only congested links
  /// of correlation set `set_index` (paper's per-set state probability).
  /// Computed by inclusion-exclusion over prob_all_good(), so it remains
  /// correct even for models with cross-set dependence (the event is then
  /// the marginal over other sets). Cost is 2^|subset|.
  double set_state_prob(std::size_t set_index,
                        const std::vector<LinkId>& subset) const;
};

/// Links are independent with per-link congestion probability p[k]. This is
/// both the classic tomography assumption and the building block for other
/// models.
class IndependentModel final : public CongestionModel {
 public:
  /// `congestion_prob[k]` = P(X_k = 1); sets may be any partition (the
  /// declared structure does not change independent behaviour).
  IndependentModel(CorrelationSets sets, std::vector<double> congestion_prob);

  const CorrelationSets& sets() const override { return sets_; }
  std::vector<std::uint8_t> sample(Rng& rng) const override;
  void sample_block(Rng& rng, std::size_t count,
                    std::uint8_t* out) const override;
  double within_set_all_good(
      std::size_t set_index,
      const std::vector<LinkId>& links_in_set) const override;

 private:
  CorrelationSets sets_;
  std::vector<double> p_;
};

}  // namespace tomo::corr
