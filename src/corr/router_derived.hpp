// Router-derived congestion model (the paper's Brite setup, §5).
//
// Each measured (logical, e.g. AS-level) link maps to a sequence of
// underlying router-level links; router-level links are independent
// Bernoulli. A logical link is congested iff any of its underlying links
// is congested, so logical links sharing an underlying link are correlated
// — exactly the paper's derivation of AS-level correlation from the
// router-level topology.
//
// The declared correlation sets must be consistent: two logical links that
// share an underlying link must be in the same set (the hierarchical
// generator produces sets as connected components of the sharing graph).
#pragma once

#include <cstdint>
#include <vector>

#include "corr/correlation.hpp"

namespace tomo::corr {

class RouterDerivedModel final : public CongestionModel {
 public:
  /// `underlying[k]` lists the router-level link ids composing logical link
  /// k; `router_prob[r]` = P(router-level link r congested).
  RouterDerivedModel(CorrelationSets sets,
                     std::vector<std::vector<std::size_t>> underlying,
                     std::vector<double> router_prob);

  const CorrelationSets& sets() const override { return sets_; }
  std::vector<std::uint8_t> sample(Rng& rng) const override;
  double within_set_all_good(
      std::size_t set_index,
      const std::vector<LinkId>& links_in_set) const override;

  std::size_t router_link_count() const { return router_prob_.size(); }
  const std::vector<std::size_t>& underlying(LinkId link) const;

 private:
  CorrelationSets sets_;
  std::vector<std::vector<std::size_t>> underlying_;
  std::vector<double> router_prob_;
};

}  // namespace tomo::corr
