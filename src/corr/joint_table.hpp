// Explicit joint-distribution congestion model.
//
// For each correlation set, the model stores a full probability table over
// the 2^|Cp| congestion states of that set; sets are sampled independently
// of each other. This is the most general representation the paper's model
// admits and the reference against which the structured models (common
// shock, router-derived) are tested.
#pragma once

#include <cstdint>
#include <vector>

#include "corr/correlation.hpp"

namespace tomo::corr {

/// Distribution over the states of one correlation set. `prob[mask]` is the
/// probability that exactly the members whose bit is set in `mask` are
/// congested (bit i = i-th link of the sorted member list).
struct SetDistribution {
  std::vector<double> prob;  // size 2^|Cp|, sums to 1
};

class JointTableModel final : public CongestionModel {
 public:
  /// One distribution per correlation set, in set order. Set sizes are
  /// limited to 20 links (the table is exponential).
  JointTableModel(CorrelationSets sets,
                  std::vector<SetDistribution> distributions);

  const CorrelationSets& sets() const override { return sets_; }
  std::vector<std::uint8_t> sample(Rng& rng) const override;
  double within_set_all_good(
      std::size_t set_index,
      const std::vector<LinkId>& links_in_set) const override;

  /// Direct table lookup of P(S^p = A) — cheaper and exacter than the
  /// base-class inclusion-exclusion.
  double state_prob(std::size_t set_index, std::uint32_t mask) const;

  /// Builds the table of any CongestionModel by exhaustive queries —
  /// useful for testing structured models against their explicit form.
  static JointTableModel from_model(const CongestionModel& model);

 private:
  std::uint32_t mask_of(std::size_t set_index,
                        const std::vector<LinkId>& links) const;

  CorrelationSets sets_;
  std::vector<SetDistribution> dist_;
  std::vector<std::vector<double>> cdf_;  // per set, for sampling
};

}  // namespace tomo::corr
