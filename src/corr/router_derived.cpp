#include "corr/router_derived.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::corr {

RouterDerivedModel::RouterDerivedModel(
    CorrelationSets sets, std::vector<std::vector<std::size_t>> underlying,
    std::vector<double> router_prob)
    : sets_(std::move(sets)),
      underlying_(std::move(underlying)),
      router_prob_(std::move(router_prob)) {
  TOMO_REQUIRE(underlying_.size() == sets_.link_count(),
               "one underlying-link list per logical link required");
  for (double p : router_prob_) {
    TOMO_REQUIRE(p >= 0.0 && p <= 1.0,
                 "router-link probabilities must be in [0,1]");
  }
  // Consistency: links sharing an underlying router link must share a
  // correlation set; a router link shared across sets would silently break
  // the cross-set independence the model claims.
  std::vector<std::size_t> owner(router_prob_.size(),
                                 static_cast<std::size_t>(-1));
  for (LinkId k = 0; k < underlying_.size(); ++k) {
    TOMO_REQUIRE(!underlying_[k].empty(),
                 "logical link with no underlying links");
    for (std::size_t r : underlying_[k]) {
      TOMO_REQUIRE(r < router_prob_.size(),
                   "underlying router link out of range");
      const std::size_t set = sets_.set_of(k);
      if (owner[r] == static_cast<std::size_t>(-1)) {
        owner[r] = set;
      } else {
        TOMO_REQUIRE(owner[r] == set,
                     "router link shared across correlation sets");
      }
    }
  }
}

std::vector<std::uint8_t> RouterDerivedModel::sample(Rng& rng) const {
  std::vector<std::uint8_t> router_state(router_prob_.size());
  for (std::size_t r = 0; r < router_prob_.size(); ++r) {
    router_state[r] = rng.bernoulli(router_prob_[r]) ? 1 : 0;
  }
  std::vector<std::uint8_t> state(underlying_.size(), 0);
  for (LinkId k = 0; k < underlying_.size(); ++k) {
    for (std::size_t r : underlying_[k]) {
      if (router_state[r]) {
        state[k] = 1;
        break;
      }
    }
  }
  return state;
}

double RouterDerivedModel::within_set_all_good(
    std::size_t set_index, const std::vector<LinkId>& links_in_set) const {
  // All queried logical links good <=> every distinct underlying router
  // link good.
  std::vector<std::size_t> routers;
  for (LinkId link : links_in_set) {
    TOMO_REQUIRE(sets_.set_of(link) == set_index,
                 "within_set_all_good: link outside the queried set");
    routers.insert(routers.end(), underlying_[link].begin(),
                   underlying_[link].end());
  }
  std::sort(routers.begin(), routers.end());
  routers.erase(std::unique(routers.begin(), routers.end()), routers.end());
  double prob = 1.0;
  for (std::size_t r : routers) {
    prob *= 1.0 - router_prob_[r];
  }
  return prob;
}

const std::vector<std::size_t>& RouterDerivedModel::underlying(
    LinkId link) const {
  TOMO_REQUIRE(link < underlying_.size(), "link id out of range");
  return underlying_[link];
}

}  // namespace tomo::corr
