// Assumption-4 (identifiability) analysis.
//
// Exact check: enumerate C-tilde and find pairs of correlation subsets
// covering exactly the same paths; links belonging to any colliding subset
// are "unidentifiable" (paper §3.3). Structural check: the paper's local
// criterion — an intermediate node whose ingress links all live in one
// correlation set and whose egress links all live in one set forces a
// collision between its ingress and egress subsets.
#pragma once

#include <cstddef>
#include <vector>

#include "corr/correlation.hpp"
#include "graph/coverage.hpp"
#include "graph/graph.hpp"

namespace tomo::corr {

struct SubsetCollision {
  CorrelationSubset a;
  CorrelationSubset b;
};

struct IdentifiabilityReport {
  bool holds = true;                       // Assumption 4 holds
  std::vector<SubsetCollision> collisions; // witnesses (possibly truncated)
  std::vector<LinkId> unidentifiable_links;  // sorted, deduplicated
};

/// Exact enumeration check; cost is exponential in correlation-set size, so
/// sets larger than `max_set_size` raise tomo::Error. `max_collisions`
/// bounds the number of stored witnesses (the link set is still complete).
IdentifiabilityReport check_identifiability(
    const graph::CoverageIndex& coverage, const CorrelationSets& sets,
    std::size_t max_set_size = 20, std::size_t max_collisions = 1000);

/// Nodes matching the paper's structural violation criterion. Nodes that
/// are endpoints of some path are exempt (their links' subsets also cover
/// the endpoint path asymmetrically).
std::vector<graph::NodeId> structurally_violating_nodes(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const CorrelationSets& sets);

/// Links adjacent to any structurally violating node (a cheap, conservative
/// under-approximation of the unidentifiable-link set usable on large
/// correlation sets).
std::vector<LinkId> structurally_unidentifiable_links(
    const graph::Graph& g, const std::vector<graph::Path>& paths,
    const CorrelationSets& sets);

}  // namespace tomo::corr
