// Evaluation metrics (paper §5, "Metrics").
//
// All figures report the absolute error |p_true - p_estimated| of the
// per-link congestion probability, restricted to the *potentially
// congested* links: links that participate in at least one path observed
// congested during the experiment.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/coverage.hpp"
#include "util/stats.hpp"

namespace tomo::metrics {

/// |truth[k] - estimate[k]| for each k in `subset` (all links if empty).
std::vector<double> absolute_errors(const std::vector<double>& truth,
                                    const std::vector<double>& estimate,
                                    const std::vector<std::size_t>& subset);

struct ErrorSummary {
  double mean = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

ErrorSummary summarize_errors(const std::vector<double>& errors);

}  // namespace tomo::metrics
