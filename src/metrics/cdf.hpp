// Empirical CDF series for the figure reproductions.
#pragma once

#include <cstddef>
#include <vector>

namespace tomo::metrics {

struct CdfPoint {
  double x;        // error threshold
  double percent;  // % of samples with value <= x
};

/// Evaluates the empirical CDF of `samples` on an evenly spaced grid of
/// `points` thresholds spanning [0, x_max]. Matches the paper's plots of
/// "CDF (% of potentially congested links)" vs absolute error.
std::vector<CdfPoint> cdf_series(const std::vector<double>& samples,
                                 double x_max = 1.0, std::size_t points = 21);

/// Fraction (in %) of samples with value <= x.
double cdf_at(const std::vector<double>& samples, double x);

}  // namespace tomo::metrics
