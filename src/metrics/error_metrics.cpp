#include "metrics/error_metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tomo::metrics {

std::vector<double> absolute_errors(const std::vector<double>& truth,
                                    const std::vector<double>& estimate,
                                    const std::vector<std::size_t>& subset) {
  TOMO_REQUIRE(truth.size() == estimate.size(),
               "absolute_errors: vector size mismatch");
  std::vector<double> out;
  if (subset.empty()) {
    out.reserve(truth.size());
    for (std::size_t k = 0; k < truth.size(); ++k) {
      out.push_back(std::abs(truth[k] - estimate[k]));
    }
  } else {
    out.reserve(subset.size());
    for (std::size_t k : subset) {
      TOMO_REQUIRE(k < truth.size(), "absolute_errors: index out of range");
      out.push_back(std::abs(truth[k] - estimate[k]));
    }
  }
  return out;
}

ErrorSummary summarize_errors(const std::vector<double>& errors) {
  ErrorSummary summary;
  summary.count = errors.size();
  if (errors.empty()) {
    return summary;
  }
  summary.mean = tomo::mean(errors);
  summary.p90 = tomo::percentile(errors, 90.0);
  summary.max = *std::max_element(errors.begin(), errors.end());
  return summary;
}

}  // namespace tomo::metrics
