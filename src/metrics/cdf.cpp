#include "metrics/cdf.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tomo::metrics {

std::vector<CdfPoint> cdf_series(const std::vector<double>& samples,
                                 double x_max, std::size_t points) {
  TOMO_REQUIRE(points >= 2, "cdf series needs at least two points");
  TOMO_REQUIRE(x_max > 0.0, "cdf range must be positive");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> series;
  series.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        x_max * static_cast<double>(i) / static_cast<double>(points - 1);
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    const double frac =
        sorted.empty()
            ? 0.0
            : static_cast<double>(it - sorted.begin()) /
                  static_cast<double>(sorted.size());
    series.push_back({x, 100.0 * frac});
  }
  return series;
}

double cdf_at(const std::vector<double>& samples, double x) {
  if (samples.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : samples) {
    if (v <= x) ++count;
  }
  return 100.0 * static_cast<double>(count) /
         static_cast<double>(samples.size());
}

}  // namespace tomo::metrics
