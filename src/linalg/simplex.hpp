// Dense simplex solver for small/medium linear programs, plus an exact
// L1-regression wrapper.
//
// The LP front end solves   min c^T x  s.t.  A x = b, x >= 0.
// l1_regression() solves    min ||A x - b||_1 + lambda ||x||_1, x >= 0
// by the standard split  A x + s+ - s- = b  with slack variables, which has
// a trivially feasible starting basis (no phase-1 needed).
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace tomo::linalg {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  Vector x;           // primal solution (meaningful when kOptimal)
  double objective = 0.0;
  std::size_t iterations = 0;
};

/// Two-phase dense simplex with Bland's anti-cycling rule.
LpResult simplex_solve(const Matrix& a, const Vector& b, const Vector& c,
                       std::size_t max_iterations = 0);

struct L1Result {
  Vector x;
  double objective = 0.0;  // ||Ax-b||_1 + lambda*||x||_1
  bool optimal = false;
};

/// Exact L1 regression with non-negativity: min ||Ax-b||_1 + lambda||x||_1,
/// x >= 0. lambda > 0 breaks ties toward small solutions (the paper's
/// "minimize the L1 norm error" fallback for under-determined systems).
L1Result l1_regression(const Matrix& a, const Vector& b, double lambda = 1e-6,
                       std::size_t max_iterations = 0);

}  // namespace tomo::linalg
