// Householder QR factorization with column pivoting, plus least-squares
// solving. This is the workhorse for the well-determined tomography systems.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace tomo::linalg {

/// QR factorization A P = Q R computed with Householder reflections and
/// column pivoting (so rank-deficient systems are handled gracefully).
class QrDecomposition {
 public:
  /// Factorizes `a` (rows >= 0, any shape).
  explicit QrDecomposition(const Matrix& a);

  /// Numerical rank at the given relative tolerance.
  std::size_t rank(double rel_tol = 1e-10) const;

  /// Minimum-norm-ish least-squares solution of A x ~= b: basic solution
  /// with zeros in the columns beyond the numerical rank.
  Vector solve(const Vector& b, double rel_tol = 1e-10) const;

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

 private:
  /// Applies Q^T to a vector of length rows().
  Vector apply_qt(Vector v) const;

  Matrix qr_;                     // packed Householder vectors + R
  Vector tau_;                    // Householder scalars
  Vector rdiag_;                  // diagonal of R (|.| decreasing)
  std::vector<std::size_t> perm_; // column permutation: A[:, perm[j]] ~ col j
};

/// Convenience one-shot least squares; returns x minimizing ||A x - b||_2.
Vector least_squares(const Matrix& a, const Vector& b, double rel_tol = 1e-10);

}  // namespace tomo::linalg
