// Updatable Cholesky factorization for active-set solvers.
//
// Maintains the lower-triangular factor L of a symmetric positive-definite
// matrix M = L L^T under two O(k^2) edits: appending a symmetric row/column
// and deleting an arbitrary row/column. The NNLS inner loop lives on this:
// M is the passive-set block G[P, P] of a once-per-solve Gram matrix
// G = A^T A, and every Lawson-Hanson iteration is a factor edit plus two
// triangular solves instead of a fresh m x k QR factorization.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace tomo::linalg {

class UpdatableCholesky {
 public:
  /// Starts empty (size() == 0); `capacity` only pre-reserves storage.
  explicit UpdatableCholesky(std::size_t capacity = 0);

  /// Number of columns currently factored.
  std::size_t size() const { return size_; }

  /// Appends the symmetric row/column (`cross`, `diag`) where `cross[i]` is
  /// the inner product against current column i (length size()) and `diag`
  /// the new column's self inner product. Rejects the edit and returns
  /// false — leaving the factor untouched — when the Schur complement
  /// diag - ||L^-1 cross||^2 is <= rel_tol * diag: the new column is
  /// numerically dependent on the factored ones and would poison later
  /// triangular solves.
  bool append(const Vector& cross, double diag, double rel_tol = 1e-12);

  /// Deletes row/column `position` (< size()) and restores triangularity
  /// with Givens rotations applied to the trailing rows.
  void remove(std::size_t position);

  /// Solves (L L^T) z = rhs; rhs.size() must equal size().
  Vector solve(const Vector& rhs) const;

  /// Resets to the empty factor (keeps storage).
  void clear();

 private:
  double& at(std::size_t r, std::size_t c) { return l_[r * (r + 1) / 2 + c]; }
  double at(std::size_t r, std::size_t c) const {
    return l_[r * (r + 1) / 2 + c];
  }

  // Packed row-major lower triangle: row r occupies entries
  // [r(r+1)/2, r(r+1)/2 + r].
  std::vector<double> l_;
  std::size_t size_ = 0;
};

}  // namespace tomo::linalg
