// Cholesky factorization and normal-equation least squares.
//
// For tall systems with modest condition numbers (the tomography systems'
// 0/1 rows are well behaved), solving A^T A x = A^T b via Cholesky is
// several times faster than Householder QR. QR remains the default where
// accuracy is at a premium; this path backs the solver microbenchmarks and
// offers a cheap alternative for iterative callers (IRLS-style loops).
#pragma once

#include "linalg/matrix.hpp"

namespace tomo::linalg {

/// Cholesky factor of a symmetric positive-definite matrix: A = L L^T.
class CholeskyDecomposition {
 public:
  /// Factorizes `a` (must be square, symmetric, positive definite; a
  /// tomo::Error is thrown when a non-positive pivot is met).
  explicit CholeskyDecomposition(const Matrix& a);

  /// Solves A x = b via the factor.
  Vector solve(const Vector& b) const;

  std::size_t size() const { return l_.rows(); }
  const Matrix& factor() const { return l_; }

 private:
  Matrix l_;  // lower triangular
};

/// Least squares through the normal equations with Tikhonov jitter
/// `ridge` (default 0) on the diagonal: solves (A^T A + ridge I) x = A^T b.
/// Throws tomo::Error when the normal matrix is numerically singular and
/// ridge == 0.
Vector normal_equations_least_squares(const Matrix& a, const Vector& b,
                                      double ridge = 0.0);

}  // namespace tomo::linalg
