// Unified front end for solving the tomography log-domain linear system.
//
// The system is  A x = y  where rows of A are 0/1 link-incidence vectors
// (possibly row-scaled by variance weights), y_i = log P(paths of equation
// i all good) <= 0, and the unknowns x_k = log P(link k good) are
// constrained to x <= 0.
//
// Internally we substitute u = -x >= 0 and b = -y >= 0 so every solver
// works on a non-negative problem.
//
// Two entry points share the same solver set:
//   - the dense overload, for callers that already hold a Matrix;
//   - the sparse overload over a SparseSystemView, which never
//     materializes the dense matrix at all for the (default) incremental
//     NNLS engine — the Gram products G = A^T A and c = A^T b are
//     accumulated straight from the per-row support, fanned across a
//     worker pool column-by-column. Entry sums always run in row order, so
//     the solution is bit-identical for any jobs value.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"

namespace tomo::linalg {

enum class SolverKind {
  kLeastSquares,  // QR least squares, then clamp to the feasible sign
  kNnls,          // Lawson-Hanson non-negative least squares (default)
  kL1Lp,          // exact L1 via simplex LP (small/medium systems)
  kIrls,          // IRLS approximation of L1
};

/// Parses "ls" | "nnls" | "l1lp" | "irls"; throws tomo::Error otherwise.
SolverKind solver_kind_from_string(const std::string& name);
std::string to_string(SolverKind kind);

/// Everything a caller can tune about the solve, threaded end to end from
/// core::InferenceOptions down to the engine.
struct SolverOptions {
  SolverKind kind = SolverKind::kNnls;
  /// NNLS engine: incremental Gram/Cholesky (default) or the historical
  /// per-iteration dense QR, kept for differential testing.
  NnlsMode nnls_mode = NnlsMode::kIncremental;
  /// Iteration cap for the iterative engines (0 = their defaults).
  std::size_t max_iterations = 0;
  /// Active-set / convergence tolerance for NNLS.
  double tol = 1e-10;
  /// Worker threads for the sparse Gram build (1 = inline on the caller,
  /// 0 = all hardware cores). The result is bit-identical for any value.
  std::size_t jobs = 1;
  /// Warm start for the incremental NNLS engine: column indices seeded
  /// into the passive set (normally the previous window's active_set in a
  /// streaming solve). Ignored by every other kind/engine; safe to leave
  /// stale — see NnlsOptions::warm_start.
  std::vector<std::size_t> warm_start;
  /// Pre-factored warm seed for solves sharing one Gram matrix (the
  /// batched bootstrap); replaces the per-solve warm_start admission loop
  /// bit-identically. Not owned — see NnlsOptions::warm_factor.
  const NnlsWarmFactor* nnls_warm_factor = nullptr;
};

/// One equation row viewed sparsely: `value` on every column in
/// [support, support + support_size), zero elsewhere, with right-hand side
/// y. The pointed-at index array must be sorted and outlive the view.
struct SparseRow {
  const std::size_t* support = nullptr;
  std::size_t support_size = 0;
  double value = 1.0;
  double y = 0.0;
};

/// Borrowed sparse view of the equation system (the rows' index storage is
/// owned by the caller, e.g. core::EquationSystem's per-equation links).
struct SparseSystemView {
  std::size_t cols = 0;
  std::vector<SparseRow> rows;
};

struct LogSystemSolution {
  Vector x;               // log P(link good), entries <= 0
  double residual_norm2;  // ||A x - y||_2 over the given equations
  std::string detail;     // solver-specific notes (iterations, status)
  /// Converged NNLS support (incremental engine only), sorted ascending —
  /// the warm-start seed for the next window of a streaming solve.
  std::vector<std::size_t> active_set;
};

/// Solves A x = y with x <= 0 using the requested solver. `y` entries must
/// be finite and <= 0 (equations with unusable measurements should have
/// been dropped by the caller).
LogSystemSolution solve_log_system(const Matrix& a, const Vector& y,
                                   const SolverOptions& options);

/// Sparse entry point: for NNLS in incremental mode the Gram system is
/// built directly from the row support (in parallel for jobs > 1) and the
/// dense matrix never exists; the other solver kinds materialize a dense
/// copy internally and delegate.
LogSystemSolution solve_log_system(const SparseSystemView& system,
                                   const SolverOptions& options = {});

/// Backward-compatible dense overload (default options of the given kind).
LogSystemSolution solve_log_system(const Matrix& a, const Vector& y,
                                   SolverKind kind = SolverKind::kNnls);

/// Builds the Gram system (G = A^T A, c = A^T b, b^T b) of the *negated*
/// system A u = -y straight from the sparse rows, fanning columns across
/// up to `jobs` workers. Exposed for the solver micro-benchmarks and the
/// differential suite; entry sums are row-ordered, hence jobs-invariant.
GramSystem sparse_gram(const SparseSystemView& system, std::size_t jobs);

/// Adds `system`'s Gram contribution on top of `gs` (sizing/zeroing it on
/// first use). Because every entry's partial sums run in ascending row
/// order, accumulating any in-order partition of the rows window by window
/// executes the exact same floating-point addition sequence as one batch
/// build — the result is *bitwise* equal to sparse_gram over the
/// concatenated rows, for any split and any jobs value. This is the
/// streaming path's additive-Gram contract.
void accumulate_gram(GramSystem& gs, const SparseSystemView& system,
                     std::size_t jobs);

/// Recomputes only the right-hand-side products (c = A^T b, b^T b) of `gs`
/// from scratch for `system`'s rows, leaving G untouched. For the
/// streaming fast path where a window leaves the equation support (hence
/// G) unchanged but refreshes every y. Same row-ordered, jobs-invariant
/// sums as a full build.
void refresh_gram_rhs(GramSystem& gs, const SparseSystemView& system,
                      std::size_t jobs);

/// Solves with a caller-held Gram system of `system` (incremental NNLS
/// only — options.kind/nnls_mode must select it). The sparse view is still
/// needed for the residual; `gs` must match its rows (e.g. built via
/// accumulate_gram over the same equations).
LogSystemSolution solve_log_system(const SparseSystemView& system,
                                   const GramSystem& gs,
                                   const SolverOptions& options);

/// Shared-skeleton replicated solve: refreshes only the rhs products of
/// `gs` in place (its G = A^T A must already match `system`'s support —
/// same rows, same order, same values) and solves. The batched bootstrap's
/// per-replicate entry point: hundreds of resampled systems share one Gram
/// skeleton, each paying O(nnz) for the rhs instead of O(nnz * k) for a
/// full rebuild. Bitwise equal to a cold sparse solve of `system` when
/// options.warm_start is empty.
LogSystemSolution solve_log_system_reuse(const SparseSystemView& system,
                                         GramSystem& gs,
                                         const SolverOptions& options);

}  // namespace tomo::linalg
