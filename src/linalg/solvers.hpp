// Unified front end for solving the tomography log-domain linear system.
//
// The system is  A x = y  where rows of A are 0/1 link-incidence vectors,
// y_i = log P(paths of equation i all good) <= 0, and the unknowns
// x_k = log P(link k good) are constrained to x <= 0.
//
// Internally we substitute u = -x >= 0 and b = -y >= 0 so every solver
// works on a non-negative problem.
#pragma once

#include <string>

#include "linalg/matrix.hpp"

namespace tomo::linalg {

enum class SolverKind {
  kLeastSquares,  // QR least squares, then clamp to the feasible sign
  kNnls,          // Lawson-Hanson non-negative least squares (default)
  kL1Lp,          // exact L1 via simplex LP (small/medium systems)
  kIrls,          // IRLS approximation of L1
};

/// Parses "ls" | "nnls" | "l1lp" | "irls"; throws tomo::Error otherwise.
SolverKind solver_kind_from_string(const std::string& name);
std::string to_string(SolverKind kind);

struct LogSystemSolution {
  Vector x;               // log P(link good), entries <= 0
  double residual_norm2;  // ||A x - y||_2 over the given equations
  std::string detail;     // solver-specific notes (iterations, status)
};

/// Solves A x = y with x <= 0 using the requested solver. `y` entries must
/// be finite and <= 0 (equations with unusable measurements should have
/// been dropped by the caller).
LogSystemSolution solve_log_system(const Matrix& a, const Vector& y,
                                   SolverKind kind = SolverKind::kNnls);

}  // namespace tomo::linalg
