#include "linalg/rank_tracker.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tomo::linalg {

namespace {
// 0/1 incidence rows keep entries O(1), so an absolute tolerance is sound.
constexpr double kTol = 1e-9;
}  // namespace

RankTracker::RankTracker(std::size_t dim) : dim_(dim) {
  TOMO_REQUIRE(dim > 0, "rank tracker needs a positive dimension");
}

std::size_t RankTracker::reduce(Vector& row) const {
  // Basis rows are in echelon form: a row's pivot column is its smallest
  // "owned" column, and subtracting it only perturbs columns >= that pivot.
  // Sweeping pivots in ascending column order therefore zeroes every pivot
  // column of `row` in a single pass.
  for (const auto& [pivot_col, basis_row] : basis_) {
    const double coeff = row[pivot_col];
    if (std::abs(coeff) <= kTol) continue;
    for (std::size_t c = pivot_col; c < dim_; ++c) {
      row[c] -= coeff * basis_row[c];
    }
    row[pivot_col] = 0.0;
  }
  // The pivot must be the row's first non-negligible entry: the echelon
  // invariant (a basis row is zero before its pivot column) is what makes
  // the single ascending sweep above correct.
  for (std::size_t c = 0; c < dim_; ++c) {
    if (std::abs(row[c]) > kTol) {
      return c;
    }
  }
  return dim_;
}

bool RankTracker::try_add_dense(const Vector& row) {
  TOMO_REQUIRE(row.size() == dim_, "rank tracker row width mismatch");
  if (full_rank()) return false;
  Vector reduced = row;
  const std::size_t pivot = reduce(reduced);
  if (pivot == dim_) return false;
  const double scale = reduced[pivot];
  for (double& v : reduced) v /= scale;
  // Entries before the pivot are below tolerance by construction; zero them
  // exactly so the echelon invariant holds bit-for-bit.
  for (std::size_t c = 0; c < pivot; ++c) reduced[c] = 0.0;
  basis_.emplace(pivot, std::move(reduced));
  return true;
}

bool RankTracker::try_add_ones(const std::vector<std::size_t>& one_indices) {
  Vector row(dim_, 0.0);
  for (std::size_t idx : one_indices) {
    TOMO_REQUIRE(idx < dim_, "rank tracker index out of range");
    TOMO_REQUIRE(row[idx] == 0.0, "duplicate index in 0/1 row");
    row[idx] = 1.0;
  }
  return try_add_dense(row);
}

}  // namespace tomo::linalg
