#include "linalg/rank_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/error.hpp"

namespace tomo::linalg {

namespace {
// 0/1 incidence rows keep entries O(1), so an absolute tolerance is sound.
constexpr double kTol = 1e-9;
}  // namespace

RankTracker::RankTracker(std::size_t dim)
    : dim_(dim),
      pivot_index_(dim, kNoPivot),
      values_(dim, 0.0),
      touched_flag_(dim, 0) {
  TOMO_REQUIRE(dim > 0, "rank tracker needs a positive dimension");
}

void RankTracker::clear_scratch() {
  for (std::size_t c : touched_) {
    values_[c] = 0.0;
    touched_flag_[c] = 0;
  }
  touched_.clear();
  heap_.clear();
}

bool RankTracker::reduce_and_absorb() {
  // Basis rows are in echelon form: a row's pivot column is its smallest
  // "owned" column, and subtracting it only perturbs columns >= that pivot.
  // Eliminating pivots in ascending column order therefore zeroes every
  // pivot column of the candidate in a single pass. The heap serves exactly
  // the candidate's touched pivot columns in that order: an untouched pivot
  // column holds an exact zero, which the historical dense sweep skipped
  // too, and columns first touched by an elimination at pivot c lie beyond
  // c, so pushing them preserves the ascending order.
  const auto greater = std::greater<std::size_t>();
  heap_.assign(touched_.begin(), touched_.end());
  std::erase_if(heap_,
                [&](std::size_t c) { return pivot_index_[c] == kNoPivot; });
  std::make_heap(heap_.begin(), heap_.end(), greater);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), greater);
    const std::size_t pivot_col = heap_.back();
    heap_.pop_back();
    const double coeff = values_[pivot_col];
    if (std::abs(coeff) <= kTol) continue;
    const SparseRow& basis_row = basis_[pivot_index_[pivot_col]];
    for (std::size_t k = 0; k < basis_row.cols.size(); ++k) {
      const std::size_t c = basis_row.cols[k];
      if (!touched_flag_[c]) {
        touched_flag_[c] = 1;
        touched_.push_back(c);
        if (pivot_index_[c] != kNoPivot) {
          heap_.push_back(c);
          std::push_heap(heap_.begin(), heap_.end(), greater);
        }
      }
      values_[c] -= coeff * basis_row.vals[k];
    }
    values_[pivot_col] = 0.0;
  }
  // The pivot must be the candidate's first non-negligible entry: the
  // echelon invariant (a basis row is zero before its pivot column) is what
  // makes the single ascending sweep above correct.
  std::size_t pivot = dim_;
  for (std::size_t c : touched_) {
    if (std::abs(values_[c]) > kTol && c < pivot) {
      pivot = c;
    }
  }
  if (pivot == dim_) {
    clear_scratch();
    return false;
  }
  std::sort(touched_.begin(), touched_.end());
  const double scale = values_[pivot];
  SparseRow row;
  row.cols.reserve(touched_.size());
  row.vals.reserve(touched_.size());
  for (std::size_t c : touched_) {
    // Entries before the pivot are below tolerance by construction; drop
    // them exactly so the echelon invariant holds bit-for-bit.
    if (c < pivot) continue;
    const double v = values_[c] / scale;
    if (v != 0.0) {
      row.cols.push_back(static_cast<std::uint32_t>(c));
      row.vals.push_back(v);
    }
  }
  pivot_index_[pivot] = basis_.size();
  basis_.push_back(std::move(row));
  clear_scratch();
  return true;
}

bool RankTracker::try_add_dense(const Vector& row) {
  TOMO_REQUIRE(row.size() == dim_, "rank tracker row width mismatch");
  if (full_rank()) return false;
  for (std::size_t c = 0; c < dim_; ++c) {
    if (row[c] != 0.0) {
      touch(c);
      values_[c] = row[c];
    }
  }
  return reduce_and_absorb();
}

bool RankTracker::try_add_ones(const std::vector<std::size_t>& one_indices) {
  for (std::size_t idx : one_indices) {
    // Leave the accumulator clean before surfacing either error: the
    // scratch persists across calls, so a caller that catches the Error
    // and keeps using the tracker must not inherit phantom entries.
    if (idx >= dim_) {
      clear_scratch();
      TOMO_REQUIRE(false, "rank tracker index out of range");
    }
    if (touched_flag_[idx]) {
      clear_scratch();
      TOMO_REQUIRE(false, "duplicate index in 0/1 row");
    }
    touch(idx);
    values_[idx] = 1.0;
  }
  if (full_rank()) {
    clear_scratch();
    return false;
  }
  return reduce_and_absorb();
}

}  // namespace tomo::linalg
